//! Ablation microbenchmarks for the design choices called out in
//! `DESIGN.md`: assignment-distance variants (Eq. 5 vs Euclidean vs the
//! unclamped variant), bandwidth rules, and kernel normalization forms.
//! (The accuracy side of these ablations is produced by the `ablation`
//! results binary.)

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use udm_data::{ErrorModel, UciDataset};
use udm_kde::{BandwidthRule, ErrorKernelForm, KdeConfig};
use udm_microcluster::{
    AssignmentDistance, MaintainerConfig, MicroClusterKde, MicroClusterMaintainer,
};

fn bench_distance_variants(c: &mut Criterion) {
    let clean = UciDataset::Adult.generate(2000, 7);
    let data = ErrorModel::paper(1.2).apply(&clean, 8).unwrap();

    let mut group = c.benchmark_group("ablation_assignment_distance");
    for (name, dist) in [
        ("error_adjusted", AssignmentDistance::ErrorAdjusted),
        ("euclidean", AssignmentDistance::Euclidean),
        ("unclamped", AssignmentDistance::ErrorAdjustedUnclamped),
    ] {
        group.bench_with_input(BenchmarkId::new("maintain", name), &dist, |b, &dist| {
            b.iter(|| {
                MicroClusterMaintainer::from_dataset(
                    black_box(&data),
                    MaintainerConfig {
                        max_clusters: 80,
                        distance: dist,
                    },
                )
                .unwrap()
                .points_seen()
            })
        });
    }
    group.finish();
}

fn bench_bandwidth_and_forms(c: &mut Criterion) {
    let clean = UciDataset::Adult.generate(2000, 7);
    let data = ErrorModel::paper(1.2).apply(&clean, 8).unwrap();
    let m = MicroClusterMaintainer::from_dataset(&data, MaintainerConfig::new(80)).unwrap();
    let query: Vec<f64> = data.point(0).values().to_vec();

    let mut group = c.benchmark_group("ablation_kde_config");
    for (name, bw) in [
        ("silverman", BandwidthRule::Silverman),
        ("scott", BandwidthRule::Scott),
        ("fixed", BandwidthRule::Fixed(0.5)),
    ] {
        let kde = MicroClusterKde::fit(
            m.clusters(),
            KdeConfig {
                bandwidth: bw,
                ..KdeConfig::default()
            },
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::new("bandwidth", name), &(), |b, _| {
            b.iter(|| kde.density(black_box(&query)).unwrap())
        });
    }
    for (name, form) in [
        ("normalized", ErrorKernelForm::Normalized),
        ("paper_faithful", ErrorKernelForm::PaperFaithful),
    ] {
        let kde = MicroClusterKde::fit(
            m.clusters(),
            KdeConfig {
                form,
                ..KdeConfig::default()
            },
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::new("kernel_form", name), &(), |b, _| {
            b.iter(|| kde.density(black_box(&query)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_distance_variants, bench_bandwidth_and_forms);
criterion_main!(benches);
