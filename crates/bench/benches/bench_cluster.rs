//! Clustering microbenchmarks: error-adjusted vs Euclidean k-means and
//! DBSCAN, plus the compressed macro-clustering path.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use udm_cluster::{macro_cluster, Dbscan, DbscanConfig, KMeans, KMeansConfig, MacroClusterConfig};
use udm_data::{ErrorModel, GaussianClassSpec, MixtureGenerator};
use udm_microcluster::{AssignmentDistance, MaintainerConfig, MicroClusterMaintainer};

fn workload(n: usize) -> udm_core::UncertainDataset {
    let g = MixtureGenerator::new(
        2,
        vec![
            GaussianClassSpec::spherical(vec![0.0, 0.0], 0.8, 1.0),
            GaussianClassSpec::spherical(vec![8.0, 0.0], 0.8, 1.0),
            GaussianClassSpec::spherical(vec![4.0, 7.0], 0.8, 1.0),
        ],
    )
    .expect("spec is valid");
    let clean = g.generate(n, 7);
    ErrorModel::paper(0.5)
        .apply(&clean, 8)
        .expect("noise applies")
}

fn bench_kmeans(c: &mut Criterion) {
    let data = workload(1000);
    let mut group = c.benchmark_group("kmeans");
    for (name, dist) in [
        ("error_adjusted", AssignmentDistance::ErrorAdjusted),
        ("euclidean", AssignmentDistance::Euclidean),
    ] {
        group.bench_with_input(BenchmarkId::new("n1000_k3", name), &dist, |b, &dist| {
            b.iter(|| {
                let mut cfg = KMeansConfig::new(3);
                cfg.distance = dist;
                KMeans::new(cfg)
                    .expect("valid config")
                    .run(black_box(&data))
                    .expect("kmeans runs")
                    .iterations
            })
        });
    }
    group.finish();
}

fn bench_dbscan(c: &mut Criterion) {
    let data = workload(600);
    let mut group = c.benchmark_group("dbscan");
    for (name, adjusted) in [("error_adjusted", true), ("euclidean", false)] {
        group.bench_with_input(BenchmarkId::new("n600", name), &adjusted, |b, &adj| {
            b.iter(|| {
                Dbscan::new(DbscanConfig {
                    eps: 1.2,
                    min_pts: 4,
                    error_adjusted: adj,
                })
                .expect("valid config")
                .run(black_box(&data))
                .expect("dbscan runs")
                .num_clusters
            })
        });
    }
    group.finish();
}

fn bench_macro_path(c: &mut Criterion) {
    // Raw k-means on 5000 points vs micro-cluster summary + macro-cluster:
    // the compressed pathway should be dramatically cheaper per run.
    let data = workload(5000);
    let maintainer =
        MicroClusterMaintainer::from_dataset(&data, MaintainerConfig::new(80)).expect("builds");
    let mut group = c.benchmark_group("macro_path");
    group.bench_function("raw_kmeans_n5000", |b| {
        b.iter(|| {
            KMeans::new(KMeansConfig::new(3))
                .expect("valid config")
                .run(black_box(&data))
                .expect("kmeans runs")
                .iterations
        })
    });
    group.bench_function("macro_over_80_clusters", |b| {
        b.iter(|| {
            macro_cluster(black_box(maintainer.clusters()), MacroClusterConfig::new(3))
                .expect("macro-clustering runs")
                .iterations
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kmeans, bench_dbscan, bench_macro_path);
criterion_main!(benches);
