//! Density-evaluation cost: exact point-based KDE (`O(N·d)` per query)
//! versus the micro-cluster estimator (`O(q·d)` per query) — the
//! scalability argument of §2.1 in microbenchmark form.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use udm_data::{ErrorModel, UciDataset};
use udm_kde::{ErrorKde, KdeConfig};
use udm_microcluster::{MaintainerConfig, MicroClusterKde, MicroClusterMaintainer};

fn bench_density(c: &mut Criterion) {
    let clean = UciDataset::Adult.generate(4000, 7);
    let data = ErrorModel::paper(1.0).apply(&clean, 8).unwrap();
    let query: Vec<f64> = data.point(0).values().to_vec();

    let mut group = c.benchmark_group("density_eval");

    let exact = ErrorKde::fit(&data, KdeConfig::default()).unwrap();
    group.bench_function("exact_n4000", |b| {
        b.iter(|| exact.density(black_box(&query)).unwrap())
    });

    for q in [20, 80, 140] {
        let m = MicroClusterMaintainer::from_dataset(&data, MaintainerConfig::new(q)).unwrap();
        let kde = MicroClusterKde::fit(m.clusters(), KdeConfig::default()).unwrap();
        group.bench_with_input(BenchmarkId::new("microcluster", q), &q, |b, _| {
            b.iter(|| kde.density(black_box(&query)).unwrap())
        });
    }

    group.finish();
}

criterion_group!(benches, bench_density);
criterion_main!(benches);
