//! Density-backend scaling: exact vs coreset vs HBE as the model grows.
//!
//! Fits micro-cluster KDEs at increasing pseudo-point budgets `q`,
//! builds every [`udm_kde::DensityBackend`] over each model, and times
//! the same query workload against all of them. The exact backend's
//! per-query cost is Θ(q); the coreset backend compresses the model to
//! a certified-L∞ subset, and the HBE backend's importance-sample count
//! depends only on `(eps, tau)` — so both should hold their per-query
//! cost roughly flat while exact grows linearly. The report records
//! `effective_rows` (rows the backend actually touches per query) as
//! the structural evidence behind the timings, plus the observed
//! max |approx − exact| against the coreset's certified bound.
//!
//! Output: `results/BENCH_density_backends.json`. `UDM_BENCH_QUICK=1`
//! shrinks the budget axis and the query count for CI smoke.

use std::time::Instant;
use udm_core::{Subspace, UncertainPoint};
use udm_kde::{BackendSpec, DensityBackend, KdeConfig};
use udm_microcluster::{build_backend, CoresetKde, MaintainerConfig, MicroClusterMaintainer};

const DIM: usize = 3;
const CORESET_EPS: f64 = 0.1;
const HBE_EPS: f64 = 0.2;
const HBE_TAU: f64 = 0.02;

fn quick() -> bool {
    std::env::var_os("UDM_BENCH_QUICK").is_some()
}

fn budgets() -> Vec<usize> {
    if quick() {
        vec![128, 512]
    } else {
        vec![256, 1024, 4096]
    }
}

fn queries_per_backend() -> usize {
    if quick() {
        200
    } else {
        1_000
    }
}

/// xorshift64* — deterministic workload generation without reseeding
/// drift across runs.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }
}

/// Modes the stream actually has — the axis of interest is `q`
/// over-provisioning this intrinsic structure, which is where a
/// coreset has redundancy to exploit.
const ANCHORS: usize = 48;

/// Fits a `q`-budget micro-cluster KDE over a stream drawn from
/// [`ANCHORS`] fixed sites with small jitter and per-dimension
/// measurement errors. As `q` grows past the site count, pseudo-points
/// become near-duplicates of their site-mates.
fn fitted(q: usize) -> udm_microcluster::MicroClusterKde {
    let mut rng = Rng(0xBEAC_0000);
    let anchors: Vec<Vec<f64>> = (0..ANCHORS)
        .map(|_| (0..DIM).map(|_| rng.range(0.0, 8.0)).collect())
        .collect();
    let mut rng = Rng(0xBEAC_0000 + q as u64);
    let mut maintainer = MicroClusterMaintainer::new(DIM, MaintainerConfig::new(q)).unwrap();
    let n = (q * 4).max(512);
    for t in 0..n {
        let site = &anchors[t % ANCHORS];
        // Jitter well under the fitted bandwidth: pseudo-points sharing
        // a site are then genuinely redundant kernels, the regime the
        // coreset's certified merge is built to exploit.
        let values: Vec<f64> = site.iter().map(|c| c + rng.range(-0.02, 0.02)).collect();
        let errors: Vec<f64> = (0..DIM).map(|_| rng.range(0.0, 0.05)).collect();
        let p = UncertainPoint::new(values, errors)
            .unwrap()
            .with_timestamp(t as u64);
        maintainer.insert(&p).unwrap();
    }
    udm_microcluster::MicroClusterKde::fit(maintainer.clusters(), KdeConfig::error_adjusted())
        .unwrap()
}

fn query_set(count: usize) -> Vec<Vec<f64>> {
    let mut rng = Rng(0x9E37_79B9);
    (0..count)
        .map(|_| (0..DIM).map(|_| rng.range(-2.0, 8.0)).collect())
        .collect()
}

#[derive(serde::Serialize)]
struct BackendPoint {
    backend: String,
    spec: String,
    /// Rows the backend touches per query (pseudo-points for exact,
    /// compressed rows for coreset, near-field cap + samples for HBE).
    effective_rows: usize,
    ns_per_query: f64,
    /// Largest |approx − exact| observed over the query set.
    max_abs_error: f64,
    /// The coreset's certified L∞ bound (0 for exact, absent semantics
    /// for HBE where the guarantee is probabilistic/relative).
    certified_error: f64,
}

#[derive(serde::Serialize)]
struct BudgetPoint {
    q: usize,
    model_rows: usize,
    backends: Vec<BackendPoint>,
}

#[derive(serde::Serialize)]
struct Report {
    quick_mode: bool,
    dim: usize,
    queries_per_backend: usize,
    budgets: Vec<BudgetPoint>,
    /// ns/query growth factor from the smallest to the largest budget,
    /// per backend — the sublinear-scaling headline.
    growth: Vec<GrowthLine>,
    criteria_notes: Vec<String>,
}

#[derive(serde::Serialize)]
struct GrowthLine {
    backend: String,
    q_growth: f64,
    /// Wall-clock growth — advisory; shared hosts are noisy.
    ns_growth: f64,
    /// Deterministic: rows touched per query at the largest budget over
    /// the smallest.
    rows_growth: f64,
    /// Judged on `rows_growth` (the structural quantity), not timing.
    sublinear: bool,
}

fn time_backend(
    backend: &dyn DensityBackend,
    queries: &[Vec<f64>],
    sub: Subspace,
) -> (f64, Vec<f64>) {
    // Warmup pass so lazily-built caches don't bill the first query.
    for x in queries.iter().take(8) {
        backend.density_subspace(x, None, sub).unwrap();
    }
    let started = Instant::now();
    let mut out = Vec::with_capacity(queries.len());
    for x in queries {
        out.push(backend.density_subspace(x, None, sub).unwrap());
    }
    let ns = started.elapsed().as_nanos() as f64 / queries.len() as f64;
    (ns, out)
}

fn main() {
    let queries = query_set(queries_per_backend());
    let sub = Subspace::full(DIM).unwrap();
    let specs = [
        BackendSpec::Exact,
        BackendSpec::Coreset { eps: CORESET_EPS },
        BackendSpec::Hbe {
            eps: HBE_EPS,
            tau: HBE_TAU,
        },
    ];

    let mut budgets_out = Vec::new();
    for q in budgets() {
        let kde = fitted(q);
        let model_rows = kde.num_pseudo_points();
        let (_, exact_values) = time_backend(
            build_backend(&kde, &BackendSpec::Exact).unwrap().as_ref(),
            &queries,
            sub,
        );
        let mut backends = Vec::new();
        for spec in specs {
            let backend = build_backend(&kde, &spec).unwrap();
            let (ns_per_query, values) = time_backend(backend.as_ref(), &queries, sub);
            let max_abs_error = values
                .iter()
                .zip(exact_values.iter())
                .map(|(a, e)| (a - e).abs())
                .fold(0.0_f64, f64::max);
            let (effective_rows, certified_error) = match spec {
                BackendSpec::Exact => (model_rows, 0.0),
                BackendSpec::Coreset { eps } => {
                    let coreset = CoresetKde::build(&kde, eps).unwrap();
                    (coreset.rows(), coreset.certified_error())
                }
                BackendSpec::Hbe { .. } => {
                    let hbe = udm_microcluster::HbeKde::build(&kde, HBE_EPS, HBE_TAU).unwrap();
                    (hbe.samples().min(model_rows), 0.0)
                }
            };
            backends.push(BackendPoint {
                backend: backend.name().to_string(),
                spec: spec.to_string(),
                effective_rows,
                ns_per_query,
                max_abs_error,
                certified_error,
            });
        }
        println!(
            "q={q}: {}",
            backends
                .iter()
                .map(|b| format!(
                    "{} {:.0} ns/q ({} rows, max err {:.2e})",
                    b.backend, b.ns_per_query, b.effective_rows, b.max_abs_error
                ))
                .collect::<Vec<_>>()
                .join(" | ")
        );
        budgets_out.push(BudgetPoint {
            q,
            model_rows,
            backends,
        });
    }

    let first = &budgets_out[0];
    let last = &budgets_out[budgets_out.len() - 1];
    let q_growth = last.q as f64 / first.q as f64;
    let growth: Vec<GrowthLine> = first
        .backends
        .iter()
        .zip(last.backends.iter())
        .map(|(a, b)| {
            let ns_growth = b.ns_per_query / a.ns_per_query;
            let rows_growth = b.effective_rows as f64 / a.effective_rows as f64;
            GrowthLine {
                backend: a.backend.clone(),
                q_growth,
                ns_growth,
                rows_growth,
                // Strictly below the budget growth = sublinear in q.
                sublinear: rows_growth < q_growth,
            }
        })
        .collect();

    let report = Report {
        quick_mode: quick(),
        dim: DIM,
        queries_per_backend: queries_per_backend(),
        budgets: budgets_out,
        growth,
        criteria_notes: vec![
            format!(
                "exact touches every pseudo-point (Θ(q) per query); coreset compresses \
                 to a certified-L∞ row subset at eps={CORESET_EPS}; hbe draws an \
                 importance sample whose size depends only on eps={HBE_EPS}, tau={HBE_TAU}."
            ),
            "acceptance: approximate backends' rows_growth stays below q_growth \
             (sublinear=true) while exact's tracks it exactly; coreset \
             max_abs_error stays within certified_error."
                .to_string(),
            "single-threaded, in-process timings; ns_growth is advisory on \
             shared hosts — rows_growth is the deterministic, portable number."
                .to_string(),
        ],
    };

    let json = serde_json::to_string(&report).expect("report serializes");
    let results = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let file = if results.is_dir() {
        results.join("BENCH_density_backends.json")
    } else {
        std::path::PathBuf::from("BENCH_density_backends.json")
    };
    std::fs::write(&file, &json).expect("write BENCH_density_backends.json");
    println!("wrote {}", file.display());
    for g in &report.growth {
        println!(
            "{}: rows/query grew {:.2}x, ns/query {:.2}x, across a {:.0}x budget \
             growth (sublinear: {})",
            g.backend, g.rows_growth, g.ns_growth, g.q_growth, g.sublinear
        );
    }
}
