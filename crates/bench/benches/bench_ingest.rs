//! Fault-tolerant ingest microbenchmarks: what the resilient path costs
//! over raw maintainer insertion, how that cost scales with the fault
//! rate, and the price of periodic checkpointing.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use udm_data::fault::{FaultPlan, FaultyStream, RawRecord};
use udm_data::{ErrorModel, UciDataset};
use udm_microcluster::{
    CheckpointDriver, IngestPolicy, MaintainerConfig, MicroClusterMaintainer, ResilientIngestor,
};

fn workload(rate: f64) -> Vec<RawRecord> {
    let clean = UciDataset::Adult.generate(2000, 7);
    let data = ErrorModel::paper(1.0).apply(&clean, 8).unwrap();
    let (records, _) = FaultyStream::new(&data, FaultPlan::uniform(rate), 11)
        .unwrap()
        .records();
    records
}

fn dim() -> usize {
    UciDataset::Adult.generate(1, 0).dim()
}

fn bench_resilient_vs_raw(c: &mut Criterion) {
    let records = workload(0.0);
    let d = dim();

    let mut group = c.benchmark_group("ingest_clean_stream");
    group.bench_function("raw_maintainer", |b| {
        b.iter(|| {
            let mut m = MicroClusterMaintainer::new(d, MaintainerConfig::new(80)).unwrap();
            for r in black_box(&records) {
                let p = r.clone().into_point().unwrap();
                m.insert(&p).unwrap();
            }
            m.points_seen()
        })
    });
    group.bench_function("resilient_ingestor", |b| {
        b.iter(|| {
            let mut ing =
                ResilientIngestor::new(d, MaintainerConfig::new(80), IngestPolicy::default())
                    .unwrap();
            for r in black_box(&records) {
                ing.observe(r).unwrap();
            }
            ing.counters().accepted
        })
    });
    group.finish();
}

fn bench_fault_rates(c: &mut Criterion) {
    let d = dim();
    let mut group = c.benchmark_group("ingest_fault_rate");
    for rate in [0.05_f64, 0.15, 0.30] {
        let records = workload(rate);
        group.bench_with_input(
            BenchmarkId::new("observe", format!("{rate:.2}")),
            &records,
            |b, records| {
                b.iter(|| {
                    let mut ing = ResilientIngestor::new(
                        d,
                        MaintainerConfig::new(80),
                        IngestPolicy::default(),
                    )
                    .unwrap();
                    for r in records {
                        ing.observe(r).unwrap();
                    }
                    ing.drain_quarantine().unwrap().len()
                })
            },
        );
    }
    group.finish();
}

fn bench_checkpoint_cadence(c: &mut Criterion) {
    let d = dim();
    let records = workload(0.10);
    let path = std::env::temp_dir().join("udm_bench_ingest_ckpt.json");

    let mut group = c.benchmark_group("ingest_checkpoint_cadence");
    for every in [100_u64, 500, 2500] {
        group.bench_with_input(BenchmarkId::new("every", every), &every, |b, &every| {
            b.iter(|| {
                let ing =
                    ResilientIngestor::new(d, MaintainerConfig::new(80), IngestPolicy::default())
                        .unwrap();
                let mut driver = CheckpointDriver::new(ing, path.clone(), every).unwrap();
                for r in black_box(&records) {
                    driver.observe(r).unwrap();
                }
                driver.finish().unwrap().1.counters().arrivals
            })
        });
    }
    group.finish();
    std::fs::remove_file(&path).ok();
}

criterion_group!(
    benches,
    bench_resilient_vs_raw,
    bench_fault_rates,
    bench_checkpoint_cadence
);
criterion_main!(benches);
