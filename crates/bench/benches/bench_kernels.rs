//! Microbenchmarks of the kernel primitives: the standard Gaussian kernel
//! (Eq. 2) and the error-based kernel (Eq. 3) in both normalization forms.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use udm_kde::{ErrorKernelForm, GaussianErrorKernel, GaussianKernel, Kernel};

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_eval");
    let diffs: Vec<f64> = (0..1000).map(|i| (i as f64 - 500.0) * 0.01).collect();

    group.bench_function("gaussian_standard", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &d in &diffs {
                acc += GaussianKernel.evaluate(black_box(d), black_box(0.7));
            }
            acc
        })
    });

    let normalized = GaussianErrorKernel::new(ErrorKernelForm::Normalized);
    group.bench_function("error_kernel_normalized", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &d in &diffs {
                acc += normalized.evaluate(black_box(d), black_box(0.7), black_box(0.4));
            }
            acc
        })
    });

    let faithful = GaussianErrorKernel::new(ErrorKernelForm::PaperFaithful);
    group.bench_function("error_kernel_paper_faithful", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &d in &diffs {
                acc += faithful.evaluate(black_box(d), black_box(0.7), black_box(0.4));
            }
            acc
        })
    });

    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
