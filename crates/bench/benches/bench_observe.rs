//! udm-observe overhead microbenchmark: the instrumented KDE hot loop
//! with telemetry recording versus runtime-disabled. The subsystem's
//! budget is <= 3% overhead while recording and ~0% when disabled; the
//! interleaved A/B pass prints an `OVERHEAD:` line with the measured
//! ratio so CI logs carry the number alongside the criterion output.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Instant;
use udm_data::{ErrorModel, UciDataset};
use udm_kde::{ErrorKde, KdeConfig};

fn fixture() -> (udm_core::UncertainDataset, Vec<Vec<f64>>) {
    let clean = UciDataset::Adult.generate(1500, 7);
    let data = ErrorModel::paper(1.0).apply(&clean, 8).unwrap();
    let queries: Vec<Vec<f64>> = (0..16).map(|i| data.point(i).values().to_vec()).collect();
    (data, queries)
}

fn density_sweep(kde: &ErrorKde, queries: &[Vec<f64>]) -> f64 {
    queries.iter().map(|q| kde.density(q).unwrap()).sum()
}

fn bench_instrumented_vs_disabled(c: &mut Criterion) {
    let (data, queries) = fixture();
    let kde = ErrorKde::fit(&data, KdeConfig::default()).unwrap();
    let mut group = c.benchmark_group("observe_kde_density");
    udm_observe::set_enabled(true);
    group.bench_function("telemetry_enabled", |b| {
        b.iter(|| density_sweep(black_box(&kde), black_box(&queries)))
    });
    udm_observe::set_enabled(false);
    group.bench_function("telemetry_disabled", |b| {
        b.iter(|| density_sweep(black_box(&kde), black_box(&queries)))
    });
    udm_observe::set_enabled(true);
    group.finish();
}

fn bench_overhead_report(_c: &mut Criterion) {
    let (data, queries) = fixture();
    let kde = ErrorKde::fit(&data, KdeConfig::default()).unwrap();
    // Interleave enabled/disabled rounds so thermal drift and cache
    // state hit both sides equally.
    let rounds = 20;
    let iters_per_round = 4;
    let mut on = 0.0_f64;
    let mut off = 0.0_f64;
    for _ in 0..rounds {
        udm_observe::set_enabled(true);
        let start = Instant::now();
        for _ in 0..iters_per_round {
            black_box(density_sweep(&kde, &queries));
        }
        on += start.elapsed().as_secs_f64();

        udm_observe::set_enabled(false);
        let start = Instant::now();
        for _ in 0..iters_per_round {
            black_box(density_sweep(&kde, &queries));
        }
        off += start.elapsed().as_secs_f64();
    }
    udm_observe::set_enabled(true);
    let overhead = (on - off) / off * 100.0;
    println!("OVERHEAD: instrumented KDE is {overhead:+.2}% vs telemetry-disabled (budget <= 3%)");
}

criterion_group!(
    benches,
    bench_instrumented_vs_disabled,
    bench_overhead_report
);
criterion_main!(benches);
