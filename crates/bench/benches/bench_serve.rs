//! Serving-daemon load generator: QPS and tail latency over real HTTP.
//!
//! Starts the in-process `udm-serve` daemon twice over the same fitted
//! model — once with the density batch queue enabled and once
//! evaluating inline — and drives both with concurrent keep-alive
//! clients hammering a small set of hot `/density` queries (the shape
//! batching exists for: concurrent duplicates whose `KernelColumns`
//! builds coalesce). Medians, p50/p95/p99 and the batched-over-unbatched
//! throughput ratio go to `results/BENCH_serve.json`.
//!
//! The report records `host_cores`: on a 1-core container the client
//! threads and the daemon interleave on one CPU, so absolute QPS is a
//! floor, not a capability claim — the batching ratio is the portable
//! number. `UDM_BENCH_QUICK=1` shrinks the request count for CI smoke.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use udm_data::fault::RawRecord;
use udm_data::{GaussianClassSpec, MixtureGenerator};
use udm_serve::{BatchConfig, ServeConfig, ServeSeed, Server};

const CLIENT_THREADS: usize = 4;
const DIM: usize = 16;
const MAX_CLUSTERS: usize = 400;

fn quick() -> bool {
    std::env::var_os("UDM_BENCH_QUICK").is_some()
}

fn requests_per_mode() -> usize {
    if quick() {
        200
    } else {
        2_000
    }
}

fn stream_len() -> usize {
    if quick() {
        800
    } else {
        2_000
    }
}

fn bench_dir(tag: &str) -> PathBuf {
    std::env::temp_dir()
        .join(format!("udm_bench_serve_{}", std::process::id()))
        .join(tag)
}

fn seed_records(n: usize) -> Vec<RawRecord> {
    let g = MixtureGenerator::new(
        DIM,
        vec![
            GaussianClassSpec::spherical(vec![0.0; DIM], 1.0, 1.0),
            GaussianClassSpec::spherical(vec![3.0; DIM], 1.0, 1.0),
        ],
    )
    .unwrap();
    g.generate(n, 11)
        .points()
        .iter()
        .enumerate()
        .map(|(i, p)| RawRecord::from_point(i as u64, &p.clone().with_timestamp(i as u64)))
        .collect()
}

fn start_server(tag: &str, batched: bool) -> Server {
    let n = stream_len();
    let mut config = ServeConfig::new(bench_dir(tag));
    config.max_clusters = MAX_CLUSTERS;
    config.refresh_every = 400;
    config.batch = if batched {
        Some(BatchConfig::default())
    } else {
        None
    };
    let server = Server::start(
        &config,
        ServeSeed {
            dim: DIM,
            records: seed_records(n),
            classifier: None,
        },
    )
    .unwrap();
    // Serve only the fully-ingested model, so both modes answer from
    // bit-identical snapshots.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if let Some(snap) = server.store().load() {
            if snap.model.total_points() == n as u64 && snap.kde.is_some() {
                break;
            }
        }
        assert!(Instant::now() < deadline, "ingest did not complete");
        std::thread::sleep(Duration::from_millis(10));
    }
    server
}

/// The hot query set every client cycles through: concurrent duplicates
/// are exactly what the batch queue dedups.
fn hot_queries() -> Vec<String> {
    [0.0_f64, 1.0, 2.0, 3.0]
        .iter()
        .map(|&base| {
            let values: Vec<String> = (0..DIM)
                .map(|j| format!("{}", base + j as f64 * 0.1))
                .collect();
            format!("{{\"values\": [{}]}}", values.join(", "))
        })
        .collect()
}

/// A keep-alive HTTP client on one raw TCP connection.
struct Client {
    stream: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client { stream }
    }

    fn density(&mut self, body: &str) {
        let request = format!(
            "POST /density HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.stream.write_all(request.as_bytes()).unwrap();
        let response = self.read_response();
        assert!(
            response.starts_with("HTTP/1.1 200"),
            "density request failed: {response}"
        );
    }

    /// Reads exactly one keep-alive response (headers + Content-Length
    /// body).
    fn read_response(&mut self) -> String {
        let mut buf = Vec::new();
        let mut byte = [0u8; 1];
        // Headers end at the first CRLFCRLF.
        while !buf.ends_with(b"\r\n\r\n") {
            let n = self.stream.read(&mut byte).unwrap();
            assert!(n > 0, "daemon closed mid-response");
            buf.push(byte[0]);
        }
        let head = String::from_utf8_lossy(&buf).into_owned();
        let content_length: usize = head
            .lines()
            .find_map(|l| {
                l.to_ascii_lowercase()
                    .strip_prefix("content-length:")
                    .map(str::trim)
                    .map(String::from)
            })
            .and_then(|v| v.parse().ok())
            .expect("content-length header");
        let mut body = vec![0u8; content_length];
        self.stream.read_exact(&mut body).unwrap();
        head + &String::from_utf8_lossy(&body)
    }
}

struct ModeResult {
    latencies: Vec<f64>,
    total_seconds: f64,
}

/// Drives `requests_per_mode()` POSTs split across `CLIENT_THREADS`
/// keep-alive connections, cycling the hot query set.
fn drive(server: &Server) -> ModeResult {
    let addr = server.addr();
    let queries = hot_queries();
    let per_thread = requests_per_mode() / CLIENT_THREADS;
    let started = Instant::now();
    let handles: Vec<_> = (0..CLIENT_THREADS)
        .map(|_| {
            let queries = queries.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                let mut latencies = Vec::with_capacity(per_thread);
                for i in 0..per_thread {
                    // Every thread walks the hot set in the same order, so
                    // concurrent in-flight requests are mostly duplicates —
                    // the shape the batch queue dedups.
                    let body = &queries[i % queries.len()];
                    let sent = Instant::now();
                    client.density(body);
                    latencies.push(sent.elapsed().as_secs_f64());
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<f64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    let total_seconds = started.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    ModeResult {
        latencies,
        total_seconds,
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = (p * (sorted.len() - 1) as f64).round();
    // The rank is bounded by the vector length by construction.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let idx = rank as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[derive(serde::Serialize)]
struct ModeReport {
    mode: String,
    requests: usize,
    qps: f64,
    p50_seconds: f64,
    p95_seconds: f64,
    p99_seconds: f64,
    total_seconds: f64,
}

#[derive(serde::Serialize)]
struct Report {
    host_cores: usize,
    quick_mode: bool,
    requests_per_mode: usize,
    client_threads: usize,
    unique_queries: usize,
    modes: Vec<ModeReport>,
    batched_over_unbatched_qps: f64,
    criteria_notes: Vec<String>,
}

fn mode_report(mode: &str, result: &ModeResult) -> ModeReport {
    let requests = result.latencies.len();
    ModeReport {
        mode: mode.to_string(),
        requests,
        qps: requests as f64 / result.total_seconds,
        p50_seconds: percentile(&result.latencies, 0.50),
        p95_seconds: percentile(&result.latencies, 0.95),
        p99_seconds: percentile(&result.latencies, 0.99),
        total_seconds: result.total_seconds,
    }
}

fn main() {
    let mut modes = Vec::new();

    // Unbatched first, batched second; fresh daemon (and state dir) per
    // mode so queue state never bleeds across measurements.
    for (mode, batched) in [("unbatched", false), ("batched", true)] {
        let server = start_server(mode, batched);
        // One warmup pass per connection shape.
        let mut warm = Client::connect(server.addr());
        for q in hot_queries() {
            warm.density(&q);
        }
        let result = drive(&server);
        modes.push(mode_report(mode, &result));
        server.shutdown_graceful().unwrap();
    }

    let qps_of = |name: &str| {
        modes
            .iter()
            .find(|m| m.mode == name)
            .map_or(f64::NAN, |m| m.qps)
    };
    let ratio = qps_of("batched") / qps_of("unbatched");

    let host_cores = std::thread::available_parallelism().map_or(1, usize::from);
    let report = Report {
        host_cores,
        quick_mode: quick(),
        requests_per_mode: requests_per_mode(),
        client_threads: CLIENT_THREADS,
        unique_queries: hot_queries().len(),
        modes,
        batched_over_unbatched_qps: ratio,
        criteria_notes: vec![
            format!(
                "{CLIENT_THREADS} keep-alive clients cycling {} hot /density queries \
                 against an in-process daemon; latency includes HTTP parse + JSON \
                 round-trip, not just kernel evaluation.",
                hot_queries().len()
            ),
            "batched_over_unbatched_qps >= 1.0 is the acceptance target: the batch \
             worker builds each unique KernelColumns once per drained batch, so \
             concurrent duplicate queries amortize the build."
                .to_string(),
            format!(
                "host has {host_cores} core(s); absolute QPS on a small container is a \
                 floor, the batching ratio is the portable number."
            ),
        ],
    };

    let json = serde_json::to_string(&report).expect("report serializes");
    let results = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let file = if results.is_dir() {
        results.join("BENCH_serve.json")
    } else {
        PathBuf::from("BENCH_serve.json")
    };
    std::fs::write(&file, &json).expect("write BENCH_serve.json");
    println!("wrote {}", file.display());
    for m in &report.modes {
        println!(
            "{}: {:.0} qps, p50 {:.2e}s, p95 {:.2e}s, p99 {:.2e}s over {} requests",
            m.mode, m.qps, m.p50_seconds, m.p95_seconds, m.p99_seconds, m.requests
        );
    }
    println!("batched/unbatched qps: {ratio:.2}x");

    std::fs::remove_dir_all(
        std::env::temp_dir().join(format!("udm_bench_serve_{}", std::process::id())),
    )
    .ok();
}
