//! Sharded fault-domain ingest, measured over the shard axis.
//!
//! Three questions about the `udm_microcluster::shard` subsystem, one
//! binary:
//!
//! * **Supervised ingest scaling** — a fixed faulty stream pushed
//!   through a [`ShardSupervisor`] at S ∈ {1, 2, 4, 8} fault domains
//!   (checkpointing included: this is the real serving path, not a
//!   stripped-down inner loop).
//! * **Partial-model merge latency** — merging S pre-built per-shard
//!   partials into one served model, the cost a degraded `serve()` call
//!   pays on top of the surviving workers.
//! * **Warm-restart recovery** — kill one shard mid-ingest and time the
//!   full drill including checkpoint recovery and partition-tail replay,
//!   against the no-fault run at the same S.
//!
//! Medians and derived ratios go to `results/BENCH_shard_ingest.json`.
//! The report records `host_cores`: shard workers are cooperatively
//! scheduled on one thread (the supervisor round-robins the partition),
//! so ingest time is expected to be roughly flat in S on any host — the
//! win measured here is isolation overhead staying near zero, not
//! parallel speedup. A threaded worker pool is the natural multi-core
//! extension; `criteria_notes` annotates that axis as deferred on a
//! 1-core container rather than papering over it.
//!
//! `UDM_BENCH_QUICK=1` shrinks the stream and sampling for CI smoke.

use criterion::{black_box, Criterion};
use std::path::PathBuf;
use std::time::Duration;
use udm_data::fault::{FaultPlan, FaultyStream, RawRecord};
use udm_data::{ErrorModel, GaussianClassSpec, MixtureGenerator};
use udm_microcluster::{
    IngestPolicy, KillPlan, MaintainerConfig, MicroClusterModel, ResilientIngestor, ShardPlan,
    ShardSupervisor,
};

const SHARD_AXIS: [usize; 4] = [1, 2, 4, 8];

fn quick() -> bool {
    std::env::var_os("UDM_BENCH_QUICK").is_some()
}

fn stream_len() -> usize {
    if quick() {
        400
    } else {
        4_000
    }
}

/// A corrupted two-class stream: the same shape the chaos drills use,
/// so shard workers exercise the full repair/quarantine policy path.
fn faulty_records(n: usize, seed: u64) -> Vec<RawRecord> {
    let d = 4;
    let g = MixtureGenerator::new(
        d,
        vec![
            GaussianClassSpec::spherical(vec![0.0; d], 1.0, 1.0),
            GaussianClassSpec::spherical(vec![3.0; d], 1.0, 1.0),
        ],
    )
    .unwrap();
    let data = ErrorModel::paper(1.0)
        .apply(&g.generate(n, seed), seed + 1)
        .unwrap();
    let (records, _) = FaultyStream::new(&data, FaultPlan::uniform(0.1), seed + 2)
        .unwrap()
        .records();
    records
}

fn bench_dir(tag: &str) -> PathBuf {
    std::env::temp_dir()
        .join(format!("udm_bench_shard_{}", std::process::id()))
        .join(tag)
}

fn supervisor(tag: &str, shards: usize) -> ShardSupervisor {
    let mut plan = ShardPlan::new(shards, bench_dir(tag));
    plan.checkpoint_every = 128;
    plan.backoff_base_ms = 0;
    ShardSupervisor::new(4, MaintainerConfig::new(40), IngestPolicy::default(), plan).unwrap()
}

/// Per-shard partials built outside the timed region, for the merge
/// latency benchmark.
fn partials(records: &[RawRecord], shards: usize) -> Vec<MicroClusterModel> {
    (0..shards)
        .map(|s| {
            let mut ing =
                ResilientIngestor::new(4, MaintainerConfig::new(40), IngestPolicy::default())
                    .unwrap();
            for r in records.iter().filter(|r| r.seq % shards as u64 == s as u64) {
                ing.observe(r).unwrap();
            }
            MicroClusterModel::from_maintainer(ing.maintainer())
        })
        .collect()
}

fn bench_shard(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard_ingest");
    if quick() {
        group.measurement_time(Duration::from_millis(80));
        group.sample_size(3);
    } else {
        group.measurement_time(Duration::from_millis(400));
        group.sample_size(5);
    }

    let records = faulty_records(stream_len(), 7);

    for &s in &SHARD_AXIS {
        // Full supervised run: partition, per-shard policy engines,
        // versioned checkpoints, canonical merge at the end.
        group.bench_function(format!("ingest_s{s}"), |b| {
            b.iter(|| {
                let mut sup = supervisor(&format!("ingest_s{s}"), s);
                sup.run(black_box(&records), &KillPlan::none()).unwrap();
                sup.finish().unwrap().0.total_points()
            })
        });

        // Merge-only latency over pre-built partials.
        let parts = partials(&records, s);
        group.bench_function(format!("merge_s{s}"), |b| {
            b.iter(|| {
                let mut merged = MicroClusterModel::empty(4);
                for p in black_box(&parts) {
                    merged.merge(p).unwrap();
                }
                merged.total_points()
            })
        });

        // Kill + warm-restart drill (needs a shard to kill and a live
        // majority, so only meaningful from S = 2 up).
        if s >= 2 {
            let offset = (records.len() / s / 2 + 3) as u64;
            group.bench_function(format!("ingest_killed_s{s}"), |b| {
                b.iter(|| {
                    let mut sup = supervisor(&format!("killed_s{s}"), s);
                    sup.run(black_box(&records), &KillPlan::none().kill_at(1, offset))
                        .unwrap();
                    sup.finish().unwrap().0.total_points()
                })
            });
        }
    }
    group.finish();
}

#[derive(serde::Serialize)]
struct BenchEntry {
    name: String,
    median_seconds: f64,
}

#[derive(serde::Serialize)]
struct ShardScaling {
    shards: usize,
    ingest_seconds: f64,
    merge_seconds: f64,
    /// `ingest_s1 / ingest_sS`: isolation overhead of S fault domains
    /// relative to the unsharded pipeline (~1.0 = free isolation; the
    /// workers are cooperatively scheduled, so > 1.0 speedups are not
    /// expected on any host — see `criteria_notes`).
    s1_over_ingest: f64,
    /// `ingest_killed_sS / ingest_sS`: the price of one mid-stream kill
    /// plus warm restart and tail replay (absent at S = 1).
    killed_over_clean: Option<f64>,
}

#[derive(serde::Serialize)]
struct Report {
    host_cores: usize,
    quick_mode: bool,
    stream_len: usize,
    shard_axis: Vec<usize>,
    entries: Vec<BenchEntry>,
    scaling: Vec<ShardScaling>,
    criteria_notes: Vec<String>,
}

fn dump_json(c: &Criterion) {
    let seconds = |name: &str| -> f64 {
        c.results
            .iter()
            .find(|(n, _)| n == &format!("shard_ingest/{name}"))
            .map(|(_, t)| t.as_secs_f64())
            .unwrap_or(f64::NAN)
    };
    let host_cores = std::thread::available_parallelism().map_or(1, usize::from);

    let s1 = seconds("ingest_s1");
    let scaling: Vec<ShardScaling> = SHARD_AXIS
        .iter()
        .map(|&s| {
            let ingest = seconds(&format!("ingest_s{s}"));
            ShardScaling {
                shards: s,
                ingest_seconds: ingest,
                merge_seconds: seconds(&format!("merge_s{s}")),
                s1_over_ingest: s1 / ingest,
                killed_over_clean: (s >= 2)
                    .then(|| seconds(&format!("ingest_killed_s{s}")) / ingest),
            }
        })
        .collect();

    let mut criteria_notes = vec![
        "shard workers are cooperatively scheduled on the supervisor thread: the \
         shard axis measures isolation overhead (s1_over_ingest ~= 1.0 is the \
         target), not parallel speedup."
            .to_string(),
        "ingest_sS includes per-shard checkpointing every 128 records; merge_sS \
         is the canonical-order partial merge a degraded serve() pays."
            .to_string(),
    ];
    if host_cores < 4 {
        criteria_notes.push(format!(
            "host has {host_cores} core(s): a threaded per-shard worker pool (the \
             multi-core extension of this axis) is deferred; rerun on a multi-core \
             host to populate a wall-clock speedup column."
        ));
    }

    let report = Report {
        host_cores,
        quick_mode: quick(),
        stream_len: stream_len(),
        shard_axis: SHARD_AXIS.to_vec(),
        entries: c
            .results
            .iter()
            .map(|(name, t)| BenchEntry {
                name: name.clone(),
                median_seconds: t.as_secs_f64(),
            })
            .collect(),
        scaling,
        criteria_notes,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    let results = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let file = if results.is_dir() {
        results.join("BENCH_shard_ingest.json")
    } else {
        std::path::PathBuf::from("BENCH_shard_ingest.json")
    };
    std::fs::write(&file, &json).expect("write BENCH_shard_ingest.json");
    println!("wrote {}", file.display());
    for s in &report.scaling {
        println!(
            "S={}: ingest {:.4}s, merge {:.2e}s, s1/ingest {:.2}x{}",
            s.shards,
            s.ingest_seconds,
            s.merge_seconds,
            s.s1_over_ingest,
            s.killed_over_clean
                .map(|r| format!(", killed/clean {r:.2}x"))
                .unwrap_or_default()
        );
    }
}

fn main() {
    let mut c = Criterion::default();
    bench_shard(&mut c);
    c.final_summary();
    dump_json(&c);
    std::fs::remove_dir_all(
        std::env::temp_dir().join(format!("udm_bench_shard_{}", std::process::id())),
    )
    .ok();
}
