//! Columnar kernel hot path + profitable rayon seams, measured.
//!
//! Extends the `bench_subspace_cache` matrix to `n = 100_000` and pins
//! down the three claims of the SIMD/parallelism work, all inside one
//! binary (the bounded-error `fast_exp` is always compiled; only the
//! hot-path routing is feature-gated):
//!
//! * **Columnar builds** — per-query kernel-column construction via the
//!   scalar reference builder vs the SoA columnar builder vs the
//!   columnar builder with `fast_exp`, plus a raw `exp` throughput
//!   microbench (`exp_std` vs `exp_fast`).
//! * **Profitable rayon seams, same workload both sides** — a batch of
//!   roll-up sweeps run sequentially vs through the crossover-guarded
//!   parallel map (`rollup_batch_seq` vs `rollup_batch_rayon`). Unlike
//!   the old `rollup_cached_rayon` bench, both sides process the *same*
//!   batch, so the ratio is a true parallelism measurement — and the
//!   guard means the rayon side degrades to the sequential loop rather
//!   than losing below the crossover or on a 1-core host.
//! * **Thread scaling** — `evaluate_par` over an explicit 1/2/4/8
//!   thread axis against `evaluate_seq` on the same subset.
//!
//! Medians and derived ratios go to `results/BENCH_simd_parallel.json`
//! (the old `BENCH_subspace_cache.json` baseline is left untouched).
//! The report records `host_cores` and `fast_math_enabled`: on a 1-core
//! container every parallel ratio is expected to sit at ≈ 1.0 (the
//! vendored rayon falls back to sequential execution), which the
//! `criteria_notes` call out rather than paper over.
//!
//! `UDM_BENCH_QUICK=1` shrinks the matrix and sampling for CI smoke.

use criterion::{black_box, Criterion};
use std::time::Duration;
use udm_classify::{
    evaluate, evaluate_parallel, guarded_par_map, ClassifierConfig, DensityClassifier,
};
use udm_core::{Subspace, UncertainDataset};
use udm_data::{ErrorModel, GaussianClassSpec, MixtureGenerator};
use udm_kde::{fast_exp, ErrorKde, KdeConfig};
use udm_microcluster::{MaintainerConfig, MicroClusterKde, MicroClusterMaintainer};

const THREAD_AXIS: [usize; 4] = [1, 2, 4, 8];

fn quick() -> bool {
    std::env::var_os("UDM_BENCH_QUICK").is_some()
}

fn matrix() -> Vec<(usize, usize)> {
    if quick() {
        vec![(1_000, 10)]
    } else {
        vec![(1_000, 10), (10_000, 10), (10_000, 20), (100_000, 10)]
    }
}

/// Two well-separated spherical classes in `d` dimensions with
/// paper-style multiplicative errors (same generator as the baseline
/// bench, so medians are comparable across the two JSON files).
fn synthetic(n: usize, d: usize, seed: u64) -> UncertainDataset {
    let g = MixtureGenerator::new(
        d,
        vec![
            GaussianClassSpec::spherical(vec![0.0; d], 1.0, 1.0),
            GaussianClassSpec::spherical(vec![3.0; d], 1.0, 1.0),
        ],
    )
    .unwrap();
    ErrorModel::paper(1.0)
        .apply(&g.generate(n, seed), seed + 1)
        .unwrap()
}

/// Contiguous windows of lengths 1–4 — the roll-up lattice slice.
fn rollup_subspaces(d: usize) -> Vec<Subspace> {
    let mut subs = Vec::new();
    for len in 1..=4usize {
        for start in 0..=(d - len) {
            let dims: Vec<usize> = (start..start + len).collect();
            subs.push(Subspace::from_dims(&dims).unwrap());
        }
    }
    subs
}

fn cached_sweep(kde: &MicroClusterKde, x: &[f64], subs: &[Subspace]) -> f64 {
    let cols = kde.kernel_columns(x, None).unwrap();
    let mut acc = 0.0;
    for &s in subs {
        acc += cols.density(s).unwrap();
    }
    acc
}

fn bench_simd_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("simd_parallel");
    if quick() {
        group.measurement_time(Duration::from_millis(80));
        group.sample_size(3);
    } else {
        group.measurement_time(Duration::from_millis(300));
        group.sample_size(5);
    }

    // Raw exponential throughput: the kernel builds are exp-bound, so
    // this is the upper bound of the fast-math build win. 4096 negative
    // arguments spanning the kernel's live range.
    let args: Vec<f64> = (0..4096).map(|i| -(i as f64) * 0.17 % 700.0).collect();
    group.bench_function("exp_std/x4096", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &x in black_box(&args) {
                acc += x.exp();
            }
            acc
        })
    });
    group.bench_function("exp_fast/x4096", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &x in black_box(&args) {
                acc += fast_exp(x);
            }
            acc
        })
    });

    for &(n, d) in &matrix() {
        let tag = format!("n{n}_d{d}");
        let data = synthetic(n, d, 7);
        let subs = rollup_subspaces(d);
        let probe = data.point(0).clone();
        let x: Vec<f64> = probe.values().to_vec();

        // --- Columnar vs scalar column builds -------------------------
        // Exact estimator: n rows per build — the kernel-eval hot loop
        // at full data scale.
        let kde = ErrorKde::fit(&data, KdeConfig::default()).unwrap();
        group.bench_function(format!("exact_build/{tag}"), |b| {
            b.iter(|| kde.kernel_columns(black_box(&x)).unwrap().rows())
        });

        // Micro-cluster estimator: q = 80 rows per build; scalar
        // reference vs columnar vs columnar+fast_exp A/B.
        let m = MicroClusterMaintainer::from_dataset(&data, MaintainerConfig::new(80)).unwrap();
        let mc = MicroClusterKde::fit(m.clusters(), KdeConfig::default()).unwrap();
        group.bench_function(format!("mc_build_scalar/{tag}"), |b| {
            b.iter(|| {
                mc.kernel_columns_scalar(black_box(&x), None)
                    .unwrap()
                    .rows()
            })
        });
        group.bench_function(format!("mc_build_columnar/{tag}"), |b| {
            b.iter(|| mc.kernel_columns(black_box(&x), None).unwrap().rows())
        });
        group.bench_function(format!("mc_build_fastexp/{tag}"), |b| {
            b.iter(|| mc.kernel_columns_fastexp(black_box(&x)).unwrap().rows())
        });

        // --- Same-workload rollup batch: sequential vs guarded rayon --
        let batch: Vec<Vec<f64>> = (0..64.min(data.len()))
            .map(|i| data.point(i).values().to_vec())
            .collect();
        group.bench_function(format!("rollup_batch_seq/{tag}"), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for q in black_box(&batch) {
                    acc += cached_sweep(&mc, q, &subs);
                }
                acc
            })
        });
        let threads = rayon::current_num_threads().max(1);
        group.bench_function(format!("rollup_batch_rayon/{tag}"), |b| {
            b.iter(|| {
                guarded_par_map(black_box(&batch), threads, |q| {
                    Ok(cached_sweep(&mc, q, &subs))
                })
                .unwrap()
                .iter()
                .sum::<f64>()
            })
        });

        // --- Thread-scaling axis for the evaluation harness -----------
        let model = DensityClassifier::fit(&data, ClassifierConfig::error_adjusted(80)).unwrap();
        let subset = UncertainDataset::from_points(
            (0..64.min(data.len()))
                .map(|i| data.point(i).clone())
                .collect(),
        )
        .unwrap();
        group.bench_function(format!("evaluate_seq/{tag}"), |b| {
            b.iter(|| evaluate(&model, black_box(&subset)).unwrap().correct)
        });
        for t in THREAD_AXIS {
            group.bench_function(format!("evaluate_par_t{t}/{tag}"), |b| {
                b.iter(|| {
                    evaluate_parallel(&model, black_box(&subset), t)
                        .unwrap()
                        .correct
                })
            });
        }
    }
    group.finish();
}

#[derive(serde::Serialize)]
struct BenchEntry {
    name: String,
    median_seconds: f64,
}

#[derive(serde::Serialize)]
struct ThreadScaling {
    threads: usize,
    seq_over_par: f64,
}

#[derive(serde::Serialize)]
struct Comparison {
    config: String,
    /// `rollup_batch_seq / rollup_batch_rayon`: ≥ 1.0 means the guarded
    /// rayon seam never loses to the sequential loop on this workload.
    rollup_seq_over_rayon: f64,
    /// `mc_build_scalar / mc_build_columnar`: the SoA layout win with
    /// the build's default exp.
    build_scalar_over_columnar: f64,
    /// `mc_build_columnar / mc_build_fastexp`: the bounded-error exp
    /// win on identical loop structure (single-threaded).
    build_columnar_over_fastexp: f64,
    evaluate_thread_scaling: Vec<ThreadScaling>,
}

#[derive(serde::Serialize)]
struct Report {
    host_cores: usize,
    fast_math_enabled: bool,
    quick_mode: bool,
    /// `exp_std / exp_fast` single-thread throughput ratio.
    exp_fast_speedup: f64,
    entries: Vec<BenchEntry>,
    comparisons: Vec<Comparison>,
    criteria_notes: Vec<String>,
}

fn dump_json(c: &Criterion) {
    let seconds = |name: &str| -> f64 {
        c.results
            .iter()
            .find(|(n, _)| n == &format!("simd_parallel/{name}"))
            .map(|(_, t)| t.as_secs_f64())
            .unwrap_or(f64::NAN)
    };
    let host_cores = std::thread::available_parallelism().map_or(1, usize::from);
    let exp_fast_speedup = seconds("exp_std/x4096") / seconds("exp_fast/x4096");

    let mut comparisons = Vec::new();
    for &(n, d) in &matrix() {
        let tag = format!("n{n}_d{d}");
        comparisons.push(Comparison {
            config: tag.clone(),
            rollup_seq_over_rayon: seconds(&format!("rollup_batch_seq/{tag}"))
                / seconds(&format!("rollup_batch_rayon/{tag}")),
            build_scalar_over_columnar: seconds(&format!("mc_build_scalar/{tag}"))
                / seconds(&format!("mc_build_columnar/{tag}")),
            build_columnar_over_fastexp: seconds(&format!("mc_build_columnar/{tag}"))
                / seconds(&format!("mc_build_fastexp/{tag}")),
            evaluate_thread_scaling: THREAD_AXIS
                .iter()
                .map(|&t| ThreadScaling {
                    threads: t,
                    seq_over_par: seconds(&format!("evaluate_seq/{tag}"))
                        / seconds(&format!("evaluate_par_t{t}/{tag}")),
                })
                .collect(),
        });
    }

    let mut criteria_notes = vec![
        "rollup_batch_seq and rollup_batch_rayon process the same 64-query batch; \
         the rayon side uses the crossover-guarded map (PAR_CROSSOVER_POINTS), so \
         seq_over_rayon >= ~1.0 is expected at every size."
            .to_string(),
        "exp_fast_speedup is the single-thread exp throughput ratio; the >=2x \
         fast-math kernel-eval criterion is read from it together with \
         build_columnar_over_fastexp."
            .to_string(),
    ];
    if host_cores < 4 {
        criteria_notes.push(format!(
            "host has {host_cores} core(s): the vendored rayon executes sequentially, \
             so evaluate_par thread-scaling ratios are expected to sit at ~1.0 and the \
             >=2x-at-4-cores criterion is not demonstrable in this container; the \
             thread axis is still recorded for multi-core reruns."
        ));
    }

    let report = Report {
        host_cores,
        fast_math_enabled: cfg!(feature = "fast-math"),
        quick_mode: quick(),
        exp_fast_speedup,
        entries: c
            .results
            .iter()
            .map(|(name, t)| BenchEntry {
                name: name.clone(),
                median_seconds: t.as_secs_f64(),
            })
            .collect(),
        comparisons,
        criteria_notes,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    let results = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let file = if results.is_dir() {
        results.join("BENCH_simd_parallel.json")
    } else {
        std::path::PathBuf::from("BENCH_simd_parallel.json")
    };
    std::fs::write(&file, &json).expect("write BENCH_simd_parallel.json");
    println!("wrote {}", file.display());
    println!("exp_std/exp_fast: {exp_fast_speedup:.2}x");
    for cmp in &report.comparisons {
        println!(
            "{}: rollup seq/rayon {:.2}x, build scalar/columnar {:.2}x, columnar/fastexp {:.2}x",
            cmp.config,
            cmp.rollup_seq_over_rayon,
            cmp.build_scalar_over_columnar,
            cmp.build_columnar_over_fastexp
        );
    }
}

fn main() {
    let mut c = Criterion::default();
    bench_simd_parallel(&mut c);
    c.final_summary();
    dump_json(&c);
}
