//! Naive per-subspace evaluation vs the factorized kernel-column cache
//! on the roll-up's access pattern (many subspace densities of one test
//! point), plus the rayon test-point parallelism on top.
//!
//! Three evaluation strategies over the same subspace workload:
//!
//! * `*_naive`  — one `density_subspace*` call per subspace: every call
//!   re-evaluates the per-dimension kernels (`O(rows·|S|)` `exp`s each);
//! * `*_cached` — one `kernel_columns` build per query (`O(rows·d)`
//!   `exp`s total), then pure multiply-adds per subspace;
//! * `rollup_cached_rayon` — the cached strategy fanned out over a batch
//!   of test points with rayon.
//!
//! The subspace workload is the Apriori lattice's levels 1–4 restricted
//! to contiguous windows (`4d − 6` subspaces, total cardinality
//! `≈ 10d`), which matches the shape of candidates the roll-up
//! classifier actually enumerates (Fig. 3).
//!
//! Run with `cargo bench --bench bench_subspace_cache`; medians and the
//! derived naive/cached speedups are written to
//! `results/BENCH_subspace_cache.json`.

use criterion::{black_box, Criterion};
use rayon::prelude::*;
use std::time::Duration;
use udm_classify::{evaluate, evaluate_parallel, ClassifierConfig, DensityClassifier};
use udm_core::{Subspace, UncertainDataset};
use udm_data::{ErrorModel, GaussianClassSpec, MixtureGenerator};
use udm_kde::{ErrorKde, KdeConfig};
use udm_microcluster::{MaintainerConfig, MicroClusterKde, MicroClusterMaintainer};

/// Two well-separated spherical classes in `d` dimensions with
/// paper-style multiplicative errors.
fn synthetic(n: usize, d: usize, seed: u64) -> UncertainDataset {
    let g = MixtureGenerator::new(
        d,
        vec![
            GaussianClassSpec::spherical(vec![0.0; d], 1.0, 1.0),
            GaussianClassSpec::spherical(vec![3.0; d], 1.0, 1.0),
        ],
    )
    .unwrap();
    ErrorModel::paper(1.0)
        .apply(&g.generate(n, seed), seed + 1)
        .unwrap()
}

/// Contiguous windows of lengths 1–4: the level-1..4 slice of the
/// roll-up's candidate lattice (`4d − 6` subspaces, ≥ 8 for any `d ≥ 4`).
fn rollup_subspaces(d: usize) -> Vec<Subspace> {
    let mut subs = Vec::new();
    for len in 1..=4usize {
        for start in 0..=(d - len) {
            let dims: Vec<usize> = (start..start + len).collect();
            subs.push(Subspace::from_dims(&dims).unwrap());
        }
    }
    subs
}

/// The workload the classifier's accuracy oracle runs per test point:
/// global + per-class densities for every candidate subspace.
fn naive_oracle_sweep(
    kdes: &[&MicroClusterKde],
    x: &[f64],
    qe: Option<&[f64]>,
    subs: &[Subspace],
) -> f64 {
    let mut acc = 0.0;
    for &s in subs {
        for kde in kdes {
            acc += kde.density_subspace_with_error(x, qe, s).unwrap();
        }
    }
    acc
}

fn cached_oracle_sweep(
    kdes: &[&MicroClusterKde],
    x: &[f64],
    qe: Option<&[f64]>,
    subs: &[Subspace],
) -> f64 {
    let mut acc = 0.0;
    for kde in kdes {
        let cols = kde.kernel_columns(x, qe).unwrap();
        for &s in subs {
            acc += cols.density(s).unwrap();
        }
    }
    acc
}

fn bench_subspace_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("subspace_cache");
    group.measurement_time(Duration::from_millis(250));
    group.sample_size(7);

    for &(n, d) in &[(1000usize, 10usize), (1000, 20), (10_000, 10), (10_000, 20)] {
        let tag = format!("n{n}_d{d}");
        let data = synthetic(n, d, 7);
        let subs = rollup_subspaces(d);

        // Exact point-based estimator: the cache amortizes O(n·d) kernel
        // evaluations over the whole subspace sweep.
        let kde = ErrorKde::fit(&data, KdeConfig::default()).unwrap();
        let probe = data.point(0).clone();
        let x: Vec<f64> = probe.values().to_vec();
        group.bench_function(format!("exact_naive/{tag}"), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for &s in &subs {
                    acc += kde.density_subspace(black_box(&x), s).unwrap();
                }
                acc
            })
        });
        group.bench_function(format!("exact_cached/{tag}"), |b| {
            b.iter(|| {
                kde.density_subspaces(black_box(&x), &subs)
                    .unwrap()
                    .iter()
                    .sum::<f64>()
            })
        });

        // Micro-cluster roll-up oracle: global + 2 class KDEs, query-error
        // convolution on (the classifier's configuration under
        // `error_adjusted`).
        let global =
            MicroClusterMaintainer::from_dataset(&data, MaintainerConfig::new(80)).unwrap();
        let global_kde = MicroClusterKde::fit(global.clusters(), KdeConfig::default()).unwrap();
        let partition = data.partition_by_class();
        let class_kdes: Vec<MicroClusterKde> = partition
            .labels()
            .iter()
            .map(|&l| {
                let part = partition.class(l).unwrap();
                let m =
                    MicroClusterMaintainer::from_dataset(part, MaintainerConfig::new(40)).unwrap();
                MicroClusterKde::fit(m.clusters(), KdeConfig::default()).unwrap()
            })
            .collect();
        let kdes: Vec<&MicroClusterKde> = std::iter::once(&global_kde)
            .chain(class_kdes.iter())
            .collect();
        let qe = Some(probe.errors());

        group.bench_function(format!("rollup_naive/{tag}"), |b| {
            b.iter(|| naive_oracle_sweep(&kdes, black_box(&x), qe, &subs))
        });
        group.bench_function(format!("rollup_cached/{tag}"), |b| {
            b.iter(|| cached_oracle_sweep(&kdes, black_box(&x), qe, &subs))
        });

        let batch: Vec<&[f64]> = (0..16.min(data.len()))
            .map(|i| data.point(i).values())
            .collect();
        group.bench_function(format!("rollup_cached_rayon/{tag}"), |b| {
            b.iter(|| {
                batch
                    .par_iter()
                    .map(|x| cached_oracle_sweep(&kdes, x, None, &subs))
                    .sum::<f64>()
            })
        });

        // End-to-end: the production classifier (cached oracle inside),
        // single-point latency and sequential vs rayon harness.
        let model = DensityClassifier::fit(&data, ClassifierConfig::error_adjusted(80)).unwrap();
        group.bench_function(format!("classify_detailed/{tag}"), |b| {
            b.iter(|| model.classify_detailed(black_box(&probe)).unwrap().label)
        });
        let subset = UncertainDataset::from_points(
            (0..64.min(data.len()))
                .map(|i| data.point(i).clone())
                .collect(),
        )
        .unwrap();
        group.bench_function(format!("evaluate_seq/{tag}"), |b| {
            b.iter(|| evaluate(&model, black_box(&subset)).unwrap().correct)
        });
        let threads = rayon::current_num_threads().max(2);
        group.bench_function(format!("evaluate_par/{tag}"), |b| {
            b.iter(|| {
                evaluate_parallel(&model, black_box(&subset), threads)
                    .unwrap()
                    .correct
            })
        });
    }
    group.finish();
}

#[derive(serde::Serialize)]
struct BenchEntry {
    name: String,
    median_seconds: f64,
}

#[derive(serde::Serialize)]
struct SpeedupEntry {
    config: String,
    exact_naive_over_cached: f64,
    rollup_naive_over_cached: f64,
    evaluate_seq_over_par: f64,
}

#[derive(serde::Serialize)]
struct Report {
    entries: Vec<BenchEntry>,
    speedups: Vec<SpeedupEntry>,
}

fn dump_json(c: &Criterion) {
    let seconds = |name: &str| -> f64 {
        c.results
            .iter()
            .find(|(n, _)| n == &format!("subspace_cache/{name}"))
            .map(|(_, t)| t.as_secs_f64())
            .unwrap_or(f64::NAN)
    };
    let mut speedups = Vec::new();
    for &(n, d) in &[(1000usize, 10usize), (1000, 20), (10_000, 10), (10_000, 20)] {
        let tag = format!("n{n}_d{d}");
        speedups.push(SpeedupEntry {
            config: tag.clone(),
            exact_naive_over_cached: seconds(&format!("exact_naive/{tag}"))
                / seconds(&format!("exact_cached/{tag}")),
            rollup_naive_over_cached: seconds(&format!("rollup_naive/{tag}"))
                / seconds(&format!("rollup_cached/{tag}")),
            evaluate_seq_over_par: seconds(&format!("evaluate_seq/{tag}"))
                / seconds(&format!("evaluate_par/{tag}")),
        });
    }
    let report = Report {
        entries: c
            .results
            .iter()
            .map(|(name, t)| BenchEntry {
                name: name.clone(),
                median_seconds: t.as_secs_f64(),
            })
            .collect(),
        speedups,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    // cargo runs benches with the package as cwd; the shared results
    // directory lives at the workspace root.
    let results = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let file = if results.is_dir() {
        results.join("BENCH_subspace_cache.json")
    } else {
        std::path::PathBuf::from("BENCH_subspace_cache.json")
    };
    std::fs::write(&file, &json).expect("write BENCH_subspace_cache.json");
    println!("wrote {}", file.display());
    for s in &report.speedups {
        println!(
            "{}: rollup naive/cached {:.2}x, exact naive/cached {:.2}x, eval seq/par {:.2}x",
            s.config,
            s.rollup_naive_over_cached,
            s.exact_naive_over_cached,
            s.evaluate_seq_over_par
        );
    }
}

fn main() {
    let mut c = Criterion::default();
    bench_subspace_cache(&mut c);
    c.final_summary();
    dump_json(&c);
}
