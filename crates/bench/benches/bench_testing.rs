//! Classification latency: full subspace roll-up per test point at
//! different `q` and dimensionalities — the criterion counterpart of
//! Figures 9 and 10.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use udm_classify::{ClassifierConfig, DensityClassifier};
use udm_core::Subspace;
use udm_data::{stratified_split, ErrorModel, UciDataset};

fn bench_testing(c: &mut Criterion) {
    let clean = UciDataset::Adult.generate(2000, 7);
    let noisy = ErrorModel::paper(1.2).apply(&clean, 8).unwrap();
    let split = stratified_split(&noisy, 0.3, 9).unwrap();

    let mut group = c.benchmark_group("classification_latency");
    for q in [20, 80, 140] {
        let model =
            DensityClassifier::fit(&split.train, ClassifierConfig::error_adjusted(q)).unwrap();
        let probe = split.test.point(0).clone();
        group.bench_with_input(BenchmarkId::new("adult_q", q), &q, |b, _| {
            b.iter(|| model.classify_detailed(black_box(&probe)).unwrap().label)
        });
    }

    // Dimensionality sweep on ionosphere projections (Figure 10's axis).
    let clean = UciDataset::Ionosphere.generate(351, 7);
    let noisy = ErrorModel::paper(1.2).apply(&clean, 8).unwrap();
    for dims in [10usize, 20, 34] {
        let s = Subspace::full(dims).unwrap();
        let projected = noisy.project(s).unwrap();
        let split = stratified_split(&projected, 0.3, 9).unwrap();
        let model =
            DensityClassifier::fit(&split.train, ClassifierConfig::error_adjusted(80)).unwrap();
        let probe = split.test.point(0).clone();
        group.bench_with_input(BenchmarkId::new("ionosphere_dims", dims), &dims, |b, _| {
            b.iter(|| model.classify_detailed(black_box(&probe)).unwrap().label)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_testing);
criterion_main!(benches);
