//! Training-phase throughput: single-pass micro-cluster maintenance per
//! point at different `q` — the criterion counterpart of Figure 8.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use udm_data::{ErrorModel, UciDataset};
use udm_microcluster::{MaintainerConfig, MicroClusterMaintainer};

fn bench_training(c: &mut Criterion) {
    let clean = UciDataset::Adult.generate(2000, 7);
    let data = ErrorModel::paper(1.2).apply(&clean, 8).unwrap();

    let mut group = c.benchmark_group("training_maintenance");
    group.throughput(Throughput::Elements(data.len() as u64));
    for q in [20, 80, 140] {
        group.bench_with_input(BenchmarkId::new("stream_dataset", q), &q, |b, &q| {
            b.iter(|| {
                MicroClusterMaintainer::from_dataset(black_box(&data), MaintainerConfig::new(q))
                    .unwrap()
                    .points_seen()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
