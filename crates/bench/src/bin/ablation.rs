//! Accuracy-side ablations of the design choices called out in
//! `DESIGN.md`, on the adult stand-in at f = 0.5 and f = 1.0 (the
//! transition region where configuration choices are not yet saturated
//! by the prior):
//!
//! * assignment distance: Eq. 5 vs Euclidean vs unclamped Eq. 5,
//! * query-error convolution on/off,
//! * error-kernel normalization: renormalized vs Eq. 3 as printed,
//! * bandwidth rule: Silverman vs Scott vs over/under-smoothed Silverman.
//!
//! Usage: `ablation [n] [seed]` (defaults: 2000, 7).

use udm_bench::{render_table, write_results_file, ExperimentConfig};
use udm_classify::{evaluate, ClassifierConfig, DensityClassifier};
use udm_data::{stratified_split, ErrorModel, UciDataset};
use udm_kde::{BandwidthRule, ErrorKernelForm};
use udm_microcluster::AssignmentDistance;

fn main() {
    let mut args = std::env::args().skip(1);
    let n = args.next().and_then(|a| a.parse().ok()).unwrap_or(2000);
    let seed = args.next().and_then(|a| a.parse().ok()).unwrap_or(7);
    let cfg = ExperimentConfig {
        n,
        seed,
        ..Default::default()
    };

    let clean = UciDataset::Adult.generate(cfg.n, cfg.seed);
    let splits: Vec<_> = [0.5, 1.0]
        .iter()
        .map(|&f| {
            let noisy = ErrorModel::paper(f)
                .apply(&clean, cfg.seed ^ 0x9E37_79B9)
                .expect("noise model applies");
            stratified_split(&noisy, cfg.test_fraction, cfg.seed ^ 0x5851_F42D)
                .expect("split succeeds")
        })
        .collect();

    let accuracy = |c: ClassifierConfig, i: usize| -> f64 {
        let m = DensityClassifier::fit(&splits[i].train, c).expect("training succeeds");
        evaluate(&m, &splits[i].test)
            .expect("evaluation succeeds")
            .accuracy()
    };

    let base = ClassifierConfig::error_adjusted(140);
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut add = |name: &str, c: ClassifierConfig| {
        rows.push(vec![
            name.to_string(),
            format!("{:.4}", accuracy(c, 0)),
            format!("{:.4}", accuracy(c, 1)),
        ]);
    };

    add("baseline (paper config)", base);
    add("distance: euclidean", {
        let mut c = base;
        c.distance = AssignmentDistance::Euclidean;
        c
    });
    add("distance: unclamped eq.5", {
        let mut c = base;
        c.distance = AssignmentDistance::ErrorAdjustedUnclamped;
        c
    });
    add("no query-error convolution", {
        let mut c = base;
        c.convolve_query_error = false;
        c
    });
    add("kernel form: paper-faithful", {
        let mut c = base;
        c.kernel_form = ErrorKernelForm::PaperFaithful;
        c
    });
    add("bandwidth: scott", {
        let mut c = base;
        c.bandwidth = BandwidthRule::Scott;
        c
    });
    add("bandwidth: 0.5x silverman", {
        let mut c = base;
        c.bandwidth = BandwidthRule::ScaledSilverman(0.5);
        c
    });
    add("bandwidth: 2x silverman", {
        let mut c = base;
        c.bandwidth = BandwidthRule::ScaledSilverman(2.0);
        c
    });
    add(
        "no error adjustment at all",
        ClassifierConfig::unadjusted(140),
    );

    let table = render_table(&["variant", "acc@f=0.5", "acc@f=1.0"], &rows);
    println!("Ablations — adult, q=140, n={n}, seed={seed}");
    println!("{table}");
    if let Ok(path) = write_results_file("ablation_adult", &table) {
        eprintln!("wrote {}", path.display());
    }
}
