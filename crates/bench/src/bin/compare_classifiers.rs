//! Extension experiment: the whole classifier family on one noisy
//! workload — the paper's three comparators plus naive density Bayes and
//! the threshold-tuned subspace classifier.
//!
//! Usage: `compare_classifiers [dataset] [n] [seed]`
//! (defaults: adult, 2000, 7).

use udm_bench::{render_table, write_results_file, ExperimentConfig};
use udm_classify::{
    evaluate, tune_threshold, ClassifierConfig, DensityClassifier, NaiveDensityBayes, NnClassifier,
    DEFAULT_THRESHOLD_GRID,
};
use udm_data::{stratified_split, ErrorModel, UciDataset};

fn main() {
    let mut args = std::env::args().skip(1);
    let ds = match args.next().as_deref() {
        Some("iono") | Some("ionosphere") => UciDataset::Ionosphere,
        Some("bc") | Some("breast_cancer") => UciDataset::BreastCancer,
        Some("cover") | Some("forest_cover") => UciDataset::ForestCover,
        _ => UciDataset::Adult,
    };
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2000);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(7);
    let cfg = ExperimentConfig {
        n,
        seed,
        ..Default::default()
    };

    let mut rows = Vec::new();
    for f in [0.0, 1.0, 2.0] {
        let clean = ds.generate(cfg.n, cfg.seed);
        let noisy = ErrorModel::paper(f)
            .apply(&clean, cfg.seed ^ 0x9E37_79B9)
            .expect("noise applies");
        let split = stratified_split(&noisy, cfg.test_fraction, cfg.seed ^ 0x5851_F42D)
            .expect("split succeeds");

        let q = 140;
        let adjusted =
            DensityClassifier::fit_parallel(&split.train, ClassifierConfig::error_adjusted(q))
                .expect("training succeeds");
        let unadjusted = DensityClassifier::fit(&split.train, ClassifierConfig::unadjusted(q))
            .expect("training succeeds");
        let naive = NaiveDensityBayes::fit(&split.train, ClassifierConfig::error_adjusted(q))
            .expect("training succeeds");
        let nn = NnClassifier::fit(&split.train).expect("training succeeds");
        let sweep = tune_threshold(
            &split.train,
            ClassifierConfig::error_adjusted(q),
            &DEFAULT_THRESHOLD_GRID,
            0.25,
            cfg.seed,
        )
        .expect("tuning succeeds");
        let mut tuned_cfg = ClassifierConfig::error_adjusted(q);
        tuned_cfg.accuracy_threshold = sweep.best_threshold;
        let tuned = DensityClassifier::fit(&split.train, tuned_cfg).expect("training succeeds");

        let acc = |r: udm_classify::EvalReport| format!("{:.4}", r.accuracy());
        rows.push(vec![
            format!("{f:.1}"),
            acc(evaluate(&adjusted, &split.test).expect("eval")),
            format!(
                "{} (a={:.2})",
                acc(evaluate(&tuned, &split.test).expect("eval")),
                sweep.best_threshold
            ),
            acc(evaluate(&naive, &split.test).expect("eval")),
            acc(evaluate(&unadjusted, &split.test).expect("eval")),
            acc(evaluate(&nn, &split.test).expect("eval")),
        ]);
    }
    let table = render_table(
        &[
            "f",
            "adjusted",
            "adjusted+tuned",
            "naive_bayes",
            "unadjusted",
            "nn",
        ],
        &rows,
    );
    println!(
        "Classifier family — {} stand-in, n={n}, q=140, seed={seed}",
        ds.name()
    );
    println!("{table}");
    if let Ok(path) = write_results_file(&format!("compare_classifiers_{}", ds.name()), &table) {
        eprintln!("wrote {}", path.display());
    }
}
