//! Extension experiment (beyond the paper's figures): clustering quality
//! of error-adjusted vs Euclidean k-means under sparse heteroscedastic
//! noise, plus the macro-clustering (CluStream offline) pathway.
//!
//! Columns are adjusted-vs-euclidean ARI at each noise level, averaged
//! over seeds, and the ARI of macro-clustering the same stream through a
//! 60-cluster summary — showing the compressed path costs little quality.
//!
//! Usage: `ext_clustering [n] [seeds]` (defaults: 900, 5).

use udm_bench::{render_table, write_results_file};
use udm_cluster::{adjusted_rand_index, macro_cluster, KMeans, KMeansConfig, MacroClusterConfig};
use udm_core::ClassLabel;
use udm_data::{ErrorModel, GaussianClassSpec, MixtureGenerator};
use udm_microcluster::{AssignmentDistance, MaintainerConfig, MicroClusterMaintainer};

fn blobs() -> MixtureGenerator {
    MixtureGenerator::new(
        2,
        vec![
            GaussianClassSpec {
                mean: vec![0.0, 0.0],
                std: vec![0.7, 0.25],
                weight: 1.0,
            },
            GaussianClassSpec {
                mean: vec![7.0, 2.0],
                std: vec![0.7, 0.25],
                weight: 1.0,
            },
            GaussianClassSpec {
                mean: vec![14.0, 4.0],
                std: vec![0.7, 0.25],
                weight: 1.0,
            },
        ],
    )
    .expect("spec is valid")
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(900);
    let seeds: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(5);

    let mut rows = Vec::new();
    for f in [0.0, 0.5, 1.0, 1.5, 2.0] {
        let mut ari_adj = 0.0;
        let mut ari_euc = 0.0;
        let mut ari_macro = 0.0;
        for seed in 0..seeds {
            let clean = blobs().generate(n, seed);
            let noisy = ErrorModel::SparseUniform { f, p: 0.25 }
                .apply(&clean, seed + 100)
                .expect("noise model applies");
            let truth: Vec<ClassLabel> =
                noisy.iter().map(|p| p.label().expect("labelled")).collect();

            for (dist, acc) in [
                (AssignmentDistance::ErrorAdjusted, &mut ari_adj),
                (AssignmentDistance::Euclidean, &mut ari_euc),
            ] {
                let mut cfg = KMeansConfig::new(3);
                cfg.distance = dist;
                cfg.seed = seed;
                let r = KMeans::new(cfg)
                    .expect("config is valid")
                    .run(&noisy)
                    .expect("kmeans runs");
                let a: Vec<Option<usize>> = r.assignments.iter().map(|&x| Some(x)).collect();
                *acc += adjusted_rand_index(&a, &truth);
            }

            // Compressed path: summarize then macro-cluster, then route
            // each raw point through the macro assignment.
            let m = MicroClusterMaintainer::from_dataset(&noisy, MaintainerConfig::new(60))
                .expect("maintainer runs");
            let mut mc_cfg = MacroClusterConfig::new(3);
            mc_cfg.seed = seed;
            let macro_c = macro_cluster(m.clusters(), mc_cfg).expect("macro-clustering runs");
            let assignments: Vec<Option<usize>> = noisy.iter().map(|p| macro_c.assign(p)).collect();
            ari_macro += adjusted_rand_index(&assignments, &truth);
        }
        let k = seeds as f64;
        rows.push(vec![
            format!("{f:.1}"),
            format!("{:.4}", ari_adj / k),
            format!("{:.4}", ari_euc / k),
            format!("{:.4}", ari_macro / k),
        ]);
    }
    let table = render_table(
        &["f", "kmeans_adjusted", "kmeans_euclidean", "macro_60c"],
        &rows,
    );
    println!("Extension — clustering ARI under sparse noise (n={n}, {seeds} seeds)");
    println!("{table}");
    if let Ok(path) = write_results_file("ext_clustering", &table) {
        eprintln!("wrote {}", path.display());
    }
}
