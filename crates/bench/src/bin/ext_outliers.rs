//! Extension experiment: density-based anomaly detection under the
//! paper's noise model.
//!
//! Inliers come from the breast-cancer stand-in; anomalies are uniform
//! points scattered over an inflated bounding box. Both are perturbed at
//! error level `f`. Reported per `f`: detection precision/recall for the
//! error-adjusted detector with and without query-error convolution.
//!
//! Usage: `ext_outliers [n] [seed]` (defaults: 1200, 7).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use udm_bench::{render_table, write_results_file};
use udm_cluster::{OutlierConfig, OutlierDetector};
use udm_core::{UncertainDataset, UncertainPoint};
use udm_data::{ErrorModel, UciDataset};

fn with_anomalies(n: usize, seed: u64) -> (UncertainDataset, Vec<bool>) {
    let inliers = UciDataset::BreastCancer.generate(n, seed);
    let summaries = inliers.summaries();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
    let n_anom = n / 20; // 5% anomalies
    let mut points = inliers.into_points();
    let mut truth = vec![false; points.len()];
    for _ in 0..n_anom {
        let values: Vec<f64> = summaries
            .iter()
            .map(|s| {
                let span = (s.max - s.min).max(1.0);
                s.min - span + rng.gen::<f64>() * 3.0 * span
            })
            .collect();
        points.push(UncertainPoint::exact(values).expect("finite"));
        truth.push(true);
    }
    (
        UncertainDataset::from_points(points).expect("uniform dims"),
        truth,
    )
}

fn precision_recall(mask: &[bool], truth: &[bool]) -> (f64, f64) {
    let tp = mask.iter().zip(truth).filter(|&(&m, &t)| m && t).count() as f64;
    let fp = mask.iter().zip(truth).filter(|&(&m, &t)| m && !t).count() as f64;
    let fne = mask.iter().zip(truth).filter(|&(&m, &t)| !m && t).count() as f64;
    let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
    let recall = if tp + fne > 0.0 { tp / (tp + fne) } else { 0.0 };
    (precision, recall)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1200);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(7);

    let mut rows = Vec::new();
    for f in [0.0, 0.5, 1.0, 1.5] {
        let (clean, truth) = with_anomalies(n, seed);
        let data = if f > 0.0 {
            ErrorModel::paper(f)
                .apply(&clean, seed ^ 0x9E37)
                .expect("noise applies")
        } else {
            clean
        };
        let mut row = vec![format!("{f:.1}")];
        for use_query_error in [true, false] {
            let mut config = OutlierConfig::new(60);
            config.contamination = 0.05;
            config.use_query_error = use_query_error;
            let det = OutlierDetector::fit(&data, config).expect("fits");
            let mask = det.detect(&data).expect("detects");
            let (p, r) = precision_recall(&mask, &truth);
            row.push(format!("{p:.3}/{r:.3}"));
        }
        rows.push(row);
    }
    let table = render_table(&["f", "with_query_err (P/R)", "without (P/R)"], &rows);
    println!("Extension — outlier detection under noise (n={n}, 5% anomalies, seed={seed})");
    println!("{table}");
    if let Ok(path) = write_results_file("ext_outliers", &table) {
        eprintln!("wrote {}", path.display());
    }
}
