//! Figure 4: classification accuracy vs error level `f` on the adult
//! dataset (stand-in), 140 micro-clusters.
//!
//! Usage: `fig04_adult_error [n] [seed]` (defaults: 4000, 7).

use udm_bench::{accuracy_sweep_error, render_table, write_results_file, ExperimentConfig};
use udm_data::UciDataset;

fn main() {
    let mut args = std::env::args().skip(1);
    let n = args.next().and_then(|a| a.parse().ok()).unwrap_or(4000);
    let seed = args.next().and_then(|a| a.parse().ok()).unwrap_or(7);
    let cfg = ExperimentConfig {
        n,
        seed,
        ..Default::default()
    };
    let fs = [0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0];
    let rows =
        accuracy_sweep_error(UciDataset::Adult, &fs, 140, &cfg).expect("experiment should run");
    let table = render_table(
        &["f", "adjusted", "unadjusted", "nn"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    format!("{:.1}", r.x),
                    format!("{:.4}", r.adjusted),
                    format!("{:.4}", r.unadjusted),
                    format!("{:.4}", r.nn),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("Figure 4 — adult, q=140, n={n}, seed={seed}");
    println!("{table}");
    if let Ok(path) = write_results_file("fig04_adult_error", &table) {
        eprintln!("wrote {}", path.display());
    }
}
