//! Figure 5: classification accuracy vs number of micro-clusters on the
//! adult dataset (stand-in), error level f = 1.2.
//!
//! Usage: `fig05_adult_clusters [n] [seed]` (defaults: 4000, 7).

use udm_bench::{accuracy_sweep_clusters, render_table, write_results_file, ExperimentConfig};
use udm_data::UciDataset;

fn main() {
    let mut args = std::env::args().skip(1);
    let n = args.next().and_then(|a| a.parse().ok()).unwrap_or(4000);
    let seed = args.next().and_then(|a| a.parse().ok()).unwrap_or(7);
    let cfg = ExperimentConfig {
        n,
        seed,
        ..Default::default()
    };
    let qs = [20, 40, 60, 80, 100, 120, 140];
    let rows =
        accuracy_sweep_clusters(UciDataset::Adult, &qs, 1.2, &cfg).expect("experiment should run");
    let table = render_table(
        &["q", "adjusted", "unadjusted", "nn"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    format!("{}", r.x as usize),
                    format!("{:.4}", r.adjusted),
                    format!("{:.4}", r.unadjusted),
                    format!("{:.4}", r.nn),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("Figure 5 — adult, f=1.2, n={n}, seed={seed}");
    println!("{table}");
    if let Ok(path) = write_results_file("fig05_adult_clusters", &table) {
        eprintln!("wrote {}", path.display());
    }
}
