//! Figure 8: training time (seconds per data point) with increasing
//! number of micro-clusters, all four datasets, f = 1.2.
//!
//! Usage: `fig08_training_time [n] [seed]` (defaults: 4000, 7). The small
//! datasets (ionosphere, breast cancer) use their real sizes regardless.

use udm_bench::{render_table, training_time, write_results_file, ExperimentConfig};
use udm_data::UciDataset;

fn main() {
    let mut args = std::env::args().skip(1);
    let n = args.next().and_then(|a| a.parse().ok()).unwrap_or(4000);
    let seed = args.next().and_then(|a| a.parse().ok()).unwrap_or(7);
    let qs = [20, 40, 60, 80, 100, 120, 140];
    let datasets = [
        UciDataset::ForestCover,
        UciDataset::BreastCancer,
        UciDataset::Adult,
        UciDataset::Ionosphere,
    ];
    let mut rows = Vec::new();
    for &q in &qs {
        let mut row = vec![format!("{q}")];
        for ds in datasets {
            let cfg = ExperimentConfig {
                n: n.min(ds.real_size()),
                seed,
                ..Default::default()
            };
            let t = training_time(ds, q, 1.2, &cfg).expect("experiment should run");
            row.push(format!("{:.3e}", t.seconds_per_example));
        }
        rows.push(row);
    }
    let table = render_table(
        &["q", "forest_cover", "breast_cancer", "adult", "ionosphere"],
        &rows,
    );
    println!("Figure 8 — training seconds/point vs q, f=1.2, n≤{n}, seed={seed}");
    println!("{table}");
    if let Ok(path) = write_results_file("fig08_training_time", &table) {
        eprintln!("wrote {}", path.display());
    }
}
