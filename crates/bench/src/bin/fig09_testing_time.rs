//! Figure 9: testing time (seconds per example) with increasing number of
//! micro-clusters, all four datasets, f = 1.2.
//!
//! Usage: `fig09_testing_time [n] [test_points] [seed]`
//! (defaults: 3000, 60, 7).

use udm_bench::{render_table, testing_time, write_results_file, ExperimentConfig};
use udm_data::UciDataset;

fn main() {
    let mut args = std::env::args().skip(1);
    let n = args.next().and_then(|a| a.parse().ok()).unwrap_or(3000);
    let test_points = args.next().and_then(|a| a.parse().ok()).unwrap_or(60);
    let seed = args.next().and_then(|a| a.parse().ok()).unwrap_or(7);
    let qs = [20, 40, 60, 80, 100, 120, 140];
    let datasets = [
        UciDataset::ForestCover,
        UciDataset::BreastCancer,
        UciDataset::Adult,
        UciDataset::Ionosphere,
    ];
    let mut rows = Vec::new();
    for &q in &qs {
        let mut row = vec![format!("{q}")];
        for ds in datasets {
            let cfg = ExperimentConfig {
                n: n.min(ds.real_size()),
                seed,
                ..Default::default()
            };
            let t =
                testing_time(ds, q, 1.2, test_points, None, &cfg).expect("experiment should run");
            row.push(format!("{:.3e}", t.seconds_per_example));
        }
        rows.push(row);
    }
    let table = render_table(
        &["q", "forest_cover", "breast_cancer", "adult", "ionosphere"],
        &rows,
    );
    println!(
        "Figure 9 — testing seconds/example vs q, f=1.2, n≤{n}, {test_points} test points, seed={seed}"
    );
    println!("{table}");
    if let Ok(path) = write_results_file("fig09_testing_time", &table) {
        eprintln!("wrote {}", path.display());
    }
}
