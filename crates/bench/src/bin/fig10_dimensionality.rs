//! Figure 10: testing time (seconds per example) with increasing data
//! dimensionality — projections of the ionosphere dataset (stand-in) at
//! 80 and 140 micro-clusters, f = 1.2.
//!
//! Usage: `fig10_dimensionality [test_points] [seed]` (defaults: 40, 7).

use udm_bench::{render_table, testing_time, write_results_file, ExperimentConfig};
use udm_data::UciDataset;

fn main() {
    let mut args = std::env::args().skip(1);
    let test_points = args.next().and_then(|a| a.parse().ok()).unwrap_or(40);
    let seed = args.next().and_then(|a| a.parse().ok()).unwrap_or(7);
    let dims = [5, 10, 15, 20, 25, 30, 34];
    let cfg = ExperimentConfig {
        n: UciDataset::Ionosphere.real_size(),
        seed,
        ..Default::default()
    };
    let mut rows = Vec::new();
    for &d in &dims {
        let t80 = testing_time(UciDataset::Ionosphere, 80, 1.2, test_points, Some(d), &cfg)
            .expect("experiment should run");
        let t140 = testing_time(UciDataset::Ionosphere, 140, 1.2, test_points, Some(d), &cfg)
            .expect("experiment should run");
        rows.push(vec![
            format!("{d}"),
            format!("{:.3e}", t80.seconds_per_example),
            format!("{:.3e}", t140.seconds_per_example),
        ]);
    }
    let table = render_table(&["dims", "q=80", "q=140"], &rows);
    println!(
        "Figure 10 — testing seconds/example vs dimensionality (ionosphere projections), f=1.2, {test_points} test points, seed={seed}"
    );
    println!("{table}");
    if let Ok(path) = write_results_file("fig10_dimensionality", &table) {
        eprintln!("wrote {}", path.display());
    }
}
