//! Figure 11: training time (seconds per example) with increasing number
//! of data points — forest cover (stand-in), 140 micro-clusters, f = 1.2.
//!
//! Reproduces the warm-up effect the paper describes: with few points the
//! maintainer has created fewer than `q` clusters, so early insertions do
//! fewer distance computations and the *average* per-example cost is
//! lower, stabilizing as the sample grows.
//!
//! Usage: `fig11_scalability [seed]` (default 7).

use udm_bench::{render_table, training_time, write_results_file, ExperimentConfig};
use udm_data::UciDataset;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(7);
    let sizes = [200, 400, 600, 800, 1000, 1200, 1400, 1600, 1800, 2000];
    let mut rows = Vec::new();
    for &n in &sizes {
        let cfg = ExperimentConfig {
            n,
            seed,
            ..Default::default()
        };
        // Average over repeats: sub-millisecond totals are noisy.
        let reps = 5;
        let mut total = 0.0;
        for r in 0..reps {
            let cfg_r = ExperimentConfig {
                seed: seed + r,
                ..cfg
            };
            total += training_time(UciDataset::ForestCover, 140, 1.2, &cfg_r)
                .expect("experiment should run")
                .seconds_per_example;
        }
        rows.push(vec![format!("{n}"), format!("{:.3e}", total / reps as f64)]);
    }
    let table = render_table(&["points", "train_s_per_example"], &rows);
    println!("Figure 11 — training seconds/example vs data size, forest cover, q=140, seed={seed}");
    println!("{table}");
    if let Ok(path) = write_results_file("fig11_scalability", &table) {
        eprintln!("wrote {}", path.display());
    }
}
