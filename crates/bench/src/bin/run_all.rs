//! Runs the complete evaluation suite (Figures 4–11) with one command and
//! writes every table under `results/`.
//!
//! Usage: `run_all [--quick]` — `--quick` shrinks dataset sizes so the
//! whole suite finishes in about a minute; the default sizes match the
//! figure binaries' defaults.

use udm_bench::{
    accuracy_sweep_clusters, accuracy_sweep_error, render_table, testing_time, training_time,
    write_results_file, ExperimentConfig,
};
use udm_data::UciDataset;

struct Sizes {
    adult_n: usize,
    cover_n: usize,
    timing_n: usize,
    test_points: usize,
}

fn accuracy_table(rows: &[udm_bench::AccuracyRow], x_name: &str, as_int: bool) -> String {
    render_table(
        &[x_name, "adjusted", "unadjusted", "nn"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    if as_int {
                        format!("{}", r.x as usize)
                    } else {
                        format!("{:.1}", r.x)
                    },
                    format!("{:.4}", r.adjusted),
                    format!("{:.4}", r.unadjusted),
                    format!("{:.4}", r.nn),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes = if quick {
        Sizes {
            adult_n: 1200,
            cover_n: 1500,
            timing_n: 1000,
            test_points: 20,
        }
    } else {
        Sizes {
            adult_n: 4000,
            cover_n: 6000,
            timing_n: 3000,
            test_points: 60,
        }
    };
    let seed = 7;
    let fs = [0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0];
    let qs = [20, 40, 60, 80, 100, 120, 140];
    let datasets = [
        UciDataset::ForestCover,
        UciDataset::BreastCancer,
        UciDataset::Adult,
        UciDataset::Ionosphere,
    ];

    // Figures 4 & 5: adult.
    let cfg = ExperimentConfig {
        n: sizes.adult_n,
        seed,
        ..Default::default()
    };
    let rows = accuracy_sweep_error(UciDataset::Adult, &fs, 140, &cfg).expect("fig04");
    let t = accuracy_table(&rows, "f", false);
    println!("== Figure 4 (adult, accuracy vs f) ==\n{t}");
    write_results_file("fig04_adult_error", &t).ok();

    let rows = accuracy_sweep_clusters(UciDataset::Adult, &qs, 1.2, &cfg).expect("fig05");
    let t = accuracy_table(&rows, "q", true);
    println!("== Figure 5 (adult, accuracy vs q) ==\n{t}");
    write_results_file("fig05_adult_clusters", &t).ok();

    // Figures 6 & 7: forest cover.
    let cfg = ExperimentConfig {
        n: sizes.cover_n,
        seed,
        ..Default::default()
    };
    let rows = accuracy_sweep_error(UciDataset::ForestCover, &fs, 140, &cfg).expect("fig06");
    let t = accuracy_table(&rows, "f", false);
    println!("== Figure 6 (forest cover, accuracy vs f) ==\n{t}");
    write_results_file("fig06_cover_error", &t).ok();

    let rows = accuracy_sweep_clusters(UciDataset::ForestCover, &qs, 1.2, &cfg).expect("fig07");
    let t = accuracy_table(&rows, "q", true);
    println!("== Figure 7 (forest cover, accuracy vs q) ==\n{t}");
    write_results_file("fig07_cover_clusters", &t).ok();

    // Figure 8: training time vs q.
    let mut rows8 = Vec::new();
    for &q in &qs {
        let mut row = vec![format!("{q}")];
        for ds in datasets {
            let cfg = ExperimentConfig {
                n: sizes.timing_n.min(ds.real_size()),
                seed,
                ..Default::default()
            };
            let t = training_time(ds, q, 1.2, &cfg).expect("fig08");
            row.push(format!("{:.3e}", t.seconds_per_example));
        }
        rows8.push(row);
    }
    let t = render_table(
        &["q", "forest_cover", "breast_cancer", "adult", "ionosphere"],
        &rows8,
    );
    println!("== Figure 8 (training s/point vs q) ==\n{t}");
    write_results_file("fig08_training_time", &t).ok();

    // Figure 9: testing time vs q.
    let mut rows9 = Vec::new();
    for &q in &qs {
        let mut row = vec![format!("{q}")];
        for ds in datasets {
            let cfg = ExperimentConfig {
                n: sizes.timing_n.min(ds.real_size()),
                seed,
                ..Default::default()
            };
            let t = testing_time(ds, q, 1.2, sizes.test_points, None, &cfg).expect("fig09");
            row.push(format!("{:.3e}", t.seconds_per_example));
        }
        rows9.push(row);
    }
    let t = render_table(
        &["q", "forest_cover", "breast_cancer", "adult", "ionosphere"],
        &rows9,
    );
    println!("== Figure 9 (testing s/example vs q) ==\n{t}");
    write_results_file("fig09_testing_time", &t).ok();

    // Figure 10: testing time vs dimensionality.
    let cfg = ExperimentConfig {
        n: UciDataset::Ionosphere.real_size(),
        seed,
        ..Default::default()
    };
    let mut rows10 = Vec::new();
    for &d in &[5usize, 10, 15, 20, 25, 30, 34] {
        let t80 = testing_time(
            UciDataset::Ionosphere,
            80,
            1.2,
            sizes.test_points,
            Some(d),
            &cfg,
        )
        .expect("fig10");
        let t140 = testing_time(
            UciDataset::Ionosphere,
            140,
            1.2,
            sizes.test_points,
            Some(d),
            &cfg,
        )
        .expect("fig10");
        rows10.push(vec![
            format!("{d}"),
            format!("{:.3e}", t80.seconds_per_example),
            format!("{:.3e}", t140.seconds_per_example),
        ]);
    }
    let t = render_table(&["dims", "q=80", "q=140"], &rows10);
    println!("== Figure 10 (testing s/example vs dimensionality) ==\n{t}");
    write_results_file("fig10_dimensionality", &t).ok();

    // Figure 11: training time vs data size.
    let mut rows11 = Vec::new();
    for &n in &[200usize, 400, 600, 800, 1000, 1200, 1400, 1600, 1800, 2000] {
        let reps = 5;
        let mut total = 0.0;
        for r in 0..reps {
            let cfg = ExperimentConfig {
                n,
                seed: seed + r,
                ..Default::default()
            };
            total += training_time(UciDataset::ForestCover, 140, 1.2, &cfg)
                .expect("fig11")
                .seconds_per_example;
        }
        rows11.push(vec![format!("{n}"), format!("{:.3e}", total / reps as f64)]);
    }
    let t = render_table(&["points", "train_s_per_example"], &rows11);
    println!("== Figure 11 (training s/example vs data size) ==\n{t}");
    write_results_file("fig11_scalability", &t).ok();

    println!("all figures written under results/");
}
