//! Scratch tuning harness (not part of the figure suite): compares
//! classifier-config variants across error levels on one dataset.
//!
//! Usage: `tune_scratch <dataset> [n] [seed]`

use udm_bench::ExperimentConfig;
use udm_classify::{evaluate, ClassifierConfig, DensityClassifier, NnClassifier};
use udm_data::{stratified_split, ErrorModel, UciDataset};

fn main() {
    let mut args = std::env::args().skip(1);
    let ds = match args.next().as_deref() {
        Some("adult") => UciDataset::Adult,
        Some("iono") => UciDataset::Ionosphere,
        Some("bc") => UciDataset::BreastCancer,
        _ => UciDataset::ForestCover,
    };
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2000);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(7);
    let cfg = ExperimentConfig {
        n,
        seed,
        ..Default::default()
    };

    let clean_test = std::env::var("CLEAN_TEST").is_ok();
    println!(
        "dataset={} n={n} seed={seed} clean_test={clean_test}",
        ds.name()
    );
    println!("f     adj+conv  adj-conv  unadj    nn");
    for f in [0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0] {
        let clean = ds.generate(cfg.n, cfg.seed);
        let clean_split =
            stratified_split(&clean, cfg.test_fraction, cfg.seed ^ 0x5851_F42D).unwrap();
        let mut split = clean_split.clone();
        split.train = ErrorModel::paper(f)
            .apply(&clean_split.train, cfg.seed ^ 0x9E37_79B9)
            .unwrap();
        if !clean_test {
            split.test = ErrorModel::paper(f)
                .apply(&clean_split.test, cfg.seed ^ 0x1234_5678)
                .unwrap();
        }

        let thr: f64 = std::env::var("THR")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.55);
        let mut c1 = ClassifierConfig::error_adjusted(140);
        c1.convolve_query_error = true;
        c1.accuracy_threshold = thr;
        let mut c2 = ClassifierConfig::error_adjusted(140);
        c2.convolve_query_error = false;
        c2.accuracy_threshold = thr;
        let mut c3 = ClassifierConfig::unadjusted(140);
        c3.accuracy_threshold = thr;

        let acc = |c: ClassifierConfig| {
            let m = DensityClassifier::fit(&split.train, c).unwrap();
            evaluate(&m, &split.test).unwrap().accuracy()
        };
        let nn = NnClassifier::fit(&split.train).unwrap();
        let nn_acc = evaluate(&nn, &split.test).unwrap().accuracy();
        println!(
            "{f:<5} {:<9.4} {:<9.4} {:<8.4} {:.4}",
            acc(c1),
            acc(c2),
            acc(c3),
            nn_acc
        );
    }
}
