//! Shared experiment runners behind the figure binaries.
//!
//! Protocol (matching §4 as closely as it is specified):
//!
//! 1. materialize the dataset (UCI stand-in, exact values);
//! 2. inject errors with the paper's model at level `f` (every cell's ψ ~
//!    `U[0, 2f]·σ_j`, value displaced by `N(0, ψ²)`);
//! 3. stratified 70/30 train/test split;
//! 4. train the three classifiers on the *perturbed* training data and
//!    evaluate on the *perturbed* test data (the paper distorts the data
//!    set, so both sides are uncertain);
//! 5. report accuracy, or seconds-per-example for the timing figures.

use std::time::Instant;
use udm_classify::{evaluate, Classifier, ClassifierConfig, DensityClassifier, NnClassifier};
use udm_core::{Result, Subspace, UncertainDataset};
use udm_data::{stratified_split, ErrorModel, UciDataset};
use udm_microcluster::{MaintainerConfig, MicroClusterMaintainer};

/// Parameters shared by the experiment runners.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Number of points to materialize from the dataset profile.
    pub n: usize,
    /// Base RNG seed; sub-steps derive their own seeds from it.
    pub seed: u64,
    /// Held-out fraction for accuracy experiments.
    pub test_fraction: f64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            n: 4000,
            seed: 7,
            test_fraction: 0.3,
        }
    }
}

/// One row of an accuracy figure: the three classifiers at one x-value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyRow {
    /// The x-coordinate (error level `f` for Figs. 4/6, cluster count `q`
    /// for Figs. 5/7).
    pub x: f64,
    /// Density-based method *with* error adjustment (the paper's method).
    pub adjusted: f64,
    /// Density-based method with no error adjustment.
    pub unadjusted: f64,
    /// Nearest-neighbor classifier.
    pub nn: f64,
}

/// One row of a timing figure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingRow {
    /// The x-coordinate (cluster count, dimensionality, or data size).
    pub x: f64,
    /// Seconds per example.
    pub seconds_per_example: f64,
}

fn prepare(
    dataset: UciDataset,
    f: f64,
    cfg: &ExperimentConfig,
) -> Result<(UncertainDataset, UncertainDataset)> {
    let clean = dataset.generate(cfg.n, cfg.seed);
    let noisy = ErrorModel::paper(f).apply(&clean, cfg.seed ^ 0x9E37_79B9)?;
    let split = stratified_split(&noisy, cfg.test_fraction, cfg.seed ^ 0x5851_F42D)?;
    Ok((split.train, split.test))
}

fn accuracy_of<C: Classifier>(model: &C, test: &UncertainDataset) -> Result<f64> {
    Ok(evaluate(model, test)?.accuracy())
}

/// Runs one cell of an accuracy figure: all three classifiers on `dataset`
/// at error level `f` with `q` micro-clusters.
pub fn accuracy_cell(
    dataset: UciDataset,
    f: f64,
    q: usize,
    cfg: &ExperimentConfig,
) -> Result<AccuracyRow> {
    let (train, test) = prepare(dataset, f, cfg)?;

    let adjusted = DensityClassifier::fit(&train, ClassifierConfig::error_adjusted(q))?;
    let unadjusted = DensityClassifier::fit(&train, ClassifierConfig::unadjusted(q))?;
    let nn = NnClassifier::fit(&train)?;

    Ok(AccuracyRow {
        x: f,
        adjusted: accuracy_of(&adjusted, &test)?,
        unadjusted: accuracy_of(&unadjusted, &test)?,
        nn: accuracy_of(&nn, &test)?,
    })
}

/// Figure 4/6 series: accuracy vs error level `f` at fixed `q`.
pub fn accuracy_sweep_error(
    dataset: UciDataset,
    fs: &[f64],
    q: usize,
    cfg: &ExperimentConfig,
) -> Result<Vec<AccuracyRow>> {
    fs.iter()
        .map(|&f| accuracy_cell(dataset, f, q, cfg))
        .collect()
}

/// Figure 5/7 series: accuracy vs micro-cluster count `q` at fixed `f`.
/// The x field of each row carries `q`.
pub fn accuracy_sweep_clusters(
    dataset: UciDataset,
    qs: &[usize],
    f: f64,
    cfg: &ExperimentConfig,
) -> Result<Vec<AccuracyRow>> {
    qs.iter()
        .map(|&q| {
            let mut row = accuracy_cell(dataset, f, q, cfg)?;
            row.x = q as f64;
            Ok(row)
        })
        .collect()
}

/// Figure 8 cell: training time per point — the single-pass micro-cluster
/// maintenance cost at `q` clusters (the paper's training phase).
pub fn training_time(
    dataset: UciDataset,
    q: usize,
    f: f64,
    cfg: &ExperimentConfig,
) -> Result<TimingRow> {
    let clean = dataset.generate(cfg.n, cfg.seed);
    let noisy = ErrorModel::paper(f).apply(&clean, cfg.seed ^ 0x9E37_79B9)?;
    let start = Instant::now();
    let maintainer = MicroClusterMaintainer::from_dataset(&noisy, MaintainerConfig::new(q))?;
    let elapsed = start.elapsed().as_secs_f64();
    // Point counts are far below u32::MAX in every benchmark config.
    #[allow(clippy::cast_possible_truncation)]
    {
        debug_assert_eq!(maintainer.points_seen() as usize, noisy.len());
    }
    Ok(TimingRow {
        x: q as f64,
        seconds_per_example: elapsed / noisy.len() as f64,
    })
}

/// Figure 9/10 cell: testing time per example for the full density-based
/// classification process (roll-up over subspaces) at `q` clusters, over
/// the first `test_points` held-out points.
pub fn testing_time(
    dataset: UciDataset,
    q: usize,
    f: f64,
    test_points: usize,
    dims: Option<usize>,
    cfg: &ExperimentConfig,
) -> Result<TimingRow> {
    let (mut train, mut test) = prepare(dataset, f, cfg)?;
    if let Some(d) = dims {
        let s = Subspace::full(d.min(train.dim()))?;
        train = train.project(s)?;
        test = test.project(s)?;
    }
    let model = DensityClassifier::fit(&train, ClassifierConfig::error_adjusted(q))?;
    let m = test.len().min(test_points.max(1));
    let start = Instant::now();
    for p in test.points().iter().take(m) {
        let _ = model.classify(p)?;
    }
    let elapsed = start.elapsed().as_secs_f64();
    Ok(TimingRow {
        x: q as f64,
        seconds_per_example: elapsed / m as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ExperimentConfig {
        ExperimentConfig {
            n: 400,
            seed: 3,
            test_fraction: 0.3,
        }
    }

    #[test]
    fn accuracy_cell_produces_sane_numbers() {
        let row = accuracy_cell(UciDataset::BreastCancer, 0.5, 30, &small()).unwrap();
        for v in [row.adjusted, row.unadjusted, row.nn] {
            assert!((0.0..=1.0).contains(&v), "{row:?}");
        }
        assert!(row.adjusted > 0.5, "{row:?}");
    }

    #[test]
    fn zero_error_adjusted_equals_unadjusted() {
        let row = accuracy_cell(UciDataset::BreastCancer, 0.0, 30, &small()).unwrap();
        assert!(
            (row.adjusted - row.unadjusted).abs() < 1e-12,
            "at f=0 both density classifiers must coincide: {row:?}"
        );
    }

    #[test]
    fn sweep_error_carries_f_in_x() {
        let rows =
            accuracy_sweep_error(UciDataset::BreastCancer, &[0.0, 1.0], 20, &small()).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].x, 0.0);
        assert_eq!(rows[1].x, 1.0);
    }

    #[test]
    fn sweep_clusters_carries_q_in_x() {
        let rows =
            accuracy_sweep_clusters(UciDataset::BreastCancer, &[10, 20], 0.5, &small()).unwrap();
        assert_eq!(rows[0].x, 10.0);
        assert_eq!(rows[1].x, 20.0);
    }

    #[test]
    fn training_time_positive_and_scales() {
        let cfg = small();
        let t20 = training_time(UciDataset::BreastCancer, 20, 1.0, &cfg).unwrap();
        assert!(t20.seconds_per_example > 0.0);
        assert_eq!(t20.x, 20.0);
    }

    #[test]
    fn testing_time_positive_with_dim_projection() {
        let cfg = small();
        let t = testing_time(UciDataset::BreastCancer, 15, 1.0, 20, Some(4), &cfg).unwrap();
        assert!(t.seconds_per_example > 0.0);
    }
}
