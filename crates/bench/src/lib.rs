//! # udm-bench
//!
//! Benchmark harness regenerating every figure of the paper's evaluation
//! section (§4). Each `fig*` binary prints the same series the paper
//! plots; `run_all` executes the full suite and writes the results under
//! `results/`.
//!
//! | Binary | Paper figure | Series |
//! |---|---|---|
//! | `fig04_adult_error` | Fig. 4 | accuracy vs error level `f`, adult, q=140 |
//! | `fig05_adult_clusters` | Fig. 5 | accuracy vs `q`, adult, f=1.2 |
//! | `fig06_cover_error` | Fig. 6 | accuracy vs `f`, forest cover, q=140 |
//! | `fig07_cover_clusters` | Fig. 7 | accuracy vs `q`, forest cover, f=1.2 |
//! | `fig08_training_time` | Fig. 8 | training s/point vs `q`, all datasets |
//! | `fig09_testing_time` | Fig. 9 | testing s/point vs `q`, all datasets |
//! | `fig10_dimensionality` | Fig. 10 | testing s/point vs dims, ionosphere |
//! | `fig11_scalability` | Fig. 11 | training s/point vs data size, cover |
//!
//! Criterion micro-benchmarks live under `benches/`: kernel and density
//! evaluation, maintainer throughput, classification latency, and the
//! ablations called out in `DESIGN.md`.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod experiment;
pub mod table;

pub use experiment::{
    accuracy_sweep_clusters, accuracy_sweep_error, testing_time, training_time, AccuracyRow,
    ExperimentConfig, TimingRow,
};
pub use table::{render_table, write_results_file};
