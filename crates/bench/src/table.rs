//! Minimal fixed-width table rendering and results persistence.

use std::io::Write;
use std::path::Path;
use udm_core::Result;

/// Renders a fixed-width text table: one header row plus data rows.
///
/// Column widths adapt to the widest cell; numeric alignment is left to
/// the caller's formatting.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate().take(cols) {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{:<width$}", cell, width = widths[i]));
        }
        out.push('\n');
    };
    line(
        &mut out,
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    );
    let rule: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
    line(&mut out, &rule);
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Writes rendered results under `results/<name>.txt`, creating the
/// directory if needed, and echoes the path written.
pub fn write_results_file(name: &str, content: &str) -> Result<std::path::PathBuf> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.txt"));
    let mut f = std::fs::File::create(&path)?;
    f.write_all(content.as_bytes())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let t = render_table(
            &["x", "value"],
            &[
                vec!["1".into(), "0.5".into()],
                vec!["10".into(), "0.25".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("x "));
        assert!(lines[1].starts_with("--"));
        // all lines equal width
        let w = lines[0].len();
        for l in &lines[1..] {
            assert_eq!(l.len(), w, "{t}");
        }
    }

    #[test]
    fn wide_cells_stretch_columns() {
        let t = render_table(&["a"], &[vec!["longcell".into()]]);
        assert!(t.lines().next().unwrap().len() >= "longcell".len());
    }

    #[test]
    fn writes_results_file() {
        let cwd = std::env::current_dir().unwrap();
        let tmp = std::env::temp_dir().join("udm_table_test");
        std::fs::create_dir_all(&tmp).unwrap();
        std::env::set_current_dir(&tmp).unwrap();
        let path = write_results_file("unit_test", "hello\n").unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "hello\n");
        std::env::set_current_dir(cwd).unwrap();
        std::fs::remove_dir_all(&tmp).ok();
    }
}
