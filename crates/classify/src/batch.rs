//! Parallelism seams with a sequential-fallback crossover.
//!
//! Forking work onto the rayon pool has a fixed cost: closure setup,
//! chunk bookkeeping, cross-thread cache traffic, and the join. For the
//! per-point work in this crate (one column build plus a handful of
//! subspace products) that overhead is only amortized once a batch
//! carries enough points; below the crossover a parallel map *loses* to
//! the plain sequential loop. Every rayon seam in the crate therefore
//! routes through [`guarded_par_map`], which runs small batches
//! sequentially and only pays for the pool above
//! [`PAR_CROSSOVER_POINTS`] — so the parallel entry points can never be
//! slower than their sequential counterparts on small inputs (the
//! `BENCH_simd_parallel.json` invariant).

use rayon::prelude::*;
use udm_core::{ClassLabel, Result, UncertainDataset, UncertainPoint};

use crate::eval::Classifier;

/// Minimum number of work items before a parallel map is profitable.
///
/// Chosen from the bench matrix in `udm-bench` (`rollup_batch_seq` vs
/// `rollup_batch_rayon`): per-item work in this crate is tens of
/// microseconds (column build + subspace roll-up), and rayon's
/// fork/join overhead is low single-digit microseconds per chunk, so
/// profitability arrives at a few dozen items. 32 is conservative: at
/// the crossover the two schedules are within noise of each other, and
/// well below it the sequential loop wins outright.
pub const PAR_CROSSOVER_POINTS: usize = 32;

/// Maps `f` over `items`, in parallel only when the batch is large
/// enough to amortize the fork/join overhead.
///
/// `threads <= 1` or `items.len() < PAR_CROSSOVER_POINTS` runs the
/// plain sequential loop. Results are in input order in both schedules,
/// and `f` must be deterministic for the two schedules to be
/// indistinguishable (every classifier in this crate is).
///
/// # Errors
///
/// The first `Err` from `f` (in input order) is returned.
pub fn guarded_par_map<T, U, F>(items: &[T], threads: usize, f: F) -> Result<Vec<U>>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> Result<U> + Sync,
{
    if threads <= 1 || items.len() < PAR_CROSSOVER_POINTS {
        return items.iter().map(&f).collect();
    }
    let chunk = items.len().div_ceil(threads).max(1);
    let partials: Vec<Result<Vec<U>>> = items
        .par_chunks(chunk)
        .map(|slice| slice.iter().map(&f).collect())
        .collect();
    let mut out = Vec::with_capacity(items.len());
    for partial in partials {
        out.extend(partial?);
    }
    Ok(out)
}

/// Classifies every point of `test` with the crossover-guarded parallel
/// map, returning predictions in dataset order (`None` for points the
/// classifier is not asked about — none here, the whole set is
/// classified).
///
/// # Errors
///
/// Propagates the first classification error.
pub fn classify_batch<C: Classifier>(
    model: &C,
    test: &UncertainDataset,
    threads: usize,
) -> Result<Vec<ClassLabel>> {
    guarded_par_map(test.points(), threads, |p: &UncertainPoint| {
        model.classify(p)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use udm_core::UdmError;

    struct SignClassifier;

    impl Classifier for SignClassifier {
        fn classify(&self, x: &UncertainPoint) -> Result<ClassLabel> {
            Ok(ClassLabel(u32::from(x.value(0) >= 0.0)))
        }
    }

    fn set(n: usize) -> UncertainDataset {
        UncertainDataset::from_points(
            (0..n)
                .map(|i| UncertainPoint::exact(vec![i as f64 - n as f64 / 2.0]).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn small_batches_run_sequentially_and_match() {
        // Below the crossover: must behave exactly like the plain loop.
        let d = set(PAR_CROSSOVER_POINTS - 1);
        let seq: Vec<ClassLabel> = d
            .points()
            .iter()
            .map(|p| SignClassifier.classify(p).unwrap())
            .collect();
        let got = classify_batch(&SignClassifier, &d, 8).unwrap();
        assert_eq!(got, seq);
    }

    #[test]
    fn large_batches_match_in_input_order() {
        let d = set(10 * PAR_CROSSOVER_POINTS);
        let seq: Vec<ClassLabel> = d
            .points()
            .iter()
            .map(|p| SignClassifier.classify(p).unwrap())
            .collect();
        for threads in [1, 2, 4, 8, 200] {
            let got = classify_batch(&SignClassifier, &d, threads).unwrap();
            assert_eq!(got, seq, "threads={threads}");
        }
    }

    #[test]
    fn first_error_in_input_order_propagates() {
        struct FailAt(f64);
        impl Classifier for FailAt {
            fn classify(&self, x: &UncertainPoint) -> Result<ClassLabel> {
                if (x.value(0) - self.0).abs() < 0.5 {
                    Err(UdmError::EmptyDataset)
                } else {
                    Ok(ClassLabel(0))
                }
            }
        }
        let d = set(100);
        assert!(classify_batch(&FailAt(7.0), &d, 4).is_err());
        assert!(classify_batch(&FailAt(7.0), &d, 1).is_err());
    }

    #[test]
    fn guarded_map_plain_values() {
        let items: Vec<u64> = (0..100).collect();
        let got = guarded_par_map(&items, 4, |&x| Ok(x * 2)).unwrap();
        let want: Vec<u64> = items.iter().map(|&x| x * 2).collect();
        assert_eq!(got, want);
    }
}
