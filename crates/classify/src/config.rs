//! Configuration of the density-based classifier.

use serde::{Deserialize, Serialize};
use udm_core::{Result, UdmError};
use udm_kde::{BandwidthRule, ErrorKernelForm};
use udm_microcluster::AssignmentDistance;

/// What to predict when no subspace clears the accuracy threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Fallback {
    /// Use the class whose local accuracy is highest among all evaluated
    /// singleton subspaces (even though below threshold). Keeps the
    /// decision instance-specific; the default.
    #[default]
    BestSingleton,
    /// Predict the majority class of the training data.
    MajorityClass,
}

/// Full configuration of [`crate::DensityClassifier`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassifierConfig {
    /// Accuracy threshold `a` of Fig. 3: a subspace is retained when some
    /// class has `A(x, S, l) > a`. `A` behaves like a posterior estimate,
    /// so sensible values lie in `(0, 1)`.
    pub accuracy_threshold: f64,
    /// Number of micro-clusters `q` for the global summary of `D`; each
    /// class summary `D_i` gets `max(1, round(q·|D_i|/|D|))` clusters so
    /// total memory stays ≈ `2q`. The paper's experiments sweep 20–140.
    pub micro_clusters: usize,
    /// Error adjustment on (the paper's method) or off (its "no error
    /// adjustment" baseline — same algorithm, ψ treated as 0 in both the
    /// assignment distance and the kernels).
    pub error_adjusted: bool,
    /// Bandwidth selection rule shared by all density estimates.
    pub bandwidth: BandwidthRule,
    /// Error-kernel normalization form.
    pub kernel_form: ErrorKernelForm,
    /// Assignment distance for micro-cluster maintenance.
    pub distance: AssignmentDistance,
    /// Convolve every density with the *test point's own* per-dimension
    /// error ψ(x) during classification (the Figure 1 effect: a test
    /// example is classified by what it could coincide with inside its
    /// error boundary). Only applies when `error_adjusted` is on.
    /// Off by default: the ablation suite shows it trades accuracy in the
    /// moderate-error regime for no gain at high error (the training-side
    /// adjustment already absorbs the displacement).
    pub convolve_query_error: bool,
    /// Upper bound on explored subspace dimensionality. The paper iterates
    /// until `C_{i+1}` is empty; this guard bounds worst-case roll-up cost
    /// on wide data (it is rarely reached with sensible thresholds).
    pub max_subspace_dim: Option<usize>,
    /// Upper bound on candidates evaluated per roll-up level (guard
    /// against adversarial candidate blow-up; `None` = unlimited).
    pub max_candidates_per_level: Option<usize>,
    /// Optional cap `p` on the number of non-overlapping subspaces used in
    /// the final vote (§3: "it is possible to terminate the process after
    /// finding at most p non-overlapping subsets").
    pub max_selected_subspaces: Option<usize>,
    /// Behaviour when no subspace clears the threshold.
    pub fallback: Fallback,
}

impl Default for ClassifierConfig {
    fn default() -> Self {
        ClassifierConfig {
            accuracy_threshold: 0.55,
            micro_clusters: 140,
            error_adjusted: true,
            bandwidth: BandwidthRule::Silverman,
            kernel_form: ErrorKernelForm::Normalized,
            distance: AssignmentDistance::ErrorAdjusted,
            convolve_query_error: false,
            max_subspace_dim: Some(5),
            max_candidates_per_level: Some(4096),
            max_selected_subspaces: None,
            fallback: Fallback::BestSingleton,
        }
    }
}

impl ClassifierConfig {
    /// The paper's error-adjusted configuration with `q` micro-clusters.
    pub fn error_adjusted(q: usize) -> Self {
        ClassifierConfig {
            micro_clusters: q,
            ..Self::default()
        }
    }

    /// The paper's unadjusted baseline: identical except every error is
    /// treated as zero (and assignment falls back to plain Euclidean,
    /// which Eq. 5 reduces to at ψ = 0).
    pub fn unadjusted(q: usize) -> Self {
        ClassifierConfig {
            micro_clusters: q,
            error_adjusted: false,
            distance: AssignmentDistance::Euclidean,
            ..Self::default()
        }
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<()> {
        if !(self.accuracy_threshold.is_finite() && self.accuracy_threshold > 0.0) {
            return Err(UdmError::InvalidValue {
                what: "accuracy threshold",
                value: self.accuracy_threshold,
            });
        }
        if self.micro_clusters == 0 {
            return Err(UdmError::InvalidConfig(
                "micro_clusters must be at least 1".into(),
            ));
        }
        if self.max_subspace_dim == Some(0) {
            return Err(UdmError::InvalidConfig(
                "max_subspace_dim must be at least 1 when set".into(),
            ));
        }
        if self.max_candidates_per_level == Some(0) {
            return Err(UdmError::InvalidConfig(
                "max_candidates_per_level must be at least 1 when set".into(),
            ));
        }
        if self.max_selected_subspaces == Some(0) {
            return Err(UdmError::InvalidConfig(
                "max_selected_subspaces must be at least 1 when set".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(ClassifierConfig::default().validate().is_ok());
    }

    #[test]
    fn presets() {
        let adj = ClassifierConfig::error_adjusted(80);
        assert!(adj.error_adjusted);
        assert_eq!(adj.micro_clusters, 80);
        let un = ClassifierConfig::unadjusted(80);
        assert!(!un.error_adjusted);
        assert_eq!(un.distance, AssignmentDistance::Euclidean);
    }

    #[test]
    fn validation_catches_bad_values() {
        let bad = [
            ClassifierConfig {
                accuracy_threshold: 0.0,
                ..Default::default()
            },
            ClassifierConfig {
                accuracy_threshold: f64::NAN,
                ..Default::default()
            },
            ClassifierConfig {
                micro_clusters: 0,
                ..Default::default()
            },
            ClassifierConfig {
                max_subspace_dim: Some(0),
                ..Default::default()
            },
            ClassifierConfig {
                max_candidates_per_level: Some(0),
                ..Default::default()
            },
            ClassifierConfig {
                max_selected_subspaces: Some(0),
                ..Default::default()
            },
        ];
        for c in bad {
            assert!(c.validate().is_err());
        }
    }
}
