//! Degraded-mode evaluation: how much classification accuracy survives a
//! faulty training stream?
//!
//! The chaos harness's measurement core. A clean baseline classifier is
//! fit on the pristine training set; a *degraded* classifier is fit on
//! whatever the fault-tolerant ingest pipeline admits after the training
//! stream has been corrupted by a [`FaultPlan`] (NaN cells, bad ψ,
//! timestamp disorder, drops, truncation). Both models are evaluated on
//! the same clean test set, and the [`DegradationReport`] states the
//! accuracy gap alongside the ingest-policy counters that explain it.

use crate::config::ClassifierConfig;
use crate::eval::{evaluate, EvalReport};
use crate::model::DensityClassifier;
use udm_core::num::f64_from_usize;
use udm_core::{Result, UdmError, UncertainDataset};
use udm_data::fault::{FaultLog, FaultPlan, FaultyStream};
use udm_microcluster::{IngestCounters, IngestPolicy, MaintainerConfig, ResilientIngestor};

/// Everything the degraded-mode pipeline needs besides the data.
#[derive(Debug, Clone)]
pub struct ChaosSetup {
    /// Fault mix injected into the training stream.
    pub plan: FaultPlan,
    /// Seed for the fault injector's RNG.
    pub seed: u64,
    /// Quarantine / degradation policy for the resilient ingestor.
    pub policy: IngestPolicy,
    /// Micro-cluster settings for the ingestor's summary.
    pub maintainer: MaintainerConfig,
    /// Classifier settings shared by the clean and degraded models.
    pub classifier: ClassifierConfig,
}

/// Outcome of one clean-vs-degraded comparison.
#[derive(Debug, Clone)]
pub struct DegradationReport {
    /// The fault rate the plan injected at.
    pub fault_rate: f64,
    /// Evaluation of the classifier trained on pristine data.
    pub clean: EvalReport,
    /// Evaluation of the classifier trained on the ingest survivors.
    pub degraded: EvalReport,
    /// Per-verdict ingest counters for the degraded run.
    pub counters: IngestCounters,
    /// What the injector actually corrupted.
    pub faults: FaultLog,
    /// Training records that survived ingest (admitted + released).
    pub survivors: usize,
}

impl DegradationReport {
    /// Clean accuracy minus degraded accuracy. Negative values (the
    /// degraded model got *luckier*) are possible at low fault rates.
    #[must_use]
    pub fn accuracy_drop(&self) -> f64 {
        self.clean.accuracy() - self.degraded.accuracy()
    }

    /// True when the accuracy drop is at most `bound`.
    #[must_use]
    pub fn within(&self, bound: f64) -> bool {
        self.accuracy_drop() <= bound
    }
}

impl std::fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "fault rate {:.2}: clean accuracy {:.4}, degraded {:.4} (drop {:+.4})",
            self.fault_rate,
            self.clean.accuracy(),
            self.degraded.accuracy(),
            self.accuracy_drop()
        )?;
        writeln!(f, "  faults injected: {}", self.faults)?;
        write!(
            f,
            "  ingest: {}; {} survivors",
            self.counters, self.survivors
        )
    }
}

/// Pushes `train` through the fault injector and the resilient ingestor,
/// returning the surviving training set plus the counters and fault log.
///
/// # Errors
///
/// Propagates [`FaultyStream`]/[`ResilientIngestor`] construction errors
/// (invalid plan or policy, dimension mismatch) and dataset-assembly
/// errors if every record is rejected.
pub fn survivors_of(
    train: &UncertainDataset,
    setup: &ChaosSetup,
) -> Result<(UncertainDataset, IngestCounters, FaultLog)> {
    let faulty = FaultyStream::new(train, setup.plan.clone(), setup.seed)?;
    let (records, log) = faulty.records();
    let mut ingest = ResilientIngestor::new(train.dim(), setup.maintainer, setup.policy.clone())?;
    let mut points = Vec::with_capacity(records.len());
    for r in &records {
        let observed = ingest.observe(r)?;
        points.extend(observed.admitted.into_iter().map(|a| a.point));
    }
    points.extend(ingest.drain_quarantine()?.into_iter().map(|a| a.point));
    let counters = *ingest.counters();
    let survivors = UncertainDataset::from_points(points)?;
    Ok((survivors, counters, log))
}

/// Runs the full clean-vs-degraded comparison.
///
/// Fits one classifier on `train` as-is and one on the ingest survivors
/// of the corrupted copy of `train`; evaluates both on `test`.
///
/// # Errors
///
/// Propagates [`survivors_of`] errors, classifier-fit errors (e.g. the
/// survivors lost a whole class), and evaluation errors.
pub fn evaluate_degraded(
    train: &UncertainDataset,
    test: &UncertainDataset,
    setup: &ChaosSetup,
) -> Result<DegradationReport> {
    let clean_model = DensityClassifier::fit(train, setup.classifier)?;
    let clean = evaluate(&clean_model, test)?;

    let (survivor_set, counters, faults) = survivors_of(train, setup)?;
    let degraded_model = DensityClassifier::fit(&survivor_set, setup.classifier)?;
    let degraded = evaluate(&degraded_model, test)?;

    Ok(DegradationReport {
        fault_rate: setup.plan.rate,
        clean,
        degraded,
        counters,
        faults,
        survivors: survivor_set.len(),
    })
}

/// Outcome of one sharded full-vs-degraded comparison: the classifier
/// over every shard's survivors against the classifier over the
/// surviving shards only, with the coverage fraction the degraded model
/// was trained on.
#[derive(Debug, Clone)]
pub struct ShardedDegradationReport {
    /// Number of fault domains the stream was partitioned into.
    pub shards: usize,
    /// Shards excluded from the degraded model.
    pub down: Vec<usize>,
    /// Fraction of shards serving (`(shards - down) / shards`).
    pub coverage: f64,
    /// Evaluation of the classifier trained on all shards' survivors.
    pub full: EvalReport,
    /// Evaluation of the classifier trained on the surviving shards.
    pub degraded: EvalReport,
    /// Ingest counters rolled up over the surviving shards.
    pub counters: IngestCounters,
    /// What the injector corrupted.
    pub faults: FaultLog,
    /// Training survivors across all shards.
    pub survivors_full: usize,
    /// Training survivors across surviving shards.
    pub survivors_degraded: usize,
}

impl ShardedDegradationReport {
    /// Full-model accuracy minus degraded-model accuracy. Negative
    /// values (the degraded model got luckier) are possible when the
    /// lost shard carried little information.
    #[must_use]
    pub fn accuracy_drop(&self) -> f64 {
        self.full.accuracy() - self.degraded.accuracy()
    }

    /// True when the accuracy drop is at most `bound`.
    #[must_use]
    pub fn within(&self, bound: f64) -> bool {
        self.accuracy_drop() <= bound
    }
}

impl std::fmt::Display for ShardedDegradationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} shards, {:?} down (coverage {:.2}): full accuracy {:.4}, degraded {:.4} (drop {:+.4})",
            self.shards,
            self.down,
            self.coverage,
            self.full.accuracy(),
            self.degraded.accuracy(),
            self.accuracy_drop()
        )?;
        write!(
            f,
            "  surviving-shard ingest: {}; {} of {} survivors",
            self.counters, self.survivors_degraded, self.survivors_full
        )
    }
}

/// Bounds the accuracy cost of serving a merged model with `down`
/// shards missing: the training stream is corrupted once, partitioned
/// `seq % shards` across independent resilient ingestors (the shard
/// supervisor's fault-domain layout), and two classifiers are fit — one
/// on every shard's survivors, one on the surviving shards only. Both
/// are evaluated on the same clean `test` set.
///
/// # Errors
///
/// [`UdmError::InvalidConfig`] for `shards == 0` or a `down` index out
/// of range; otherwise as [`evaluate_degraded`] (fault-injector,
/// ingest, fit and evaluation errors — e.g. the surviving shards lost a
/// whole class).
pub fn evaluate_sharded_degraded(
    train: &UncertainDataset,
    test: &UncertainDataset,
    setup: &ChaosSetup,
    shards: usize,
    down: &[usize],
) -> Result<ShardedDegradationReport> {
    if shards == 0 {
        return Err(UdmError::InvalidConfig("shards must be at least 1".into()));
    }
    if let Some(&bad) = down.iter().find(|&&s| s >= shards) {
        return Err(UdmError::InvalidConfig(format!(
            "down shard {bad} out of range for {shards} shards"
        )));
    }
    let faulty = FaultyStream::new(train, setup.plan.clone(), setup.seed)?;
    let (records, faults) = faulty.records();
    let mut survivors_by_shard: Vec<Vec<udm_core::UncertainPoint>> = Vec::with_capacity(shards);
    let mut counters_by_shard = Vec::with_capacity(shards);
    for shard in 0..shards {
        let mut ingest =
            ResilientIngestor::new(train.dim(), setup.maintainer, setup.policy.clone())?;
        let mut points = Vec::new();
        for r in records
            .iter()
            .filter(|r| r.seq % shards as u64 == shard as u64)
        {
            let observed = ingest.observe(r)?;
            points.extend(observed.admitted.into_iter().map(|a| a.point));
        }
        points.extend(ingest.drain_quarantine()?.into_iter().map(|a| a.point));
        survivors_by_shard.push(points);
        counters_by_shard.push(*ingest.counters());
    }

    let mut full_points = Vec::new();
    let mut degraded_points = Vec::new();
    let mut counters = IngestCounters::default();
    for (shard, points) in survivors_by_shard.iter().enumerate() {
        full_points.extend(points.iter().cloned());
        if !down.contains(&shard) {
            degraded_points.extend(points.iter().cloned());
            counters.absorb(&counters_by_shard[shard]);
        }
    }
    let survivors_full = full_points.len();
    let survivors_degraded = degraded_points.len();

    let full_set = UncertainDataset::from_points(full_points)?;
    let full_model = DensityClassifier::fit(&full_set, setup.classifier)?;
    let full = evaluate(&full_model, test)?;

    let degraded_set = UncertainDataset::from_points(degraded_points)?;
    let degraded_model = DensityClassifier::fit(&degraded_set, setup.classifier)?;
    let degraded = evaluate(&degraded_model, test)?;

    let serving = shards - down.iter().collect::<std::collections::BTreeSet<_>>().len();
    Ok(ShardedDegradationReport {
        shards,
        down: down.to_vec(),
        coverage: f64_from_usize(serving) / f64_from_usize(shards),
        full,
        degraded,
        counters,
        faults,
        survivors_full,
        survivors_degraded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use udm_core::UncertainPoint;
    use udm_data::synth::{GaussianClassSpec, MixtureGenerator};

    fn labeled_set(n: usize, seed: u64) -> UncertainDataset {
        let gen = MixtureGenerator::new(
            2,
            vec![
                GaussianClassSpec::spherical(vec![0.0, 0.0], 1.0, 1.0),
                GaussianClassSpec::spherical(vec![6.0, 6.0], 1.0, 1.0),
            ],
        )
        .unwrap();
        // The mixture emits exact points; re-attach a modest ψ and
        // strictly increasing timestamps so the ingest watermark policy
        // sees a well-formed uncertain stream.
        let points: Vec<UncertainPoint> = gen
            .generate(n, seed)
            .into_points()
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                let label = p.label();
                let mut q = UncertainPoint::new(p.values().to_vec(), vec![0.2; 2])
                    .unwrap()
                    .with_timestamp(i as u64);
                if let Some(l) = label {
                    q = q.with_label(l);
                }
                q
            })
            .collect();
        UncertainDataset::from_points(points).unwrap()
    }

    fn setup(rate: f64) -> ChaosSetup {
        ChaosSetup {
            plan: FaultPlan::uniform(rate),
            seed: 11,
            policy: IngestPolicy::default(),
            maintainer: MaintainerConfig::new(20),
            classifier: ClassifierConfig::error_adjusted(20),
        }
    }

    #[test]
    fn zero_rate_pipeline_is_lossless() {
        let train = labeled_set(300, 1);
        let (survivors, counters, log) = survivors_of(&train, &setup(0.0)).unwrap();
        assert_eq!(log.total(), 0);
        assert_eq!(survivors.len(), train.len());
        assert_eq!(counters.accepted, train.len() as u64);
        assert_eq!(
            counters.repaired + counters.quarantined + counters.rejected,
            0
        );
    }

    #[test]
    fn faulty_pipeline_reports_and_stays_usable() {
        let train = labeled_set(400, 2);
        let test = labeled_set(120, 3);
        let report = evaluate_degraded(&train, &test, &setup(0.2)).unwrap();
        assert!(report.faults.total() > 10, "{}", report.faults);
        assert!(report.survivors <= train.len());
        assert!(report.counters.arrivals < train.len() as u64 + 1);
        // Well-separated classes: even the degraded model should stay
        // far above chance, and the report helpers must agree.
        assert!(report.degraded.accuracy() > 0.6, "{report}");
        assert!(report.within(1.0));
        assert!(
            report.within(report.accuracy_drop()),
            "bound equal to the drop is inclusive"
        );
        let text = report.to_string();
        assert!(text.contains("fault rate 0.20"), "{text}");
        assert!(text.contains("survivors"), "{text}");
    }

    #[test]
    fn sharded_degraded_reports_coverage_and_bounded_drop() {
        let train = labeled_set(400, 5);
        let test = labeled_set(120, 6);
        let report = evaluate_sharded_degraded(&train, &test, &setup(0.1), 4, &[2]).unwrap();
        assert_eq!(report.shards, 4);
        assert_eq!(report.coverage, 0.75);
        assert!(report.survivors_degraded < report.survivors_full);
        // Losing one of four shards of a well-mixed stream costs little:
        // both models see both classes and stay far above chance.
        assert!(report.degraded.accuracy() > 0.6, "{report}");
        assert!(report.within(0.25), "{report}");
        let text = report.to_string();
        assert!(text.contains("coverage 0.75"), "{text}");
    }

    #[test]
    fn sharded_degraded_with_no_down_shards_matches_full() {
        let train = labeled_set(300, 7);
        let test = labeled_set(100, 8);
        let report = evaluate_sharded_degraded(&train, &test, &setup(0.0), 3, &[]).unwrap();
        assert_eq!(report.coverage, 1.0);
        assert_eq!(report.survivors_full, report.survivors_degraded);
        assert_eq!(report.accuracy_drop(), 0.0);
    }

    #[test]
    fn sharded_degraded_validates_inputs() {
        let train = labeled_set(60, 9);
        let test = labeled_set(30, 10);
        assert!(evaluate_sharded_degraded(&train, &test, &setup(0.0), 0, &[]).is_err());
        assert!(evaluate_sharded_degraded(&train, &test, &setup(0.0), 2, &[2]).is_err());
    }

    #[test]
    fn survivor_labels_are_preserved() {
        let train = labeled_set(200, 4);
        let (survivors, _, _) = survivors_of(&train, &setup(0.1)).unwrap();
        assert!(survivors.points().iter().all(|p| p.label().is_some()));
    }
}
