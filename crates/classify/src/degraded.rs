//! Degraded-mode evaluation: how much classification accuracy survives a
//! faulty training stream?
//!
//! The chaos harness's measurement core. A clean baseline classifier is
//! fit on the pristine training set; a *degraded* classifier is fit on
//! whatever the fault-tolerant ingest pipeline admits after the training
//! stream has been corrupted by a [`FaultPlan`] (NaN cells, bad ψ,
//! timestamp disorder, drops, truncation). Both models are evaluated on
//! the same clean test set, and the [`DegradationReport`] states the
//! accuracy gap alongside the ingest-policy counters that explain it.

use crate::config::ClassifierConfig;
use crate::eval::{evaluate, EvalReport};
use crate::model::DensityClassifier;
use udm_core::{Result, UncertainDataset};
use udm_data::fault::{FaultLog, FaultPlan, FaultyStream};
use udm_microcluster::{IngestCounters, IngestPolicy, MaintainerConfig, ResilientIngestor};

/// Everything the degraded-mode pipeline needs besides the data.
#[derive(Debug, Clone)]
pub struct ChaosSetup {
    /// Fault mix injected into the training stream.
    pub plan: FaultPlan,
    /// Seed for the fault injector's RNG.
    pub seed: u64,
    /// Quarantine / degradation policy for the resilient ingestor.
    pub policy: IngestPolicy,
    /// Micro-cluster settings for the ingestor's summary.
    pub maintainer: MaintainerConfig,
    /// Classifier settings shared by the clean and degraded models.
    pub classifier: ClassifierConfig,
}

/// Outcome of one clean-vs-degraded comparison.
#[derive(Debug, Clone)]
pub struct DegradationReport {
    /// The fault rate the plan injected at.
    pub fault_rate: f64,
    /// Evaluation of the classifier trained on pristine data.
    pub clean: EvalReport,
    /// Evaluation of the classifier trained on the ingest survivors.
    pub degraded: EvalReport,
    /// Per-verdict ingest counters for the degraded run.
    pub counters: IngestCounters,
    /// What the injector actually corrupted.
    pub faults: FaultLog,
    /// Training records that survived ingest (admitted + released).
    pub survivors: usize,
}

impl DegradationReport {
    /// Clean accuracy minus degraded accuracy. Negative values (the
    /// degraded model got *luckier*) are possible at low fault rates.
    #[must_use]
    pub fn accuracy_drop(&self) -> f64 {
        self.clean.accuracy() - self.degraded.accuracy()
    }

    /// True when the accuracy drop is at most `bound`.
    #[must_use]
    pub fn within(&self, bound: f64) -> bool {
        self.accuracy_drop() <= bound
    }
}

impl std::fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "fault rate {:.2}: clean accuracy {:.4}, degraded {:.4} (drop {:+.4})",
            self.fault_rate,
            self.clean.accuracy(),
            self.degraded.accuracy(),
            self.accuracy_drop()
        )?;
        writeln!(f, "  faults injected: {}", self.faults)?;
        write!(
            f,
            "  ingest: {}; {} survivors",
            self.counters, self.survivors
        )
    }
}

/// Pushes `train` through the fault injector and the resilient ingestor,
/// returning the surviving training set plus the counters and fault log.
///
/// # Errors
///
/// Propagates [`FaultyStream`]/[`ResilientIngestor`] construction errors
/// (invalid plan or policy, dimension mismatch) and dataset-assembly
/// errors if every record is rejected.
pub fn survivors_of(
    train: &UncertainDataset,
    setup: &ChaosSetup,
) -> Result<(UncertainDataset, IngestCounters, FaultLog)> {
    let faulty = FaultyStream::new(train, setup.plan.clone(), setup.seed)?;
    let (records, log) = faulty.records();
    let mut ingest = ResilientIngestor::new(train.dim(), setup.maintainer, setup.policy.clone())?;
    let mut points = Vec::with_capacity(records.len());
    for r in &records {
        let observed = ingest.observe(r)?;
        points.extend(observed.admitted.into_iter().map(|a| a.point));
    }
    points.extend(ingest.drain_quarantine()?.into_iter().map(|a| a.point));
    let counters = *ingest.counters();
    let survivors = UncertainDataset::from_points(points)?;
    Ok((survivors, counters, log))
}

/// Runs the full clean-vs-degraded comparison.
///
/// Fits one classifier on `train` as-is and one on the ingest survivors
/// of the corrupted copy of `train`; evaluates both on `test`.
///
/// # Errors
///
/// Propagates [`survivors_of`] errors, classifier-fit errors (e.g. the
/// survivors lost a whole class), and evaluation errors.
pub fn evaluate_degraded(
    train: &UncertainDataset,
    test: &UncertainDataset,
    setup: &ChaosSetup,
) -> Result<DegradationReport> {
    let clean_model = DensityClassifier::fit(train, setup.classifier)?;
    let clean = evaluate(&clean_model, test)?;

    let (survivor_set, counters, faults) = survivors_of(train, setup)?;
    let degraded_model = DensityClassifier::fit(&survivor_set, setup.classifier)?;
    let degraded = evaluate(&degraded_model, test)?;

    Ok(DegradationReport {
        fault_rate: setup.plan.rate,
        clean,
        degraded,
        counters,
        faults,
        survivors: survivor_set.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use udm_core::UncertainPoint;
    use udm_data::synth::{GaussianClassSpec, MixtureGenerator};

    fn labeled_set(n: usize, seed: u64) -> UncertainDataset {
        let gen = MixtureGenerator::new(
            2,
            vec![
                GaussianClassSpec::spherical(vec![0.0, 0.0], 1.0, 1.0),
                GaussianClassSpec::spherical(vec![6.0, 6.0], 1.0, 1.0),
            ],
        )
        .unwrap();
        // The mixture emits exact points; re-attach a modest ψ and
        // strictly increasing timestamps so the ingest watermark policy
        // sees a well-formed uncertain stream.
        let points: Vec<UncertainPoint> = gen
            .generate(n, seed)
            .into_points()
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                let label = p.label();
                let mut q = UncertainPoint::new(p.values().to_vec(), vec![0.2; 2])
                    .unwrap()
                    .with_timestamp(i as u64);
                if let Some(l) = label {
                    q = q.with_label(l);
                }
                q
            })
            .collect();
        UncertainDataset::from_points(points).unwrap()
    }

    fn setup(rate: f64) -> ChaosSetup {
        ChaosSetup {
            plan: FaultPlan::uniform(rate),
            seed: 11,
            policy: IngestPolicy::default(),
            maintainer: MaintainerConfig::new(20),
            classifier: ClassifierConfig::error_adjusted(20),
        }
    }

    #[test]
    fn zero_rate_pipeline_is_lossless() {
        let train = labeled_set(300, 1);
        let (survivors, counters, log) = survivors_of(&train, &setup(0.0)).unwrap();
        assert_eq!(log.total(), 0);
        assert_eq!(survivors.len(), train.len());
        assert_eq!(counters.accepted, train.len() as u64);
        assert_eq!(
            counters.repaired + counters.quarantined + counters.rejected,
            0
        );
    }

    #[test]
    fn faulty_pipeline_reports_and_stays_usable() {
        let train = labeled_set(400, 2);
        let test = labeled_set(120, 3);
        let report = evaluate_degraded(&train, &test, &setup(0.2)).unwrap();
        assert!(report.faults.total() > 10, "{}", report.faults);
        assert!(report.survivors <= train.len());
        assert!(report.counters.arrivals < train.len() as u64 + 1);
        // Well-separated classes: even the degraded model should stay
        // far above chance, and the report helpers must agree.
        assert!(report.degraded.accuracy() > 0.6, "{report}");
        assert!(report.within(1.0));
        assert!(
            report.within(report.accuracy_drop()),
            "bound equal to the drop is inclusive"
        );
        let text = report.to_string();
        assert!(text.contains("fault rate 0.20"), "{text}");
        assert!(text.contains("survivors"), "{text}");
    }

    #[test]
    fn survivor_labels_are_preserved() {
        let train = labeled_set(200, 4);
        let (survivors, _, _) = survivors_of(&train, &setup(0.1)).unwrap();
        assert!(survivors.points().iter().all(|p| p.label().is_some()));
    }
}
