//! Evaluation harness: accuracy, confusion matrices, timing, parallelism.

use rayon::prelude::*;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};
use udm_core::{ClassLabel, Result, UdmError, UncertainDataset, UncertainPoint};

/// Anything that can assign a class label to an uncertain point.
pub trait Classifier: Sync {
    /// Predicts the label of `x`.
    fn classify(&self, x: &UncertainPoint) -> Result<ClassLabel>;
}

/// Outcome of evaluating a classifier on a labelled test set.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalReport {
    /// Number of labelled test points evaluated.
    pub n: usize,
    /// Number of correct predictions.
    pub correct: usize,
    /// Confusion counts keyed by `(actual, predicted)`.
    pub confusion: BTreeMap<(ClassLabel, ClassLabel), usize>,
    /// Wall-clock time spent classifying (excludes training).
    pub elapsed: Duration,
}

impl EvalReport {
    /// Fraction of correct predictions.
    pub fn accuracy(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.correct as f64 / self.n as f64
        }
    }

    /// Mean classification time per test point, in seconds.
    pub fn seconds_per_example(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.elapsed.as_secs_f64() / self.n as f64
        }
    }

    /// Per-class precision: among predictions of `label`, the fraction
    /// that were correct. 0 when the label was never predicted.
    pub fn precision(&self, label: ClassLabel) -> f64 {
        let mut predicted = 0usize;
        let mut hit = 0usize;
        for (&(actual, pred), &count) in &self.confusion {
            if pred == label {
                predicted += count;
                if actual == label {
                    hit += count;
                }
            }
        }
        if predicted == 0 {
            0.0
        } else {
            hit as f64 / predicted as f64
        }
    }

    /// Per-class F1: harmonic mean of precision and recall.
    pub fn f1(&self, label: ClassLabel) -> f64 {
        let p = self.precision(label);
        let r = self.recall(label);
        // udm-lint: allow(UDM002) zero-denominator guard; p and r are exact 0 in the degenerate case
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Macro-averaged F1 over every class that appears as an actual label.
    pub fn macro_f1(&self) -> f64 {
        let mut labels: Vec<ClassLabel> =
            self.confusion.keys().map(|&(actual, _)| actual).collect();
        labels.sort();
        labels.dedup();
        if labels.is_empty() {
            return 0.0;
        }
        labels.iter().map(|&l| self.f1(l)).sum::<f64>() / labels.len() as f64
    }

    /// Per-class recall: correct predictions of a class over its support.
    pub fn recall(&self, label: ClassLabel) -> f64 {
        let mut support = 0usize;
        let mut hit = 0usize;
        for (&(actual, predicted), &count) in &self.confusion {
            if actual == label {
                support += count;
                if predicted == label {
                    hit += count;
                }
            }
        }
        if support == 0 {
            0.0
        } else {
            hit as f64 / support as f64
        }
    }
}

impl std::fmt::Display for EvalReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "accuracy {:.4} over {} points ({:.3e} s/example, macro-F1 {:.4})",
            self.accuracy(),
            self.n,
            self.seconds_per_example(),
            self.macro_f1()
        )?;
        let mut labels: Vec<ClassLabel> = self.confusion.keys().map(|&(a, _)| a).collect();
        labels.sort();
        labels.dedup();
        for l in labels {
            writeln!(
                f,
                "  {l}: recall {:.4}, precision {:.4}",
                self.recall(l),
                self.precision(l)
            )?;
        }
        Ok(())
    }
}

/// Evaluates a classifier sequentially over the labelled points of `test`.
///
/// # Errors
///
/// [`UdmError::EmptyDataset`] if `test` contains no labelled point;
/// classification errors propagate.
pub fn evaluate<C: Classifier>(model: &C, test: &UncertainDataset) -> Result<EvalReport> {
    let start = Instant::now();
    let mut n = 0;
    let mut correct = 0;
    let mut confusion: BTreeMap<(ClassLabel, ClassLabel), usize> = BTreeMap::new();
    for p in test.iter() {
        let Some(actual) = p.label() else { continue };
        let predicted = model.classify(p)?;
        n += 1;
        if predicted == actual {
            correct += 1;
        }
        *confusion.entry((actual, predicted)).or_insert(0) += 1;
    }
    if n == 0 {
        return Err(UdmError::EmptyDataset);
    }
    Ok(EvalReport {
        n,
        correct,
        confusion,
        elapsed: start.elapsed(),
    })
}

/// Evaluates a classifier in parallel with rayon, chunking the test set
/// by index (`threads` sets the chunk count) and merging the partial
/// reports in chunk order.
///
/// Produces the same counts as [`evaluate`] for any deterministic
/// classifier; only `elapsed` (wall-clock) differs. Batches below
/// [`crate::batch::PAR_CROSSOVER_POINTS`] run sequentially — rayon's
/// fork/join overhead is not amortized there, so the guard keeps the
/// parallel entry point from ever losing to [`evaluate`] on small
/// test sets.
pub fn evaluate_parallel<C: Classifier>(
    model: &C,
    test: &UncertainDataset,
    threads: usize,
) -> Result<EvalReport> {
    if threads <= 1 || test.len() < crate::batch::PAR_CROSSOVER_POINTS {
        return evaluate(model, test);
    }
    let start = Instant::now();
    let points = test.points();
    let chunk = points.len().div_ceil(threads).max(1);
    type Partial = (usize, usize, BTreeMap<(ClassLabel, ClassLabel), usize>);
    let partials: Vec<Result<Partial>> = points
        .par_chunks(chunk)
        .map(|slice| {
            let mut n = 0;
            let mut correct = 0;
            let mut confusion = BTreeMap::new();
            for p in slice {
                let Some(actual) = p.label() else { continue };
                let predicted = model.classify(p)?;
                n += 1;
                if predicted == actual {
                    correct += 1;
                }
                *confusion.entry((actual, predicted)).or_insert(0) += 1;
            }
            Ok((n, correct, confusion))
        })
        .collect();

    let mut n = 0;
    let mut correct = 0;
    let mut confusion: BTreeMap<(ClassLabel, ClassLabel), usize> = BTreeMap::new();
    for partial in partials {
        let (pn, pc, pconf) = partial?;
        n += pn;
        correct += pc;
        for (k, v) in pconf {
            *confusion.entry(k).or_insert(0) += v;
        }
    }
    if n == 0 {
        return Err(UdmError::EmptyDataset);
    }
    Ok(EvalReport {
        n,
        correct,
        confusion,
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic stub: classifies by the sign of the first coordinate.
    struct SignClassifier;

    impl Classifier for SignClassifier {
        fn classify(&self, x: &UncertainPoint) -> Result<ClassLabel> {
            Ok(ClassLabel((x.value(0) >= 0.0) as u32))
        }
    }

    fn test_set() -> UncertainDataset {
        UncertainDataset::from_points(
            (0..100)
                .map(|i| {
                    let v = i as f64 - 50.0;
                    // true label: sign, except 10 points mislabelled
                    let noise_flip = i % 10 == 0;
                    let label = ((v >= 0.0) ^ noise_flip) as u32;
                    UncertainPoint::exact(vec![v])
                        .unwrap()
                        .with_label(ClassLabel(label))
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn accuracy_counts_match() {
        let r = evaluate(&SignClassifier, &test_set()).unwrap();
        assert_eq!(r.n, 100);
        assert_eq!(r.correct, 90);
        assert!((r.accuracy() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn confusion_matrix_sums_to_n() {
        let r = evaluate(&SignClassifier, &test_set()).unwrap();
        let total: usize = r.confusion.values().sum();
        assert_eq!(total, r.n);
    }

    #[test]
    fn recall_per_class() {
        let r = evaluate(&SignClassifier, &test_set()).unwrap();
        // 50 points have v >= 0 (predicted 1); flips make 5 of each class wrong.
        assert!(r.recall(ClassLabel(0)) > 0.8);
        assert!(r.recall(ClassLabel(1)) > 0.8);
        assert_eq!(r.recall(ClassLabel(9)), 0.0);
    }

    #[test]
    fn precision_and_f1() {
        let r = evaluate(&SignClassifier, &test_set()).unwrap();
        for l in [ClassLabel(0), ClassLabel(1)] {
            let p = r.precision(l);
            let rec = r.recall(l);
            let f1 = r.f1(l);
            assert!(p > 0.8 && p <= 1.0);
            let expected = 2.0 * p * rec / (p + rec);
            assert!((f1 - expected).abs() < 1e-12);
        }
        assert_eq!(r.precision(ClassLabel(9)), 0.0);
        assert_eq!(r.f1(ClassLabel(9)), 0.0);
        let macro_f1 = r.macro_f1();
        assert!(macro_f1 > 0.8 && macro_f1 <= 1.0);
    }

    #[test]
    fn unlabelled_points_skipped() {
        let mut d = test_set();
        d.push(UncertainPoint::exact(vec![3.0]).unwrap()).unwrap();
        let r = evaluate(&SignClassifier, &d).unwrap();
        assert_eq!(r.n, 100);
    }

    #[test]
    fn all_unlabelled_is_error() {
        let d =
            UncertainDataset::from_points(vec![UncertainPoint::exact(vec![0.0]).unwrap()]).unwrap();
        assert!(evaluate(&SignClassifier, &d).is_err());
    }

    #[test]
    fn parallel_matches_sequential() {
        let d = test_set();
        let seq = evaluate(&SignClassifier, &d).unwrap();
        for threads in [2, 3, 8, 200] {
            let par = evaluate_parallel(&SignClassifier, &d, threads).unwrap();
            assert_eq!(par.n, seq.n);
            assert_eq!(par.correct, seq.correct);
            assert_eq!(par.confusion, seq.confusion);
        }
    }

    #[test]
    fn parallel_single_thread_delegates() {
        let d = test_set();
        let r = evaluate_parallel(&SignClassifier, &d, 1).unwrap();
        assert_eq!(r.correct, 90);
    }

    #[test]
    fn seconds_per_example_positive() {
        let r = evaluate(&SignClassifier, &test_set()).unwrap();
        assert!(r.seconds_per_example() >= 0.0);
        assert!(r.seconds_per_example() < 1.0);
    }

    #[test]
    fn display_renders_summary() {
        let r = evaluate(&SignClassifier, &test_set()).unwrap();
        let text = r.to_string();
        assert!(text.contains("accuracy 0.9000"), "{text}");
        assert!(text.contains("l0: recall"), "{text}");
    }

    #[test]
    fn classification_errors_propagate() {
        struct Failing;
        impl Classifier for Failing {
            fn classify(&self, _: &UncertainPoint) -> Result<ClassLabel> {
                Err(UdmError::EmptyDataset)
            }
        }
        assert!(evaluate(&Failing, &test_set()).is_err());
        assert!(evaluate_parallel(&Failing, &test_set(), 4).is_err());
    }
}
