//! Stratified k-fold cross-validation over uncertain datasets.

use crate::eval::{evaluate, Classifier, EvalReport};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;
use std::collections::BTreeMap;
use udm_core::{ClassLabel, Result, UdmError, UncertainDataset};

/// Per-fold and aggregate results of a cross-validation run.
#[derive(Debug, Clone)]
pub struct CrossValidationReport {
    /// One evaluation report per fold, in fold order.
    pub folds: Vec<EvalReport>,
}

impl CrossValidationReport {
    /// Mean accuracy across folds.
    pub fn mean_accuracy(&self) -> f64 {
        if self.folds.is_empty() {
            return 0.0;
        }
        self.folds.iter().map(|f| f.accuracy()).sum::<f64>() / self.folds.len() as f64
    }

    /// Population standard deviation of fold accuracies.
    pub fn std_accuracy(&self) -> f64 {
        if self.folds.len() < 2 {
            return 0.0;
        }
        let mean = self.mean_accuracy();
        let var = self
            .folds
            .iter()
            .map(|f| (f.accuracy() - mean).powi(2))
            .sum::<f64>()
            / self.folds.len() as f64;
        udm_core::num::clamped_sqrt(var)
    }
}

/// Builds stratified fold assignments: labelled points are dealt
/// round-robin (after a seeded shuffle) within each class, so every fold
/// sees every class when counts permit. Unlabelled points are distributed
/// round-robin too.
fn fold_assignments(data: &UncertainDataset, k: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut buckets: BTreeMap<Option<ClassLabel>, Vec<usize>> = BTreeMap::new();
    for (i, p) in data.iter().enumerate() {
        buckets.entry(p.label()).or_default().push(i);
    }
    let mut fold = vec![0usize; data.len()];
    for (_, mut idxs) in buckets {
        idxs.shuffle(&mut rng);
        for (rank, &i) in idxs.iter().enumerate() {
            fold[i] = rank % k;
        }
    }
    fold
}

/// Runs stratified k-fold cross-validation: `fit` trains a classifier on
/// each training portion and the held-out fold is evaluated.
///
/// # Errors
///
/// [`UdmError::InvalidConfig`] for `k < 2` or `k > data.len()`; training
/// and evaluation failures propagate.
pub fn cross_validate<C, F>(
    data: &UncertainDataset,
    k: usize,
    seed: u64,
    fit: F,
) -> Result<CrossValidationReport>
where
    C: Classifier,
    F: Fn(&UncertainDataset) -> Result<C>,
{
    if k < 2 {
        return Err(UdmError::InvalidConfig(
            "cross-validation needs at least 2 folds".into(),
        ));
    }
    if k > data.len() {
        return Err(UdmError::InvalidConfig(format!(
            "{k} folds exceed {} data points",
            data.len()
        )));
    }
    let assignments = fold_assignments(data, k, seed);
    let mut folds = Vec::with_capacity(k);
    for fold in 0..k {
        let model = fit(&fold_split(data, &assignments, fold, false)?)?;
        folds.push(evaluate(
            &model,
            &fold_split(data, &assignments, fold, true)?,
        )?);
    }
    Ok(CrossValidationReport { folds })
}

/// The training (`held_out == false`) or test (`held_out == true`)
/// portion of one fold, preserving dataset order.
fn fold_split(
    data: &UncertainDataset,
    assignments: &[usize],
    fold: usize,
    held_out: bool,
) -> Result<UncertainDataset> {
    let mut out = UncertainDataset::new(data.dim());
    for (i, p) in data.iter().enumerate() {
        if (assignments[i] == fold) == held_out {
            out.push(p.clone())?;
        }
    }
    Ok(out)
}

/// [`cross_validate`] with the folds trained and evaluated in parallel.
///
/// Fold assignments, per-fold splits, and the returned report are
/// identical to the sequential version for any deterministic `fit` —
/// the folds are merged in fold order, so only wall-clock time differs.
///
/// # Errors
///
/// As [`cross_validate`]; the lowest-indexed failing fold's error is
/// reported.
pub fn cross_validate_parallel<C, F>(
    data: &UncertainDataset,
    k: usize,
    seed: u64,
    fit: F,
) -> Result<CrossValidationReport>
where
    C: Classifier,
    F: Fn(&UncertainDataset) -> Result<C> + Sync,
{
    if k < 2 {
        return Err(UdmError::InvalidConfig(
            "cross-validation needs at least 2 folds".into(),
        ));
    }
    if k > data.len() {
        return Err(UdmError::InvalidConfig(format!(
            "{k} folds exceed {} data points",
            data.len()
        )));
    }
    let assignments = fold_assignments(data, k, seed);
    let folds: Result<Vec<EvalReport>> = (0..k)
        .into_par_iter()
        .map(|fold| {
            let model = fit(&fold_split(data, &assignments, fold, false)?)?;
            evaluate(&model, &fold_split(data, &assignments, fold, true)?)
        })
        .collect();
    Ok(CrossValidationReport { folds: folds? })
}

#[cfg(test)]
mod tests {
    use super::*;
    use udm_core::UncertainPoint;

    /// Classifies by the sign of coordinate 0 — no training state needed.
    struct SignClassifier;
    impl Classifier for SignClassifier {
        fn classify(&self, x: &udm_core::UncertainPoint) -> Result<ClassLabel> {
            Ok(ClassLabel((x.value(0) >= 0.0) as u32))
        }
    }

    fn dataset(n: usize) -> UncertainDataset {
        UncertainDataset::from_points(
            (0..n)
                .map(|i| {
                    let v = i as f64 - (n / 2) as f64;
                    UncertainPoint::exact(vec![v])
                        .unwrap()
                        .with_label(ClassLabel((v >= 0.0) as u32))
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn folds_partition_the_data() {
        let d = dataset(97);
        let a = fold_assignments(&d, 5, 3);
        assert_eq!(a.len(), 97);
        let mut counts = [0usize; 5];
        for &f in &a {
            counts[f] += 1;
        }
        // Balanced within 2 of each other.
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        assert!(max - min <= 2, "{counts:?}");
    }

    #[test]
    fn perfect_classifier_scores_one_everywhere() {
        let d = dataset(50);
        let r = cross_validate(&d, 5, 1, |_| Ok(SignClassifier)).unwrap();
        assert_eq!(r.folds.len(), 5);
        assert!((r.mean_accuracy() - 1.0).abs() < 1e-12);
        assert_eq!(r.std_accuracy(), 0.0);
    }

    #[test]
    fn stratification_puts_both_classes_in_every_fold() {
        let d = dataset(40);
        let a = fold_assignments(&d, 4, 9);
        for fold in 0..4 {
            let mut c0 = 0;
            let mut c1 = 0;
            for (i, p) in d.iter().enumerate() {
                if a[i] == fold {
                    match p.label().unwrap().id() {
                        0 => c0 += 1,
                        _ => c1 += 1,
                    }
                }
            }
            assert!(c0 > 0 && c1 > 0, "fold {fold}: {c0}/{c1}");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let d = dataset(30);
        let a = fold_assignments(&d, 3, 11);
        let b = fold_assignments(&d, 3, 11);
        assert_eq!(a, b);
        let c = fold_assignments(&d, 3, 12);
        assert_ne!(a, c);
    }

    #[test]
    fn invalid_k_rejected() {
        let d = dataset(10);
        assert!(cross_validate(&d, 1, 0, |_| Ok(SignClassifier)).is_err());
        assert!(cross_validate(&d, 11, 0, |_| Ok(SignClassifier)).is_err());
        assert!(cross_validate_parallel(&d, 1, 0, |_| Ok(SignClassifier)).is_err());
        assert!(cross_validate_parallel(&d, 11, 0, |_| Ok(SignClassifier)).is_err());
    }

    #[test]
    fn parallel_folds_match_sequential() {
        let d = dataset(61);
        let seq = cross_validate(&d, 4, 17, |_| Ok(SignClassifier)).unwrap();
        let par = cross_validate_parallel(&d, 4, 17, |_| Ok(SignClassifier)).unwrap();
        assert_eq!(seq.folds.len(), par.folds.len());
        for (s, p) in seq.folds.iter().zip(&par.folds) {
            assert_eq!(s.n, p.n);
            assert_eq!(s.correct, p.correct);
            assert_eq!(s.confusion, p.confusion);
        }
    }

    #[test]
    fn parallel_training_errors_propagate() {
        let d = dataset(10);
        let r = cross_validate_parallel(&d, 2, 0, |_| -> Result<SignClassifier> {
            Err(UdmError::EmptyDataset)
        });
        assert!(r.is_err());
    }

    #[test]
    fn training_errors_propagate() {
        let d = dataset(10);
        let r = cross_validate(&d, 2, 0, |_| -> Result<SignClassifier> {
            Err(UdmError::EmptyDataset)
        });
        assert!(r.is_err());
    }

    #[test]
    fn real_classifier_end_to_end() {
        use crate::config::ClassifierConfig;
        use crate::model::DensityClassifier;
        use udm_data::{GaussianClassSpec, MixtureGenerator};
        let g = MixtureGenerator::new(
            2,
            vec![
                GaussianClassSpec::spherical(vec![0.0, 0.0], 1.0, 1.0),
                GaussianClassSpec::spherical(vec![6.0, 6.0], 1.0, 1.0),
            ],
        )
        .unwrap();
        let d = g.generate(300, 5);
        let r = cross_validate(&d, 3, 7, |train| {
            DensityClassifier::fit(train, ClassifierConfig::error_adjusted(20))
        })
        .unwrap();
        assert!(r.mean_accuracy() > 0.9, "{}", r.mean_accuracy());
    }
}
