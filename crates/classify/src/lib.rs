//! # udm-classify
//!
//! Density-based subspace classification of uncertain data — the concrete
//! application the paper builds on top of its error-adjusted density
//! transform (§3, Figure 3).
//!
//! For a test point `x`, the classifier searches for the subspaces `S` in
//! which the *instance-specific local accuracy* of some class is high:
//!
//! ```text
//! A(x, S, l_i) = |D_i| · g(x, S, D_i) / (|D| · g(x, S, D))     (Eq. 11)
//! ```
//!
//! where `g(·, S, ·)` are error-adjusted micro-cluster densities evaluated
//! over `S` only. Candidate subspaces are enumerated bottom-up
//! Apriori-style (`C_{i+1} = L_i ⋈ L_1`), thresholded at accuracy `a`, and
//! the label is the majority vote of the dominant classes of greedily
//! selected non-overlapping high-accuracy subspaces.
//!
//! Three classifiers are provided:
//!
//! * [`DensityClassifier`] — the paper's method (error-adjusted),
//! * the same with [`ClassifierConfig::unadjusted`] — the paper's
//!   "no error adjustment" baseline (identical code path, ψ ≡ 0),
//! * [`NnClassifier`] — the nearest-neighbor baseline.
//!
//! [`eval`] evaluates any [`Classifier`] (accuracy, confusion matrix,
//! timing), optionally in parallel. [`degraded`] measures how much
//! accuracy survives when the training stream is corrupted and repaired
//! by the fault-tolerant ingest pipeline.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod batch;
pub mod config;
pub mod degraded;
pub mod eval;
pub mod kfold;
pub mod model;
pub mod naive;
pub mod nn;
pub mod rollup;
pub mod subspace_select;
pub mod tune;

pub use batch::{classify_batch, guarded_par_map, PAR_CROSSOVER_POINTS};
pub use config::{ClassifierConfig, Fallback};
pub use degraded::{
    evaluate_degraded, evaluate_sharded_degraded, survivors_of, ChaosSetup, DegradationReport,
    ShardedDegradationReport,
};
pub use eval::{evaluate, evaluate_parallel, Classifier, EvalReport};
pub use kfold::{cross_validate, cross_validate_parallel, CrossValidationReport};
pub use model::{ClassificationOutcome, DensityClassifier};
pub use naive::NaiveDensityBayes;
pub use nn::NnClassifier;
pub use rollup::{AccuracyOracle, DiscriminativeSubspace, RollupLimits};
pub use subspace_select::select_non_overlapping;
pub use tune::{tune_threshold, ThresholdSweep, DEFAULT_THRESHOLD_GRID};
