//! The density-based subspace classifier (Fig. 3).

use crate::config::{ClassifierConfig, Fallback};
use crate::eval::Classifier;
use crate::rollup::{rollup, AccuracyOracle, DiscriminativeSubspace, RollupLimits};
use crate::subspace_select::select_non_overlapping;
use rayon::prelude::*;
use std::cell::OnceCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};
use udm_core::{ClassLabel, Result, Subspace, UdmError, UncertainDataset, UncertainPoint};
use udm_kde::{BackendSpec, DensityBackend, KernelColumns};
use udm_microcluster::{build_backend, MaintainerConfig, MicroClusterKde, MicroClusterMaintainer};

/// A trained density-based classifier.
///
/// Training (§3, "performed only once as a pre-processing step"):
///
/// 1. partition the training data into `D_1 … D_k` by class;
/// 2. stream `D` into a `q`-cluster error-based micro-cluster summary and
///    each `D_i` into a proportional share of `q`;
/// 3. recover the global per-dimension σ and `N` from the aggregated
///    statistics and fix one shared bandwidth vector, so every density in
///    Eq. 11's ratio is estimated on the same scale.
///
/// Classification evaluates local accuracies `A(x, S, l_i)` (Eq. 11) over
/// micro-cluster densities only — the original data is never revisited.
///
/// # Example
///
/// ```
/// use udm_classify::{Classifier, ClassifierConfig, DensityClassifier};
/// use udm_core::{ClassLabel, UncertainDataset, UncertainPoint};
///
/// let train = UncertainDataset::from_points(vec![
///     UncertainPoint::new(vec![0.0, 0.0], vec![0.1, 0.0]).unwrap()
///         .with_label(ClassLabel(0)),
///     UncertainPoint::new(vec![0.5, 0.2], vec![0.0, 0.2]).unwrap()
///         .with_label(ClassLabel(0)),
///     UncertainPoint::new(vec![6.0, 6.0], vec![0.2, 0.1]).unwrap()
///         .with_label(ClassLabel(1)),
///     UncertainPoint::new(vec![6.5, 5.8], vec![0.1, 0.0]).unwrap()
///         .with_label(ClassLabel(1)),
/// ]).unwrap();
/// let model = DensityClassifier::fit(&train, ClassifierConfig::error_adjusted(4)).unwrap();
/// let x = UncertainPoint::new(vec![6.2, 6.1], vec![0.3, 0.3]).unwrap();
/// assert_eq!(model.classify(&x).unwrap(), ClassLabel(1));
/// ```
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct DensityClassifier {
    config: ClassifierConfig,
    dim: usize,
    labels: Vec<ClassLabel>,
    priors: Vec<f64>,
    class_kdes: Vec<MicroClusterKde>,
    global_kde: MicroClusterKde,
    majority: ClassLabel,
    runtime: BackendRuntime,
}

/// One density backend per KDE the accuracy ratio (Eq. 11) touches,
/// all built from the same [`BackendSpec`].
pub(crate) struct BackendSet {
    pub(crate) global: Arc<dyn DensityBackend>,
    pub(crate) per_class: Vec<Arc<dyn DensityBackend>>,
}

impl BackendSet {
    pub(crate) fn build(
        global_kde: &MicroClusterKde,
        class_kdes: &[MicroClusterKde],
        spec: &BackendSpec,
    ) -> Result<Self> {
        Ok(BackendSet {
            global: build_backend(global_kde, spec)?,
            per_class: class_kdes
                .iter()
                .map(|kde| build_backend(kde, spec))
                .collect::<Result<Vec<_>>>()?,
        })
    }
}

/// Runtime-only backend selection state: the default [`BackendSpec`] and
/// a per-spec cache of built backend sets (coreset/HBE constructions are
/// deterministic but not free, so each spec is built once per model).
/// Interior mutability lets serving layers flip backends on a shared
/// `Arc<DensityClassifier>`. Never serialized — models on disk stay
/// backend-agnostic, and a restored model starts back at `Exact`.
#[derive(Debug, Default)]
struct BackendRuntime {
    default_spec: Mutex<BackendSpec>,
    cache: Mutex<HashMap<String, Arc<BackendSet>>>,
}

impl std::fmt::Debug for BackendSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackendSet")
            .field("backend", &self.global.name())
            .field("classes", &self.per_class.len())
            .finish()
    }
}

impl Clone for BackendRuntime {
    fn clone(&self) -> Self {
        // The cache holds derived state only; a clone re-derives lazily.
        BackendRuntime {
            default_spec: Mutex::new(self.spec()),
            cache: Mutex::new(HashMap::new()),
        }
    }
}

impl BackendRuntime {
    fn spec(&self) -> BackendSpec {
        self.default_spec
            .lock()
            .map(|g| *g)
            .unwrap_or(BackendSpec::Exact)
    }
}

impl serde::Serialize for BackendRuntime {
    fn to_value(&self) -> serde::Value {
        serde::Value::Null
    }
}

impl serde::Deserialize for BackendRuntime {
    fn from_value(_: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        Ok(BackendRuntime::default())
    }
}

/// Everything the classifier can report about one decision.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassificationOutcome {
    /// The predicted label.
    pub label: ClassLabel,
    /// The non-overlapping subspaces that voted (empty when the fallback
    /// decided).
    pub selected: Vec<DiscriminativeSubspace>,
    /// Total candidate subspaces whose accuracy was evaluated.
    pub candidates_evaluated: usize,
    /// Whether the fallback policy produced the label.
    pub used_fallback: bool,
}

/// Kernel-column caches for one test point: one per KDE the accuracy
/// ratio (Eq. 11) touches. Building them costs one full-dimensional
/// density evaluation each; every subsequent subspace query is pure
/// multiply-adds over the cached columns.
struct ColumnSet {
    global: KernelColumns,
    per_class: Vec<KernelColumns>,
}

struct KdeOracle<'a> {
    model: &'a DensityClassifier,
    /// The density implementations every evaluation routes through —
    /// borrowed from the model's per-spec backend cache. With the
    /// `Exact` spec these delegate to the very same `MicroClusterKde`
    /// arithmetic the pre-trait classifier called directly.
    backends: &'a BackendSet,
    query: &'a [f64],
    /// The test point's own per-dimension error ψ(x). The paper's Figure 1
    /// motivates classifying by what the test example *could* coincide
    /// with inside its error boundary; the error-adjusted method therefore
    /// convolves every density with the query's error (`None` for the
    /// unadjusted baseline, which pretends all errors are zero).
    query_errors: Option<&'a [f64]>,
    /// Lazily-built column caches, shared by every subspace the roll-up
    /// enumerates for this query. `Some(None)` records a failed build, in
    /// which case each query falls back to the naive per-subspace path.
    columns: OnceCell<Option<ColumnSet>>,
}

impl<'a> KdeOracle<'a> {
    fn new(
        model: &'a DensityClassifier,
        backends: &'a BackendSet,
        query: &'a [f64],
        query_errors: Option<&'a [f64]>,
    ) -> Self {
        KdeOracle {
            model,
            backends,
            query,
            query_errors,
            columns: OnceCell::new(),
        }
    }

    /// The column caches for this query, built on the first subspace
    /// evaluation. `None` when the backend has no columnar form (HBE) or
    /// any cache failed to build — the per-subspace backend path then
    /// serves as the fallback (it performs the same validation and
    /// surfaces the underlying error per query).
    fn columns(&self) -> Option<&ColumnSet> {
        if self.columns.get().is_some() {
            udm_observe::counter_inc!("udm_classify_column_cache_hits_total");
        } else {
            udm_observe::counter_inc!("udm_classify_column_cache_misses_total");
        }
        self.columns
            .get_or_init(|| {
                let global = self
                    .backends
                    .global
                    .kernel_columns(self.query, self.query_errors)
                    .ok()??;
                let per_class = self
                    .backends
                    .per_class
                    .iter()
                    .map(|be| be.kernel_columns(self.query, self.query_errors).ok()?)
                    .collect::<Option<Vec<_>>>()?;
                Some(ColumnSet { global, per_class })
            })
            .as_ref()
    }
}

impl AccuracyOracle for KdeOracle<'_> {
    fn labels(&self) -> &[ClassLabel] {
        &self.model.labels
    }

    fn accuracies(&self, subspace: Subspace) -> Result<Vec<f64>> {
        // Each density below is bit-for-bit identical between the cached
        // and naive paths, so which one runs never changes a prediction.
        let cached = self.columns();
        let global = match cached {
            Some(set) => set.global.density(subspace)?,
            None => {
                self.backends
                    .global
                    .density_subspace(self.query, self.query_errors, subspace)?
            }
        };
        let mut out = Vec::with_capacity(self.model.labels.len());
        for (i, be) in self.backends.per_class.iter().enumerate() {
            let class_density = match cached {
                Some(set) => set.per_class[i].density(subspace)?,
                None => be.density_subspace(self.query, self.query_errors, subspace)?,
            };
            let a = if global > 0.0 {
                self.model.priors[i] * class_density / global
            } else {
                f64::NAN // numerically empty region: no evidence either way
            };
            out.push(a);
        }
        Ok(out)
    }
}

impl DensityClassifier {
    /// Trains the classifier on a labelled dataset.
    ///
    /// # Errors
    ///
    /// Configuration validation errors; [`UdmError::InvalidConfig`] when
    /// the training data has fewer than 2 classes.
    pub fn fit(train: &UncertainDataset, config: ClassifierConfig) -> Result<Self> {
        let _span_fit = udm_observe::span!("classify_fit");
        config.validate()?;
        let partition = train.partition_by_class();
        if partition.num_classes() < 2 {
            return Err(UdmError::InvalidConfig(format!(
                "training data has {} class(es); need at least 2",
                partition.num_classes()
            )));
        }
        let labels = partition.labels();
        let q = config.micro_clusters;
        let mc_config = MaintainerConfig {
            max_clusters: q,
            distance: config.distance,
        };

        // Global summary over all of D.
        let global = MicroClusterMaintainer::from_dataset(train, mc_config)?;

        // Shared bandwidths from the aggregated global statistics.
        let mut agg = udm_microcluster::MicroCluster::new(train.dim());
        for c in global.clusters() {
            agg.merge(c)?;
        }
        let sigmas: Vec<f64> = (0..train.dim())
            .map(|j| udm_core::num::clamped_sqrt(agg.variance(j)))
            .collect();
        let bandwidths = config
            .bandwidth
            .bandwidths_from_sigmas(&sigmas, train.len())?;

        let global_kde = MicroClusterKde::fit_with_bandwidths(
            global.clusters(),
            bandwidths.clone(),
            config.kernel_form,
            config.error_adjusted,
        )?;

        // Per-class summaries: q_i proportional to |D_i|, at least 1.
        let mut class_kdes = Vec::with_capacity(labels.len());
        let mut priors = Vec::with_capacity(labels.len());
        let mut majority = (labels[0], 0usize);
        for &label in &labels {
            let class_data = partition
                .class(label)
                .ok_or(UdmError::UnknownLabel(label.id()))?;
            // The per-class budget q_i <= q, which fits in usize.
            #[allow(clippy::cast_possible_truncation)]
            let q_i =
                ((q as f64 * class_data.len() as f64 / train.len() as f64).round() as usize).max(1);
            let m = MicroClusterMaintainer::from_dataset(
                class_data,
                MaintainerConfig {
                    max_clusters: q_i,
                    distance: config.distance,
                },
            )?;
            class_kdes.push(MicroClusterKde::fit_with_bandwidths(
                m.clusters(),
                bandwidths.clone(),
                config.kernel_form,
                config.error_adjusted,
            )?);
            priors.push(class_data.len() as f64 / train.len() as f64);
            if class_data.len() > majority.1 {
                majority = (label, class_data.len());
            }
        }

        Ok(DensityClassifier {
            config,
            dim: train.dim(),
            labels,
            priors,
            class_kdes,
            global_kde,
            majority: majority.0,
            runtime: BackendRuntime::default(),
        })
    }

    /// Like [`DensityClassifier::fit`], but builds the global and
    /// per-class micro-cluster summaries on rayon worker threads.
    /// Produces a model identical to the sequential one: the summaries
    /// are deterministic functions of their input partition, and the
    /// per-class results are merged in label order.
    pub fn fit_parallel(train: &UncertainDataset, config: ClassifierConfig) -> Result<Self> {
        let _span_fit = udm_observe::span!("classify_fit_parallel");
        config.validate()?;
        let partition = train.partition_by_class();
        if partition.num_classes() < 2 {
            return Err(UdmError::InvalidConfig(format!(
                "training data has {} class(es); need at least 2",
                partition.num_classes()
            )));
        }
        let labels = partition.labels();
        let q = config.micro_clusters;

        // Global summary + per-class maintainers, concurrently.
        type MaintainerResult = Result<MicroClusterMaintainer>;
        let (global, class_results): (MaintainerResult, Vec<(ClassLabel, MaintainerResult)>) =
            rayon::join(
                || {
                    MicroClusterMaintainer::from_dataset(
                        train,
                        MaintainerConfig {
                            max_clusters: q,
                            distance: config.distance,
                        },
                    )
                },
                || {
                    labels
                        .par_iter()
                        .map(|&label| {
                            let class_data = match partition.class(label) {
                                Some(d) => d,
                                None => return (label, Err(UdmError::UnknownLabel(label.id()))),
                            };
                            // The per-class budget q_i <= q, which fits in usize.
                            #[allow(clippy::cast_possible_truncation)]
                            let q_i = ((q as f64 * class_data.len() as f64 / train.len() as f64)
                                .round() as usize)
                                .max(1);
                            (
                                label,
                                MicroClusterMaintainer::from_dataset(
                                    class_data,
                                    MaintainerConfig {
                                        max_clusters: q_i,
                                        distance: config.distance,
                                    },
                                ),
                            )
                        })
                        .collect()
                },
            );

        let global = global?;
        let mut agg = udm_microcluster::MicroCluster::new(train.dim());
        for c in global.clusters() {
            agg.merge(c)?;
        }
        let sigmas: Vec<f64> = (0..train.dim())
            .map(|j| udm_core::num::clamped_sqrt(agg.variance(j)))
            .collect();
        let bandwidths = config
            .bandwidth
            .bandwidths_from_sigmas(&sigmas, train.len())?;
        let global_kde = MicroClusterKde::fit_with_bandwidths(
            global.clusters(),
            bandwidths.clone(),
            config.kernel_form,
            config.error_adjusted,
        )?;

        let mut class_kdes = Vec::with_capacity(labels.len());
        let mut priors = Vec::with_capacity(labels.len());
        let mut majority = (labels[0], 0usize);
        for (label, maintainer) in class_results {
            let maintainer = maintainer?;
            // Point counts come from an in-memory dataset; usize holds them.
            #[allow(clippy::cast_possible_truncation)]
            let class_len = maintainer.points_seen() as usize;
            class_kdes.push(MicroClusterKde::fit_with_bandwidths(
                maintainer.clusters(),
                bandwidths.clone(),
                config.kernel_form,
                config.error_adjusted,
            )?);
            priors.push(class_len as f64 / train.len() as f64);
            if class_len > majority.1 {
                majority = (label, class_len);
            }
        }

        Ok(DensityClassifier {
            config,
            dim: train.dim(),
            labels,
            priors,
            class_kdes,
            global_kde,
            majority: majority.0,
            runtime: BackendRuntime::default(),
        })
    }

    /// The training configuration.
    pub fn config(&self) -> &ClassifierConfig {
        &self.config
    }

    /// Serializes the trained model to JSON (micro-cluster summaries,
    /// bandwidths, priors — everything needed to classify).
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self).map_err(|e| UdmError::Io(e.to_string()))
    }

    /// Restores a trained model from JSON.
    pub fn from_json(json: &str) -> Result<Self> {
        serde_json::from_str(json).map_err(|e| UdmError::Parse {
            line: 0,
            message: e.to_string(),
        })
    }

    /// Data dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The class labels the model knows, ascending.
    pub fn labels(&self) -> &[ClassLabel] {
        &self.labels
    }

    /// Training-set prior `|D_i|/|D|` of a label.
    pub fn prior(&self, label: ClassLabel) -> Option<f64> {
        self.labels
            .iter()
            .position(|&l| l == label)
            .map(|i| self.priors[i])
    }

    /// The query-error vector the oracle should convolve with: the test
    /// point's own ψ when error adjustment is on and the point actually
    /// carries errors, `None` otherwise (keeps the ψ ≡ 0 fast path).
    fn query_errors_of<'a>(&self, x: &'a UncertainPoint) -> Option<&'a [f64]> {
        if self.config.error_adjusted && self.config.convolve_query_error && !x.is_exact() {
            Some(x.errors())
        } else {
            None
        }
    }

    /// The runtime-selected default density backend spec (starts at
    /// `Exact`; never persisted with the model).
    pub fn backend_spec(&self) -> BackendSpec {
        self.runtime.spec()
    }

    /// Selects the density backend every subsequent query evaluates
    /// through. Interior mutability: works on a shared
    /// `Arc<DensityClassifier>`, so a serving layer can flip backends
    /// without refitting. The backend set is built eagerly so
    /// construction errors surface here rather than per query.
    ///
    /// # Errors
    ///
    /// Spec validation or backend construction failures; the previous
    /// default stays in effect on error.
    pub fn set_backend(&self, spec: BackendSpec) -> Result<()> {
        spec.validate()?;
        self.backends_for(&spec)?;
        if let Ok(mut guard) = self.runtime.default_spec.lock() {
            *guard = spec;
        }
        Ok(())
    }

    /// The cached backend set for `spec`, building it on first use.
    fn backends_for(&self, spec: &BackendSpec) -> Result<Arc<BackendSet>> {
        let key = spec.to_string();
        if let Ok(cache) = self.runtime.cache.lock() {
            if let Some(set) = cache.get(&key) {
                return Ok(Arc::clone(set));
            }
        }
        let built = Arc::new(BackendSet::build(&self.global_kde, &self.class_kdes, spec)?);
        if let Ok(mut cache) = self.runtime.cache.lock() {
            cache.insert(key, Arc::clone(&built));
        }
        Ok(built)
    }

    /// The local accuracy `A(x, S, l)` (Eq. 11) — exposed for inspection
    /// and examples.
    pub fn local_accuracy(
        &self,
        x: &UncertainPoint,
        subspace: Subspace,
        label: ClassLabel,
    ) -> Result<f64> {
        let idx = self
            .labels
            .iter()
            .position(|&l| l == label)
            .ok_or(UdmError::UnknownLabel(label.id()))?;
        let set = self.backends_for(&self.runtime.spec())?;
        let oracle = KdeOracle::new(self, &set, x.values(), self.query_errors_of(x));
        Ok(oracle.accuracies(subspace)?[idx])
    }

    /// Class scores for a point: the full-space local accuracies
    /// `A(x, full, l_i)` (Eq. 11 over all dimensions), normalized to sum
    /// to 1 when any mass exists. A cheap posterior-like summary that
    /// skips the subspace roll-up.
    pub fn class_scores(&self, x: &UncertainPoint) -> Result<Vec<(ClassLabel, f64)>> {
        if x.dim() != self.dim {
            return Err(UdmError::DimensionMismatch {
                expected: self.dim,
                actual: x.dim(),
            });
        }
        let set = self.backends_for(&self.runtime.spec())?;
        let oracle = KdeOracle::new(self, &set, x.values(), self.query_errors_of(x));
        self.scores_from(&oracle)
    }

    /// Full-space normalized scores from an already-built oracle, so the
    /// kernel-column caches can be shared with a roll-up over the same
    /// query.
    fn scores_from(&self, oracle: &KdeOracle<'_>) -> Result<Vec<(ClassLabel, f64)>> {
        let accs = oracle.accuracies(Subspace::full(self.dim)?)?;
        let total: f64 = accs.iter().filter(|a| a.is_finite()).sum();
        Ok(self
            .labels
            .iter()
            .zip(accs.iter())
            .map(|(&l, &a)| {
                let score = if a.is_finite() && total > 0.0 {
                    a / total
                } else {
                    0.0
                };
                (l, score)
            })
            .collect())
    }

    /// Classifies a point, returning the full decision trace.
    pub fn classify_detailed(&self, x: &UncertainPoint) -> Result<ClassificationOutcome> {
        if x.dim() != self.dim {
            return Err(UdmError::DimensionMismatch {
                expected: self.dim,
                actual: x.dim(),
            });
        }
        udm_core::num::ensure_finite_slice("query point values", x.values())?;
        udm_core::num::ensure_finite_slice("query point errors", x.errors())?;
        let _span_point = udm_observe::span!("classify_point");
        let set = self.backends_for(&self.runtime.spec())?;
        let oracle = KdeOracle::new(self, &set, x.values(), self.query_errors_of(x));
        self.decide(&oracle)
    }

    /// Classifies a point and reports the normalized full-space class
    /// scores in one pass over a *single* set of per-query kernel-column
    /// caches. Bit-identical to calling [`DensityClassifier::classify_detailed`]
    /// and [`DensityClassifier::class_scores`] back to back — sharing the
    /// oracle only avoids rebuilding the column caches (one full-dimension
    /// density evaluation per KDE), which is the dominant per-query cost
    /// for a serving layer that wants both the decision and its scores.
    ///
    /// # Errors
    ///
    /// [`UdmError::DimensionMismatch`] on a wrong-width query;
    /// [`UdmError::InvalidValue`] for non-finite values or errors;
    /// evaluation errors from the underlying KDEs.
    pub fn classify_scored(
        &self,
        x: &UncertainPoint,
    ) -> Result<(ClassificationOutcome, Vec<(ClassLabel, f64)>)> {
        self.classify_scored_with_backend(x, &self.runtime.spec())
    }

    /// Like [`DensityClassifier::classify_scored`], but evaluates every
    /// density through the backend selected by `spec` for this call
    /// only — the runtime default is untouched. Serving layers use this
    /// for per-request backend overrides.
    ///
    /// # Errors
    ///
    /// As [`DensityClassifier::classify_scored`], plus spec validation
    /// and backend construction failures.
    pub fn classify_scored_with_backend(
        &self,
        x: &UncertainPoint,
        spec: &BackendSpec,
    ) -> Result<(ClassificationOutcome, Vec<(ClassLabel, f64)>)> {
        if x.dim() != self.dim {
            return Err(UdmError::DimensionMismatch {
                expected: self.dim,
                actual: x.dim(),
            });
        }
        udm_core::num::ensure_finite_slice("query point values", x.values())?;
        udm_core::num::ensure_finite_slice("query point errors", x.errors())?;
        let _span_point = udm_observe::span!("classify_point");
        let set = self.backends_for(spec)?;
        let oracle = KdeOracle::new(self, &set, x.values(), self.query_errors_of(x));
        let outcome = self.decide(&oracle)?;
        let scores = self.scores_from(&oracle)?;
        Ok((outcome, scores))
    }

    /// The subspace roll-up decision from an already-built oracle.
    fn decide(&self, oracle: &KdeOracle<'_>) -> Result<ClassificationOutcome> {
        let outcome = rollup(
            oracle,
            self.dim,
            self.config.accuracy_threshold,
            RollupLimits::from_config(&self.config),
        )?;
        let selected =
            select_non_overlapping(outcome.qualifying, self.config.max_selected_subspaces);

        if selected.is_empty() {
            let label = match (self.config.fallback, outcome.best_singleton) {
                (Fallback::BestSingleton, Some(best)) => best.label,
                _ => self.majority,
            };
            return Ok(ClassificationOutcome {
                label,
                selected: Vec::new(),
                candidates_evaluated: outcome.candidates_evaluated,
                used_fallback: true,
            });
        }

        // Majority vote over the dominant classes of the selected sets;
        // ties broken by summed accuracy, then by label order.
        let mut votes: BTreeMap<ClassLabel, (usize, f64)> = BTreeMap::new();
        for s in &selected {
            let e = votes.entry(s.label).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += s.accuracy;
        }
        // `selected` was verified non-empty above, so at least one vote
        // exists; the error path is unreachable but typed.
        let (&label, _) = votes
            .iter()
            .max_by(|(_, (ca, aa)), (_, (cb, ab))| ca.cmp(cb).then(aa.total_cmp(ab)))
            .ok_or(UdmError::EmptyDataset)?;

        Ok(ClassificationOutcome {
            label,
            selected,
            candidates_evaluated: outcome.candidates_evaluated,
            used_fallback: false,
        })
    }
}

impl Classifier for DensityClassifier {
    fn classify(&self, x: &UncertainPoint) -> Result<ClassLabel> {
        Ok(self.classify_detailed(x)?.label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udm_data::{ErrorModel, GaussianClassSpec, MixtureGenerator};

    /// Well-separated 2-class mixture in 3 dims; only dims 0 and 1 are
    /// informative, dim 2 is identical noise for both classes.
    fn informative_mixture() -> MixtureGenerator {
        MixtureGenerator::new(
            3,
            vec![
                GaussianClassSpec {
                    mean: vec![0.0, 0.0, 0.0],
                    std: vec![1.0, 1.0, 1.0],
                    weight: 1.0,
                },
                GaussianClassSpec {
                    mean: vec![4.0, 4.0, 0.0],
                    std: vec![1.0, 1.0, 1.0],
                    weight: 1.0,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn rejects_single_class_training() {
        let g = MixtureGenerator::new(1, vec![GaussianClassSpec::spherical(vec![0.0], 1.0, 1.0)])
            .unwrap();
        let d = g.generate(50, 1);
        assert!(DensityClassifier::fit(&d, ClassifierConfig::default()).is_err());
    }

    #[test]
    fn learns_well_separated_classes() {
        let g = informative_mixture();
        let train = g.generate(600, 10);
        let test = g.generate(200, 11);
        let model = DensityClassifier::fit(&train, ClassifierConfig::error_adjusted(60)).unwrap();
        let mut correct = 0;
        for p in test.iter() {
            if model.classify(p).unwrap() == p.label().unwrap() {
                correct += 1;
            }
        }
        let acc = correct as f64 / test.len() as f64;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn classify_detailed_reports_subspaces() {
        let g = informative_mixture();
        let train = g.generate(600, 20);
        let model = DensityClassifier::fit(&train, ClassifierConfig::error_adjusted(60)).unwrap();
        // A point deep in class 1 territory.
        let x = UncertainPoint::exact(vec![4.0, 4.0, 0.0]).unwrap();
        let out = model.classify_detailed(&x).unwrap();
        assert_eq!(out.label, ClassLabel(1));
        assert!(!out.used_fallback);
        assert!(!out.selected.is_empty());
        assert!(out.candidates_evaluated >= 3);
        // Selected subspaces are pairwise non-overlapping.
        for (i, a) in out.selected.iter().enumerate() {
            for b in &out.selected[i + 1..] {
                assert!(!a.subspace.overlaps(b.subspace));
            }
        }
    }

    #[test]
    fn discriminative_dims_have_higher_accuracy() {
        let g = informative_mixture();
        let train = g.generate(800, 30);
        let model = DensityClassifier::fit(&train, ClassifierConfig::error_adjusted(60)).unwrap();
        let x = UncertainPoint::exact(vec![4.0, 4.0, 0.0]).unwrap();
        let informative = model
            .local_accuracy(&x, Subspace::singleton(0).unwrap(), ClassLabel(1))
            .unwrap();
        let noise = model
            .local_accuracy(&x, Subspace::singleton(2).unwrap(), ClassLabel(1))
            .unwrap();
        assert!(
            informative > noise,
            "informative {informative} vs noise {noise}"
        );
        // The noise dimension carries no signal: accuracy ≈ prior (0.5).
        assert!((noise - 0.5).abs() < 0.15, "noise-dim accuracy {noise}");
    }

    #[test]
    fn error_adjusted_beats_unadjusted_under_heavy_noise() {
        let g = informative_mixture();
        let clean_train = g.generate(800, 40);
        let clean_test = g.generate(300, 41);
        let noisy_train = ErrorModel::paper(2.0).apply(&clean_train, 42).unwrap();
        let noisy_test = ErrorModel::paper(2.0).apply(&clean_test, 43).unwrap();

        let adj =
            DensityClassifier::fit(&noisy_train, ClassifierConfig::error_adjusted(60)).unwrap();
        let unadj = DensityClassifier::fit(&noisy_train, ClassifierConfig::unadjusted(60)).unwrap();

        let accuracy = |m: &DensityClassifier| {
            let mut c = 0;
            for p in noisy_test.iter() {
                if m.classify(p).unwrap() == p.label().unwrap() {
                    c += 1;
                }
            }
            c as f64 / noisy_test.len() as f64
        };
        let a_adj = accuracy(&adj);
        let a_unadj = accuracy(&unadj);
        assert!(
            a_adj >= a_unadj - 0.02,
            "adjusted {a_adj} vs unadjusted {a_unadj}"
        );
        assert!(a_adj > 0.6, "adjusted accuracy too low: {a_adj}");
    }

    #[test]
    fn identical_at_zero_error() {
        // The paper: "the two density based classifiers had exactly the
        // same accuracy when the error-parameter was zero."
        let g = informative_mixture();
        let train = g.generate(400, 50);
        let test = g.generate(100, 51);
        let adj = DensityClassifier::fit(&train, ClassifierConfig::error_adjusted(40)).unwrap();
        let unadj = DensityClassifier::fit(&train, ClassifierConfig::unadjusted(40)).unwrap();
        for p in test.iter() {
            assert_eq!(adj.classify(p).unwrap(), unadj.classify(p).unwrap());
        }
    }

    #[test]
    fn classify_scored_matches_separate_calls_bitwise() {
        let g = informative_mixture();
        let train = g.generate(400, 55);
        let test = ErrorModel::paper(1.0)
            .apply(&g.generate(40, 56), 57)
            .unwrap();
        let model = DensityClassifier::fit(&train, ClassifierConfig::error_adjusted(40)).unwrap();
        for p in test.iter() {
            let (outcome, scores) = model.classify_scored(p).unwrap();
            let detailed = model.classify_detailed(p).unwrap();
            let separate = model.class_scores(p).unwrap();
            assert_eq!(outcome, detailed);
            assert_eq!(scores.len(), separate.len());
            for ((la, sa), (lb, sb)) in scores.iter().zip(separate.iter()) {
                assert_eq!(la, lb);
                assert_eq!(sa.to_bits(), sb.to_bits(), "score drift for {la:?}");
            }
        }
    }

    #[test]
    fn classify_scored_rejects_bad_queries() {
        let g = informative_mixture();
        let train = g.generate(100, 58);
        let model = DensityClassifier::fit(&train, ClassifierConfig::error_adjusted(20)).unwrap();
        let wrong = UncertainPoint::exact(vec![0.0]).unwrap();
        assert!(model.classify_scored(&wrong).is_err());
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let g = informative_mixture();
        let train = g.generate(100, 60);
        let model = DensityClassifier::fit(&train, ClassifierConfig::error_adjusted(20)).unwrap();
        let wrong = UncertainPoint::exact(vec![0.0]).unwrap();
        assert!(model.classify_detailed(&wrong).is_err());
    }

    #[test]
    fn fallback_majority_when_threshold_unreachable() {
        let g = informative_mixture();
        let train = g.generate(300, 70);
        let mut config = ClassifierConfig::error_adjusted(30);
        config.accuracy_threshold = 1e9; // nothing can qualify
        config.fallback = Fallback::MajorityClass;
        let model = DensityClassifier::fit(&train, config).unwrap();
        let x = UncertainPoint::exact(vec![0.0, 0.0, 0.0]).unwrap();
        let out = model.classify_detailed(&x).unwrap();
        assert!(out.used_fallback);
        assert!(out.selected.is_empty());
        assert_eq!(Some(out.label), {
            let part = train.partition_by_class();
            part.labels()
                .into_iter()
                .max_by_key(|&l| part.class(l).unwrap().len())
        });
    }

    #[test]
    fn fallback_best_singleton_is_instance_specific() {
        let g = informative_mixture();
        let train = g.generate(600, 80);
        let mut config = ClassifierConfig::error_adjusted(60);
        config.accuracy_threshold = 1e9;
        config.fallback = Fallback::BestSingleton;
        let model = DensityClassifier::fit(&train, config).unwrap();
        let x0 = UncertainPoint::exact(vec![0.0, 0.0, 0.0]).unwrap();
        let x1 = UncertainPoint::exact(vec![4.0, 4.0, 0.0]).unwrap();
        assert_eq!(model.classify(&x0).unwrap(), ClassLabel(0));
        assert_eq!(model.classify(&x1).unwrap(), ClassLabel(1));
    }

    #[test]
    fn class_scores_normalized_and_discriminative() {
        let g = informative_mixture();
        let train = g.generate(400, 95);
        let model = DensityClassifier::fit(&train, ClassifierConfig::error_adjusted(30)).unwrap();
        let x = UncertainPoint::exact(vec![4.0, 4.0, 0.0]).unwrap();
        let scores = model.class_scores(&x).unwrap();
        assert_eq!(scores.len(), 2);
        let total: f64 = scores.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // class 1 dominates at its own centroid
        let s1 = scores.iter().find(|(l, _)| *l == ClassLabel(1)).unwrap().1;
        assert!(s1 > 0.8, "score {s1}");
        // arity validated
        assert!(model
            .class_scores(&UncertainPoint::exact(vec![0.0]).unwrap())
            .is_err());
    }

    #[test]
    fn parallel_fit_equals_sequential_fit() {
        let g = informative_mixture();
        let train = g.generate(400, 99);
        let seq = DensityClassifier::fit(&train, ClassifierConfig::error_adjusted(30)).unwrap();
        let par =
            DensityClassifier::fit_parallel(&train, ClassifierConfig::error_adjusted(30)).unwrap();
        let test = g.generate(80, 100);
        for p in test.iter() {
            assert_eq!(seq.classify(p).unwrap(), par.classify(p).unwrap());
        }
        assert_eq!(seq.labels(), par.labels());
        // The parallel fit is *bitwise* identical, not merely equivalent:
        // the serialized models (exact float round-trip) must match.
        assert_eq!(seq.to_json().unwrap(), par.to_json().unwrap());
    }

    #[test]
    fn json_roundtrip_preserves_decisions() {
        let g = informative_mixture();
        let train = g.generate(300, 97);
        let model = DensityClassifier::fit(&train, ClassifierConfig::error_adjusted(25)).unwrap();
        let json = model.to_json().unwrap();
        let restored = DensityClassifier::from_json(&json).unwrap();
        let test = g.generate(60, 98);
        for p in test.iter() {
            assert_eq!(model.classify(p).unwrap(), restored.classify(p).unwrap());
        }
        assert!(DensityClassifier::from_json("{bad").is_err());
    }

    #[test]
    fn exact_backend_default_is_bit_identical_to_pre_trait_path() {
        // The trait refactor must not move a single bit: the default
        // (Exact) backend and an explicit Exact override both reproduce
        // the direct-KDE decision and scores exactly.
        let g = informative_mixture();
        let train = g.generate(400, 110);
        let test = ErrorModel::paper(1.0)
            .apply(&g.generate(40, 111), 112)
            .unwrap();
        let model = DensityClassifier::fit(&train, ClassifierConfig::error_adjusted(40)).unwrap();
        assert_eq!(model.backend_spec(), BackendSpec::Exact);
        for p in test.iter() {
            let (default_out, default_scores) = model.classify_scored(p).unwrap();
            let (exact_out, exact_scores) = model
                .classify_scored_with_backend(p, &BackendSpec::Exact)
                .unwrap();
            assert_eq!(default_out, exact_out);
            for ((la, sa), (lb, sb)) in default_scores.iter().zip(exact_scores.iter()) {
                assert_eq!(la, lb);
                assert_eq!(sa.to_bits(), sb.to_bits());
            }
        }
    }

    #[test]
    fn approximate_backends_mostly_agree_with_exact() {
        let g = informative_mixture();
        let train = g.generate(600, 120);
        let test = g.generate(100, 121);
        let model = DensityClassifier::fit(&train, ClassifierConfig::error_adjusted(60)).unwrap();
        for spec in [
            BackendSpec::Coreset { eps: 0.05 },
            BackendSpec::Hbe {
                eps: 0.1,
                tau: 0.05,
            },
        ] {
            let mut agree = 0;
            for p in test.iter() {
                let exact = model.classify(p).unwrap();
                let approx = model
                    .classify_scored_with_backend(p, &spec)
                    .unwrap()
                    .0
                    .label;
                if exact == approx {
                    agree += 1;
                }
            }
            let rate = agree as f64 / test.len() as f64;
            assert!(rate > 0.9, "{spec}: agreement {rate}");
        }
    }

    #[test]
    fn set_backend_flips_default_and_survives_clone_not_json() {
        let g = informative_mixture();
        let train = g.generate(300, 130);
        let model = DensityClassifier::fit(&train, ClassifierConfig::error_adjusted(30)).unwrap();
        model
            .set_backend(BackendSpec::Coreset { eps: 0.1 })
            .unwrap();
        assert_eq!(model.backend_spec(), BackendSpec::Coreset { eps: 0.1 });
        // The spec follows a clone (runtime state copies, cache rebuilds)…
        assert_eq!(
            model.clone().backend_spec(),
            BackendSpec::Coreset { eps: 0.1 }
        );
        // …but not serialization: persisted models are backend-agnostic.
        let restored = DensityClassifier::from_json(&model.to_json().unwrap()).unwrap();
        assert_eq!(restored.backend_spec(), BackendSpec::Exact);
        // Invalid specs are rejected and leave the default untouched.
        assert!(model
            .set_backend(BackendSpec::Coreset { eps: 7.0 })
            .is_err());
        assert_eq!(model.backend_spec(), BackendSpec::Coreset { eps: 0.1 });
    }

    #[test]
    fn backend_runtime_does_not_change_serialized_form() {
        // `parallel_fit_equals_sequential_fit` compares JSON strings; the
        // runtime field must serialize identically (Null) on every model.
        let g = informative_mixture();
        let train = g.generate(200, 140);
        let model = DensityClassifier::fit(&train, ClassifierConfig::error_adjusted(20)).unwrap();
        let before = model.to_json().unwrap();
        model
            .set_backend(BackendSpec::Hbe { eps: 0.2, tau: 0.1 })
            .unwrap();
        assert_eq!(model.to_json().unwrap(), before);
    }

    #[test]
    fn priors_reported() {
        let g = informative_mixture();
        let train = g.generate(400, 90);
        let model = DensityClassifier::fit(&train, ClassifierConfig::error_adjusted(20)).unwrap();
        let p0 = model.prior(ClassLabel(0)).unwrap();
        let p1 = model.prior(ClassLabel(1)).unwrap();
        assert!((p0 + p1 - 1.0).abs() < 1e-12);
        assert!(model.prior(ClassLabel(9)).is_none());
    }
}
