//! Naive density Bayes: the simplest classifier the paper's density
//! transform supports.
//!
//! Instead of searching for discriminative subspaces (Fig. 3), assume
//! dimension independence and score each class by its prior times the
//! product of *one-dimensional* error-adjusted class-conditional
//! densities:
//!
//! ```text
//! score(l, x) = |D_l|/|D| · Π_j g(x_j, {j}, D_l)
//! ```
//!
//! All densities come from the same micro-cluster summaries as the full
//! classifier, so training cost is identical and classification is
//! `O(k·d·q)` with no roll-up — a fast, strong baseline that shows how
//! little code a new density-based algorithm needs on this substrate.

use crate::config::ClassifierConfig;
use crate::eval::Classifier;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use udm_core::{ClassLabel, Result, Subspace, UdmError, UncertainDataset, UncertainPoint};
use udm_kde::{BackendSpec, DensityBackend};
use udm_microcluster::{build_backend, MaintainerConfig, MicroClusterKde, MicroClusterMaintainer};

/// A trained naive density Bayes classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NaiveDensityBayes {
    dim: usize,
    labels: Vec<ClassLabel>,
    log_priors: Vec<f64>,
    class_kdes: Vec<MicroClusterKde>,
    convolve_query_error: bool,
    runtime: NaiveBackendRuntime,
}

/// One backend per class, in `labels` order, shared across threads.
type ClassBackends = Arc<Vec<Arc<dyn DensityBackend>>>;

/// Runtime-only backend selection (same shape as the full classifier's):
/// a default [`BackendSpec`] plus a per-spec cache of built per-class
/// backends. Never serialized; restored models start back at `Exact`.
#[derive(Debug, Default)]
struct NaiveBackendRuntime {
    default_spec: Mutex<BackendSpec>,
    cache: Mutex<HashMap<String, ClassBackends>>,
}

impl NaiveBackendRuntime {
    fn spec(&self) -> BackendSpec {
        self.default_spec
            .lock()
            .map(|g| *g)
            .unwrap_or(BackendSpec::Exact)
    }
}

impl Clone for NaiveBackendRuntime {
    fn clone(&self) -> Self {
        NaiveBackendRuntime {
            default_spec: Mutex::new(self.spec()),
            cache: Mutex::new(HashMap::new()),
        }
    }
}

impl serde::Serialize for NaiveBackendRuntime {
    fn to_value(&self) -> serde::Value {
        serde::Value::Null
    }
}

impl serde::Deserialize for NaiveBackendRuntime {
    fn from_value(_: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        Ok(NaiveBackendRuntime::default())
    }
}

impl NaiveDensityBayes {
    /// Trains on a labelled dataset using the classifier configuration's
    /// micro-cluster budget, bandwidth rule and error-adjustment flags.
    pub fn fit(train: &UncertainDataset, config: ClassifierConfig) -> Result<Self> {
        config.validate()?;
        let partition = train.partition_by_class();
        if partition.num_classes() < 2 {
            return Err(UdmError::InvalidConfig(format!(
                "training data has {} class(es); need at least 2",
                partition.num_classes()
            )));
        }
        let labels = partition.labels();

        // Shared bandwidths from a global summary, as in the full model.
        let global = MicroClusterMaintainer::from_dataset(
            train,
            MaintainerConfig {
                max_clusters: config.micro_clusters,
                distance: config.distance,
            },
        )?;
        let mut agg = udm_microcluster::MicroCluster::new(train.dim());
        for c in global.clusters() {
            agg.merge(c)?;
        }
        let sigmas: Vec<f64> = (0..train.dim())
            .map(|j| udm_core::num::clamped_sqrt(agg.variance(j)))
            .collect();
        let bandwidths = config
            .bandwidth
            .bandwidths_from_sigmas(&sigmas, train.len())?;

        let mut class_kdes = Vec::with_capacity(labels.len());
        let mut log_priors = Vec::with_capacity(labels.len());
        for &label in &labels {
            let class_data = partition
                .class(label)
                .ok_or(UdmError::UnknownLabel(label.id()))?;
            // The per-class budget q_i <= micro_clusters, which fits in usize.
            #[allow(clippy::cast_possible_truncation)]
            let q_i =
                ((config.micro_clusters as f64 * class_data.len() as f64 / train.len() as f64)
                    .round() as usize)
                    .max(1);
            let m = MicroClusterMaintainer::from_dataset(
                class_data,
                MaintainerConfig {
                    max_clusters: q_i,
                    distance: config.distance,
                },
            )?;
            class_kdes.push(MicroClusterKde::fit_with_bandwidths(
                m.clusters(),
                bandwidths.clone(),
                config.kernel_form,
                config.error_adjusted,
            )?);
            log_priors.push((class_data.len() as f64 / train.len() as f64).ln());
        }

        Ok(NaiveDensityBayes {
            dim: train.dim(),
            labels,
            log_priors,
            class_kdes,
            convolve_query_error: config.error_adjusted && config.convolve_query_error,
            runtime: NaiveBackendRuntime::default(),
        })
    }

    /// The class labels, ascending.
    pub fn labels(&self) -> &[ClassLabel] {
        &self.labels
    }

    /// The runtime-selected default density backend spec.
    pub fn backend_spec(&self) -> BackendSpec {
        self.runtime.spec()
    }

    /// Selects the density backend for subsequent queries (interior
    /// mutability, so it works through a shared `Arc`). Built eagerly so
    /// construction errors surface here rather than per query.
    ///
    /// # Errors
    ///
    /// Spec validation or backend construction failures; the previous
    /// default stays in effect on error.
    pub fn set_backend(&self, spec: BackendSpec) -> Result<()> {
        spec.validate()?;
        self.backends_for(&spec)?;
        if let Ok(mut guard) = self.runtime.default_spec.lock() {
            *guard = spec;
        }
        Ok(())
    }

    /// The cached per-class backends for `spec`, building on first use.
    fn backends_for(&self, spec: &BackendSpec) -> Result<ClassBackends> {
        let key = spec.to_string();
        if let Ok(cache) = self.runtime.cache.lock() {
            if let Some(set) = cache.get(&key) {
                return Ok(Arc::clone(set));
            }
        }
        let built = Arc::new(
            self.class_kdes
                .iter()
                .map(|kde| build_backend(kde, spec))
                .collect::<Result<Vec<_>>>()?,
        );
        if let Ok(mut cache) = self.runtime.cache.lock() {
            cache.insert(key, Arc::clone(&built));
        }
        Ok(built)
    }

    /// Log-score of each class at `x` (unnormalized log-posterior).
    pub fn log_scores(&self, x: &UncertainPoint) -> Result<Vec<(ClassLabel, f64)>> {
        if x.dim() != self.dim {
            return Err(UdmError::DimensionMismatch {
                expected: self.dim,
                actual: x.dim(),
            });
        }
        let query_errors = if self.convolve_query_error && !x.is_exact() {
            Some(x.errors())
        } else {
            None
        };
        let backends = self.backends_for(&self.runtime.spec())?;
        // Every singleton dimension in one batch call per class, so
        // backends can amortize per-query work (columns, hash probes).
        let singletons = (0..self.dim)
            .map(Subspace::singleton)
            .collect::<Result<Vec<_>>>()?;
        let mut out = Vec::with_capacity(self.labels.len());
        for (i, be) in backends.iter().enumerate() {
            let mut log_score = self.log_priors[i];
            for g in be.density_subspaces(x.values(), query_errors, &singletons)? {
                // Floor against log(0): an empty class region contributes a
                // large but finite penalty so other dimensions still count.
                log_score += g.max(1e-300).ln();
            }
            out.push((self.labels[i], log_score));
        }
        Ok(out)
    }
}

impl Classifier for NaiveDensityBayes {
    fn classify(&self, x: &UncertainPoint) -> Result<ClassLabel> {
        let scores = self.log_scores(x)?;
        // Fitting requires ≥ 2 classes, so scores is never empty; the
        // error path is unreachable but typed.
        Ok(scores
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .ok_or(UdmError::EmptyDataset)?
            .0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use udm_data::{stratified_split, ErrorModel, GaussianClassSpec, MixtureGenerator, UciDataset};

    fn blobs(n: usize, seed: u64) -> UncertainDataset {
        MixtureGenerator::new(
            2,
            vec![
                GaussianClassSpec::spherical(vec![0.0, 0.0], 1.0, 1.0),
                GaussianClassSpec::spherical(vec![5.0, 5.0], 1.0, 1.0),
            ],
        )
        .unwrap()
        .generate(n, seed)
    }

    #[test]
    fn rejects_single_class() {
        let g = MixtureGenerator::new(1, vec![GaussianClassSpec::spherical(vec![0.0], 1.0, 1.0)])
            .unwrap();
        let d = g.generate(30, 1);
        assert!(NaiveDensityBayes::fit(&d, ClassifierConfig::error_adjusted(10)).is_err());
    }

    #[test]
    fn separable_blobs_classify_well() {
        let train = blobs(400, 2);
        let test = blobs(150, 3);
        let model = NaiveDensityBayes::fit(&train, ClassifierConfig::error_adjusted(30)).unwrap();
        let acc = evaluate(&model, &test).unwrap().accuracy();
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn log_scores_ordered_and_validated() {
        let train = blobs(300, 4);
        let model = NaiveDensityBayes::fit(&train, ClassifierConfig::error_adjusted(20)).unwrap();
        let x = UncertainPoint::exact(vec![5.0, 5.0]).unwrap();
        let scores = model.log_scores(&x).unwrap();
        assert_eq!(scores.len(), 2);
        let s1 = scores.iter().find(|(l, _)| *l == ClassLabel(1)).unwrap().1;
        let s0 = scores.iter().find(|(l, _)| *l == ClassLabel(0)).unwrap().1;
        assert!(s1 > s0);
        assert!(model
            .log_scores(&UncertainPoint::exact(vec![0.0]).unwrap())
            .is_err());
    }

    #[test]
    fn reasonable_on_noisy_standin() {
        let clean = UciDataset::BreastCancer.generate(500, 5);
        let noisy = ErrorModel::paper(1.0).apply(&clean, 6).unwrap();
        let split = stratified_split(&noisy, 0.3, 7).unwrap();
        let model =
            NaiveDensityBayes::fit(&split.train, ClassifierConfig::error_adjusted(30)).unwrap();
        let acc = evaluate(&model, &split.test).unwrap().accuracy();
        assert!(acc > 0.6, "accuracy {acc}");
    }

    #[test]
    fn far_query_does_not_panic_on_log_zero() {
        let train = blobs(200, 8);
        let model = NaiveDensityBayes::fit(&train, ClassifierConfig::error_adjusted(20)).unwrap();
        let x = UncertainPoint::exact(vec![1e6, -1e6]).unwrap();
        let label = model.classify(&x).unwrap();
        assert!(model.labels().contains(&label));
    }
}
