//! The nearest-neighbor baseline classifier.
//!
//! §4: "a standard nearest neighbor classification algorithm which
//! reported the class label of its nearest record". It is error-oblivious
//! by design — exactly the comparator whose accuracy collapses as the
//! injected error grows (Figs. 4, 6).

use crate::eval::Classifier;
use udm_core::{ClassLabel, Result, UdmError, UncertainDataset, UncertainPoint};

/// Brute-force 1-nearest-neighbor classifier on raw coordinate values.
#[derive(Debug, Clone)]
pub struct NnClassifier {
    /// Flattened training coordinates, row-major.
    coords: Vec<f64>,
    labels: Vec<ClassLabel>,
    dim: usize,
}

impl NnClassifier {
    /// Stores the labelled points of the training set (unlabelled points
    /// are ignored).
    ///
    /// # Errors
    ///
    /// [`UdmError::EmptyDataset`] when no labelled point exists.
    pub fn fit(train: &UncertainDataset) -> Result<Self> {
        let mut coords = Vec::with_capacity(train.len() * train.dim());
        let mut labels = Vec::with_capacity(train.len());
        for p in train.iter() {
            if let Some(l) = p.label() {
                coords.extend_from_slice(p.values());
                labels.push(l);
            }
        }
        if labels.is_empty() {
            return Err(UdmError::EmptyDataset);
        }
        Ok(NnClassifier {
            coords,
            labels,
            dim: train.dim(),
        })
    }

    /// Number of stored training points.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when no training points are stored (cannot occur after a
    /// successful [`NnClassifier::fit`]).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

impl Classifier for NnClassifier {
    fn classify(&self, x: &UncertainPoint) -> Result<ClassLabel> {
        if x.dim() != self.dim {
            return Err(UdmError::DimensionMismatch {
                expected: self.dim,
                actual: x.dim(),
            });
        }
        let q = x.values();
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, row) in self.coords.chunks_exact(self.dim).enumerate() {
            let mut d = 0.0;
            for (a, b) in q.iter().zip(row.iter()) {
                let diff = a - b;
                d += diff * diff;
                if d >= best_d {
                    break;
                }
            }
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        Ok(self.labels[best])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labelled(values: &[f64], label: u32) -> UncertainPoint {
        UncertainPoint::exact(values.to_vec())
            .unwrap()
            .with_label(ClassLabel(label))
    }

    #[test]
    fn empty_training_rejected() {
        let d =
            UncertainDataset::from_points(vec![UncertainPoint::exact(vec![0.0]).unwrap()]).unwrap();
        assert!(NnClassifier::fit(&d).is_err()); // present but unlabelled
    }

    #[test]
    fn nearest_label_wins() {
        let train = UncertainDataset::from_points(vec![
            labelled(&[0.0, 0.0], 0),
            labelled(&[10.0, 10.0], 1),
        ])
        .unwrap();
        let nn = NnClassifier::fit(&train).unwrap();
        assert_eq!(
            nn.classify(&UncertainPoint::exact(vec![1.0, 1.0]).unwrap())
                .unwrap(),
            ClassLabel(0)
        );
        assert_eq!(
            nn.classify(&UncertainPoint::exact(vec![9.0, 9.0]).unwrap())
                .unwrap(),
            ClassLabel(1)
        );
    }

    #[test]
    fn exact_match_returns_its_label() {
        let train =
            UncertainDataset::from_points(vec![labelled(&[5.0], 3), labelled(&[7.0], 4)]).unwrap();
        let nn = NnClassifier::fit(&train).unwrap();
        assert_eq!(
            nn.classify(&UncertainPoint::exact(vec![7.0]).unwrap())
                .unwrap(),
            ClassLabel(4)
        );
    }

    #[test]
    fn ignores_errors_entirely() {
        // Same values with different recorded errors must classify alike.
        let train =
            UncertainDataset::from_points(vec![labelled(&[0.0], 0), labelled(&[10.0], 1)]).unwrap();
        let nn = NnClassifier::fit(&train).unwrap();
        let precise = UncertainPoint::new(vec![2.0], vec![0.0]).unwrap();
        let noisy = UncertainPoint::new(vec![2.0], vec![50.0]).unwrap();
        assert_eq!(nn.classify(&precise).unwrap(), nn.classify(&noisy).unwrap());
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let train =
            UncertainDataset::from_points(vec![labelled(&[0.0, 1.0], 0), labelled(&[1.0, 0.0], 1)])
                .unwrap();
        let nn = NnClassifier::fit(&train).unwrap();
        assert!(nn
            .classify(&UncertainPoint::exact(vec![0.0]).unwrap())
            .is_err());
    }

    #[test]
    fn unlabelled_points_skipped() {
        let train = UncertainDataset::from_points(vec![
            labelled(&[0.0], 0),
            UncertainPoint::exact(vec![1.0]).unwrap(), // unlabelled, closer
            labelled(&[10.0], 1),
        ])
        .unwrap();
        let nn = NnClassifier::fit(&train).unwrap();
        assert_eq!(nn.len(), 2);
        assert_eq!(
            nn.classify(&UncertainPoint::exact(vec![1.4]).unwrap())
                .unwrap(),
            ClassLabel(0)
        );
    }
}
