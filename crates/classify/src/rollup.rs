//! The Apriori-style subspace roll-up of Figure 3.
//!
//! Starting from all 1-dimensional subspaces (`C_1`), each level keeps the
//! subspaces in which some class exceeds the accuracy threshold (`L_i`)
//! and generates the next candidate level by joining with `L_1`
//! (`C_{i+1} = L_i ⋈ L_1`). The join construction itself enforces the
//! paper's roll-up requirement that an `(i+1)`-dimensional candidate has
//! at least one qualifying `i`-dimensional subset.

use crate::config::ClassifierConfig;
use std::collections::BTreeSet;
use udm_core::{ClassLabel, Result, Subspace};

/// Supplies local accuracies `A(x, S, l_i)` for a fixed test point `x`.
///
/// Implemented by the classifier model (backed by micro-cluster densities,
/// Eq. 11); test code substitutes table-driven fakes.
pub trait AccuracyOracle {
    /// The class labels `l_1 … l_k`, in a stable order.
    fn labels(&self) -> &[ClassLabel];

    /// `A(x, S, l)` for every label, aligned with [`Self::labels`].
    fn accuracies(&self, subspace: Subspace) -> Result<Vec<f64>>;
}

/// A subspace that cleared the threshold, with its dominant class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiscriminativeSubspace {
    /// The qualifying set of dimensions.
    pub subspace: Subspace,
    /// The best local accuracy over classes, `max_i A(x, S, l_i)`.
    pub accuracy: f64,
    /// The dominant class `dom(x, S)` (Eq. 12).
    pub label: ClassLabel,
}

/// Engineering guards on the roll-up (see [`ClassifierConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RollupLimits {
    /// Stop after subspaces of this many dimensions.
    pub max_dim: Option<usize>,
    /// Evaluate at most this many candidates per level.
    pub max_candidates_per_level: Option<usize>,
}

impl RollupLimits {
    /// Extracts the limits from a classifier configuration.
    pub fn from_config(config: &ClassifierConfig) -> Self {
        RollupLimits {
            max_dim: config.max_subspace_dim,
            max_candidates_per_level: config.max_candidates_per_level,
        }
    }
}

/// Result of a roll-up: all qualifying subspaces plus the best evaluated
/// singleton (used as a fallback when nothing qualifies).
#[derive(Debug, Clone, PartialEq)]
pub struct RollupOutcome {
    /// `L = ∪_i L_i`, every subspace that cleared the threshold.
    pub qualifying: Vec<DiscriminativeSubspace>,
    /// The best singleton subspace even if below threshold (`None` only
    /// for zero-dimensional data).
    pub best_singleton: Option<DiscriminativeSubspace>,
    /// Number of accuracy evaluations performed (one per candidate
    /// subspace) — the cost driver behind Fig. 10's dimensionality sweep.
    pub candidates_evaluated: usize,
}

fn dominant(labels: &[ClassLabel], accs: &[f64]) -> Option<(ClassLabel, f64)> {
    let mut best: Option<(ClassLabel, f64)> = None;
    for (&l, &a) in labels.iter().zip(accs.iter()) {
        if !a.is_finite() {
            continue;
        }
        match best {
            Some((_, b)) if a <= b => {}
            _ => best = Some((l, a)),
        }
    }
    best
}

/// Runs the bottom-up roll-up of Fig. 3 for one test instance.
///
/// `dimensionality` is the data dimensionality `d`; `threshold` is `a`.
pub fn rollup<O: AccuracyOracle>(
    oracle: &O,
    dimensionality: usize,
    threshold: f64,
    limits: RollupLimits,
) -> Result<RollupOutcome> {
    let _span_rollup = udm_observe::span!("rollup");
    let labels = oracle.labels().to_vec();
    let mut qualifying: Vec<DiscriminativeSubspace> = Vec::new();
    let mut best_singleton: Option<DiscriminativeSubspace> = None;
    let mut candidates_evaluated = 0usize;
    // Apriori bookkeeping, tallied locally and published once at the end:
    // a candidate with a dominant class whose accuracy misses `a` is a
    // threshold rejection; any evaluated candidate that does not qualify
    // is pruned from further expansion.
    let mut threshold_rejects: u64 = 0;
    let mut pruned: u64 = 0;

    // Level 1: all singletons.
    let mut l1: Vec<Subspace> = Vec::new();
    let mut current_level: Vec<Subspace> = Vec::new();
    for dim in 0..dimensionality.min(Subspace::MAX_DIMS) {
        let s = Subspace::singleton(dim)?;
        let accs = oracle.accuracies(s)?;
        candidates_evaluated += 1;
        let mut qualified = false;
        if let Some((label, accuracy)) = dominant(&labels, &accs) {
            let ds = DiscriminativeSubspace {
                subspace: s,
                accuracy,
                label,
            };
            if best_singleton
                .map(|b| accuracy > b.accuracy)
                .unwrap_or(true)
            {
                best_singleton = Some(ds);
            }
            if accuracy > threshold {
                qualifying.push(ds);
                l1.push(s);
                current_level.push(s);
                qualified = true;
            } else {
                threshold_rejects += 1;
            }
        }
        if !qualified {
            pruned += 1;
        }
    }

    // Levels 2..: C_{i+1} = L_i ⋈ L_1.
    let mut level_dim = 1usize;
    while !current_level.is_empty() {
        level_dim += 1;
        if let Some(max) = limits.max_dim {
            if level_dim > max {
                break;
            }
        }
        let mut candidates: BTreeSet<Subspace> = BTreeSet::new();
        for &s in &current_level {
            for &one in &l1 {
                if let Some(joined) = s.join(one) {
                    candidates.insert(joined);
                }
            }
        }
        let mut next_level = Vec::new();
        for (idx, s) in candidates.into_iter().enumerate() {
            if let Some(cap) = limits.max_candidates_per_level {
                if idx >= cap {
                    break;
                }
            }
            let accs = oracle.accuracies(s)?;
            candidates_evaluated += 1;
            let mut qualified = false;
            if let Some((label, accuracy)) = dominant(&labels, &accs) {
                if accuracy > threshold {
                    qualifying.push(DiscriminativeSubspace {
                        subspace: s,
                        accuracy,
                        label,
                    });
                    next_level.push(s);
                    qualified = true;
                } else {
                    threshold_rejects += 1;
                }
            }
            if !qualified {
                pruned += 1;
            }
        }
        current_level = next_level;
    }

    udm_observe::counter_add!(
        "udm_classify_rollup_candidates_total",
        u64::try_from(candidates_evaluated).unwrap_or(u64::MAX)
    );
    udm_observe::counter_add!("udm_classify_rollup_pruned_total", pruned);
    udm_observe::counter_add!(
        "udm_classify_rollup_threshold_rejects_total",
        threshold_rejects
    );

    Ok(RollupOutcome {
        qualifying,
        best_singleton,
        candidates_evaluated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Table-driven oracle: accuracy of label 0 per subspace; label 1 gets
    /// the complement.
    struct TableOracle {
        labels: Vec<ClassLabel>,
        table: HashMap<u64, f64>,
        default: f64,
    }

    impl AccuracyOracle for TableOracle {
        fn labels(&self) -> &[ClassLabel] {
            &self.labels
        }
        fn accuracies(&self, s: Subspace) -> Result<Vec<f64>> {
            let a = *self.table.get(&s.bits()).unwrap_or(&self.default);
            Ok(vec![a, 1.0 - a])
        }
    }

    fn oracle(entries: &[(&[usize], f64)], default: f64) -> TableOracle {
        TableOracle {
            labels: vec![ClassLabel(0), ClassLabel(1)],
            table: entries
                .iter()
                .map(|(dims, a)| (Subspace::from_dims(dims).unwrap().bits(), *a))
                .collect(),
            default,
        }
    }

    #[test]
    fn finds_qualifying_singletons() {
        let o = oracle(&[(&[0], 0.9), (&[1], 0.3)], 0.5);
        let out = rollup(&o, 2, 0.8, RollupLimits::default()).unwrap();
        // {0} qualifies with acc 0.9 for label 0; {1} has max(0.3, 0.7)=0.7 < 0.8
        assert_eq!(out.qualifying.len(), 1);
        assert_eq!(out.qualifying[0].subspace, Subspace::singleton(0).unwrap());
        assert_eq!(out.qualifying[0].label, ClassLabel(0));
    }

    #[test]
    fn complement_class_can_dominate() {
        let o = oracle(&[(&[0], 0.1)], 0.5); // label 1 gets 0.9
        let out = rollup(&o, 1, 0.8, RollupLimits::default()).unwrap();
        assert_eq!(out.qualifying.len(), 1);
        assert_eq!(out.qualifying[0].label, ClassLabel(1));
        assert!((out.qualifying[0].accuracy - 0.9).abs() < 1e-12);
    }

    #[test]
    fn joins_build_second_level() {
        // Both singletons qualify; pair {0,1} qualifies higher still.
        let o = oracle(&[(&[0], 0.85), (&[1], 0.85), (&[0, 1], 0.95)], 0.5);
        let out = rollup(&o, 2, 0.8, RollupLimits::default()).unwrap();
        let subspaces: Vec<_> = out.qualifying.iter().map(|d| d.subspace).collect();
        assert!(subspaces.contains(&Subspace::from_dims(&[0, 1]).unwrap()));
        assert_eq!(out.qualifying.len(), 3);
    }

    #[test]
    fn no_expansion_from_non_qualifying_singletons() {
        // Pair {0,1} would have high accuracy but neither singleton
        // qualifies, so the roll-up never reaches it (Apriori pruning).
        let o = oracle(&[(&[0], 0.6), (&[1], 0.6), (&[0, 1], 0.99)], 0.5);
        let out = rollup(&o, 2, 0.8, RollupLimits::default()).unwrap();
        assert!(out.qualifying.is_empty());
        // fallback still reports the best singleton (0.6)
        let bs = out.best_singleton.unwrap();
        assert!((bs.accuracy - 0.6).abs() < 1e-12);
    }

    #[test]
    fn best_singleton_tracked_even_when_qualifying() {
        let o = oracle(&[(&[0], 0.95), (&[1], 0.85)], 0.5);
        let out = rollup(&o, 2, 0.8, RollupLimits::default()).unwrap();
        assert_eq!(
            out.best_singleton.unwrap().subspace,
            Subspace::singleton(0).unwrap()
        );
    }

    #[test]
    fn max_dim_limit_stops_expansion() {
        let o = oracle(&[], 0.95); // everything qualifies
        let limited = rollup(
            &o,
            4,
            0.8,
            RollupLimits {
                max_dim: Some(2),
                max_candidates_per_level: None,
            },
        )
        .unwrap();
        let max_card = limited
            .qualifying
            .iter()
            .map(|d| d.subspace.cardinality())
            .max()
            .unwrap();
        assert_eq!(max_card, 2);
    }

    #[test]
    fn unlimited_rollup_explores_all_levels() {
        let o = oracle(&[], 0.95);
        let out = rollup(&o, 4, 0.8, RollupLimits::default()).unwrap();
        // all non-empty subsets of 4 dims = 15
        assert_eq!(out.qualifying.len(), 15);
        assert_eq!(out.candidates_evaluated, 15);
    }

    #[test]
    fn candidate_cap_bounds_work_per_level() {
        let o = oracle(&[], 0.95);
        let out = rollup(
            &o,
            6,
            0.8,
            RollupLimits {
                max_dim: None,
                max_candidates_per_level: Some(3),
            },
        )
        .unwrap();
        // 6 singletons evaluated, then ≤3 per level
        assert!(out.candidates_evaluated < 63);
    }

    #[test]
    fn zero_dimensional_data() {
        let o = oracle(&[], 0.9);
        let out = rollup(&o, 0, 0.5, RollupLimits::default()).unwrap();
        assert!(out.qualifying.is_empty());
        assert!(out.best_singleton.is_none());
        assert_eq!(out.candidates_evaluated, 0);
    }

    #[test]
    fn threshold_is_strict() {
        let o = oracle(&[(&[0], 0.8)], 0.0);
        let out = rollup(&o, 1, 0.8, RollupLimits::default()).unwrap();
        assert!(out.qualifying.is_empty()); // A > a, not >=
    }

    #[test]
    fn max_extension_oracle_reaches_exactly_the_qualifying_powerset() {
        // Oracle where A(S) = max over singletons in S of a per-dimension
        // base accuracy. Then L1 = qualifying singletons, and because the
        // join only ever adds dimensions from L1, the reachable set is
        // exactly the non-empty powerset of L1: 2^m − 1 subspaces.
        struct MaxOracle {
            labels: Vec<ClassLabel>,
            base: Vec<f64>,
        }
        impl AccuracyOracle for MaxOracle {
            fn labels(&self) -> &[ClassLabel] {
                &self.labels
            }
            fn accuracies(&self, s: Subspace) -> Result<Vec<f64>> {
                let a = s
                    .dims()
                    .map(|d| self.base[d])
                    .fold(f64::NEG_INFINITY, f64::max);
                Ok(vec![a])
            }
        }
        let base = vec![0.9, 0.3, 0.85, 0.1, 0.95];
        let threshold = 0.8;
        let m = base.iter().filter(|&&a| a > threshold).count();
        let o = MaxOracle {
            labels: vec![ClassLabel(0)],
            base,
        };
        let out = rollup(&o, 5, threshold, RollupLimits::default()).unwrap();
        assert_eq!(out.qualifying.len(), (1 << m) - 1);
        for q in &out.qualifying {
            assert!(q.accuracy > threshold);
        }
    }

    #[test]
    fn nan_accuracies_are_skipped() {
        struct NanOracle {
            labels: Vec<ClassLabel>,
        }
        impl AccuracyOracle for NanOracle {
            fn labels(&self) -> &[ClassLabel] {
                &self.labels
            }
            fn accuracies(&self, _: Subspace) -> Result<Vec<f64>> {
                Ok(vec![f64::NAN, 0.9])
            }
        }
        let o = NanOracle {
            labels: vec![ClassLabel(0), ClassLabel(1)],
        };
        let out = rollup(&o, 1, 0.5, RollupLimits::default()).unwrap();
        assert_eq!(out.qualifying.len(), 1);
        assert_eq!(out.qualifying[0].label, ClassLabel(1));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    struct RandomOracle {
        labels: Vec<ClassLabel>,
        table: HashMap<u64, f64>,
    }

    impl AccuracyOracle for RandomOracle {
        fn labels(&self) -> &[ClassLabel] {
            &self.labels
        }
        fn accuracies(&self, s: Subspace) -> Result<Vec<f64>> {
            // Deterministic pseudo-random accuracy per subspace.
            let cached = self.table.get(&s.bits()).copied();
            let a = cached.unwrap_or_else(|| {
                let mut z = s.bits().wrapping_mul(0x9E37_79B9_7F4A_7C15);
                z ^= z >> 29;
                (z % 1000) as f64 / 1000.0
            });
            Ok(vec![a, 1.0 - a])
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn every_qualifying_subspace_clears_the_threshold(
            dims in 1usize..8,
            thr in 0.5f64..0.95,
        ) {
            let o = RandomOracle { labels: vec![ClassLabel(0), ClassLabel(1)], table: HashMap::new() };
            let out = rollup(&o, dims, thr, RollupLimits::default()).unwrap();
            for q in &out.qualifying {
                prop_assert!(q.accuracy > thr);
                prop_assert!(!q.subspace.is_empty());
                prop_assert!(q.subspace.validate_for(dims).is_ok());
            }
            // No duplicates.
            let mut seen: Vec<u64> = out.qualifying.iter().map(|q| q.subspace.bits()).collect();
            seen.sort_unstable();
            let before = seen.len();
            seen.dedup();
            prop_assert_eq!(seen.len(), before);
        }

        #[test]
        fn apriori_property_holds(
            dims in 2usize..7,
            thr in 0.5f64..0.9,
        ) {
            // Every qualifying subspace with |S| ≥ 2 must contain at least
            // one qualifying (|S|−1)-subset — the roll-up's construction
            // invariant.
            let o = RandomOracle { labels: vec![ClassLabel(0), ClassLabel(1)], table: HashMap::new() };
            let out = rollup(&o, dims, thr, RollupLimits::default()).unwrap();
            let qualifying: std::collections::HashSet<u64> =
                out.qualifying.iter().map(|q| q.subspace.bits()).collect();
            for q in &out.qualifying {
                if q.subspace.cardinality() >= 2 {
                    let has_qualifying_subset = q
                        .subspace
                        .proper_subsets_one_smaller()
                        .any(|sub| qualifying.contains(&sub.bits()));
                    prop_assert!(has_qualifying_subset, "{} lacks a qualifying subset", q.subspace);
                }
            }
        }
    }
}
