//! Greedy non-overlapping subspace selection (the tail of Fig. 3).
//!
//! "Add set with highest local accuracy in L to N; remove all sets in L
//! which overlap with sets in N" — repeated until L is exhausted or an
//! optional cap `p` is reached.

use crate::rollup::DiscriminativeSubspace;

/// Selects non-overlapping subspaces in descending accuracy order.
///
/// Ties on accuracy are broken by smaller subspace first, then by the
/// subspace's canonical (bitmask) order, so selection is deterministic.
pub fn select_non_overlapping(
    mut qualifying: Vec<DiscriminativeSubspace>,
    max_selected: Option<usize>,
) -> Vec<DiscriminativeSubspace> {
    qualifying.sort_by(|a, b| {
        b.accuracy
            .partial_cmp(&a.accuracy)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.subspace.cardinality().cmp(&b.subspace.cardinality()))
            .then(a.subspace.cmp(&b.subspace))
    });
    let mut selected: Vec<DiscriminativeSubspace> = Vec::new();
    for cand in qualifying {
        if let Some(p) = max_selected {
            if selected.len() >= p {
                break;
            }
        }
        if selected.iter().all(|s| !s.subspace.overlaps(cand.subspace)) {
            selected.push(cand);
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use udm_core::{ClassLabel, Subspace};

    fn ds(dims: &[usize], acc: f64, label: u32) -> DiscriminativeSubspace {
        DiscriminativeSubspace {
            subspace: Subspace::from_dims(dims).unwrap(),
            accuracy: acc,
            label: ClassLabel(label),
        }
    }

    #[test]
    fn empty_input_empty_output() {
        assert!(select_non_overlapping(vec![], None).is_empty());
    }

    #[test]
    fn highest_accuracy_first() {
        let sel = select_non_overlapping(vec![ds(&[0], 0.7, 0), ds(&[1], 0.9, 1)], None);
        assert_eq!(sel.len(), 2);
        assert_eq!(sel[0].label, ClassLabel(1));
    }

    #[test]
    fn overlapping_lower_accuracy_removed() {
        let sel = select_non_overlapping(
            vec![
                ds(&[0, 1], 0.95, 0),
                ds(&[1, 2], 0.90, 1),
                ds(&[3], 0.85, 1),
            ],
            None,
        );
        // {1,2} overlaps the winner {0,1}; {3} survives.
        assert_eq!(sel.len(), 2);
        assert_eq!(sel[0].subspace, Subspace::from_dims(&[0, 1]).unwrap());
        assert_eq!(sel[1].subspace, Subspace::from_dims(&[3]).unwrap());
    }

    #[test]
    fn cap_p_limits_selection() {
        let sel = select_non_overlapping(
            vec![ds(&[0], 0.9, 0), ds(&[1], 0.8, 0), ds(&[2], 0.7, 1)],
            Some(2),
        );
        assert_eq!(sel.len(), 2);
        assert_eq!(sel[1].subspace, Subspace::singleton(1).unwrap());
    }

    #[test]
    fn tie_break_prefers_smaller_subspace() {
        let sel = select_non_overlapping(vec![ds(&[0, 1], 0.9, 0), ds(&[2], 0.9, 1)], Some(1));
        assert_eq!(sel[0].subspace, Subspace::singleton(2).unwrap());
    }

    #[test]
    fn deterministic_under_permutation() {
        let a = vec![ds(&[0], 0.8, 0), ds(&[1], 0.8, 1), ds(&[2], 0.6, 0)];
        let mut b = a.clone();
        b.reverse();
        assert_eq!(
            select_non_overlapping(a, None),
            select_non_overlapping(b, None)
        );
    }

    #[test]
    fn disjoint_sets_all_selected() {
        let sel = select_non_overlapping(
            vec![ds(&[0], 0.9, 0), ds(&[1], 0.8, 1), ds(&[2, 3], 0.7, 0)],
            None,
        );
        assert_eq!(sel.len(), 3);
    }
}
