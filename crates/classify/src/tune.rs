//! Hyper-parameter tuning for the density classifier.
//!
//! The paper leaves the accuracy threshold `a` (Fig. 3) unspecified; it
//! is workload-dependent. [`tune_threshold`] picks it from a validation
//! split, which is how a practitioner should set it.

use crate::config::ClassifierConfig;
use crate::eval::evaluate;
use crate::model::DensityClassifier;
use udm_core::{Result, UdmError, UncertainDataset};
use udm_data::stratified_split;

/// Result of a threshold sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdSweep {
    /// `(threshold, validation accuracy)` for every candidate tried.
    pub candidates: Vec<(f64, f64)>,
    /// The winning threshold.
    pub best_threshold: f64,
    /// Its validation accuracy.
    pub best_accuracy: f64,
}

/// Sweeps the accuracy threshold `a` over `candidates`, training on a
/// stratified `1 − validation_fraction` portion of `train` and scoring on
/// the rest; returns the sweep with the best-scoring threshold (ties go
/// to the smaller threshold, which keeps more subspaces).
///
/// # Errors
///
/// [`UdmError::InvalidConfig`] for an empty candidate list; training,
/// splitting and evaluation failures propagate.
pub fn tune_threshold(
    train: &UncertainDataset,
    base: ClassifierConfig,
    candidates: &[f64],
    validation_fraction: f64,
    seed: u64,
) -> Result<ThresholdSweep> {
    if candidates.is_empty() {
        return Err(UdmError::InvalidConfig(
            "threshold sweep needs at least one candidate".into(),
        ));
    }
    let split = stratified_split(train, validation_fraction, seed)?;
    let mut results = Vec::with_capacity(candidates.len());
    let mut best: Option<(f64, f64)> = None;
    for &a in candidates {
        let config = ClassifierConfig {
            accuracy_threshold: a,
            ..base
        };
        let model = DensityClassifier::fit(&split.train, config)?;
        let accuracy = evaluate(&model, &split.test)?.accuracy();
        results.push((a, accuracy));
        let better = match best {
            None => true,
            Some((_, best_acc)) => accuracy > best_acc,
        };
        if better {
            best = Some((a, accuracy));
        }
    }
    // `candidates` was verified non-empty above, so the loop ran at least
    // once; the error path is unreachable but typed.
    let (best_threshold, best_accuracy) = best.ok_or(UdmError::EmptyDataset)?;
    Ok(ThresholdSweep {
        candidates: results,
        best_threshold,
        best_accuracy,
    })
}

/// Default candidate grid: posterior-like thresholds from permissive to
/// strict.
pub const DEFAULT_THRESHOLD_GRID: [f64; 6] = [0.4, 0.5, 0.55, 0.6, 0.7, 0.8];

#[cfg(test)]
mod tests {
    use super::*;
    use udm_data::{GaussianClassSpec, MixtureGenerator};

    fn blobs(n: usize, seed: u64) -> UncertainDataset {
        MixtureGenerator::new(
            2,
            vec![
                GaussianClassSpec::spherical(vec![0.0, 0.0], 1.0, 1.0),
                GaussianClassSpec::spherical(vec![5.0, 5.0], 1.0, 1.0),
            ],
        )
        .unwrap()
        .generate(n, seed)
    }

    #[test]
    fn sweep_reports_every_candidate() {
        let d = blobs(300, 1);
        let sweep = tune_threshold(
            &d,
            ClassifierConfig::error_adjusted(20),
            &DEFAULT_THRESHOLD_GRID,
            0.3,
            2,
        )
        .unwrap();
        assert_eq!(sweep.candidates.len(), DEFAULT_THRESHOLD_GRID.len());
        assert!(DEFAULT_THRESHOLD_GRID.contains(&sweep.best_threshold));
        assert!(sweep.best_accuracy > 0.8, "{sweep:?}");
        // best is really the max
        let max = sweep
            .candidates
            .iter()
            .map(|&(_, acc)| acc)
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(sweep.best_accuracy, max);
    }

    #[test]
    fn ties_prefer_the_smaller_threshold() {
        // On trivially separable data every threshold scores 1.0; the
        // first (smallest) must win.
        let d = blobs(200, 3);
        let sweep = tune_threshold(
            &d,
            ClassifierConfig::error_adjusted(10),
            &[0.4, 0.6, 0.8],
            0.3,
            4,
        )
        .unwrap();
        if sweep
            .candidates
            .iter()
            .all(|&(_, a)| a == sweep.best_accuracy)
        {
            assert_eq!(sweep.best_threshold, 0.4);
        }
    }

    #[test]
    fn empty_grid_rejected() {
        let d = blobs(100, 5);
        assert!(tune_threshold(&d, ClassifierConfig::error_adjusted(10), &[], 0.3, 6).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let d = blobs(200, 7);
        let a = tune_threshold(
            &d,
            ClassifierConfig::error_adjusted(10),
            &[0.5, 0.7],
            0.3,
            8,
        )
        .unwrap();
        let b = tune_threshold(
            &d,
            ClassifierConfig::error_adjusted(10),
            &[0.5, 0.7],
            0.3,
            8,
        )
        .unwrap();
        assert_eq!(a, b);
    }
}
