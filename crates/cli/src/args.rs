//! Hand-rolled argument parsing for the `udm` tool (no external parser
//! dependency; the grammar is small and stable).

use std::path::PathBuf;
use udm_core::{Result, UdmError};
use udm_data::UciDataset;
use udm_kde::BackendSpec;

/// A fully parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate a stand-in workload and write it as CSV.
    Generate {
        /// Which dataset profile to generate.
        dataset: UciDataset,
        /// Number of rows.
        n: usize,
        /// Error level `f` of the paper's noise model (0 = exact data).
        f: f64,
        /// RNG seed.
        seed: u64,
        /// Output file (`-`/absent = stdout).
        out: Option<PathBuf>,
    },
    /// Stream a CSV into micro-clusters and write a JSON snapshot.
    Summarize {
        /// Input CSV (canonical layout; see `udm-data::csv_io`).
        input: PathBuf,
        /// Number of micro-clusters `q`.
        q: usize,
        /// Use plain Euclidean assignment instead of Eq. 5.
        euclidean: bool,
        /// Snapshot output file (absent = stdout).
        out: Option<PathBuf>,
    },
    /// Evaluate the error-adjusted density of a CSV at a query point.
    Density {
        /// Input CSV.
        input: PathBuf,
        /// Query coordinates (full dimensionality).
        at: Vec<f64>,
        /// Optional subspace (dimension indices); full space when empty.
        subspace: Vec<usize>,
        /// Micro-cluster budget; 0 = exact (uncompressed) estimation.
        q: usize,
        /// Ignore recorded errors (ψ ≡ 0).
        unadjusted: bool,
        /// Also render an ASCII chart of the 1-D density along the first
        /// subspace dimension over `lo:hi:n`.
        grid: Option<(f64, f64, usize)>,
    },
    /// Train on one CSV, evaluate on another, print the report.
    Classify {
        /// Training CSV (labelled).
        train: PathBuf,
        /// Test CSV (labelled).
        test: PathBuf,
        /// Number of micro-clusters `q`.
        q: usize,
        /// Accuracy threshold `a` of the subspace roll-up.
        threshold: f64,
        /// Use the unadjusted density baseline.
        unadjusted: bool,
        /// Use the nearest-neighbor baseline instead.
        nn: bool,
        /// Density backend (`exact | coreset:EPS | hbe:EPS[,TAU]`).
        backend: BackendSpec,
    },
    /// Convert a raw UCI repository file to the canonical CSV layout
    /// (imputing marked-missing cells with error tracking).
    Convert {
        /// Which raw format to parse.
        dataset: UciDataset,
        /// Input raw file.
        input: PathBuf,
        /// Output file (absent = stdout).
        out: Option<PathBuf>,
    },
    /// Aggregate consecutive groups of rows into uncertain pseudo-records
    /// (group mean, std-as-ψ).
    Aggregate {
        /// Input CSV.
        input: PathBuf,
        /// Group size.
        group: usize,
        /// Sort by the first column before grouping (locality grouping).
        sort: bool,
        /// Output file (absent = stdout).
        out: Option<PathBuf>,
    },
    /// Cluster a CSV with error-adjusted k-means or DBSCAN.
    Cluster {
        /// Input CSV.
        input: PathBuf,
        /// `Some(k)` = k-means.
        k: Option<usize>,
        /// `Some((eps, min_pts))` = DBSCAN.
        dbscan: Option<(f64, usize)>,
        /// Use plain Euclidean distances.
        euclidean: bool,
        /// Seed for k-means initialization.
        seed: u64,
    },
    /// Chaos drill: corrupt a synthetic training stream at several fault
    /// rates, push it through the fault-tolerant ingest pipeline, and
    /// compare degraded classification accuracy against a clean baseline.
    Chaos {
        /// Which dataset profile to generate the workload from.
        dataset: UciDataset,
        /// Training rows (test set is a third of this).
        n: usize,
        /// Error level `f` of the paper's noise model.
        f: f64,
        /// Number of micro-clusters `q` (also the classifier budget).
        q: usize,
        /// Accuracy threshold `a` of the subspace roll-up.
        threshold: f64,
        /// Fault rates to drill at (each in `[0, 1]`).
        rates: Vec<f64>,
        /// RNG seed for generation and fault injection.
        seed: u64,
        /// When set, fail unless every accuracy drop is at most this.
        bound: Option<f64>,
        /// Number of shard fault domains for the sharded drill (1 =
        /// single-stream drill only).
        shards: usize,
        /// When set, kill this shard mid-ingest: first warm-restart it
        /// and demand a bit-identical merged model, then take it
        /// permanently down and report degraded coverage.
        kill_shard: Option<usize>,
        /// Density backend used by the drilled classifiers.
        backend: BackendSpec,
    },
    /// Run the long-lived serving daemon over a training CSV.
    Serve {
        /// Training CSV (labelled data also fits the classifier).
        train: PathBuf,
        /// Bind address (`127.0.0.1:0` picks an ephemeral port).
        addr: String,
        /// Micro-cluster budget `q` (also the classifier budget).
        q: usize,
        /// Accuracy threshold `a` of the classifier roll-up.
        threshold: f64,
        /// Shard fault domains for background ingest.
        shards: usize,
        /// Checkpoint/state directory (shared across warm restarts).
        state_dir: PathBuf,
        /// Per-shard checkpoint cadence (records).
        checkpoint_every: u64,
        /// Records between snapshot publishes.
        refresh_every: usize,
        /// Density-batching gathering window in milliseconds.
        batch_window_ms: u64,
        /// Disable density request batching (evaluate inline).
        no_batch: bool,
        /// `/healthz` degrades below this shard coverage.
        min_coverage: f64,
        /// Exit after this many seconds (CI hook; absent = run until
        /// signalled or POST /shutdown).
        max_seconds: Option<f64>,
        /// Sleep between ingest chunks in milliseconds (chaos-drill
        /// hook: holds the pump mid-stream so a kill can land there).
        ingest_delay_ms: u64,
        /// Density backend published with every snapshot.
        backend: BackendSpec,
    },
    /// Export the in-process telemetry registry.
    Metrics {
        /// Output encoding.
        format: MetricsFormat,
        /// Output file (absent = stdout).
        out: Option<PathBuf>,
    },
    /// Print usage.
    Help,
}

/// Output encoding for `udm metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsFormat {
    /// Prometheus text exposition format.
    Prometheus,
    /// JSON snapshot.
    Json,
    /// Human-readable console table.
    Table,
}

/// Global observability flags, valid on every subcommand.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ObserveOptions {
    /// `--metrics PATH`: write a Prometheus snapshot (plus a
    /// `PATH.manifest.json` run manifest) after the command finishes.
    pub metrics: Option<PathBuf>,
    /// `--trace PATH`: stream span events to a JSONL trace file.
    pub trace: Option<PathBuf>,
}

/// A parsed command plus the global observability flags and the raw
/// argument vector (recorded verbatim in the run manifest).
#[derive(Debug, Clone, PartialEq)]
pub struct Invocation {
    /// The subcommand to execute.
    pub command: Command,
    /// Global `--metrics` / `--trace` flags.
    pub observe: ObserveOptions,
    /// The argument vector as given (without the program name).
    pub raw: Vec<String>,
}

/// Parses `udm` arguments including the global `--metrics PATH` and
/// `--trace PATH` flags, which may appear anywhere in the argument list.
pub fn parse_invocation<I: IntoIterator<Item = String>>(args: I) -> Result<Invocation> {
    let raw: Vec<String> = args.into_iter().collect();
    let mut observe = ObserveOptions::default();
    let mut rest = Vec::with_capacity(raw.len());
    let mut it = raw.iter().cloned();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--metrics" => {
                observe.metrics = Some(PathBuf::from(
                    it.next().ok_or_else(|| invalid("--metrics needs a path"))?,
                ));
            }
            "--trace" => {
                observe.trace = Some(PathBuf::from(
                    it.next().ok_or_else(|| invalid("--trace needs a path"))?,
                ));
            }
            _ => rest.push(arg),
        }
    }
    Ok(Invocation {
        command: parse_args(rest)?,
        observe,
        raw,
    })
}

fn invalid(msg: impl Into<String>) -> UdmError {
    UdmError::InvalidConfig(msg.into())
}

fn parse_dataset(name: &str) -> Result<UciDataset> {
    UciDataset::ALL
        .into_iter()
        .find(|d| d.name() == name)
        .ok_or_else(|| {
            invalid(format!(
                "unknown dataset {name:?}; expected one of adult, ionosphere, breast_cancer, forest_cover"
            ))
        })
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: Option<String>) -> Result<T> {
    let raw = value.ok_or_else(|| invalid(format!("{flag} needs a value")))?;
    raw.parse::<T>()
        .map_err(|_| invalid(format!("{flag}: cannot parse {raw:?}")))
}

fn parse_backend(value: Option<String>) -> Result<BackendSpec> {
    let raw =
        value.ok_or_else(|| invalid("--backend needs exact | coreset:EPS | hbe:EPS[,TAU]"))?;
    let spec = BackendSpec::parse(&raw)?;
    spec.validate()?;
    Ok(spec)
}

fn parse_f64_list(flag: &str, value: Option<String>) -> Result<Vec<f64>> {
    let raw = value.ok_or_else(|| invalid(format!("{flag} needs a value")))?;
    raw.split(',')
        .map(|s| {
            s.trim()
                .parse::<f64>()
                .map_err(|_| invalid(format!("{flag}: cannot parse {s:?}")))
        })
        .collect()
}

fn parse_usize_list(flag: &str, value: Option<String>) -> Result<Vec<usize>> {
    let raw = value.ok_or_else(|| invalid(format!("{flag} needs a value")))?;
    raw.split(',')
        .map(|s| {
            s.trim()
                .parse::<usize>()
                .map_err(|_| invalid(format!("{flag}: cannot parse {s:?}")))
        })
        .collect()
}

/// Parses `udm` arguments (without the program name).
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Command> {
    let mut it = args.into_iter();
    let Some(sub) = it.next() else {
        return Ok(Command::Help);
    };
    match sub.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "generate" => {
            let dataset = parse_dataset(
                &it.next()
                    .ok_or_else(|| invalid("generate needs a dataset name"))?,
            )?;
            let mut n = dataset.default_size();
            let mut f = 0.0;
            let mut seed = 7;
            let mut out = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--n" => n = parse_num("--n", it.next())?,
                    "--f" => f = parse_num("--f", it.next())?,
                    "--seed" => seed = parse_num("--seed", it.next())?,
                    "--out" => {
                        out = Some(PathBuf::from(
                            it.next().ok_or_else(|| invalid("--out needs a path"))?,
                        ))
                    }
                    other => return Err(invalid(format!("unknown flag {other:?}"))),
                }
            }
            Ok(Command::Generate {
                dataset,
                n,
                f,
                seed,
                out,
            })
        }
        "summarize" => {
            let input = PathBuf::from(
                it.next()
                    .ok_or_else(|| invalid("summarize needs an input CSV"))?,
            );
            let mut q = 140;
            let mut euclidean = false;
            let mut out = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--q" => q = parse_num("--q", it.next())?,
                    "--euclidean" => euclidean = true,
                    "--out" => {
                        out = Some(PathBuf::from(
                            it.next().ok_or_else(|| invalid("--out needs a path"))?,
                        ))
                    }
                    other => return Err(invalid(format!("unknown flag {other:?}"))),
                }
            }
            Ok(Command::Summarize {
                input,
                q,
                euclidean,
                out,
            })
        }
        "density" => {
            let input = PathBuf::from(
                it.next()
                    .ok_or_else(|| invalid("density needs an input CSV"))?,
            );
            let mut at = Vec::new();
            let mut subspace = Vec::new();
            let mut q = 0;
            let mut unadjusted = false;
            let mut grid = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--at" => at = parse_f64_list("--at", it.next())?,
                    "--subspace" => subspace = parse_usize_list("--subspace", it.next())?,
                    "--q" => q = parse_num("--q", it.next())?,
                    "--unadjusted" => unadjusted = true,
                    "--grid" => {
                        let raw = it.next().ok_or_else(|| invalid("--grid needs LO:HI:N"))?;
                        let parts: Vec<&str> = raw.split(':').collect();
                        if parts.len() != 3 {
                            return Err(invalid("--grid expects LO:HI:N"));
                        }
                        let lo: f64 = parts[0].parse().map_err(|_| invalid("--grid: bad LO"))?;
                        let hi: f64 = parts[1].parse().map_err(|_| invalid("--grid: bad HI"))?;
                        let n: usize = parts[2].parse().map_err(|_| invalid("--grid: bad N"))?;
                        grid = Some((lo, hi, n));
                    }
                    other => return Err(invalid(format!("unknown flag {other:?}"))),
                }
            }
            if at.is_empty() {
                return Err(invalid("density requires --at X1,X2,…"));
            }
            Ok(Command::Density {
                input,
                at,
                subspace,
                q,
                unadjusted,
                grid,
            })
        }
        "classify" => {
            let mut train = None;
            let mut test = None;
            let mut q = 140;
            let mut threshold = 0.55;
            let mut unadjusted = false;
            let mut nn = false;
            let mut backend = BackendSpec::Exact;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--train" => {
                        train = Some(PathBuf::from(
                            it.next().ok_or_else(|| invalid("--train needs a path"))?,
                        ))
                    }
                    "--test" => {
                        test = Some(PathBuf::from(
                            it.next().ok_or_else(|| invalid("--test needs a path"))?,
                        ))
                    }
                    "--q" => q = parse_num("--q", it.next())?,
                    "--threshold" => threshold = parse_num("--threshold", it.next())?,
                    "--unadjusted" => unadjusted = true,
                    "--nn" => nn = true,
                    "--backend" => backend = parse_backend(it.next())?,
                    other => return Err(invalid(format!("unknown flag {other:?}"))),
                }
            }
            if unadjusted && nn {
                return Err(invalid("--unadjusted and --nn are mutually exclusive"));
            }
            Ok(Command::Classify {
                train: train.ok_or_else(|| invalid("classify requires --train"))?,
                test: test.ok_or_else(|| invalid("classify requires --test"))?,
                q,
                threshold,
                unadjusted,
                nn,
                backend,
            })
        }
        "convert" => {
            let dataset = parse_dataset(
                &it.next()
                    .ok_or_else(|| invalid("convert needs a dataset name"))?,
            )?;
            let input = PathBuf::from(
                it.next()
                    .ok_or_else(|| invalid("convert needs an input file"))?,
            );
            let mut out = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--out" => {
                        out = Some(PathBuf::from(
                            it.next().ok_or_else(|| invalid("--out needs a path"))?,
                        ))
                    }
                    other => return Err(invalid(format!("unknown flag {other:?}"))),
                }
            }
            Ok(Command::Convert {
                dataset,
                input,
                out,
            })
        }
        "aggregate" => {
            let input = PathBuf::from(
                it.next()
                    .ok_or_else(|| invalid("aggregate needs an input CSV"))?,
            );
            let mut group = 10;
            let mut sort = false;
            let mut out = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--group" => group = parse_num("--group", it.next())?,
                    "--sort" => sort = true,
                    "--out" => {
                        out = Some(PathBuf::from(
                            it.next().ok_or_else(|| invalid("--out needs a path"))?,
                        ))
                    }
                    other => return Err(invalid(format!("unknown flag {other:?}"))),
                }
            }
            Ok(Command::Aggregate {
                input,
                group,
                sort,
                out,
            })
        }
        "cluster" => {
            let input = PathBuf::from(
                it.next()
                    .ok_or_else(|| invalid("cluster needs an input CSV"))?,
            );
            let mut k = None;
            let mut dbscan = None;
            let mut euclidean = false;
            let mut seed = 0;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--k" => k = Some(parse_num("--k", it.next())?),
                    "--dbscan" => {
                        let parts = parse_f64_list("--dbscan", it.next())?;
                        if parts.len() != 2 {
                            return Err(invalid("--dbscan expects EPS,MIN_PTS"));
                        }
                        // fract() != 0 is the IEEE-exact integer-ness test (UDM002-exempt)
                        if parts[1] < 1.0 || parts[1].fract() != 0.0 {
                            return Err(invalid("--dbscan MIN_PTS must be a positive integer"));
                        }
                        // MIN_PTS was just validated as a small positive integer.
                        #[allow(clippy::cast_possible_truncation)]
                        let min_pts = parts[1] as usize;
                        dbscan = Some((parts[0], min_pts));
                    }
                    "--euclidean" => euclidean = true,
                    "--seed" => seed = parse_num("--seed", it.next())?,
                    other => return Err(invalid(format!("unknown flag {other:?}"))),
                }
            }
            match (&k, &dbscan) {
                (None, None) => return Err(invalid("cluster requires --k or --dbscan")),
                (Some(_), Some(_)) => {
                    return Err(invalid("--k and --dbscan are mutually exclusive"))
                }
                _ => {}
            }
            Ok(Command::Cluster {
                input,
                k,
                dbscan,
                euclidean,
                seed,
            })
        }
        "chaos" => {
            let dataset = parse_dataset(
                &it.next()
                    .ok_or_else(|| invalid("chaos needs a dataset name"))?,
            )?;
            let mut n = 400;
            let mut f = 1.0;
            let mut q = 60;
            let mut threshold = 0.55;
            let mut rates = vec![0.05, 0.15, 0.3];
            let mut seed = 7;
            let mut bound = None;
            let mut shards = 1;
            let mut kill_shard = None;
            let mut backend = BackendSpec::Exact;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--n" => n = parse_num("--n", it.next())?,
                    "--f" => f = parse_num("--f", it.next())?,
                    "--q" => q = parse_num("--q", it.next())?,
                    "--threshold" => threshold = parse_num("--threshold", it.next())?,
                    "--rates" => rates = parse_f64_list("--rates", it.next())?,
                    "--seed" => seed = parse_num("--seed", it.next())?,
                    "--bound" => bound = Some(parse_num("--bound", it.next())?),
                    "--shards" => shards = parse_num("--shards", it.next())?,
                    "--kill-shard" => kill_shard = Some(parse_num("--kill-shard", it.next())?),
                    "--backend" => backend = parse_backend(it.next())?,
                    other => return Err(invalid(format!("unknown flag {other:?}"))),
                }
            }
            if rates.is_empty() {
                return Err(invalid("--rates needs at least one fault rate"));
            }
            if rates
                .iter()
                .any(|r| !(r.is_finite() && (0.0..=1.0).contains(r)))
            {
                return Err(invalid("--rates entries must lie in [0, 1]"));
            }
            if shards == 0 {
                return Err(invalid("--shards must be at least 1"));
            }
            if let Some(k) = kill_shard {
                if shards < 2 {
                    return Err(invalid("--kill-shard needs --shards of at least 2"));
                }
                if k >= shards {
                    return Err(invalid(format!(
                        "--kill-shard {k} is out of range for {shards} shards"
                    )));
                }
            }
            Ok(Command::Chaos {
                dataset,
                n,
                f,
                q,
                threshold,
                rates,
                seed,
                bound,
                shards,
                kill_shard,
                backend,
            })
        }
        "serve" => {
            let mut train = None;
            let mut addr = "127.0.0.1:8787".to_string();
            let mut q = 60;
            let mut threshold = 0.55;
            let mut shards = 2;
            let mut state_dir = None;
            let mut checkpoint_every = 64;
            let mut refresh_every = 64;
            let mut batch_window_ms = 0;
            let mut no_batch = false;
            let mut min_coverage: f64 = 1.0;
            let mut max_seconds = None;
            let mut ingest_delay_ms = 0;
            let mut backend = BackendSpec::Exact;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--train" => {
                        train = Some(PathBuf::from(
                            it.next().ok_or_else(|| invalid("--train needs a path"))?,
                        ))
                    }
                    "--addr" => {
                        addr = it.next().ok_or_else(|| invalid("--addr needs HOST:PORT"))?
                    }
                    "--q" => q = parse_num("--q", it.next())?,
                    "--threshold" => threshold = parse_num("--threshold", it.next())?,
                    "--shards" => shards = parse_num("--shards", it.next())?,
                    "--state-dir" => {
                        state_dir = Some(PathBuf::from(
                            it.next()
                                .ok_or_else(|| invalid("--state-dir needs a path"))?,
                        ))
                    }
                    "--checkpoint-every" => {
                        checkpoint_every = parse_num("--checkpoint-every", it.next())?
                    }
                    "--refresh-every" => refresh_every = parse_num("--refresh-every", it.next())?,
                    "--batch-window-ms" => {
                        batch_window_ms = parse_num("--batch-window-ms", it.next())?
                    }
                    "--no-batch" => no_batch = true,
                    "--min-coverage" => min_coverage = parse_num("--min-coverage", it.next())?,
                    "--max-seconds" => max_seconds = Some(parse_num("--max-seconds", it.next())?),
                    "--ingest-delay-ms" => {
                        ingest_delay_ms = parse_num("--ingest-delay-ms", it.next())?
                    }
                    "--backend" => backend = parse_backend(it.next())?,
                    other => return Err(invalid(format!("unknown flag {other:?}"))),
                }
            }
            if shards == 0 {
                return Err(invalid("--shards must be at least 1"));
            }
            if !(min_coverage.is_finite() && (0.0..=1.0).contains(&min_coverage)) {
                return Err(invalid("--min-coverage must lie in [0, 1]"));
            }
            if refresh_every == 0 {
                return Err(invalid("--refresh-every must be at least 1"));
            }
            Ok(Command::Serve {
                train: train.ok_or_else(|| invalid("serve requires --train"))?,
                addr,
                q,
                threshold,
                shards,
                state_dir: state_dir.ok_or_else(|| invalid("serve requires --state-dir"))?,
                checkpoint_every,
                refresh_every,
                batch_window_ms,
                no_batch,
                min_coverage,
                max_seconds,
                ingest_delay_ms,
                backend,
            })
        }
        "metrics" => {
            let mut format = MetricsFormat::Prometheus;
            let mut out = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--format" => {
                        let raw = it
                            .next()
                            .ok_or_else(|| invalid("--format needs prom|json|table"))?;
                        format = match raw.as_str() {
                            "prom" | "prometheus" => MetricsFormat::Prometheus,
                            "json" => MetricsFormat::Json,
                            "table" => MetricsFormat::Table,
                            other => {
                                return Err(invalid(format!(
                                    "--format: unknown encoding {other:?}; expected prom, json, or table"
                                )))
                            }
                        };
                    }
                    "--out" => {
                        out = Some(PathBuf::from(
                            it.next().ok_or_else(|| invalid("--out needs a path"))?,
                        ))
                    }
                    other => return Err(invalid(format!("unknown flag {other:?}"))),
                }
            }
            Ok(Command::Metrics { format, out })
        }
        other => Err(invalid(format!(
            "unknown subcommand {other:?}; try `udm help`"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn parse(args: &[&str]) -> Result<Command> {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn empty_and_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&["help"]).unwrap(), Command::Help);
        assert_eq!(parse(&["--help"]).unwrap(), Command::Help);
    }

    #[test]
    fn generate_defaults_and_flags() {
        let c = parse(&["generate", "adult"]).unwrap();
        match c {
            Command::Generate {
                dataset,
                n,
                f,
                seed,
                out,
            } => {
                assert_eq!(dataset, UciDataset::Adult);
                assert_eq!(n, UciDataset::Adult.default_size());
                assert_eq!(f, 0.0);
                assert_eq!(seed, 7);
                assert!(out.is_none());
            }
            _ => panic!("wrong command"),
        }
        let c = parse(&[
            "generate",
            "forest_cover",
            "--n",
            "100",
            "--f",
            "1.5",
            "--seed",
            "3",
            "--out",
            "x.csv",
        ])
        .unwrap();
        match c {
            Command::Generate {
                dataset,
                n,
                f,
                seed,
                out,
            } => {
                assert_eq!(dataset, UciDataset::ForestCover);
                assert_eq!(n, 100);
                assert_eq!(f, 1.5);
                assert_eq!(seed, 3);
                assert_eq!(out.unwrap(), PathBuf::from("x.csv"));
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn generate_rejects_unknown_dataset_and_flags() {
        assert!(parse(&["generate", "mnist"]).is_err());
        assert!(parse(&["generate", "adult", "--bogus"]).is_err());
        assert!(parse(&["generate", "adult", "--n", "abc"]).is_err());
        assert!(parse(&["generate", "adult", "--n"]).is_err());
    }

    #[test]
    fn density_requires_at() {
        assert!(parse(&["density", "d.csv"]).is_err());
        let c = parse(&["density", "d.csv", "--at", "1.0,2.5", "--subspace", "0,3"]).unwrap();
        match c {
            Command::Density {
                at,
                subspace,
                q,
                unadjusted,
                grid,
                ..
            } => {
                assert_eq!(at, vec![1.0, 2.5]);
                assert_eq!(subspace, vec![0, 3]);
                assert_eq!(q, 0);
                assert!(!unadjusted);
                assert!(grid.is_none());
            }
            _ => panic!("wrong command"),
        }
        let c = parse(&["density", "d.csv", "--at", "0", "--grid", "-2:5:40"]).unwrap();
        match c {
            Command::Density { grid, .. } => assert_eq!(grid, Some((-2.0, 5.0, 40))),
            _ => panic!("wrong command"),
        }
        assert!(parse(&["density", "d.csv", "--at", "0", "--grid", "1:2"]).is_err());
    }

    #[test]
    fn classify_requires_paths_and_exclusive_baselines() {
        assert!(parse(&["classify", "--train", "a.csv"]).is_err());
        assert!(parse(&[
            "classify",
            "--train",
            "a.csv",
            "--test",
            "b.csv",
            "--unadjusted",
            "--nn"
        ])
        .is_err());
        let c = parse(&[
            "classify",
            "--train",
            "a.csv",
            "--test",
            "b.csv",
            "--q",
            "60",
            "--threshold",
            "0.7",
        ])
        .unwrap();
        match c {
            Command::Classify {
                q,
                threshold,
                unadjusted,
                nn,
                ..
            } => {
                assert_eq!(q, 60);
                assert_eq!(threshold, 0.7);
                assert!(!unadjusted && !nn);
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn cluster_modes_are_exclusive_and_required() {
        assert!(parse(&["cluster", "d.csv"]).is_err());
        assert!(parse(&["cluster", "d.csv", "--k", "3", "--dbscan", "1.0,4"]).is_err());
        assert!(parse(&["cluster", "d.csv", "--dbscan", "1.0"]).is_err());
        assert!(parse(&["cluster", "d.csv", "--dbscan", "1.0,4.5"]).is_err());
        let c = parse(&["cluster", "d.csv", "--dbscan", "1.5,4", "--euclidean"]).unwrap();
        match c {
            Command::Cluster {
                dbscan, euclidean, ..
            } => {
                assert_eq!(dbscan, Some((1.5, 4)));
                assert!(euclidean);
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn convert_and_aggregate_parse() {
        let c = parse(&["convert", "breast_cancer", "raw.data", "--out", "bc.csv"]).unwrap();
        match c {
            Command::Convert {
                dataset,
                input,
                out,
            } => {
                assert_eq!(dataset, UciDataset::BreastCancer);
                assert_eq!(input, PathBuf::from("raw.data"));
                assert_eq!(out.unwrap(), PathBuf::from("bc.csv"));
            }
            _ => panic!("wrong command"),
        }
        assert!(parse(&["convert", "bogus", "x"]).is_err());
        let c = parse(&["aggregate", "d.csv", "--group", "5", "--sort"]).unwrap();
        match c {
            Command::Aggregate { group, sort, .. } => {
                assert_eq!(group, 5);
                assert!(sort);
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn chaos_defaults_and_flags() {
        let c = parse(&["chaos", "breast_cancer"]).unwrap();
        match c {
            Command::Chaos {
                dataset,
                n,
                f,
                q,
                threshold,
                rates,
                seed,
                bound,
                shards,
                kill_shard,
                backend,
            } => {
                assert_eq!(dataset, UciDataset::BreastCancer);
                assert_eq!(n, 400);
                assert_eq!(f, 1.0);
                assert_eq!(q, 60);
                assert_eq!(threshold, 0.55);
                assert_eq!(rates, vec![0.05, 0.15, 0.3]);
                assert_eq!(seed, 7);
                assert!(bound.is_none());
                assert_eq!(shards, 1);
                assert!(kill_shard.is_none());
                assert_eq!(backend, BackendSpec::Exact);
            }
            _ => panic!("wrong command"),
        }
        let c = parse(&[
            "chaos",
            "ionosphere",
            "--n",
            "250",
            "--rates",
            "0.1,0.4",
            "--bound",
            "0.2",
            "--seed",
            "9",
            "--shards",
            "4",
            "--kill-shard",
            "2",
        ])
        .unwrap();
        match c {
            Command::Chaos {
                n,
                rates,
                bound,
                seed,
                shards,
                kill_shard,
                ..
            } => {
                assert_eq!(n, 250);
                assert_eq!(rates, vec![0.1, 0.4]);
                assert_eq!(bound, Some(0.2));
                assert_eq!(seed, 9);
                assert_eq!(shards, 4);
                assert_eq!(kill_shard, Some(2));
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn chaos_validates_rates() {
        assert!(parse(&["chaos"]).is_err());
        assert!(parse(&["chaos", "adult", "--rates", ""]).is_err());
        assert!(parse(&["chaos", "adult", "--rates", "0.1,1.5"]).is_err());
        assert!(parse(&["chaos", "adult", "--rates", "-0.1"]).is_err());
        assert!(parse(&["chaos", "adult", "--bogus"]).is_err());
    }

    #[test]
    fn chaos_validates_shards() {
        assert!(parse(&["chaos", "adult", "--shards", "0"]).is_err());
        assert!(parse(&["chaos", "adult", "--kill-shard", "0"]).is_err());
        assert!(parse(&["chaos", "adult", "--shards", "4", "--kill-shard", "4"]).is_err());
        match parse(&["chaos", "adult", "--shards", "4", "--kill-shard", "3"]).unwrap() {
            Command::Chaos {
                shards, kill_shard, ..
            } => {
                assert_eq!(shards, 4);
                assert_eq!(kill_shard, Some(3));
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn serve_defaults_and_flags() {
        let c = parse(&["serve", "--train", "t.csv", "--state-dir", "/tmp/s"]).unwrap();
        match c {
            Command::Serve {
                train,
                addr,
                q,
                threshold,
                shards,
                state_dir,
                checkpoint_every,
                refresh_every,
                batch_window_ms,
                no_batch,
                min_coverage,
                max_seconds,
                ingest_delay_ms,
                backend,
            } => {
                assert_eq!(train, PathBuf::from("t.csv"));
                assert_eq!(addr, "127.0.0.1:8787");
                assert_eq!(q, 60);
                assert_eq!(threshold, 0.55);
                assert_eq!(shards, 2);
                assert_eq!(state_dir, PathBuf::from("/tmp/s"));
                assert_eq!(checkpoint_every, 64);
                assert_eq!(refresh_every, 64);
                assert_eq!(batch_window_ms, 0);
                assert!(!no_batch);
                assert_eq!(min_coverage, 1.0);
                assert!(max_seconds.is_none());
                assert_eq!(ingest_delay_ms, 0);
                assert_eq!(backend, BackendSpec::Exact);
            }
            _ => panic!("wrong command"),
        }
        let c = parse(&[
            "serve",
            "--train",
            "t.csv",
            "--state-dir",
            "/tmp/s",
            "--addr",
            "127.0.0.1:0",
            "--q",
            "30",
            "--shards",
            "3",
            "--checkpoint-every",
            "16",
            "--refresh-every",
            "32",
            "--batch-window-ms",
            "2",
            "--min-coverage",
            "0.5",
            "--max-seconds",
            "4.5",
            "--ingest-delay-ms",
            "10",
            "--no-batch",
        ])
        .unwrap();
        match c {
            Command::Serve {
                addr,
                q,
                shards,
                checkpoint_every,
                refresh_every,
                batch_window_ms,
                no_batch,
                min_coverage,
                max_seconds,
                ingest_delay_ms,
                ..
            } => {
                assert_eq!(addr, "127.0.0.1:0");
                assert_eq!(q, 30);
                assert_eq!(shards, 3);
                assert_eq!(checkpoint_every, 16);
                assert_eq!(refresh_every, 32);
                assert_eq!(batch_window_ms, 2);
                assert!(no_batch);
                assert_eq!(min_coverage, 0.5);
                assert_eq!(max_seconds, Some(4.5));
                assert_eq!(ingest_delay_ms, 10);
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn backend_flag_parses_on_classify_chaos_and_serve() {
        let c = parse(&[
            "classify",
            "--train",
            "a.csv",
            "--test",
            "b.csv",
            "--backend",
            "coreset:0.05",
        ])
        .unwrap();
        match c {
            Command::Classify { backend, .. } => {
                assert_eq!(backend, BackendSpec::Coreset { eps: 0.05 });
            }
            _ => panic!("wrong command"),
        }
        let c = parse(&["chaos", "adult", "--backend", "hbe:0.2,0.05"]).unwrap();
        match c {
            Command::Chaos { backend, .. } => {
                assert_eq!(
                    backend,
                    BackendSpec::Hbe {
                        eps: 0.2,
                        tau: 0.05
                    }
                );
            }
            _ => panic!("wrong command"),
        }
        let c = parse(&[
            "serve",
            "--train",
            "t.csv",
            "--state-dir",
            "/tmp/s",
            "--backend",
            "exact",
        ])
        .unwrap();
        match c {
            Command::Serve { backend, .. } => assert_eq!(backend, BackendSpec::Exact),
            _ => panic!("wrong command"),
        }
        // Malformed or out-of-range specs are rejected at parse time.
        assert!(parse(&[
            "classify",
            "--train",
            "a",
            "--test",
            "b",
            "--backend",
            "fft"
        ])
        .is_err());
        assert!(parse(&[
            "classify",
            "--train",
            "a",
            "--test",
            "b",
            "--backend",
            "coreset:2.0"
        ])
        .is_err());
        assert!(parse(&["chaos", "adult", "--backend"]).is_err());
    }

    #[test]
    fn serve_validates_required_flags_and_ranges() {
        assert!(parse(&["serve"]).is_err());
        assert!(parse(&["serve", "--train", "t.csv"]).is_err());
        assert!(parse(&["serve", "--state-dir", "/tmp/s"]).is_err());
        assert!(parse(&[
            "serve",
            "--train",
            "t.csv",
            "--state-dir",
            "/tmp/s",
            "--shards",
            "0"
        ])
        .is_err());
        assert!(parse(&[
            "serve",
            "--train",
            "t.csv",
            "--state-dir",
            "/tmp/s",
            "--min-coverage",
            "1.5"
        ])
        .is_err());
        assert!(parse(&[
            "serve",
            "--train",
            "t.csv",
            "--state-dir",
            "/tmp/s",
            "--refresh-every",
            "0"
        ])
        .is_err());
        assert!(parse(&[
            "serve",
            "--train",
            "t.csv",
            "--state-dir",
            "/tmp/s",
            "--bogus"
        ])
        .is_err());
    }

    #[test]
    fn unknown_subcommand() {
        assert!(parse(&["frobnicate"]).is_err());
    }

    #[test]
    fn metrics_defaults_and_formats() {
        let c = parse(&["metrics"]).unwrap();
        assert_eq!(
            c,
            Command::Metrics {
                format: MetricsFormat::Prometheus,
                out: None,
            }
        );
        let c = parse(&["metrics", "--format", "json", "--out", "m.json"]).unwrap();
        match c {
            Command::Metrics { format, out } => {
                assert_eq!(format, MetricsFormat::Json);
                assert_eq!(out.unwrap(), PathBuf::from("m.json"));
            }
            _ => panic!("wrong command"),
        }
        assert_eq!(
            parse(&["metrics", "--format", "prometheus"]).unwrap(),
            Command::Metrics {
                format: MetricsFormat::Prometheus,
                out: None,
            }
        );
        match parse(&["metrics", "--format", "table"]).unwrap() {
            Command::Metrics { format, .. } => assert_eq!(format, MetricsFormat::Table),
            _ => panic!("wrong command"),
        }
        assert!(parse(&["metrics", "--format", "xml"]).is_err());
        assert!(parse(&["metrics", "--format"]).is_err());
        assert!(parse(&["metrics", "--bogus"]).is_err());
    }

    fn invoke(args: &[&str]) -> Result<Invocation> {
        parse_invocation(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn invocation_extracts_observe_flags_anywhere() {
        let inv = invoke(&[
            "classify",
            "--train",
            "a.csv",
            "--metrics",
            "m.prom",
            "--test",
            "b.csv",
            "--trace",
            "t.jsonl",
        ])
        .unwrap();
        assert_eq!(inv.observe.metrics.as_deref(), Some(Path::new("m.prom")));
        assert_eq!(inv.observe.trace.as_deref(), Some(Path::new("t.jsonl")));
        match inv.command {
            Command::Classify { train, test, .. } => {
                assert_eq!(train, PathBuf::from("a.csv"));
                assert_eq!(test, PathBuf::from("b.csv"));
            }
            other => panic!("wrong command {other:?}"),
        }
        assert_eq!(inv.raw.len(), 9);
    }

    #[test]
    fn invocation_without_observe_flags_is_plain() {
        let inv = invoke(&["help"]).unwrap();
        assert_eq!(inv.command, Command::Help);
        assert_eq!(inv.observe, ObserveOptions::default());
        assert!(invoke(&["help", "--metrics"]).is_err());
        assert!(invoke(&["help", "--trace"]).is_err());
    }
}
