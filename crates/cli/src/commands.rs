//! Command execution. Every command writes its human-readable output to
//! a caller-supplied writer, so the whole tool is testable in-process.

use crate::args::{Command, Invocation, MetricsFormat};
use std::io::Write;
use std::path::Path;
use udm_classify::{
    evaluate, evaluate_sharded_degraded, survivors_of, ChaosSetup, ClassifierConfig,
    DegradationReport, DensityClassifier, NnClassifier,
};
use udm_cluster::{
    adjusted_rand_index, normalized_mutual_information, Dbscan, DbscanConfig, KMeans, KMeansConfig,
};
use udm_core::{Result, Subspace, UdmError, UncertainDataset};
use udm_data::csv_io;
use udm_data::fault::{FaultPlan, FaultyStream};
use udm_data::{ErrorModel, UciDataset};
use udm_kde::{ErrorKde, KdeConfig};
use udm_microcluster::snapshot::Snapshot;
use udm_microcluster::{
    AssignmentDistance, IngestPolicy, KillPlan, MaintainerConfig, MicroClusterKde,
    MicroClusterMaintainer, ShardPlan, ShardSupervisor,
};

const USAGE: &str = "\
udm — density based transforms for uncertain data mining

USAGE:
  udm generate <adult|ionosphere|breast_cancer|forest_cover>
               [--n N] [--f F] [--seed S] [--out FILE]
  udm summarize <data.csv> [--q Q] [--euclidean] [--out SNAPSHOT.json]
  udm density   <data.csv> --at X1,X2,... [--subspace J1,J2,...]
               [--q Q] [--unadjusted] [--grid LO:HI:N]
  udm classify  --train TRAIN.csv --test TEST.csv
               [--q Q] [--threshold A] [--unadjusted | --nn]
               [--backend exact|coreset:EPS|hbe:EPS[,TAU]]
  udm cluster   <data.csv> (--k K | --dbscan EPS,MINPTS)
               [--euclidean] [--seed S]
  udm convert   <adult|ionosphere|breast_cancer|forest_cover> RAW_FILE
               [--out FILE]
  udm aggregate <data.csv> [--group N] [--sort] [--out FILE]
  udm chaos     <adult|ionosphere|breast_cancer|forest_cover>
               [--n N] [--f F] [--q Q] [--threshold A]
               [--rates R1,R2,...] [--seed S] [--bound B]
               [--shards S] [--kill-shard K] [--backend SPEC]
  udm serve     --train TRAIN.csv --state-dir DIR [--addr HOST:PORT]
               [--q Q] [--threshold A] [--shards S]
               [--checkpoint-every N] [--refresh-every N]
               [--batch-window-ms MS] [--no-batch] [--min-coverage C]
               [--max-seconds T] [--ingest-delay-ms MS]
               [--backend SPEC]
  udm metrics   [--format prom|json|table] [--out FILE]
  udm help

GLOBAL FLAGS (valid on every subcommand):
  --metrics FILE   after the command, write a Prometheus metric snapshot
                   to FILE and a run manifest to FILE.manifest.json
  --trace FILE     stream span events to FILE as JSON lines

CSV layout: values[,errors][,label] with a '#udm,dim=..' header
(files produced by `udm generate` are already in this layout).
";

/// Executes a parsed invocation: installs the JSONL trace writer when
/// `--trace` was given, runs the command, then flushes tracing and — when
/// `--metrics` was given — writes a Prometheus snapshot plus a
/// `PATH.manifest.json` run manifest. The snapshot is written even when
/// the command fails, so a crashed run still leaves its telemetry behind.
pub fn run_invocation<W: Write>(invocation: Invocation, out: &mut W) -> Result<()> {
    let started = std::time::Instant::now();
    if let Some(path) = &invocation.observe.trace {
        udm_observe::init_tracing(path)?;
    }
    let seed = seed_of(&invocation.command);
    let config = format!("{:?}", invocation.command);
    let result = run(invocation.command, out);
    udm_observe::flush_tracing();
    if let Some(path) = &invocation.observe.metrics {
        let snapshot = udm_observe::Snapshot::capture();
        std::fs::write(path, udm_observe::to_prometheus(&snapshot))?;
        let manifest = udm_observe::RunManifest::capture(&invocation.raw, seed, &config, started);
        let manifest_path = std::path::PathBuf::from(format!("{}.manifest.json", path.display()));
        manifest.write_to(&manifest_path)?;
    }
    result
}

/// The RNG seed of a command, when it has one (recorded in the manifest).
fn seed_of(command: &Command) -> Option<u64> {
    match command {
        Command::Generate { seed, .. }
        | Command::Cluster { seed, .. }
        | Command::Chaos { seed, .. } => Some(*seed),
        _ => None,
    }
}

/// The sharded fault-domain drill behind `udm chaos --shards S`.
///
/// Partitions a corrupted copy of the training stream across `S` shard
/// workers and proves three properties in sequence: a no-fault sharded
/// run conserves the stream at coverage 1.0; killing `--kill-shard K`
/// mid-ingest and warm-restarting it from its versioned checkpoint
/// reproduces the no-fault merged model bit-for-bit; and taking the same
/// shard permanently down serves the survivors at coverage `(S-1)/S`
/// with a measured (and `--bound`-enforced) accuracy drop.
///
/// Returns the worst accuracy drop the drill observed, so the caller can
/// fold it into the `--bound` check alongside the single-stream rates.
#[allow(clippy::too_many_arguments)]
fn run_sharded_drill<W: Write>(
    out: &mut W,
    train: &UncertainDataset,
    test: &UncertainDataset,
    rates: &[f64],
    seed: u64,
    q: usize,
    classifier: ClassifierConfig,
    shards: usize,
    kill_shard: Option<usize>,
) -> Result<f64> {
    let _span = udm_observe::span!("cli_chaos_sharded");
    let rate = rates[0];
    let faulty = FaultyStream::new(train, FaultPlan::uniform(rate), seed.wrapping_add(500))?;
    let (records, faults) = faulty.records();
    let dir = std::env::temp_dir().join(format!("udm_chaos_cli_{}", std::process::id()));

    let supervisor = |tag: &str| -> Result<ShardSupervisor> {
        let mut plan = ShardPlan::new(shards, dir.join(tag));
        // A cadence coprime to the usual kill offsets, so the warm
        // restart exercises a genuine partition-tail replay.
        plan.checkpoint_every = 25;
        ShardSupervisor::new(
            train.dim(),
            MaintainerConfig::new(q),
            IngestPolicy::default(),
            plan,
        )
    };

    writeln!(
        out,
        "sharded drill: {} fault domains, {} records at rate {rate} ({} faults injected)",
        shards,
        records.len(),
        faults.total()
    )?;
    let mut clean = supervisor("clean")?;
    clean.run(&records, &KillPlan::none())?;
    let (clean_model, clean_coverage, _) = clean.finish()?;
    writeln!(
        out,
        "  no-fault run: {} clusters, {} points, coverage {clean_coverage:.2}",
        clean_model.num_clusters(),
        clean_model.total_points()
    )?;

    let mut worst = f64::NEG_INFINITY;
    if let Some(k) = kill_shard {
        // Warm-restart leg: the kill lands mid-partition, off the
        // checkpoint cadence, so a genuine tail replay is exercised.
        let offset = (records.len() / shards / 2 + 3) as u64;
        let mut drilled = supervisor("killed")?;
        drilled.run(&records, &KillPlan::none().kill_at(k, offset))?;
        let (model, coverage, report) = drilled.finish()?;
        let identical = model == clean_model;
        writeln!(
            out,
            "  kill shard {k} at offset {offset}: {} restart(s), {} replayed, \
             coverage {coverage:.2}, merged model bit-identical: {identical}",
            report.total_restarts(),
            report.total_replayed()
        )?;
        if !identical {
            return Err(UdmError::InvalidConfig(format!(
                "warm-restarted shard {k} diverged from the no-fault merged model"
            )));
        }

        // Permanent-loss leg: the shard never comes back; the survivors
        // serve at fractional coverage.
        let mut lost = supervisor("lost")?;
        lost.run(&records, &KillPlan::none().permanently_down(k))?;
        let (down_model, down_coverage, down_report) = lost.finish()?;
        writeln!(
            out,
            "  shard {k} permanently down: coverage {down_coverage:.2}, \
             {} live shard(s), {} points served",
            down_report.live_shards(),
            down_model.total_points()
        )?;

        let setup = ChaosSetup {
            plan: FaultPlan::uniform(rate),
            seed: seed.wrapping_add(500),
            policy: IngestPolicy::default(),
            maintainer: MaintainerConfig::new(q),
            classifier,
        };
        let degraded = evaluate_sharded_degraded(train, test, &setup, shards, &[k])?;
        writeln!(out, "  {degraded}")?;
        worst = worst.max(degraded.accuracy_drop());
    }
    std::fs::remove_dir_all(&dir).ok();
    Ok(worst)
}

fn load(path: &Path) -> Result<UncertainDataset> {
    // DataError -> UdmError keeps the file/line/column context in the
    // message, so `udm <cmd> bad.csv` points at the offending cell.
    Ok(csv_io::read_csv_file(path, None)?)
}

/// Executes a parsed command, writing human-readable output to `out`.
pub fn run<W: Write>(command: Command, out: &mut W) -> Result<()> {
    match command {
        Command::Help => {
            write!(out, "{USAGE}")?;
            Ok(())
        }
        Command::Metrics { format, out: file } => {
            let snapshot = udm_observe::Snapshot::capture();
            let rendered = match format {
                MetricsFormat::Prometheus => udm_observe::to_prometheus(&snapshot),
                MetricsFormat::Json => udm_observe::to_json(&snapshot),
                MetricsFormat::Table => udm_observe::to_table(&snapshot),
            };
            match file {
                Some(path) => {
                    std::fs::write(&path, &rendered)?;
                    writeln!(out, "wrote metric snapshot to {}", path.display())?;
                }
                None => write!(out, "{rendered}")?,
            }
            Ok(())
        }
        Command::Generate {
            dataset,
            n,
            f,
            seed,
            out: file,
        } => {
            let clean = dataset.generate(n, seed);
            let data = if f > 0.0 {
                ErrorModel::paper(f).apply(&clean, seed ^ 0x9E37_79B9)?
            } else {
                clean
            };
            match file {
                Some(path) => {
                    csv_io::write_csv_file(&path, &data)?;
                    writeln!(
                        out,
                        "wrote {} rows x {} dims ({}, f={f}) to {}",
                        data.len(),
                        data.dim(),
                        dataset.name(),
                        path.display()
                    )?;
                }
                None => csv_io::write_csv(&mut *out, &data)?,
            }
            Ok(())
        }
        Command::Summarize {
            input,
            q,
            euclidean,
            out: file,
        } => {
            let data = load(&input)?;
            let config = MaintainerConfig {
                max_clusters: q,
                distance: if euclidean {
                    AssignmentDistance::Euclidean
                } else {
                    AssignmentDistance::ErrorAdjusted
                },
            };
            let maintainer = MicroClusterMaintainer::from_dataset(&data, config)?;
            let snapshot = Snapshot::capture(&maintainer);
            let json = snapshot.to_json()?;
            match file {
                Some(path) => {
                    std::fs::write(&path, &json)?;
                    writeln!(
                        out,
                        "summarized {} points into {} micro-clusters -> {}",
                        maintainer.points_seen(),
                        maintainer.num_clusters(),
                        path.display()
                    )?;
                }
                None => writeln!(out, "{json}")?,
            }
            Ok(())
        }
        Command::Density {
            input,
            at,
            subspace,
            q,
            unadjusted,
            grid,
        } => {
            let data = load(&input)?;
            if at.len() != data.dim() {
                return Err(UdmError::DimensionMismatch {
                    expected: data.dim(),
                    actual: at.len(),
                });
            }
            let s = if subspace.is_empty() {
                Subspace::full(data.dim())?
            } else {
                Subspace::from_dims(&subspace)?
            };
            let config = if unadjusted {
                KdeConfig::unadjusted()
            } else {
                KdeConfig::error_adjusted()
            };
            let value = if q == 0 {
                ErrorKde::fit(&data, config)?.density_subspace(&at, s)?
            } else {
                let maintainer =
                    MicroClusterMaintainer::from_dataset(&data, MaintainerConfig::new(q))?;
                MicroClusterKde::fit(maintainer.clusters(), config)?.density_subspace(&at, s)?
            };
            writeln!(
                out,
                "density over {s} at {at:?} = {value:.8e} ({} estimation, {})",
                if q == 0 {
                    "exact".to_string()
                } else {
                    format!("{q}-cluster")
                },
                if unadjusted {
                    "unadjusted"
                } else {
                    "error-adjusted"
                },
            )?;
            if let Some((lo, hi, n)) = grid {
                let dim = s.dims().next().expect("subspace is non-empty");
                let kde = ErrorKde::fit(&data, config)?;
                let g = udm_kde::Grid1D::from_kde(&kde, dim, lo, hi, n)?;
                writeln!(
                    out,
                    "\n1-D density along dimension {dim} over [{lo}, {hi}]:"
                )?;
                write!(out, "{}", udm_kde::ascii::chart(&g, 8))?;
            }
            Ok(())
        }
        Command::Classify {
            train,
            test,
            q,
            threshold,
            unadjusted,
            nn,
            backend,
        } => {
            let _span_cmd = udm_observe::span!("cli_classify");
            let (train_data, test_data) = {
                let _span_load = udm_observe::span!("load");
                (load(&train)?, load(&test)?)
            };
            let report = if nn {
                let model = NnClassifier::fit(&train_data)?;
                let _span_eval = udm_observe::span!("evaluate");
                evaluate(&model, &test_data)?
            } else {
                let mut config = if unadjusted {
                    ClassifierConfig::unadjusted(q)
                } else {
                    ClassifierConfig::error_adjusted(q)
                };
                config.accuracy_threshold = threshold;
                let model = {
                    let _span_fit = udm_observe::span!("fit");
                    DensityClassifier::fit(&train_data, config)?
                };
                model.set_backend(backend)?;
                let _span_eval = udm_observe::span!("evaluate");
                evaluate(&model, &test_data)?
            };
            let kind = if nn {
                "nearest-neighbor"
            } else if unadjusted {
                "density (unadjusted)"
            } else {
                "density (error-adjusted)"
            };
            writeln!(out, "classifier : {kind}")?;
            if !nn {
                writeln!(out, "backend    : {backend}")?;
            }
            writeln!(out, "test points: {}", report.n)?;
            writeln!(out, "accuracy   : {:.4}", report.accuracy())?;
            writeln!(out, "macro F1   : {:.4}", report.macro_f1())?;
            writeln!(
                out,
                "latency    : {:.3e} s/example",
                report.seconds_per_example()
            )?;
            let mut labels: Vec<_> = report.confusion.keys().map(|&(a, _)| a).collect();
            labels.sort();
            labels.dedup();
            for l in labels {
                writeln!(
                    out,
                    "  {l}: recall {:.4}  precision {:.4}  f1 {:.4}",
                    report.recall(l),
                    report.precision(l),
                    report.f1(l)
                )?;
            }
            Ok(())
        }
        Command::Convert {
            dataset,
            input,
            out: file,
        } => {
            let raw = std::fs::File::open(&input)
                .map_err(|e| udm_data::DataError::from(e).with_path(&input))?;
            // Attach the input path so parse errors read `file:line:col`.
            let with_path = |e: udm_data::DataError| e.with_path(&input);
            let data = match dataset {
                UciDataset::Adult => udm_data::uci_raw::parse_adult(raw).map_err(with_path)?,
                UciDataset::Ionosphere => {
                    udm_data::uci_raw::parse_ionosphere(raw).map_err(with_path)?
                }
                UciDataset::ForestCover => {
                    udm_data::uci_raw::parse_covertype(raw).map_err(with_path)?
                }
                UciDataset::BreastCancer => {
                    let incomplete =
                        udm_data::uci_raw::parse_breast_cancer(raw).map_err(with_path)?;
                    udm_data::imputation::impute_mean(&incomplete)?
                }
            };
            match file {
                Some(path) => {
                    csv_io::write_csv_file(&path, &data)?;
                    writeln!(
                        out,
                        "converted {} rows x {} dims ({}) to {}",
                        data.len(),
                        data.dim(),
                        dataset.name(),
                        path.display()
                    )?;
                }
                None => csv_io::write_csv(&mut *out, &data)?,
            }
            Ok(())
        }
        Command::Aggregate {
            input,
            group,
            sort,
            out: file,
        } => {
            let mut data = load(&input)?;
            if sort {
                let mut points = data.points().to_vec();
                points.sort_by(|a, b| {
                    a.value(0)
                        .partial_cmp(&b.value(0))
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                data = UncertainDataset::from_points(points)?;
            }
            let aggregated = udm_data::aggregate::aggregate_groups(
                &data,
                group,
                udm_data::aggregate::GroupLabelPolicy::Majority,
            )?;
            match file {
                Some(path) => {
                    csv_io::write_csv_file(&path, &aggregated)?;
                    writeln!(
                        out,
                        "aggregated {} rows into {} pseudo-records (group={group}) -> {}",
                        data.len(),
                        aggregated.len(),
                        path.display()
                    )?;
                }
                None => csv_io::write_csv(&mut *out, &aggregated)?,
            }
            Ok(())
        }
        Command::Chaos {
            dataset,
            n,
            f,
            q,
            threshold,
            rates,
            seed,
            bound,
            shards,
            kill_shard,
            backend,
        } => {
            let _span_cmd = udm_observe::span!("cli_chaos");
            let synthesize = |rows: usize, s: u64| -> Result<UncertainDataset> {
                let clean = dataset.generate(rows, s);
                if f > 0.0 {
                    Ok(ErrorModel::paper(f).apply(&clean, s ^ 0x9E37_79B9)?)
                } else {
                    Ok(clean)
                }
            };
            let train = synthesize(n, seed)?;
            let test = synthesize((n / 3).max(30), seed.wrapping_add(1))?;

            let mut config = ClassifierConfig::error_adjusted(q);
            config.accuracy_threshold = threshold;
            let clean_model = DensityClassifier::fit(&train, config)?;
            clean_model.set_backend(backend)?;
            let clean = evaluate(&clean_model, &test)?;
            writeln!(
                out,
                "chaos drill on {} ({} train / {} test rows, f={f}, q={q}, backend={backend})",
                dataset.name(),
                train.len(),
                test.len()
            )?;
            writeln!(out, "clean baseline accuracy: {:.4}", clean.accuracy())?;

            let mut worst = f64::NEG_INFINITY;
            for (i, rate) in rates.iter().enumerate() {
                let setup = ChaosSetup {
                    plan: FaultPlan::uniform(*rate),
                    seed: seed.wrapping_add(100 + i as u64),
                    policy: IngestPolicy::default(),
                    maintainer: MaintainerConfig::new(q),
                    classifier: config,
                };
                let (survivor_set, counters, faults) = survivors_of(&train, &setup)?;
                let model = DensityClassifier::fit(&survivor_set, config)?;
                model.set_backend(backend)?;
                let degraded = evaluate(&model, &test)?;
                let report = DegradationReport {
                    fault_rate: *rate,
                    clean: clean.clone(),
                    degraded,
                    counters,
                    faults,
                    survivors: survivor_set.len(),
                };
                writeln!(out, "{report}")?;
                worst = worst.max(report.accuracy_drop());
            }
            if shards > 1 {
                worst = worst.max(run_sharded_drill(
                    out, &train, &test, &rates, seed, q, config, shards, kill_shard,
                )?);
            }
            if let Some(b) = bound {
                if worst > b {
                    return Err(UdmError::InvalidConfig(format!(
                        "worst accuracy drop {worst:.4} exceeds --bound {b}"
                    )));
                }
                writeln!(
                    out,
                    "all fault rates within bound {b} (worst drop {worst:.4})"
                )?;
            }
            Ok(())
        }
        Command::Serve {
            train,
            addr,
            q,
            threshold,
            shards,
            state_dir,
            checkpoint_every,
            refresh_every,
            batch_window_ms,
            no_batch,
            min_coverage,
            max_seconds,
            ingest_delay_ms,
            backend,
        } => {
            let started = std::time::Instant::now();
            let data = load(&train)?;
            // Fit the classifier when the training data is fully labelled
            // with at least two classes; otherwise /classify answers 503.
            let labels: Vec<_> = data.iter().filter_map(|p| p.label()).collect();
            let mut distinct = labels.clone();
            distinct.sort();
            distinct.dedup();
            let classifier = if labels.len() == data.len() && distinct.len() >= 2 {
                let mut config = ClassifierConfig::error_adjusted(q);
                config.accuracy_threshold = threshold;
                Some(std::sync::Arc::new(DensityClassifier::fit(&data, config)?))
            } else {
                None
            };
            let records: Vec<udm_data::fault::RawRecord> = data
                .points()
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    udm_data::fault::RawRecord::from_point(
                        i as u64,
                        &p.clone().with_timestamp(i as u64),
                    )
                })
                .collect();

            let mut config = udm_serve::ServeConfig::new(state_dir.clone());
            config.addr = addr;
            config.shards = shards;
            config.checkpoint_every = checkpoint_every;
            config.refresh_every = refresh_every;
            config.max_clusters = q;
            config.min_coverage = min_coverage;
            config.chunk_delay = std::time::Duration::from_millis(ingest_delay_ms);
            config.backend = backend;
            config.batch = if no_batch {
                None
            } else {
                Some(udm_serve::BatchConfig {
                    window: std::time::Duration::from_millis(batch_window_ms),
                    ..udm_serve::BatchConfig::default()
                })
            };

            let server = udm_serve::Server::start(
                &config,
                udm_serve::ServeSeed {
                    dim: data.dim(),
                    records,
                    classifier,
                },
            )?;
            writeln!(out, "listening on http://{}", server.addr())?;
            writeln!(
                out,
                "{} start over {} ({} records, {} shards, classifier: {}, backend: {backend})",
                if server.warm { "warm" } else { "cold" },
                state_dir.display(),
                data.len(),
                shards,
                if distinct.len() >= 2 { "on" } else { "off" },
            )?;
            // The drills parse the port from a piped (block-buffered)
            // stdout, so the banner must leave the process now.
            out.flush()?;

            udm_serve::signal::install();
            loop {
                if udm_serve::signal::shutdown_requested() || server.shutdown_via_http() {
                    break;
                }
                if let Some(limit) = max_seconds {
                    if started.elapsed().as_secs_f64() >= limit {
                        break;
                    }
                }
                std::thread::sleep(std::time::Duration::from_millis(20));
            }

            let report = server.shutdown_graceful()?;
            if let Some(report) = &report {
                writeln!(
                    out,
                    "graceful shutdown: {} arrivals, {} admitted, coverage {:.2}",
                    report.counters.arrivals,
                    report.counters.admitted(),
                    report.coverage
                )?;
                writeln!(out, "final checkpoint cursors: {:?}", report.next_seqs)?;
            }
            let manifest_path = state_dir.join("serve.manifest.json");
            let manifest_args = vec!["serve".to_string(), train.display().to_string()];
            let manifest = udm_observe::RunManifest::capture(
                &manifest_args,
                None,
                &format!("serve shards={shards} q={q}"),
                started,
            );
            manifest.write_to(&manifest_path)?;
            writeln!(out, "wrote manifest {}", manifest_path.display())?;
            Ok(())
        }
        Command::Cluster {
            input,
            k,
            dbscan,
            euclidean,
            seed,
        } => {
            let data = load(&input)?;
            let truth: Vec<_> = data.iter().filter_map(|p| p.label()).collect();
            let has_truth = truth.len() == data.len();

            let assignments: Vec<Option<usize>> = if let Some(k) = k {
                let mut config = KMeansConfig::new(k);
                config.seed = seed;
                if euclidean {
                    config.distance = AssignmentDistance::Euclidean;
                }
                let r = KMeans::new(config)?.run(&data)?;
                writeln!(
                    out,
                    "k-means: k={k}, {} iterations, inertia {:.4e}",
                    r.iterations, r.inertia
                )?;
                r.assignments.into_iter().map(Some).collect()
            } else {
                let (eps, min_pts) = dbscan.expect("parser guarantees one mode");
                let config = DbscanConfig {
                    eps,
                    min_pts,
                    error_adjusted: !euclidean,
                };
                let r = Dbscan::new(config)?.run(&data)?;
                writeln!(
                    out,
                    "dbscan: eps={eps}, min_pts={min_pts}, {} clusters, {} noise points",
                    r.num_clusters,
                    r.num_noise()
                )?;
                r.assignments
            };

            // Cluster size histogram.
            let mut sizes: std::collections::BTreeMap<Option<usize>, usize> = Default::default();
            for a in &assignments {
                *sizes.entry(*a).or_insert(0) += 1;
            }
            for (cluster, count) in &sizes {
                match cluster {
                    Some(c) => writeln!(out, "  cluster {c}: {count} points")?,
                    None => writeln!(out, "  noise    : {count} points")?,
                }
            }
            if has_truth {
                writeln!(
                    out,
                    "vs labels: ARI {:.4}  NMI {:.4}",
                    adjusted_rand_index(&assignments, &truth),
                    normalized_mutual_information(&assignments, &truth)
                )?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_args;

    fn run_cli(args: &[&str]) -> Result<String> {
        let cmd = parse_args(args.iter().map(|s| s.to_string()))?;
        let mut buf = Vec::new();
        run(cmd, &mut buf)?;
        Ok(String::from_utf8(buf).expect("output is UTF-8"))
    }

    fn tmpdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "udm_cli_test_{}_{}",
            std::process::id(),
            std::thread::current()
                .name()
                .unwrap_or("t")
                .replace("::", "_")
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn help_prints_usage() {
        let out = run_cli(&["help"]).unwrap();
        assert!(out.contains("USAGE"));
        assert!(out.contains("udm classify"));
    }

    #[test]
    fn generate_to_stdout_is_valid_csv() {
        let out = run_cli(&["generate", "breast_cancer", "--n", "20"]).unwrap();
        assert!(out.starts_with("#udm,dim=9"));
        let parsed = csv_io::read_csv(out.as_bytes(), None).unwrap();
        assert_eq!(parsed.len(), 20);
        assert_eq!(parsed.dim(), 9);
    }

    #[test]
    fn generate_classify_roundtrip() {
        let dir = tmpdir();
        let train = dir.join("train.csv");
        let test = dir.join("test.csv");
        run_cli(&[
            "generate",
            "breast_cancer",
            "--n",
            "300",
            "--f",
            "0.5",
            "--seed",
            "1",
            "--out",
            train.to_str().unwrap(),
        ])
        .unwrap();
        run_cli(&[
            "generate",
            "breast_cancer",
            "--n",
            "100",
            "--f",
            "0.5",
            "--seed",
            "2",
            "--out",
            test.to_str().unwrap(),
        ])
        .unwrap();
        let out = run_cli(&[
            "classify",
            "--train",
            train.to_str().unwrap(),
            "--test",
            test.to_str().unwrap(),
            "--q",
            "20",
        ])
        .unwrap();
        assert!(out.contains("accuracy"), "{out}");
        assert!(out.contains("error-adjusted"), "{out}");
        let acc: f64 = out
            .lines()
            .find(|l| l.starts_with("accuracy"))
            .and_then(|l| l.split(':').nth(1))
            .and_then(|v| v.trim().parse().ok())
            .unwrap();
        assert!(acc > 0.6, "accuracy {acc}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn nn_baseline_runs() {
        let dir = tmpdir();
        let train = dir.join("train.csv");
        run_cli(&[
            "generate",
            "breast_cancer",
            "--n",
            "120",
            "--out",
            train.to_str().unwrap(),
        ])
        .unwrap();
        let out = run_cli(&[
            "classify",
            "--train",
            train.to_str().unwrap(),
            "--test",
            train.to_str().unwrap(),
            "--nn",
        ])
        .unwrap();
        assert!(out.contains("nearest-neighbor"));
        // NN on its own training data is perfect.
        assert!(out.contains("accuracy   : 1.0000"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn summarize_writes_restorable_snapshot() {
        let dir = tmpdir();
        let data = dir.join("data.csv");
        let snap = dir.join("snap.json");
        run_cli(&[
            "generate",
            "adult",
            "--n",
            "200",
            "--f",
            "1.0",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        let out = run_cli(&[
            "summarize",
            data.to_str().unwrap(),
            "--q",
            "10",
            "--out",
            snap.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("200 points into 10 micro-clusters"), "{out}");
        let restored = Snapshot::load(&snap).unwrap().restore().unwrap();
        assert_eq!(restored.points_seen(), 200);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn density_exact_and_compressed() {
        let dir = tmpdir();
        let data = dir.join("data.csv");
        run_cli(&[
            "generate",
            "breast_cancer",
            "--n",
            "150",
            "--f",
            "0.5",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        let at = "0,0,0,0,0,0,0,0,0";
        let exact = run_cli(&["density", data.to_str().unwrap(), "--at", at]).unwrap();
        assert!(exact.contains("exact estimation"), "{exact}");
        let compressed = run_cli(&[
            "density",
            data.to_str().unwrap(),
            "--at",
            at,
            "--q",
            "30",
            "--subspace",
            "0,1",
        ])
        .unwrap();
        assert!(compressed.contains("30-cluster"), "{compressed}");
        assert!(compressed.contains("{0,1}"), "{compressed}");
    }

    #[test]
    fn density_grid_renders_chart() {
        let dir = tmpdir();
        let data = dir.join("data.csv");
        run_cli(&[
            "generate",
            "adult",
            "--n",
            "80",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        let out = run_cli(&[
            "density",
            data.to_str().unwrap(),
            "--at",
            "0,0,0,0,0,0",
            "--subspace",
            "0",
            "--grid",
            "-5:5:50",
        ])
        .unwrap();
        assert!(out.contains("1-D density along dimension 0"), "{out}");
        assert!(out.contains("peak density"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn density_validates_arity() {
        let dir = tmpdir();
        let data = dir.join("data.csv");
        run_cli(&[
            "generate",
            "adult",
            "--n",
            "50",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        assert!(run_cli(&["density", data.to_str().unwrap(), "--at", "1.0"]).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cluster_kmeans_reports_metrics_when_labelled() {
        let dir = tmpdir();
        let data = dir.join("data.csv");
        run_cli(&[
            "generate",
            "breast_cancer",
            "--n",
            "200",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        let out = run_cli(&["cluster", data.to_str().unwrap(), "--k", "2"]).unwrap();
        assert!(out.contains("k-means: k=2"), "{out}");
        assert!(out.contains("ARI"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cluster_dbscan_runs() {
        let dir = tmpdir();
        let data = dir.join("data.csv");
        run_cli(&[
            "generate",
            "breast_cancer",
            "--n",
            "150",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        let out = run_cli(&[
            "cluster",
            data.to_str().unwrap(),
            "--dbscan",
            "3.0,4",
            "--euclidean",
        ])
        .unwrap();
        assert!(out.contains("dbscan: eps=3"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn convert_breast_cancer_imputes_and_writes() {
        let dir = tmpdir();
        let raw_path = dir.join("bc.data");
        std::fs::write(
            &raw_path,
            "1,5,1,1,1,2,1,3,1,1,2
2,5,4,4,5,7,10,3,2,1,2
3,8,4,5,1,2,?,7,3,1,4
",
        )
        .unwrap();
        let out = run_cli(&["convert", "breast_cancer", raw_path.to_str().unwrap()]).unwrap();
        assert!(out.starts_with("#udm,dim=9,errors=1,labels=1"), "{out}");
        let parsed = csv_io::read_csv(out.as_bytes(), None).unwrap();
        assert_eq!(parsed.len(), 3);
        assert!(parsed.point(2).error(5) > 0.0); // imputed cell kept its ψ
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn aggregate_roundtrip() {
        let dir = tmpdir();
        let data = dir.join("data.csv");
        run_cli(&[
            "generate",
            "breast_cancer",
            "--n",
            "100",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        let out = run_cli(&[
            "aggregate",
            data.to_str().unwrap(),
            "--group",
            "10",
            "--sort",
        ])
        .unwrap();
        let parsed = csv_io::read_csv(out.as_bytes(), None).unwrap();
        assert_eq!(parsed.len(), 10);
        assert!(parsed.iter().any(|p| !p.is_exact()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chaos_reports_every_rate() {
        let out = run_cli(&[
            "chaos",
            "breast_cancer",
            "--n",
            "150",
            "--q",
            "15",
            "--rates",
            "0.0,0.2",
            "--bound",
            "1.0",
        ])
        .unwrap();
        assert!(out.contains("clean baseline accuracy"), "{out}");
        assert!(out.contains("fault rate 0.00"), "{out}");
        assert!(out.contains("fault rate 0.20"), "{out}");
        assert!(out.contains("ingest:"), "{out}");
        assert!(out.contains("all fault rates within bound 1"), "{out}");
    }

    #[test]
    fn chaos_sharded_drill_reports_recovery_and_coverage() {
        let out = run_cli(&[
            "chaos",
            "breast_cancer",
            "--n",
            "160",
            "--q",
            "15",
            "--rates",
            "0.1",
            "--shards",
            "4",
            "--kill-shard",
            "2",
            "--bound",
            "1.0",
        ])
        .unwrap();
        assert!(out.contains("sharded drill: 4 fault domains"), "{out}");
        assert!(out.contains("merged model bit-identical: true"), "{out}");
        assert!(
            out.contains("shard 2 permanently down: coverage 0.75"),
            "{out}"
        );
        assert!(out.contains("coverage 0.75"), "{out}");
        assert!(out.contains("all fault rates within bound 1"), "{out}");
    }

    #[test]
    fn chaos_bound_violation_is_an_error() {
        // A negative bound is unsatisfiable (the zero-rate drop is 0).
        let e = run_cli(&[
            "chaos",
            "breast_cancer",
            "--n",
            "120",
            "--q",
            "12",
            "--rates",
            "0.0",
            "--bound",
            "-1",
        ])
        .unwrap_err();
        assert!(
            e.to_string().contains("exceeds --bound"),
            "unexpected error: {e}"
        );
    }

    #[test]
    fn missing_file_is_io_error() {
        let e = run_cli(&["density", "/nonexistent/x.csv", "--at", "1.0"]).unwrap_err();
        assert!(matches!(e, UdmError::Io(_)));
    }

    #[test]
    fn metrics_subcommand_exports_live_registry() {
        // Drive a classification so the registry has something to show.
        let dir = tmpdir();
        let train = dir.join("train.csv");
        run_cli(&[
            "generate",
            "breast_cancer",
            "--n",
            "120",
            "--f",
            "0.5",
            "--out",
            train.to_str().unwrap(),
        ])
        .unwrap();
        run_cli(&[
            "classify",
            "--train",
            train.to_str().unwrap(),
            "--test",
            train.to_str().unwrap(),
            "--q",
            "12",
        ])
        .unwrap();
        let prom = run_cli(&["metrics"]).unwrap();
        let table = run_cli(&["metrics", "--format", "table"]).unwrap();
        if udm_observe::enabled() {
            assert!(prom.contains("udm_kde_kernel_evals_total"), "{prom}");
            assert!(
                prom.contains("udm_classify_column_cache_hits_total"),
                "{prom}"
            );
            assert!(prom.contains("udm_span_self_seconds"), "{prom}");
            assert!(table.contains("cli_classify"), "{table}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn observability_pipeline_end_to_end() {
        let dir = tmpdir();
        let metrics_path = dir.join("metrics.prom");
        let trace_path = dir.join("trace.jsonl");
        // Chaos exercises generation, the fault-tolerant ingest pipeline,
        // micro-clustering, and classification in a single command.
        let inv = crate::args::parse_invocation(
            [
                "chaos",
                "breast_cancer",
                "--n",
                "120",
                "--q",
                "12",
                "--rates",
                "0.3",
                "--metrics",
                metrics_path.to_str().unwrap(),
                "--trace",
                trace_path.to_str().unwrap(),
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        let mut buf = Vec::new();
        run_invocation(inv, &mut buf).unwrap();

        let prom = std::fs::read_to_string(&metrics_path).unwrap();
        if udm_observe::enabled() {
            assert!(
                prom.contains("udm_microcluster_kernel_evals_total"),
                "{prom}"
            );
            assert!(prom.contains("udm_ingest_arrivals_total"), "{prom}");
            assert!(prom.contains("udm_ingest_quarantined_total"), "{prom}");
            assert!(prom.contains("udm_span_self_seconds"), "{prom}");

            // Every trace line is a JSON object with a span path.
            let trace = std::fs::read_to_string(&trace_path).unwrap();
            assert!(!trace.trim().is_empty(), "trace file is empty");
            for line in trace.lines() {
                let value = serde_json::parse_value(line).expect("trace line parses");
                match value {
                    serde::Value::Map(entries) => {
                        assert!(entries.iter().any(|(k, _)| k == "path"), "{line}");
                    }
                    other => panic!("trace line is not an object: {other:?}"),
                }
            }
        }

        // The manifest rides along at <metrics>.manifest.json and is
        // well-formed JSON carrying the raw argument vector.
        let manifest_path = dir.join("metrics.prom.manifest.json");
        let manifest = std::fs::read_to_string(&manifest_path).unwrap();
        let value = serde_json::parse_value(&manifest).expect("manifest parses");
        match value {
            serde::Value::Map(entries) => {
                assert!(entries.iter().any(|(k, _)| k == "schema_version"));
                assert!(entries.iter().any(|(k, _)| k == "command"));
                assert!(entries.iter().any(|(k, _)| k == "wall_seconds"));
            }
            other => panic!("manifest is not an object: {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
