//! # udm-cli
//!
//! Library backing the `udm` command-line tool. All functionality lives
//! here (argument parsing, command execution against an abstract writer)
//! so it is unit-testable; `main.rs` is a thin shim.
//!
//! ```text
//! udm generate <adult|ionosphere|breast_cancer|forest_cover>
//!              [--n N] [--f F] [--seed S] [--out FILE]
//! udm summarize <data.csv> [--q Q] [--euclidean] [--out SNAPSHOT.json]
//! udm density   <data.csv> --at X1,X2,… [--subspace J1,J2,…] [--q Q] [--unadjusted]
//! udm classify  --train TRAIN.csv --test TEST.csv
//!               [--q Q] [--threshold A] [--unadjusted | --nn]
//! udm cluster   <data.csv> (--k K | --dbscan EPS,MINPTS) [--euclidean] [--seed S]
//! udm chaos     <adult|ionosphere|breast_cancer|forest_cover>
//!               [--n N] [--f F] [--rates R1,R2,…] [--bound B]
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod args;
pub mod commands;

pub use args::{parse_args, Command};
pub use commands::run;
