//! # udm-cli
//!
//! Library backing the `udm` command-line tool. All functionality lives
//! here (argument parsing, command execution against an abstract writer)
//! so it is unit-testable; `main.rs` is a thin shim.
//!
//! ```text
//! udm generate <adult|ionosphere|breast_cancer|forest_cover>
//!              [--n N] [--f F] [--seed S] [--out FILE]
//! udm summarize <data.csv> [--q Q] [--euclidean] [--out SNAPSHOT.json]
//! udm density   <data.csv> --at X1,X2,… [--subspace J1,J2,…] [--q Q] [--unadjusted]
//! udm classify  --train TRAIN.csv --test TEST.csv
//!               [--q Q] [--threshold A] [--unadjusted | --nn]
//! udm cluster   <data.csv> (--k K | --dbscan EPS,MINPTS) [--euclidean] [--seed S]
//! udm chaos     <adult|ionosphere|breast_cancer|forest_cover>
//!               [--n N] [--f F] [--rates R1,R2,…] [--bound B]
//! udm serve     --train TRAIN.csv --state-dir DIR [--addr HOST:PORT]
//!               [--q Q] [--shards S] [--no-batch] [--max-seconds T]
//! udm metrics   [--format prom|json|table] [--out FILE]
//! ```
//!
//! Every subcommand also accepts the global observability flags
//! `--metrics FILE` (write a Prometheus snapshot plus a
//! `FILE.manifest.json` run manifest after the command finishes) and
//! `--trace FILE` (stream span events to FILE as JSON lines).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod args;
pub mod commands;

pub use args::{parse_args, parse_invocation, Command, Invocation, MetricsFormat, ObserveOptions};
pub use commands::{run, run_invocation};
