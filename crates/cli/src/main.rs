//! The `udm` command-line tool: a thin shim over `udm_cli`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let invocation = match udm_cli::parse_invocation(args) {
        Ok(inv) => inv,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("try `udm help`");
            std::process::exit(2);
        }
    };
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    if let Err(e) = udm_cli::run_invocation(invocation, &mut lock) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
