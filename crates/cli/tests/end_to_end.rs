//! End-to-end tests that spawn the real `udm` binary.

use std::path::PathBuf;
use std::process::Command;

fn udm() -> Command {
    Command::new(env!("CARGO_BIN_EXE_udm"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("udm_e2e_{}_{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn help_exits_zero_and_prints_usage() {
    let out = udm().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("USAGE"));
}

#[test]
fn no_args_prints_usage() {
    let out = udm().output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().contains("USAGE"));
}

#[test]
fn unknown_subcommand_exits_2_with_stderr() {
    let out = udm().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown subcommand"), "{err}");
    assert!(err.contains("udm help"), "{err}");
}

#[test]
fn runtime_failure_exits_1() {
    let out = udm()
        .args(["density", "/nonexistent/file.csv", "--at", "0"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8(out.stderr).unwrap().contains("error"));
}

#[test]
fn full_pipeline_through_the_binary() {
    let dir = tmpdir("pipeline");
    let train = dir.join("train.csv");
    let test = dir.join("test.csv");

    // generate
    let out = udm()
        .args([
            "generate",
            "breast_cancer",
            "--n",
            "250",
            "--f",
            "0.5",
            "--seed",
            "1",
            "--out",
            train.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{:?}", out);
    let out = udm()
        .args([
            "generate",
            "breast_cancer",
            "--n",
            "80",
            "--f",
            "0.5",
            "--seed",
            "2",
            "--out",
            test.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());

    // classify
    let out = udm()
        .args([
            "classify",
            "--train",
            train.to_str().unwrap(),
            "--test",
            test.to_str().unwrap(),
            "--q",
            "20",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("accuracy"), "{text}");

    // summarize -> snapshot file exists and is JSON
    let snap = dir.join("snap.json");
    let out = udm()
        .args([
            "summarize",
            train.to_str().unwrap(),
            "--q",
            "8",
            "--out",
            snap.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let json = std::fs::read_to_string(&snap).unwrap();
    assert!(json.starts_with('{'));

    // density on stdout
    let out = udm()
        .args([
            "density",
            train.to_str().unwrap(),
            "--at",
            "0,0,0,0,0,0,0,0,0",
            "--q",
            "8",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().contains("density"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn generate_to_stdout_pipes_cleanly() {
    let out = udm()
        .args(["generate", "adult", "--n", "10"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.starts_with("#udm,dim=6"));
    assert_eq!(text.lines().count(), 11); // header + 10 rows
}
