//! Process-level drills for `udm serve`: a real daemon process, real
//! signals, real HTTP over TCP. Covers the graceful SIGTERM drain (exit
//! 0, manifest + final checkpoints written) and the chaos drill: kill
//! -9 mid-ingest, warm-restart from the same state directory, and
//! demand a model fingerprint bit-identical to an uninterrupted run.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use udm_serve::HealthzResponse;

fn udm() -> Command {
    Command::new(env!("CARGO_BIN_EXE_udm"))
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        let dir = std::env::temp_dir()
            .join("udm_serve_daemon_test")
            .join(format!("{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// A spawned daemon with its stdout reader. Killed on drop so a failed
/// assertion can't leak a live process.
struct Daemon {
    child: Child,
    stdout: BufReader<std::process::ChildStdout>,
    addr: String,
}

impl Daemon {
    fn spawn(train: &Path, state_dir: &Path, extra: &[&str]) -> Self {
        let mut child = udm()
            .args([
                "serve",
                "--train",
                train.to_str().unwrap(),
                "--state-dir",
                state_dir.to_str().unwrap(),
                "--addr",
                "127.0.0.1:0",
                "--q",
                "15",
                "--shards",
                "2",
            ])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn udm serve");
        let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        // First line is the (flushed) listening banner with the bound port.
        let mut banner = String::new();
        stdout.read_line(&mut banner).expect("read banner");
        let addr = banner
            .trim()
            .strip_prefix("listening on http://")
            .unwrap_or_else(|| panic!("unexpected banner: {banner:?}"))
            .to_string();
        Daemon {
            child,
            stdout,
            addr,
        }
    }

    /// Second banner line: cold/warm start summary.
    fn start_line(&mut self) -> String {
        let mut line = String::new();
        self.stdout.read_line(&mut line).expect("read start line");
        line
    }

    fn healthz(&self) -> HealthzResponse {
        let (_, body) = http(&self.addr, "GET", "/healthz", "");
        serde_json::from_str(&body).expect("healthz JSON")
    }

    fn wait_healthz(&self, secs: u64, pred: impl Fn(&HealthzResponse) -> bool) -> HealthzResponse {
        let deadline = Instant::now() + Duration::from_secs(secs);
        loop {
            let h = self.healthz();
            if pred(&h) {
                return h;
            }
            assert!(Instant::now() < deadline, "healthz wait timed out: {h:?}");
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    fn signal(&self, sig: i32) {
        let status = Command::new("sh")
            .args(["-c", &format!("kill -{sig} {}", self.child.id())])
            .status()
            .expect("run kill");
        assert!(status.success(), "kill -{sig} failed");
    }

    /// Waits for exit and returns (exit-success, remaining stdout).
    fn wait(mut self) -> (bool, String) {
        let status = self.child.wait().expect("wait on daemon");
        let mut rest = String::new();
        self.stdout.read_to_string(&mut rest).expect("drain stdout");
        (status.success(), rest)
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn http(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(
            format!(
                "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8_lossy(&raw).into_owned();
    let status = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn write_fixture(dir: &Path, n: usize) -> PathBuf {
    let train = dir.join("train.csv");
    let status = udm()
        .args([
            "generate",
            "breast_cancer",
            "--n",
            &n.to_string(),
            "--f",
            "0.5",
            "--seed",
            "3",
            "--out",
            train.to_str().unwrap(),
        ])
        .status()
        .expect("run udm generate");
    assert!(status.success(), "fixture generation failed");
    train
}

#[test]
fn sigterm_drains_flushes_and_exits_zero() {
    let dir = TempDir::new("sigterm");
    let n = 160;
    let train = write_fixture(dir.path(), n);
    let state = dir.path().join("state");

    let mut daemon = Daemon::spawn(&train, &state, &["--checkpoint-every", "16"]);
    assert!(daemon.start_line().contains("cold start"));
    let h = daemon.wait_healthz(60, |h| h.arrivals == n as u64);
    assert!(h.classifier, "labelled fixture must fit a classifier");

    // The daemon answers real queries before shutdown.
    let (code, body) = http(
        &daemon.addr,
        "POST",
        "/classify",
        "{\"values\": [0,0,0,0,0,0,0,0,0]}",
    );
    assert_eq!(code, 200, "classify over HTTP: {body}");

    daemon.signal(15);
    let (ok, rest) = daemon.wait();
    assert!(ok, "SIGTERM must exit 0; output:\n{rest}");
    assert!(rest.contains("graceful shutdown"), "{rest}");
    // No lost ingest records: the drain report accounts for the full
    // stream and the final checkpoint cursors cover it (with seq % 2
    // partitioning of 160 records the resume cursors are 159 and 160).
    assert!(
        rest.contains(&format!("graceful shutdown: {n} arrivals")),
        "{rest}"
    );
    assert!(
        rest.contains("final checkpoint cursors: [159, 160]"),
        "{rest}"
    );
    assert!(
        state.join("serve.manifest.json").is_file(),
        "manifest missing"
    );
}

#[test]
fn kill9_warm_restart_is_bit_identical_and_answers_promptly() {
    let dir = TempDir::new("kill9");
    let n = 160;
    let train = write_fixture(dir.path(), n);

    // Reference: uninterrupted run, stopped via POST /shutdown.
    let reference = Daemon::spawn(&train, &dir.path().join("state_ref"), &[]);
    let want = reference
        .wait_healthz(60, |h| h.arrivals == n as u64)
        .model_fingerprint;
    let (code, _) = http(&reference.addr, "POST", "/shutdown", "");
    assert_eq!(code, 200);
    let (ok, rest) = reference.wait();
    assert!(ok, "POST /shutdown must exit 0; output:\n{rest}");

    // Victim: throttled ingest so SIGKILL lands mid-stream, between
    // checkpoint cadence writes.
    let state = dir.path().join("state_chaos");
    let victim = Daemon::spawn(
        &train,
        &state,
        &[
            "--checkpoint-every",
            "8",
            "--refresh-every",
            "8",
            "--ingest-delay-ms",
            "25",
        ],
    );
    let mid = victim.wait_healthz(60, |h| h.arrivals >= 40);
    assert!(mid.arrivals >= 40, "kill must land after some ingest");
    victim.signal(9);
    {
        let (ok, _) = victim.wait();
        assert!(!ok, "SIGKILL cannot exit cleanly");
    }

    // Warm restart over the surviving checkpoints: serves immediately,
    // replays to the end, and reproduces the reference CFT stats.
    let mut resumed = Daemon::spawn(&train, &state, &["--checkpoint-every", "8"]);
    assert!(resumed.start_line().contains("warm start"));
    let first = resumed.wait_healthz(60, |h| h.generation >= 1);
    assert!(
        first.points > 0,
        "warm restart must serve the recovered model before replay: {first:?}"
    );
    let done = resumed.wait_healthz(60, |h| h.arrivals == n as u64);
    assert_eq!(
        done.model_fingerprint, want,
        "warm-restarted CFT stats must be bit-identical to the reference run"
    );
    // And it still answers data queries after recovery.
    let (code, body) = http(
        &resumed.addr,
        "POST",
        "/density",
        "{\"values\": [0,0,0,0,0,0,0,0,0]}",
    );
    assert_eq!(code, 200, "density after warm restart: {body}");

    daemon_graceful(resumed);
}

fn daemon_graceful(daemon: Daemon) {
    daemon.signal(15);
    let (ok, rest) = daemon.wait();
    assert!(ok, "graceful exit failed:\n{rest}");
}
