//! DBSCAN over uncertain points with error-adjusted distances.
//!
//! The classic DBSCAN neighborhood predicate `‖Y − Z‖² ≤ ε²` is replaced
//! by the symmetric two-sided extension of the paper's Eq. 5:
//!
//! ```text
//! dist(Y, Z) = Σ_j max{ 0, (Y_j − Z_j)² − ψ_j(Y)² − ψ_j(Z)² }
//! ```
//!
//! Two uncertain points whose displacement along a dimension is within
//! their combined error budget are treated as coincident on that
//! dimension — the best-case reading the paper motivates for noisy data.
//! At ψ ≡ 0 this reduces exactly to squared Euclidean DBSCAN.

use serde::{Deserialize, Serialize};
use udm_core::{Result, UdmError, UncertainDataset, UncertainPoint};

/// Pairwise symmetric error-adjusted squared distance.
#[inline]
pub fn pairwise_error_adjusted_sq(a: &UncertainPoint, b: &UncertainPoint) -> f64 {
    debug_assert_eq!(a.dim(), b.dim());
    let mut total = 0.0;
    for j in 0..a.dim() {
        let d = a.value(j) - b.value(j);
        let ea = a.error(j);
        let eb = b.error(j);
        // Grouped so the expression is exactly symmetric in (a, b): IEEE
        // addition commutes, sequential subtraction does not.
        total += (d * d - (ea * ea + eb * eb)).max(0.0);
    }
    total
}

/// DBSCAN configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DbscanConfig {
    /// Neighborhood radius ε (distance, not squared).
    pub eps: f64,
    /// Minimum neighborhood size (including the point itself) for a core
    /// point.
    pub min_pts: usize,
    /// Whether to use the error-adjusted pairwise distance (`true`, the
    /// uncertain-data variant) or plain Euclidean (`false`, the baseline).
    pub error_adjusted: bool,
}

impl DbscanConfig {
    /// Error-adjusted configuration.
    pub fn new(eps: f64, min_pts: usize) -> Self {
        DbscanConfig {
            eps,
            min_pts,
            error_adjusted: true,
        }
    }

    fn validate(&self) -> Result<()> {
        if !(self.eps.is_finite() && self.eps > 0.0) {
            return Err(UdmError::InvalidValue {
                what: "eps",
                value: self.eps,
            });
        }
        if self.min_pts == 0 {
            return Err(UdmError::InvalidConfig("min_pts must be at least 1".into()));
        }
        Ok(())
    }
}

/// Cluster assignment produced by [`Dbscan::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct DbscanResult {
    /// Per-point assignment: `Some(cluster_id)` or `None` for noise.
    pub assignments: Vec<Option<usize>>,
    /// Number of clusters found.
    pub num_clusters: usize,
}

impl DbscanResult {
    /// Number of noise points.
    pub fn num_noise(&self) -> usize {
        self.assignments.iter().filter(|a| a.is_none()).count()
    }
}

/// The DBSCAN algorithm (classic label-propagation formulation).
///
/// # Example
///
/// ```
/// use udm_cluster::{Dbscan, DbscanConfig};
/// use udm_core::{UncertainDataset, UncertainPoint};
///
/// let data = UncertainDataset::from_points(
///     (0..20).map(|i| {
///         let base = if i % 2 == 0 { 0.0 } else { 10.0 };
///         UncertainPoint::new(vec![base + (i / 2) as f64 * 0.05], vec![0.1]).unwrap()
///     }).collect(),
/// ).unwrap();
/// let result = Dbscan::new(DbscanConfig::new(1.0, 3)).unwrap().run(&data).unwrap();
/// assert_eq!(result.num_clusters, 2);
/// ```
#[derive(Debug, Clone)]
pub struct Dbscan {
    config: DbscanConfig,
}

impl Dbscan {
    /// Creates the algorithm with a validated configuration.
    pub fn new(config: DbscanConfig) -> Result<Self> {
        config.validate()?;
        Ok(Dbscan { config })
    }

    fn neighbors(&self, data: &UncertainDataset, i: usize) -> Vec<usize> {
        let eps_sq = self.config.eps * self.config.eps;
        let pi = data.point(i);
        (0..data.len())
            .filter(|&j| {
                let d = if self.config.error_adjusted {
                    pairwise_error_adjusted_sq(pi, data.point(j))
                } else {
                    pi.squared_euclidean(data.point(j))
                };
                d <= eps_sq
            })
            .collect()
    }

    /// Runs DBSCAN over the dataset.
    ///
    /// # Errors
    ///
    /// [`UdmError::EmptyDataset`] on empty input.
    pub fn run(&self, data: &UncertainDataset) -> Result<DbscanResult> {
        if data.is_empty() {
            return Err(UdmError::EmptyDataset);
        }
        const UNVISITED: usize = usize::MAX;
        const NOISE: usize = usize::MAX - 1;
        let n = data.len();
        let mut label = vec![UNVISITED; n];
        let mut cluster = 0usize;

        for i in 0..n {
            if label[i] != UNVISITED {
                continue;
            }
            let seeds = self.neighbors(data, i);
            if seeds.len() < self.config.min_pts {
                label[i] = NOISE;
                continue;
            }
            label[i] = cluster;
            let mut frontier = seeds;
            let mut cursor = 0;
            while cursor < frontier.len() {
                let j = frontier[cursor];
                cursor += 1;
                if label[j] == NOISE {
                    label[j] = cluster; // border point
                }
                if label[j] != UNVISITED {
                    continue;
                }
                label[j] = cluster;
                let jn = self.neighbors(data, j);
                if jn.len() >= self.config.min_pts {
                    frontier.extend(jn);
                }
            }
            cluster += 1;
        }

        let assignments = label
            .into_iter()
            .map(|l| if l >= NOISE { None } else { Some(l) })
            .collect();
        Ok(DbscanResult {
            assignments,
            num_clusters: cluster,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact(values: &[f64]) -> UncertainPoint {
        UncertainPoint::exact(values.to_vec()).unwrap()
    }

    fn two_blobs() -> UncertainDataset {
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(exact(&[i as f64 * 0.1, 0.0]));
            pts.push(exact(&[10.0 + i as f64 * 0.1, 0.0]));
        }
        pts.push(exact(&[100.0, 100.0])); // outlier
        UncertainDataset::from_points(pts).unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(Dbscan::new(DbscanConfig::new(0.0, 2)).is_err());
        assert!(Dbscan::new(DbscanConfig::new(f64::NAN, 2)).is_err());
        assert!(Dbscan::new(DbscanConfig::new(1.0, 0)).is_err());
        assert!(Dbscan::new(DbscanConfig::new(1.0, 2)).is_ok());
    }

    #[test]
    fn finds_two_blobs_and_noise() {
        let d = two_blobs();
        let r = Dbscan::new(DbscanConfig::new(0.5, 3))
            .unwrap()
            .run(&d)
            .unwrap();
        assert_eq!(r.num_clusters, 2);
        assert_eq!(r.num_noise(), 1);
        // All of blob 1 in one cluster:
        let c0 = r.assignments[0];
        assert!(c0.is_some());
        for i in (0..20).step_by(2) {
            assert_eq!(r.assignments[i], c0);
        }
    }

    #[test]
    fn everything_noise_for_tiny_eps() {
        let d = two_blobs();
        let r = Dbscan::new(DbscanConfig::new(1e-6, 2))
            .unwrap()
            .run(&d)
            .unwrap();
        assert_eq!(r.num_clusters, 0);
        assert_eq!(r.num_noise(), d.len());
    }

    #[test]
    fn one_cluster_for_huge_eps() {
        let d = two_blobs();
        let r = Dbscan::new(DbscanConfig::new(1e6, 2))
            .unwrap()
            .run(&d)
            .unwrap();
        assert_eq!(r.num_clusters, 1);
        assert_eq!(r.num_noise(), 0);
    }

    #[test]
    fn errors_bridge_gaps_only_when_adjusted() {
        // Two groups 4 apart; points carry errors of 3, so the adjusted
        // pairwise distance collapses the gap; Euclidean keeps them apart.
        let pts: Vec<UncertainPoint> = (0..6)
            .map(|i| {
                let x = if i < 3 {
                    i as f64 * 0.1
                } else {
                    4.0 + i as f64 * 0.1
                };
                UncertainPoint::new(vec![x], vec![3.0]).unwrap()
            })
            .collect();
        let d = UncertainDataset::from_points(pts).unwrap();

        let adjusted = Dbscan::new(DbscanConfig::new(0.8, 3))
            .unwrap()
            .run(&d)
            .unwrap();
        assert_eq!(adjusted.num_clusters, 1, "errors should bridge the gap");

        let plain = Dbscan::new(DbscanConfig {
            eps: 0.8,
            min_pts: 3,
            error_adjusted: false,
        })
        .unwrap()
        .run(&d)
        .unwrap();
        assert_eq!(plain.num_clusters, 2, "euclidean keeps groups separate");
    }

    #[test]
    fn zero_error_adjusted_equals_euclidean() {
        let d = two_blobs(); // all exact points
        let adj = Dbscan::new(DbscanConfig::new(0.5, 3))
            .unwrap()
            .run(&d)
            .unwrap();
        let euc = Dbscan::new(DbscanConfig {
            eps: 0.5,
            min_pts: 3,
            error_adjusted: false,
        })
        .unwrap()
        .run(&d)
        .unwrap();
        assert_eq!(adj, euc);
    }

    #[test]
    fn empty_dataset_rejected() {
        let d = UncertainDataset::new(2);
        assert!(Dbscan::new(DbscanConfig::new(1.0, 2))
            .unwrap()
            .run(&d)
            .is_err());
    }

    #[test]
    fn pairwise_distance_is_symmetric() {
        let a = UncertainPoint::new(vec![0.0, 1.0], vec![0.5, 0.0]).unwrap();
        let b = UncertainPoint::new(vec![2.0, -1.0], vec![0.0, 1.0]).unwrap();
        assert_eq!(
            pairwise_error_adjusted_sq(&a, &b),
            pairwise_error_adjusted_sq(&b, &a)
        );
    }

    #[test]
    fn border_points_join_a_cluster() {
        // A chain where the end point is within eps of a core point but
        // has too few neighbors to be core itself.
        let pts: Vec<UncertainPoint> = [0.0, 0.1, 0.2, 0.3, 0.85]
            .iter()
            .map(|&x| exact(&[x]))
            .collect();
        let d = UncertainDataset::from_points(pts).unwrap();
        let r = Dbscan::new(DbscanConfig::new(0.6, 4))
            .unwrap()
            .run(&d)
            .unwrap();
        assert_eq!(r.num_clusters, 1);
        assert_eq!(r.assignments[4], r.assignments[0]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_dataset() -> impl Strategy<Value = UncertainDataset> {
        proptest::collection::vec((-50.0f64..50.0, 0.0f64..2.0), 2..50).prop_map(|rows| {
            UncertainDataset::from_points(
                rows.into_iter()
                    .map(|(v, e)| UncertainPoint::new(vec![v], vec![e]).unwrap())
                    .collect(),
            )
            .unwrap()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn cluster_ids_are_dense_and_bounded(d in arb_dataset(), eps in 0.1f64..10.0) {
            let r = Dbscan::new(DbscanConfig::new(eps, 3)).unwrap().run(&d).unwrap();
            prop_assert_eq!(r.assignments.len(), d.len());
            for a in r.assignments.iter().flatten() {
                prop_assert!(*a < r.num_clusters);
            }
            // Every id below num_clusters is used at least once.
            for c in 0..r.num_clusters {
                prop_assert!(r.assignments.contains(&Some(c)));
            }
        }

        #[test]
        fn pairwise_distance_symmetric_and_bounded(
            a in (-50.0f64..50.0, 0.0f64..5.0),
            b in (-50.0f64..50.0, 0.0f64..5.0),
        ) {
            let pa = UncertainPoint::new(vec![a.0], vec![a.1]).unwrap();
            let pb = UncertainPoint::new(vec![b.0], vec![b.1]).unwrap();
            let d1 = pairwise_error_adjusted_sq(&pa, &pb);
            let d2 = pairwise_error_adjusted_sq(&pb, &pa);
            prop_assert_eq!(d1, d2);
            prop_assert!(d1 >= 0.0);
            prop_assert!(d1 <= pa.squared_euclidean(&pb) + 1e-9);
        }
    }
}
