//! k-means with error-adjusted assignment.
//!
//! The assignment step uses the paper's point-to-centroid distance (Eq.
//! 5), so a point whose error ellipse is skewed toward a farther centroid
//! can still join it (the Figure 2 behaviour); the update step is the
//! ordinary coordinate mean. At ψ ≡ 0 this reduces exactly to Lloyd's
//! algorithm.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use udm_core::{Result, UdmError, UncertainDataset};
use udm_microcluster::AssignmentDistance;

/// k-means configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KMeansConfig {
    /// Number of clusters `k`.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Assignment distance (error-adjusted by default).
    pub distance: AssignmentDistance,
    /// RNG seed for centroid initialization.
    pub seed: u64,
}

impl KMeansConfig {
    /// Error-adjusted configuration with `k` clusters.
    pub fn new(k: usize) -> Self {
        KMeansConfig {
            k,
            max_iters: 100,
            distance: AssignmentDistance::ErrorAdjusted,
            seed: 0,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.k == 0 {
            return Err(UdmError::InvalidConfig("k must be at least 1".into()));
        }
        if self.max_iters == 0 {
            return Err(UdmError::InvalidConfig(
                "max_iters must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// Result of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Final centroids, `k × d`.
    pub centroids: Vec<Vec<f64>>,
    /// Per-point cluster index.
    pub assignments: Vec<usize>,
    /// Iterations executed until convergence (or the cap).
    pub iterations: usize,
    /// Final within-cluster sum of (error-adjusted) squared distances.
    pub inertia: f64,
}

/// The k-means algorithm.
///
/// # Example
///
/// ```
/// use udm_cluster::{KMeans, KMeansConfig};
/// use udm_core::{UncertainDataset, UncertainPoint};
///
/// let data = UncertainDataset::from_points(
///     (0..30).map(|i| {
///         let base = if i % 2 == 0 { 0.0 } else { 8.0 };
///         UncertainPoint::new(vec![base + (i % 5) as f64 * 0.1], vec![0.2]).unwrap()
///     }).collect(),
/// ).unwrap();
/// let result = KMeans::new(KMeansConfig::new(2)).unwrap().run(&data).unwrap();
/// assert_eq!(result.centroids.len(), 2);
/// assert_ne!(result.assignments[0], result.assignments[1]);
/// ```
#[derive(Debug, Clone)]
pub struct KMeans {
    config: KMeansConfig,
}

impl KMeans {
    /// Creates the algorithm with a validated configuration.
    pub fn new(config: KMeansConfig) -> Result<Self> {
        config.validate()?;
        Ok(KMeans { config })
    }

    /// Runs Lloyd iterations until assignments stabilize or `max_iters`.
    ///
    /// # Errors
    ///
    /// [`UdmError::EmptyDataset`] on empty input;
    /// [`UdmError::InvalidConfig`] when `k` exceeds the number of points.
    pub fn run(&self, data: &UncertainDataset) -> Result<KMeansResult> {
        let n = data.len();
        let k = self.config.k;
        if n == 0 {
            return Err(UdmError::EmptyDataset);
        }
        if k > n {
            return Err(UdmError::InvalidConfig(format!(
                "k = {k} exceeds the number of points {n}"
            )));
        }
        let d = data.dim();

        // k-means++ seeding (D² sampling on plain squared Euclidean), so
        // seeds spread across modes regardless of the assignment metric.
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
        centroids.push(data.point(rng.gen_range(0..n)).values().to_vec());
        while centroids.len() < k {
            let d2: Vec<f64> = data
                .iter()
                .map(|p| {
                    centroids
                        .iter()
                        .map(|c| {
                            p.values()
                                .iter()
                                .zip(c.iter())
                                .map(|(a, b)| (a - b) * (a - b))
                                .sum::<f64>()
                        })
                        .fold(f64::INFINITY, f64::min)
                })
                .collect();
            let total: f64 = d2.iter().sum();
            let idx = if total <= 0.0 {
                rng.gen_range(0..n)
            } else {
                let mut pick = rng.gen::<f64>() * total;
                let mut chosen = n - 1;
                for (i, &w) in d2.iter().enumerate() {
                    if pick < w {
                        chosen = i;
                        break;
                    }
                    pick -= w;
                }
                chosen
            };
            centroids.push(data.point(idx).values().to_vec());
        }

        let mut assignments = vec![0usize; n];
        let mut iterations = 0;
        for iter in 0..self.config.max_iters {
            iterations = iter + 1;
            // Assignment step.
            let mut changed = false;
            for (i, p) in data.iter().enumerate() {
                let mut best = assignments[i];
                let mut best_d = f64::INFINITY;
                for (c_idx, c) in centroids.iter().enumerate() {
                    let dist = self.config.distance.evaluate(p, c);
                    if dist < best_d {
                        best_d = dist;
                        best = c_idx;
                    }
                }
                if best != assignments[i] {
                    assignments[i] = best;
                    changed = true;
                }
            }
            if !changed && iter > 0 {
                break;
            }
            // Update step: coordinate means; empty clusters keep their
            // centroid (standard Lloyd treatment).
            let mut sums = vec![vec![0.0; d]; k];
            let mut counts = vec![0usize; k];
            for (i, p) in data.iter().enumerate() {
                let c = assignments[i];
                counts[c] += 1;
                for (s, &v) in sums[c].iter_mut().zip(p.values().iter()) {
                    *s += v;
                }
            }
            for c in 0..k {
                if counts[c] > 0 {
                    let inv = 1.0 / counts[c] as f64;
                    for (slot, &s) in centroids[c].iter_mut().zip(sums[c].iter()) {
                        *slot = s * inv;
                    }
                }
            }
        }

        let inertia = data
            .iter()
            .zip(assignments.iter())
            .map(|(p, &c)| self.config.distance.evaluate(p, &centroids[c]))
            .sum();

        Ok(KMeansResult {
            centroids,
            assignments,
            iterations,
            inertia,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udm_core::UncertainPoint;

    fn blob_data() -> UncertainDataset {
        let mut pts = Vec::new();
        for i in 0..20 {
            let o = (i % 5) as f64 * 0.05;
            pts.push(UncertainPoint::exact(vec![o, o]).unwrap());
            pts.push(UncertainPoint::exact(vec![10.0 + o, 10.0 + o]).unwrap());
        }
        UncertainDataset::from_points(pts).unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(KMeans::new(KMeansConfig::new(0)).is_err());
        let mut c = KMeansConfig::new(2);
        c.max_iters = 0;
        assert!(KMeans::new(c).is_err());
    }

    #[test]
    fn separates_two_blobs() {
        let d = blob_data();
        let r = KMeans::new(KMeansConfig::new(2)).unwrap().run(&d).unwrap();
        // points 0,2,4,... are blob A; 1,3,5,... blob B
        let a = r.assignments[0];
        let b = r.assignments[1];
        assert_ne!(a, b);
        for i in 0..d.len() {
            assert_eq!(r.assignments[i], if i % 2 == 0 { a } else { b });
        }
        // centroids near (0,0) and (10,10)
        let mut cs = r.centroids.clone();
        cs.sort_by(|x, y| x[0].partial_cmp(&y[0]).unwrap());
        assert!(cs[0][0] < 1.0 && cs[1][0] > 9.0);
    }

    #[test]
    fn k_equals_n_zero_inertia() {
        let d = UncertainDataset::from_points(vec![
            UncertainPoint::exact(vec![0.0]).unwrap(),
            UncertainPoint::exact(vec![5.0]).unwrap(),
            UncertainPoint::exact(vec![9.0]).unwrap(),
        ])
        .unwrap();
        let r = KMeans::new(KMeansConfig::new(3)).unwrap().run(&d).unwrap();
        assert!(r.inertia < 1e-12);
    }

    #[test]
    fn k_above_n_rejected() {
        let d =
            UncertainDataset::from_points(vec![UncertainPoint::exact(vec![0.0]).unwrap()]).unwrap();
        assert!(KMeans::new(KMeansConfig::new(2)).unwrap().run(&d).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let d = blob_data();
        let r1 = KMeans::new(KMeansConfig::new(2)).unwrap().run(&d).unwrap();
        let r2 = KMeans::new(KMeansConfig::new(2)).unwrap().run(&d).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn error_adjusted_assignment_moves_noisy_point() {
        // Figure 2 scenario at the k-means level: a point Euclidean-closer
        // to centroid B but with a large error along the axis toward A.
        let mut pts = Vec::new();
        for _ in 0..5 {
            pts.push(UncertainPoint::exact(vec![10.0, 0.0]).unwrap()); // A
            pts.push(UncertainPoint::exact(vec![0.0, 4.0]).unwrap()); // B
        }
        // the noisy point: at origin, error 12 along dim 0
        pts.push(UncertainPoint::new(vec![0.0, 0.0], vec![12.0, 0.1]).unwrap());
        let d = UncertainDataset::from_points(pts).unwrap();

        let adj = KMeans::new(KMeansConfig::new(2)).unwrap().run(&d).unwrap();
        let mut cfg = KMeansConfig::new(2);
        cfg.distance = AssignmentDistance::Euclidean;
        let euc = KMeans::new(cfg).unwrap().run(&d).unwrap();

        let a_cluster = adj.assignments[0]; // a pure-A point
        let b_cluster = euc.assignments[1]; // a pure-B point
        assert_eq!(adj.assignments[10], a_cluster, "adjusted joins A");
        assert_eq!(euc.assignments[10], b_cluster, "euclidean joins B");
    }

    #[test]
    fn converges_before_cap() {
        let d = blob_data();
        let r = KMeans::new(KMeansConfig::new(2)).unwrap().run(&d).unwrap();
        assert!(r.iterations < 100);
    }

    #[test]
    fn inertia_non_increasing_with_more_clusters() {
        let d = blob_data();
        let r2 = KMeans::new(KMeansConfig::new(2)).unwrap().run(&d).unwrap();
        let r4 = KMeans::new(KMeansConfig::new(4)).unwrap().run(&d).unwrap();
        assert!(r4.inertia <= r2.inertia + 1e-9);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use udm_core::UncertainPoint;

    fn arb_dataset() -> impl Strategy<Value = UncertainDataset> {
        proptest::collection::vec((-100.0f64..100.0, 0.0f64..5.0), 4..60).prop_map(|rows| {
            UncertainDataset::from_points(
                rows.into_iter()
                    .map(|(v, e)| UncertainPoint::new(vec![v], vec![e]).unwrap())
                    .collect(),
            )
            .unwrap()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn assignments_are_valid_and_inertia_finite(d in arb_dataset(), k in 1usize..4) {
            prop_assume!(k <= d.len());
            let r = KMeans::new(KMeansConfig::new(k)).unwrap().run(&d).unwrap();
            prop_assert_eq!(r.assignments.len(), d.len());
            prop_assert!(r.assignments.iter().all(|&a| a < k));
            prop_assert!(r.inertia.is_finite() && r.inertia >= 0.0);
            prop_assert_eq!(r.centroids.len(), k);
        }

        #[test]
        fn every_point_sits_in_its_nearest_centroid(d in arb_dataset()) {
            prop_assume!(d.len() >= 2);
            let r = KMeans::new(KMeansConfig::new(2)).unwrap().run(&d).unwrap();
            for (i, p) in d.iter().enumerate() {
                let own = AssignmentDistance::ErrorAdjusted
                    .evaluate(p, &r.centroids[r.assignments[i]]);
                for c in &r.centroids {
                    let other = AssignmentDistance::ErrorAdjusted.evaluate(p, c);
                    prop_assert!(own <= other + 1e-9);
                }
            }
        }
    }
}
