//! # udm-cluster
//!
//! Density-based clustering of uncertain data — the second application
//! family the paper points at (§3: "clustering algorithms such as DBSCAN
//! … work with joint probability densities as intermediate
//! representations. In all these cases, our approach provides a direct
//! (and scalable) solution to the corresponding problem").
//!
//! Provided:
//!
//! * [`dbscan`] — DBSCAN over uncertain points with an error-adjusted
//!   pairwise distance (the symmetric two-sided extension of Eq. 5),
//! * [`kmeans`] — k-means whose assignment step uses the paper's
//!   error-adjusted point-to-centroid distance (Eq. 5),
//! * [`macro_cluster`](mod@macro_cluster) — the CluStream-style offline phase: weighted
//!   k-means over micro-cluster pseudo-points, `O(q)` per iteration
//!   regardless of stream length,
//! * [`metrics`] — external cluster validation (purity, Rand index,
//!   adjusted Rand index, NMI) used by the clustering benches,
//! * [`outlier`] — density-based anomaly detection: low error-adjusted
//!   density = anomalous, with the point's own ψ discounting surprise.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod dbscan;
pub mod kmeans;
pub mod macro_cluster;
pub mod metrics;
pub mod outlier;

pub use dbscan::{Dbscan, DbscanConfig, DbscanResult};
pub use kmeans::{KMeans, KMeansConfig, KMeansResult};
pub use macro_cluster::{macro_cluster, MacroClusterConfig, MacroClusters};
pub use metrics::{adjusted_rand_index, normalized_mutual_information, purity, rand_index};
pub use outlier::{OutlierConfig, OutlierDetector};
