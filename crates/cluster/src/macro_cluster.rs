//! Macro-clustering: weighted k-means over micro-cluster pseudo-points.
//!
//! The CluStream lineage the paper builds on (§2.1, reference \[2\]) pairs an online
//! micro-clustering phase with an *offline* phase that clusters the
//! summaries themselves. This module provides that offline phase for
//! error-based micro-clusters: pseudo-points are weighted by their member
//! counts `n(C)`, and distances are discounted by the pseudo-point error
//! `Δ(C)` — the same "best case" adjustment as Eq. 5, applied at the
//! summary level:
//!
//! ```text
//! dist(C, m) = Σ_j max{0, (c_j(C) − m_j)² − Δ_j(C)²}
//! ```
//!
//! A whole stream can thus be clustered into `k` macro-clusters in
//! `O(q·k)` per iteration, independent of the stream length.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use udm_core::{Result, UdmError, UncertainPoint};
use udm_microcluster::{MicroCluster, PseudoPoint};

/// Configuration of the macro-clustering pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MacroClusterConfig {
    /// Number of macro-clusters `k`.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Discount pseudo-point errors `Δ(C)` in the assignment distance.
    pub error_adjusted: bool,
    /// Seed for centroid initialization.
    pub seed: u64,
}

impl MacroClusterConfig {
    /// Error-adjusted configuration with `k` macro-clusters.
    pub fn new(k: usize) -> Self {
        MacroClusterConfig {
            k,
            max_iters: 100,
            error_adjusted: true,
            seed: 0,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.k == 0 {
            return Err(UdmError::InvalidConfig("k must be at least 1".into()));
        }
        if self.max_iters == 0 {
            return Err(UdmError::InvalidConfig(
                "max_iters must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// Result of macro-clustering a set of micro-clusters.
#[derive(Debug, Clone, PartialEq)]
pub struct MacroClusters {
    /// Macro-centroids, `k × d`.
    pub centroids: Vec<Vec<f64>>,
    /// Per-micro-cluster macro assignment.
    pub assignments: Vec<usize>,
    /// Total original points represented by each macro-cluster.
    pub weights: Vec<u64>,
    /// Lloyd iterations executed.
    pub iterations: usize,
}

impl MacroClusters {
    /// Assigns a raw point to its macro-cluster (plain nearest centroid;
    /// the point's own errors are discounted Eq. 5 style).
    pub fn assign(&self, point: &UncertainPoint) -> Option<usize> {
        let mut best = None;
        let mut best_d = f64::INFINITY;
        for (i, c) in self.centroids.iter().enumerate() {
            let d = udm_microcluster::distance::error_adjusted_sq(point, c);
            if d < best_d {
                best_d = d;
                best = Some(i);
            }
        }
        best
    }
}

fn pseudo_distance_sq(p: &PseudoPoint, centroid: &[f64], error_adjusted: bool) -> f64 {
    let mut total = 0.0;
    for (j, &c) in centroid.iter().enumerate() {
        let d = p.centroid[j] - c;
        let discount = if error_adjusted {
            p.delta[j] * p.delta[j]
        } else {
            0.0
        };
        total += (d * d - discount).max(0.0);
    }
    total
}

/// Runs weighted Lloyd iterations over the pseudo-points of the given
/// micro-clusters.
///
/// # Errors
///
/// [`UdmError::EmptyDataset`] when no non-empty cluster exists;
/// [`UdmError::InvalidConfig`] when `k` exceeds the number of non-empty
/// micro-clusters; [`UdmError::DimensionMismatch`] on ragged input.
pub fn macro_cluster(
    clusters: &[MicroCluster],
    config: MacroClusterConfig,
) -> Result<MacroClusters> {
    config.validate()?;
    let pseudos: Vec<PseudoPoint> = clusters
        .iter()
        .filter(|c| !c.is_empty())
        .map(|c| PseudoPoint::from_cluster(c, config.error_adjusted))
        .collect::<Result<_>>()?;
    let q = pseudos.len();
    if q == 0 {
        return Err(UdmError::EmptyDataset);
    }
    let dim = pseudos[0].dim();
    for p in &pseudos {
        if p.dim() != dim {
            return Err(UdmError::DimensionMismatch {
                expected: dim,
                actual: p.dim(),
            });
        }
    }
    if config.k > q {
        return Err(UdmError::InvalidConfig(format!(
            "k = {} exceeds the number of micro-clusters {q}",
            config.k
        )));
    }

    // k-means++ seeding over pseudo-point centroids (weighted by n(C)):
    // robust against all seeds landing in one mode.
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(config.k);
    let first = rng.gen_range(0..q);
    centroids.push(pseudos[first].centroid.clone());
    while centroids.len() < config.k {
        // D² sampling: probability proportional to weight × squared
        // distance to the nearest chosen seed.
        let d2: Vec<f64> = pseudos
            .iter()
            .map(|p| {
                let nearest = centroids
                    .iter()
                    .map(|c| pseudo_distance_sq(p, c, false))
                    .fold(f64::INFINITY, f64::min);
                nearest * p.weight as f64
            })
            .collect();
        let total: f64 = d2.iter().sum();
        let idx = if total <= 0.0 {
            rng.gen_range(0..q)
        } else {
            let mut pick = rng.gen::<f64>() * total;
            let mut chosen = q - 1;
            for (i, &w) in d2.iter().enumerate() {
                if pick < w {
                    chosen = i;
                    break;
                }
                pick -= w;
            }
            chosen
        };
        centroids.push(pseudos[idx].centroid.clone());
    }

    let mut assignments = vec![0usize; q];
    let mut iterations = 0;
    for iter in 0..config.max_iters {
        iterations = iter + 1;
        let mut changed = false;
        for (i, p) in pseudos.iter().enumerate() {
            let mut best = assignments[i];
            let mut best_d = f64::INFINITY;
            for (c_idx, c) in centroids.iter().enumerate() {
                let d = pseudo_distance_sq(p, c, config.error_adjusted);
                if d < best_d {
                    best_d = d;
                    best = c_idx;
                }
            }
            if best != assignments[i] {
                assignments[i] = best;
                changed = true;
            }
        }
        if !changed && iter > 0 {
            break;
        }
        // Weighted mean update.
        let mut sums = vec![vec![0.0; dim]; config.k];
        let mut weights = vec![0u64; config.k];
        for (i, p) in pseudos.iter().enumerate() {
            let c = assignments[i];
            weights[c] += p.weight;
            for (slot, &v) in sums[c].iter_mut().zip(p.centroid.iter()) {
                *slot += v * p.weight as f64;
            }
        }
        for c in 0..config.k {
            if weights[c] > 0 {
                let inv = 1.0 / weights[c] as f64;
                for (slot, &s) in centroids[c].iter_mut().zip(sums[c].iter()) {
                    *slot = s * inv;
                }
            }
        }
    }

    let mut weights = vec![0u64; config.k];
    for (i, p) in pseudos.iter().enumerate() {
        weights[assignments[i]] += p.weight;
    }

    Ok(MacroClusters {
        centroids,
        assignments,
        weights,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use udm_core::{UncertainDataset, UncertainPoint};
    use udm_microcluster::{MaintainerConfig, MicroClusterMaintainer};

    fn stream_two_blobs(n: usize) -> UncertainDataset {
        UncertainDataset::from_points(
            (0..n)
                .map(|i| {
                    let base = if i % 2 == 0 { 0.0 } else { 20.0 };
                    let jitter = ((i * 7) % 10) as f64 * 0.1;
                    UncertainPoint::new(vec![base + jitter, base - jitter], vec![0.1, 0.2]).unwrap()
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn recovers_two_macro_blobs_from_summaries() {
        let d = stream_two_blobs(2000);
        let m = MicroClusterMaintainer::from_dataset(&d, MaintainerConfig::new(40)).unwrap();
        let macro_c = macro_cluster(m.clusters(), MacroClusterConfig::new(2)).unwrap();
        assert_eq!(macro_c.centroids.len(), 2);
        // Weights cover the whole stream.
        assert_eq!(macro_c.weights.iter().sum::<u64>(), 2000);
        // Centroids near (0,0) and (20,20)-ish.
        let mut cs = macro_c.centroids.clone();
        cs.sort_by(|a, b| a[0].partial_cmp(&b[0]).unwrap());
        assert!(cs[0][0] < 2.0, "{cs:?}");
        assert!(cs[1][0] > 18.0, "{cs:?}");
    }

    #[test]
    fn raw_points_route_to_the_right_macro_cluster() {
        let d = stream_two_blobs(1000);
        let m = MicroClusterMaintainer::from_dataset(&d, MaintainerConfig::new(30)).unwrap();
        let macro_c = macro_cluster(m.clusters(), MacroClusterConfig::new(2)).unwrap();
        let a = macro_c
            .assign(&UncertainPoint::exact(vec![0.5, 0.5]).unwrap())
            .unwrap();
        let b = macro_c
            .assign(&UncertainPoint::exact(vec![19.5, 19.5]).unwrap())
            .unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn k_above_q_rejected() {
        let d = stream_two_blobs(100);
        let m = MicroClusterMaintainer::from_dataset(&d, MaintainerConfig::new(5)).unwrap();
        assert!(macro_cluster(m.clusters(), MacroClusterConfig::new(6)).is_err());
    }

    #[test]
    fn empty_and_invalid_inputs_rejected() {
        assert!(macro_cluster(&[], MacroClusterConfig::new(1)).is_err());
        assert!(macro_cluster(&[MicroCluster::new(2)], MacroClusterConfig::new(1)).is_err());
        let d = stream_two_blobs(10);
        let m = MicroClusterMaintainer::from_dataset(&d, MaintainerConfig::new(4)).unwrap();
        assert!(macro_cluster(m.clusters(), MacroClusterConfig::new(0)).is_err());
        let mut bad = MacroClusterConfig::new(2);
        bad.max_iters = 0;
        assert!(macro_cluster(m.clusters(), bad).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let d = stream_two_blobs(500);
        let m = MicroClusterMaintainer::from_dataset(&d, MaintainerConfig::new(20)).unwrap();
        let a = macro_cluster(m.clusters(), MacroClusterConfig::new(3)).unwrap();
        let b = macro_cluster(m.clusters(), MacroClusterConfig::new(3)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn unadjusted_variant_runs() {
        let d = stream_two_blobs(500);
        let m = MicroClusterMaintainer::from_dataset(&d, MaintainerConfig::new(20)).unwrap();
        let mut cfg = MacroClusterConfig::new(2);
        cfg.error_adjusted = false;
        let r = macro_cluster(m.clusters(), cfg).unwrap();
        assert_eq!(r.weights.iter().sum::<u64>(), 500);
    }
}
