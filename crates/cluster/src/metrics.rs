//! External cluster validation metrics.
//!
//! Compare a predicted partition (cluster ids, `None` = noise) against
//! ground-truth class labels. Noise points count as singleton clusters
//! for the pair-counting metrics, which penalizes spurious noise without
//! discarding information.

use std::collections::BTreeMap;
use udm_core::ClassLabel;

type Contingency = (
    BTreeMap<(usize, u32), usize>,
    BTreeMap<usize, usize>,
    BTreeMap<u32, usize>,
);

fn contingency(predicted: &[Option<usize>], truth: &[ClassLabel]) -> Contingency {
    assert_eq!(
        predicted.len(),
        truth.len(),
        "predicted and truth must have equal length"
    );
    // Re-map noise to fresh singleton ids after the real clusters.
    let max_cluster = predicted
        .iter()
        .flatten()
        .copied()
        .max()
        .map_or(0, |m| m + 1);
    let mut noise_counter = max_cluster;
    let mut table: BTreeMap<(usize, u32), usize> = BTreeMap::new();
    let mut row: BTreeMap<usize, usize> = BTreeMap::new();
    let mut col: BTreeMap<u32, usize> = BTreeMap::new();
    for (p, t) in predicted.iter().zip(truth.iter()) {
        let c = match p {
            Some(c) => *c,
            None => {
                let id = noise_counter;
                noise_counter += 1;
                id
            }
        };
        *table.entry((c, t.id())).or_insert(0) += 1;
        *row.entry(c).or_insert(0) += 1;
        *col.entry(t.id()).or_insert(0) += 1;
    }
    (table, row, col)
}

fn choose2(n: usize) -> f64 {
    if n < 2 {
        0.0
    } else {
        n as f64 * (n as f64 - 1.0) / 2.0
    }
}

/// Purity: each cluster votes its majority class; fraction of points in
/// their cluster's majority class. Noise points are singleton clusters
/// (each trivially pure), so heavy noise inflates purity — read alongside
/// the pair metrics.
pub fn purity(predicted: &[Option<usize>], truth: &[ClassLabel]) -> f64 {
    if predicted.is_empty() {
        return 0.0;
    }
    let (table, _, _) = contingency(predicted, truth);
    let mut best: BTreeMap<usize, usize> = BTreeMap::new();
    for (&(c, _), &count) in &table {
        let e = best.entry(c).or_insert(0);
        *e = (*e).max(count);
    }
    best.values().sum::<usize>() as f64 / predicted.len() as f64
}

/// Rand index: fraction of point pairs on which the two partitions agree.
pub fn rand_index(predicted: &[Option<usize>], truth: &[ClassLabel]) -> f64 {
    let n = predicted.len();
    if n < 2 {
        return 1.0;
    }
    let (table, row, col) = contingency(predicted, truth);
    let total_pairs = choose2(n);
    let sum_table: f64 = table.values().map(|&v| choose2(v)).sum();
    let sum_row: f64 = row.values().map(|&v| choose2(v)).sum();
    let sum_col: f64 = col.values().map(|&v| choose2(v)).sum();
    // agreements = pairs together in both + pairs apart in both
    let together_both = sum_table;
    let apart_both = total_pairs - sum_row - sum_col + sum_table;
    (together_both + apart_both) / total_pairs
}

/// Adjusted Rand index: Rand index corrected for chance (1 = perfect,
/// ≈0 = random, can be negative).
pub fn adjusted_rand_index(predicted: &[Option<usize>], truth: &[ClassLabel]) -> f64 {
    let n = predicted.len();
    if n < 2 {
        return 1.0;
    }
    let (table, row, col) = contingency(predicted, truth);
    let sum_table: f64 = table.values().map(|&v| choose2(v)).sum();
    let sum_row: f64 = row.values().map(|&v| choose2(v)).sum();
    let sum_col: f64 = col.values().map(|&v| choose2(v)).sum();
    let total_pairs = choose2(n);
    let expected = sum_row * sum_col / total_pairs;
    let max_index = 0.5 * (sum_row + sum_col);
    if (max_index - expected).abs() < 1e-12 {
        return 1.0; // degenerate: both partitions trivial
    }
    (sum_table - expected) / (max_index - expected)
}

/// Normalized mutual information with arithmetic-mean normalization
/// (`NMI = 2·I(P;T) / (H(P) + H(T))`), in `[0, 1]`.
pub fn normalized_mutual_information(predicted: &[Option<usize>], truth: &[ClassLabel]) -> f64 {
    let n = predicted.len();
    if n == 0 {
        return 0.0;
    }
    let (table, row, col) = contingency(predicted, truth);
    let nf = n as f64;
    let mut h_row = 0.0;
    for &r in row.values() {
        let p = r as f64 / nf;
        h_row -= p * p.ln();
    }
    let mut h_col = 0.0;
    for &c in col.values() {
        let p = c as f64 / nf;
        h_col -= p * p.ln();
    }
    // udm-lint: allow(UDM002) entropies are exactly 0 for single-cluster partitions (p·ln p sums of 1·0)
    if h_row == 0.0 && h_col == 0.0 {
        return 1.0; // both partitions trivial and identical
    }
    let mut mi = 0.0;
    for (&(r, c), &count) in &table {
        let pxy = count as f64 / nf;
        let px = row[&r] as f64 / nf;
        let py = col[&c] as f64 / nf;
        mi += pxy * (pxy / (px * py)).ln();
    }
    (2.0 * mi / (h_row + h_col)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(ids: &[u32]) -> Vec<ClassLabel> {
        ids.iter().map(|&i| ClassLabel(i)).collect()
    }

    fn clusters(ids: &[usize]) -> Vec<Option<usize>> {
        ids.iter().map(|&i| Some(i)).collect()
    }

    #[test]
    fn perfect_partition_scores_one() {
        let p = clusters(&[0, 0, 1, 1]);
        let t = labels(&[5, 5, 9, 9]);
        assert_eq!(purity(&p, &t), 1.0);
        assert_eq!(rand_index(&p, &t), 1.0);
        assert!((adjusted_rand_index(&p, &t) - 1.0).abs() < 1e-12);
        assert!((normalized_mutual_information(&p, &t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn label_permutation_is_irrelevant() {
        let p1 = clusters(&[0, 0, 1, 1]);
        let p2 = clusters(&[1, 1, 0, 0]);
        let t = labels(&[0, 0, 1, 1]);
        assert_eq!(adjusted_rand_index(&p1, &t), adjusted_rand_index(&p2, &t));
        assert_eq!(
            normalized_mutual_information(&p1, &t),
            normalized_mutual_information(&p2, &t)
        );
    }

    #[test]
    fn half_wrong_partition() {
        let p = clusters(&[0, 0, 0, 0]);
        let t = labels(&[0, 0, 1, 1]);
        assert_eq!(purity(&p, &t), 0.5);
        // one cluster vs two classes: all 6 pairs together in p; 2 pairs
        // together in t -> agreements = 2, RI = 1/3.
        assert!((rand_index(&p, &t) - 2.0 / 6.0).abs() < 1e-12);
        assert!(adjusted_rand_index(&p, &t).abs() < 1e-9);
    }

    #[test]
    fn known_ari_value() {
        // Classic example: p = [0,0,1,1,1], t = [0,0,0,1,1]
        let p = clusters(&[0, 0, 1, 1, 1]);
        let t = labels(&[0, 0, 0, 1, 1]);
        // contingency: (0,0)=2, (1,0)=1, (1,1)=2
        // sum_table C2 = 1 + 0 + 1 = 2; rows: C2(2)+C2(3)=1+3=4; cols same=4
        // total_pairs=10; expected=1.6; max=4; ARI=(2-1.6)/(4-1.6)=1/6
        assert!((adjusted_rand_index(&p, &t) - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn noise_points_are_singletons() {
        let p = vec![Some(0), Some(0), None, None];
        let t = labels(&[0, 0, 1, 1]);
        // purity: cluster {0,1} pure; two noise singletons pure -> 1.0
        assert_eq!(purity(&p, &t), 1.0);
        // but ARI penalizes separating the two class-1 points:
        assert!(adjusted_rand_index(&p, &t) < 1.0);
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(purity(&[], &[]), 0.0);
        assert_eq!(rand_index(&[Some(0)], &labels(&[1])), 1.0);
        assert_eq!(adjusted_rand_index(&[Some(0)], &labels(&[1])), 1.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        purity(&[Some(0)], &labels(&[0, 1]));
    }

    #[test]
    fn nmi_between_zero_and_one() {
        let p = clusters(&[0, 1, 0, 1, 2, 2]);
        let t = labels(&[0, 0, 1, 1, 2, 0]);
        let v = normalized_mutual_information(&p, &t);
        assert!((0.0..=1.0).contains(&v), "nmi {v}");
    }

    #[test]
    fn independent_partitions_score_near_zero_ari() {
        // alternating clusters vs block labels over 40 points
        let p: Vec<Option<usize>> = (0..40).map(|i| Some(i % 2)).collect();
        let t: Vec<ClassLabel> = (0..40).map(|i| ClassLabel((i / 20) as u32)).collect();
        let ari = adjusted_rand_index(&p, &t);
        assert!(ari.abs() < 0.1, "ari {ari}");
    }
}
