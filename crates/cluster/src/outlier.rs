//! Density-based outlier detection over uncertain data.
//!
//! The paper argues the error-adjusted density is a *surrogate for the
//! data itself* (§3) — any density-consuming algorithm can run on it.
//! Outlier detection is the simplest such consumer: a point is anomalous
//! when the (error-adjusted) density at its location is low relative to
//! the dataset's own density distribution.
//!
//! Scoring uses the micro-cluster estimator, so detection over a stream
//! costs `O(q)` per point, and a point's own error widens the query
//! (a measurement with huge ψ is *not* surprising merely because its
//! displaced value landed in a thin region).

use serde::{Deserialize, Serialize};
use udm_core::{Result, UdmError, UncertainDataset, UncertainPoint};
use udm_kde::KdeConfig;
use udm_microcluster::{MaintainerConfig, MicroClusterKde, MicroClusterMaintainer};

/// Configuration of the detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OutlierConfig {
    /// Micro-cluster budget for the density summary.
    pub micro_clusters: usize,
    /// Fraction of the training data treated as the low-density tail:
    /// the score threshold is the `contamination`-quantile of training
    /// densities. Typical values 0.01–0.1.
    pub contamination: f64,
    /// Convolve each scored point's own error into the query.
    pub use_query_error: bool,
}

impl OutlierConfig {
    /// Default configuration with the given micro-cluster budget.
    pub fn new(micro_clusters: usize) -> Self {
        OutlierConfig {
            micro_clusters,
            contamination: 0.05,
            use_query_error: true,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.micro_clusters == 0 {
            return Err(UdmError::InvalidConfig(
                "micro_clusters must be at least 1".into(),
            ));
        }
        if !(self.contamination.is_finite() && (0.0..1.0).contains(&self.contamination)) {
            return Err(UdmError::InvalidValue {
                what: "contamination",
                value: self.contamination,
            });
        }
        Ok(())
    }
}

/// A fitted density-based outlier detector.
#[derive(Debug, Clone)]
pub struct OutlierDetector {
    kde: MicroClusterKde,
    threshold: f64,
    config: OutlierConfig,
}

impl OutlierDetector {
    /// Fits the detector: summarizes the data into micro-clusters and
    /// fixes the density threshold at the contamination quantile of the
    /// training points' own densities.
    pub fn fit(data: &UncertainDataset, config: OutlierConfig) -> Result<Self> {
        config.validate()?;
        let maintainer = MicroClusterMaintainer::from_dataset(
            data,
            MaintainerConfig::new(config.micro_clusters),
        )?;
        let kde = MicroClusterKde::fit(maintainer.clusters(), KdeConfig::error_adjusted())?;
        let mut densities = Vec::with_capacity(data.len());
        for p in data.iter() {
            densities.push(Self::query(&kde, p, config.use_query_error)?);
        }
        let threshold = udm_core::quantile(&densities, config.contamination)?;
        Ok(OutlierDetector {
            kde,
            threshold,
            config,
        })
    }

    fn query(kde: &MicroClusterKde, p: &UncertainPoint, use_err: bool) -> Result<f64> {
        let s = udm_core::Subspace::full(kde.dim())?;
        if use_err && !p.is_exact() {
            kde.density_subspace_with_error(p.values(), Some(p.errors()), s)
        } else {
            kde.density_subspace(p.values(), s)
        }
    }

    /// The fitted density threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Raw anomaly score of a point: its (error-convolved) density. Lower
    /// is more anomalous.
    pub fn score(&self, p: &UncertainPoint) -> Result<f64> {
        Self::query(&self.kde, p, self.config.use_query_error)
    }

    /// `true` when the point's density falls below the fitted threshold.
    pub fn is_outlier(&self, p: &UncertainPoint) -> Result<bool> {
        Ok(self.score(p)? < self.threshold)
    }

    /// Flags every point of a dataset; returns the outlier mask.
    pub fn detect(&self, data: &UncertainDataset) -> Result<Vec<bool>> {
        data.iter().map(|p| self.is_outlier(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_with_anomalies() -> UncertainDataset {
        let mut points: Vec<UncertainPoint> = (0..300)
            .map(|i| {
                let a = (i as f64 * 0.1).sin();
                let b = (i as f64 * 0.07).cos();
                UncertainPoint::new(vec![a, b], vec![0.05, 0.05]).unwrap()
            })
            .collect();
        // Two gross anomalies far outside the blob.
        points.push(UncertainPoint::new(vec![15.0, -12.0], vec![0.05, 0.05]).unwrap());
        points.push(UncertainPoint::new(vec![-20.0, 18.0], vec![0.05, 0.05]).unwrap());
        UncertainDataset::from_points(points).unwrap()
    }

    #[test]
    fn config_validation() {
        let d = blob_with_anomalies();
        let mut c = OutlierConfig::new(0);
        assert!(OutlierDetector::fit(&d, c).is_err());
        c = OutlierConfig::new(10);
        c.contamination = 1.0;
        assert!(OutlierDetector::fit(&d, c).is_err());
        c.contamination = -0.1;
        assert!(OutlierDetector::fit(&d, c).is_err());
    }

    #[test]
    fn flags_gross_anomalies_and_keeps_inliers() {
        let d = blob_with_anomalies();
        let det = OutlierDetector::fit(&d, OutlierConfig::new(20)).unwrap();
        let far = UncertainPoint::new(vec![30.0, 30.0], vec![0.05, 0.05]).unwrap();
        let central = UncertainPoint::new(vec![0.0, 0.0], vec![0.05, 0.05]).unwrap();
        assert!(det.is_outlier(&far).unwrap());
        assert!(!det.is_outlier(&central).unwrap());
        assert!(det.score(&central).unwrap() > det.score(&far).unwrap());
    }

    #[test]
    fn detect_rate_tracks_contamination() {
        let d = blob_with_anomalies();
        let mut config = OutlierConfig::new(20);
        config.contamination = 0.05;
        let det = OutlierDetector::fit(&d, config).unwrap();
        let mask = det.detect(&d).unwrap();
        let rate = mask.iter().filter(|&&m| m).count() as f64 / mask.len() as f64;
        assert!(rate <= 0.10, "rate {rate}");
        // The injected anomalies are caught.
        assert!(mask[mask.len() - 1]);
        assert!(mask[mask.len() - 2]);
    }

    #[test]
    fn large_own_error_reduces_surprise() {
        // A displaced measurement flagged as anomalous when exact becomes
        // unsurprising when its recorded error says "could be anywhere".
        let d = blob_with_anomalies();
        let det = OutlierDetector::fit(&d, OutlierConfig::new(20)).unwrap();
        let displaced_exact = UncertainPoint::new(vec![6.0, 6.0], vec![0.0, 0.0]).unwrap();
        let displaced_noisy = UncertainPoint::new(vec![6.0, 6.0], vec![8.0, 8.0]).unwrap();
        let s_exact = det.score(&displaced_exact).unwrap();
        let s_noisy = det.score(&displaced_noisy).unwrap();
        assert!(
            s_noisy > s_exact,
            "noisy {s_noisy} should score higher (less anomalous) than exact {s_exact}"
        );
    }

    #[test]
    fn query_error_can_be_disabled() {
        let d = blob_with_anomalies();
        let mut config = OutlierConfig::new(20);
        config.use_query_error = false;
        let det = OutlierDetector::fit(&d, config).unwrap();
        let p_exact = UncertainPoint::new(vec![6.0, 6.0], vec![0.0, 0.0]).unwrap();
        let p_noisy = UncertainPoint::new(vec![6.0, 6.0], vec![8.0, 8.0]).unwrap();
        // Without query convolution both score identically.
        assert_eq!(det.score(&p_exact).unwrap(), det.score(&p_noisy).unwrap());
    }
}
