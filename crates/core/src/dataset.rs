//! Datasets of uncertain points.

use crate::error::{Result, UdmError};
use crate::label::ClassLabel;
use crate::point::UncertainPoint;
use crate::stats::DimensionSummary;
use crate::subspace::Subspace;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A collection of [`UncertainPoint`]s of uniform dimensionality — the data
/// set `D` of the paper, with optional class labels attached to the points
/// for supervised tasks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UncertainDataset {
    dim: usize,
    points: Vec<UncertainPoint>,
}

impl UncertainDataset {
    /// Creates an empty dataset of dimensionality `dim`.
    pub fn new(dim: usize) -> Self {
        Self {
            dim,
            points: Vec::new(),
        }
    }

    /// Creates a dataset from points, validating uniform dimensionality.
    ///
    /// # Errors
    ///
    /// [`UdmError::EmptyDataset`] if `points` is empty (use
    /// [`UncertainDataset::new`] for an intentionally empty set) and
    /// [`UdmError::DimensionMismatch`] on ragged input.
    pub fn from_points(points: Vec<UncertainPoint>) -> Result<Self> {
        let dim = points.first().ok_or(UdmError::EmptyDataset)?.dim();
        for p in &points {
            if p.dim() != dim {
                return Err(UdmError::DimensionMismatch {
                    expected: dim,
                    actual: p.dim(),
                });
            }
        }
        Ok(Self { dim, points })
    }

    /// Dimensionality `d` shared by every point.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of points `N`.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the dataset holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Immutable access to the points.
    #[inline]
    pub fn points(&self) -> &[UncertainPoint] {
        &self.points
    }

    /// The `i`-th point.
    #[inline]
    pub fn point(&self, i: usize) -> &UncertainPoint {
        &self.points[i]
    }

    /// Iterates over the points.
    pub fn iter(&self) -> std::slice::Iter<'_, UncertainPoint> {
        self.points.iter()
    }

    /// Appends a point, validating dimensionality.
    pub fn push(&mut self, point: UncertainPoint) -> Result<()> {
        if point.dim() != self.dim {
            return Err(UdmError::DimensionMismatch {
                expected: self.dim,
                actual: point.dim(),
            });
        }
        self.points.push(point);
        Ok(())
    }

    /// Appends all points from an iterator, validating each.
    pub fn extend<I: IntoIterator<Item = UncertainPoint>>(&mut self, iter: I) -> Result<()> {
        for p in iter {
            self.push(p)?;
        }
        Ok(())
    }

    /// Column of values along dimension `j`.
    pub fn column_values(&self, j: usize) -> Result<Vec<f64>> {
        if j >= self.dim {
            return Err(UdmError::DimensionOutOfRange {
                dim: j,
                dimensionality: self.dim,
            });
        }
        Ok(self.points.iter().map(|p| p.value(j)).collect())
    }

    /// Column of errors along dimension `j`.
    pub fn column_errors(&self, j: usize) -> Result<Vec<f64>> {
        if j >= self.dim {
            return Err(UdmError::DimensionOutOfRange {
                dim: j,
                dimensionality: self.dim,
            });
        }
        Ok(self.points.iter().map(|p| p.error(j)).collect())
    }

    /// Per-dimension summaries (mean, σ, min, max, RMS error) in one pass
    /// per column.
    pub fn summaries(&self) -> Vec<DimensionSummary> {
        (0..self.dim)
            .map(|j| {
                let values: Vec<f64> = self.points.iter().map(|p| p.value(j)).collect();
                let errors: Vec<f64> = self.points.iter().map(|p| p.error(j)).collect();
                DimensionSummary::from_column(&values, &errors)
            })
            .collect()
    }

    /// Projects the whole dataset onto a subspace.
    pub fn project(&self, subspace: Subspace) -> Result<UncertainDataset> {
        subspace.validate_for(self.dim)?;
        let points = self
            .points
            .iter()
            .map(|p| p.project(subspace))
            .collect::<Result<Vec<_>>>()?;
        Ok(UncertainDataset {
            dim: subspace.cardinality(),
            points,
        })
    }

    /// Returns a copy with all cell errors forced to zero — the input for
    /// the paper's unadjusted baseline classifier (§4).
    #[must_use]
    pub fn without_errors(&self) -> UncertainDataset {
        UncertainDataset {
            dim: self.dim,
            points: self.points.iter().map(|p| p.without_errors()).collect(),
        }
    }

    /// The distinct class labels present, in ascending order.
    pub fn labels(&self) -> Vec<ClassLabel> {
        let mut set: Vec<ClassLabel> = Vec::new();
        for p in &self.points {
            if let Some(l) = p.label() {
                if let Err(pos) = set.binary_search(&l) {
                    set.insert(pos, l);
                }
            }
        }
        set
    }

    /// Splits the dataset by class label: the paper's `D_1 … D_k` (points
    /// with no label are dropped). The returned partition also keeps the
    /// full dataset's size so priors `|D_i| / |D|` can be formed.
    pub fn partition_by_class(&self) -> ClassPartition {
        let mut by_class: BTreeMap<ClassLabel, Vec<UncertainPoint>> = BTreeMap::new();
        for p in &self.points {
            if let Some(l) = p.label() {
                by_class.entry(l).or_default().push(p.clone());
            }
        }
        let classes = by_class
            .into_iter()
            .map(|(label, points)| {
                (
                    label,
                    UncertainDataset {
                        dim: self.dim,
                        points,
                    },
                )
            })
            .collect();
        ClassPartition {
            total: self.len(),
            classes,
        }
    }

    /// Consumes the dataset, returning its points.
    pub fn into_points(self) -> Vec<UncertainPoint> {
        self.points
    }

    /// Concatenates another dataset of the same dimensionality.
    ///
    /// # Errors
    ///
    /// [`UdmError::DimensionMismatch`] when dimensionalities differ.
    pub fn concat(&mut self, other: &UncertainDataset) -> Result<()> {
        if other.dim() != self.dim {
            return Err(UdmError::DimensionMismatch {
                expected: self.dim,
                actual: other.dim(),
            });
        }
        self.points.extend_from_slice(other.points());
        Ok(())
    }

    /// Deterministic subsample of `n` points (without replacement) using
    /// a splitmix64-style index shuffle seeded by `seed`. Returns the
    /// whole dataset (reordered) when `n >= len`.
    ///
    /// # Errors
    ///
    /// [`UdmError::InvalidConfig`] for `n == 0`.
    pub fn subsample(&self, n: usize, seed: u64) -> Result<UncertainDataset> {
        if n == 0 {
            return Err(UdmError::InvalidConfig(
                "subsample size must be at least 1".into(),
            ));
        }
        let len = self.points.len();
        let take = n.min(len);
        // Fisher–Yates with a small inline splitmix64 generator (keeps
        // udm-core free of a rand dependency).
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut indices: Vec<usize> = (0..len).collect();
        for i in (1..len).rev() {
            // The modulo result is <= i, which already fits in usize.
            #[allow(clippy::cast_possible_truncation)]
            let j = (next() % (i as u64 + 1)) as usize;
            indices.swap(i, j);
        }
        let points = indices[..take]
            .iter()
            .map(|&i| self.points[i].clone())
            .collect();
        Ok(UncertainDataset {
            dim: self.dim,
            points,
        })
    }
}

impl<'a> IntoIterator for &'a UncertainDataset {
    type Item = &'a UncertainPoint;
    type IntoIter = std::slice::Iter<'a, UncertainPoint>;

    fn into_iter(self) -> Self::IntoIter {
        self.points.iter()
    }
}

/// The per-class split `D_1 … D_k` of a labelled dataset (§3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassPartition {
    total: usize,
    classes: BTreeMap<ClassLabel, UncertainDataset>,
}

impl ClassPartition {
    /// Size of the full dataset `|D|` (including unlabelled points).
    #[inline]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of classes `k`.
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// The labels, ascending.
    pub fn labels(&self) -> Vec<ClassLabel> {
        self.classes.keys().copied().collect()
    }

    /// The per-class dataset `D_i`.
    pub fn class(&self, label: ClassLabel) -> Option<&UncertainDataset> {
        self.classes.get(&label)
    }

    /// Prior `|D_i| / |D|`; 0 for unknown labels.
    pub fn prior(&self, label: ClassLabel) -> f64 {
        match self.classes.get(&label) {
            Some(d) if self.total > 0 => d.len() as f64 / self.total as f64,
            _ => 0.0,
        }
    }

    /// Iterates `(label, D_i)` pairs in ascending label order.
    pub fn iter(&self) -> impl Iterator<Item = (ClassLabel, &UncertainDataset)> {
        self.classes.iter().map(|(l, d)| (*l, d))
    }
}

/// Incremental construction of a dataset from parallel rows, with optional
/// labels; convenient for loaders and generators.
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    dim: usize,
    points: Vec<UncertainPoint>,
}

impl DatasetBuilder {
    /// Starts a builder for `dim`-dimensional data.
    pub fn new(dim: usize) -> Self {
        Self {
            dim,
            points: Vec::new(),
        }
    }

    /// Pre-allocates capacity for `n` rows.
    #[must_use]
    pub fn with_capacity(mut self, n: usize) -> Self {
        self.points.reserve(n);
        self
    }

    /// Adds a labelled row.
    pub fn add_row(
        &mut self,
        values: Vec<f64>,
        errors: Vec<f64>,
        label: Option<ClassLabel>,
    ) -> Result<()> {
        if values.len() != self.dim {
            return Err(UdmError::DimensionMismatch {
                expected: self.dim,
                actual: values.len(),
            });
        }
        let mut p = UncertainPoint::new(values, errors)?;
        if let Some(l) = label {
            p = p.with_label(l);
        }
        self.points.push(p);
        Ok(())
    }

    /// Adds an exact (zero-error) labelled row.
    pub fn add_exact_row(&mut self, values: Vec<f64>, label: Option<ClassLabel>) -> Result<()> {
        let errors = vec![0.0; values.len()];
        self.add_row(values, errors, label)
    }

    /// Number of rows added so far.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Finishes the build.
    pub fn build(self) -> UncertainDataset {
        UncertainDataset {
            dim: self.dim,
            points: self.points,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labelled(values: &[f64], errors: &[f64], label: u32) -> UncertainPoint {
        UncertainPoint::new(values.to_vec(), errors.to_vec())
            .unwrap()
            .with_label(ClassLabel(label))
    }

    fn sample() -> UncertainDataset {
        UncertainDataset::from_points(vec![
            labelled(&[0.0, 0.0], &[0.1, 0.1], 0),
            labelled(&[1.0, 1.0], &[0.2, 0.2], 1),
            labelled(&[2.0, 0.0], &[0.0, 0.3], 0),
        ])
        .unwrap()
    }

    #[test]
    fn from_points_validates_uniform_dim() {
        let ragged = vec![
            UncertainPoint::exact(vec![1.0]).unwrap(),
            UncertainPoint::exact(vec![1.0, 2.0]).unwrap(),
        ];
        assert!(matches!(
            UncertainDataset::from_points(ragged),
            Err(UdmError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn from_points_rejects_empty() {
        assert!(matches!(
            UncertainDataset::from_points(vec![]),
            Err(UdmError::EmptyDataset)
        ));
    }

    #[test]
    fn push_validates_dim() {
        let mut d = UncertainDataset::new(2);
        assert!(d.push(UncertainPoint::exact(vec![1.0]).unwrap()).is_err());
        assert!(d
            .push(UncertainPoint::exact(vec![1.0, 2.0]).unwrap())
            .is_ok());
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn columns_extract_values_and_errors() {
        let d = sample();
        assert_eq!(d.column_values(0).unwrap(), vec![0.0, 1.0, 2.0]);
        assert_eq!(d.column_errors(1).unwrap(), vec![0.1, 0.2, 0.3]);
        assert!(d.column_values(2).is_err());
    }

    #[test]
    fn summaries_per_dimension() {
        let d = sample();
        let s = d.summaries();
        assert_eq!(s.len(), 2);
        assert!((s[0].mean - 1.0).abs() < 1e-12);
        assert_eq!(s[0].min, 0.0);
        assert_eq!(s[0].max, 2.0);
    }

    #[test]
    fn project_reduces_dim() {
        let d = sample();
        let p = d.project(Subspace::from_dims(&[1]).unwrap()).unwrap();
        assert_eq!(p.dim(), 1);
        assert_eq!(p.len(), 3);
        assert_eq!(p.point(1).values(), &[1.0]);
    }

    #[test]
    fn project_validates_subspace() {
        let d = sample();
        assert!(d.project(Subspace::from_dims(&[5]).unwrap()).is_err());
    }

    #[test]
    fn without_errors_zeroes_all() {
        let d = sample().without_errors();
        assert!(d.iter().all(|p| p.is_exact()));
    }

    #[test]
    fn labels_sorted_unique() {
        let d = sample();
        assert_eq!(d.labels(), vec![ClassLabel(0), ClassLabel(1)]);
    }

    #[test]
    fn partition_by_class() {
        let d = sample();
        let part = d.partition_by_class();
        assert_eq!(part.total(), 3);
        assert_eq!(part.num_classes(), 2);
        assert_eq!(part.class(ClassLabel(0)).unwrap().len(), 2);
        assert_eq!(part.class(ClassLabel(1)).unwrap().len(), 1);
        assert!((part.prior(ClassLabel(0)) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(part.prior(ClassLabel(9)), 0.0);
    }

    #[test]
    fn partition_drops_unlabelled() {
        let mut d = sample();
        d.push(UncertainPoint::exact(vec![9.0, 9.0]).unwrap())
            .unwrap();
        let part = d.partition_by_class();
        assert_eq!(part.total(), 4); // total includes unlabelled
        let labelled: usize = part.iter().map(|(_, ds)| ds.len()).sum();
        assert_eq!(labelled, 3);
    }

    #[test]
    fn builder_roundtrip() {
        let mut b = DatasetBuilder::new(2).with_capacity(2);
        b.add_row(vec![1.0, 2.0], vec![0.1, 0.2], Some(ClassLabel(0)))
            .unwrap();
        b.add_exact_row(vec![3.0, 4.0], None).unwrap();
        assert_eq!(b.len(), 2);
        let d = b.build();
        assert_eq!(d.dim(), 2);
        assert_eq!(d.point(0).label(), Some(ClassLabel(0)));
        assert!(d.point(1).is_exact());
    }

    #[test]
    fn builder_validates_dim() {
        let mut b = DatasetBuilder::new(3);
        assert!(b.add_exact_row(vec![1.0], None).is_err());
        assert!(b.is_empty());
    }

    #[test]
    fn concat_appends_and_validates() {
        let mut a = sample();
        let b = sample();
        a.concat(&b).unwrap();
        assert_eq!(a.len(), 6);
        let wrong = UncertainDataset::new(5);
        assert!(a.concat(&wrong).is_err());
    }

    #[test]
    fn subsample_is_deterministic_without_replacement() {
        let d = UncertainDataset::from_points(
            (0..100)
                .map(|i| UncertainPoint::exact(vec![i as f64]).unwrap())
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let a = d.subsample(30, 9).unwrap();
        let b = d.subsample(30, 9).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 30);
        // no duplicates
        let mut vals: Vec<f64> = a.iter().map(|p| p.value(0)).collect();
        vals.sort_by(|x, y| x.partial_cmp(y).unwrap());
        vals.dedup();
        assert_eq!(vals.len(), 30);
        // different seed, different sample
        let c = d.subsample(30, 10).unwrap();
        assert_ne!(a, c);
        // oversized request returns everything
        assert_eq!(d.subsample(500, 1).unwrap().len(), 100);
        assert!(d.subsample(0, 1).is_err());
    }

    #[test]
    fn into_iterator_for_reference() {
        let d = sample();
        let mut n = 0;
        for _p in &d {
            n += 1;
        }
        assert_eq!(n, 3);
    }
}
