//! Error types shared across the `udm` workspace.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, UdmError>;

/// The error type for all fallible operations in the `udm` crates.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum UdmError {
    /// Two objects that must agree on dimensionality do not.
    DimensionMismatch {
        /// Dimensionality that was expected (e.g. the dataset's).
        expected: usize,
        /// Dimensionality that was supplied.
        actual: usize,
    },
    /// An operation that requires at least one point was given none.
    EmptyDataset,
    /// A value (coordinate, error, bandwidth, …) was not finite or was
    /// otherwise out of its legal domain.
    InvalidValue {
        /// Name of the offending quantity.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A subspace referenced a dimension outside the dataset.
    DimensionOutOfRange {
        /// The referenced dimension index.
        dim: usize,
        /// The dataset dimensionality.
        dimensionality: usize,
    },
    /// A subspace exceeding the bitmask capacity was requested.
    SubspaceCapacityExceeded {
        /// The requested dimension index.
        dim: usize,
    },
    /// A class label was referenced that the model was not trained on.
    UnknownLabel(u32),
    /// A configuration parameter was invalid.
    InvalidConfig(String),
    /// Failure parsing external data (CSV and friends).
    Parse {
        /// 1-based line number where parsing failed.
        line: usize,
        /// Description of the failure.
        message: String,
    },
    /// Wrapped I/O error (stringified so the error stays `Clone + PartialEq`).
    Io(String),
    /// Serialization or deserialization failure (stringified serde error).
    ///
    /// Distinct from [`UdmError::Io`] (the bytes could not be moved) and
    /// [`UdmError::Parse`] (external tabular data was malformed): `Serde`
    /// means *our own* persisted structures could not be encoded or
    /// decoded.
    Serde(String),
    /// A persisted snapshot failed an integrity check (content digest
    /// mismatch, impossible field values) and must not be restored.
    CorruptSnapshot {
        /// Description of the failed integrity check.
        reason: String,
    },
    /// A persisted snapshot was written by an incompatible schema version.
    UnsupportedSnapshotVersion {
        /// Version found in the file.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
}

impl fmt::Display for UdmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UdmError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            UdmError::EmptyDataset => write!(f, "operation requires a non-empty dataset"),
            UdmError::InvalidValue { what, value } => {
                write!(f, "invalid value for {what}: {value}")
            }
            UdmError::DimensionOutOfRange {
                dim,
                dimensionality,
            } => write!(
                f,
                "dimension {dim} out of range for dimensionality {dimensionality}"
            ),
            UdmError::SubspaceCapacityExceeded { dim } => write!(
                f,
                "dimension {dim} exceeds the subspace bitmask capacity of {} dimensions",
                crate::subspace::Subspace::MAX_DIMS
            ),
            UdmError::UnknownLabel(l) => write!(f, "unknown class label {l}"),
            UdmError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            UdmError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            UdmError::Io(msg) => write!(f, "I/O error: {msg}"),
            UdmError::Serde(msg) => write!(f, "serialization error: {msg}"),
            UdmError::CorruptSnapshot { reason } => {
                write!(f, "corrupt snapshot: {reason}")
            }
            UdmError::UnsupportedSnapshotVersion { found, supported } => write!(
                f,
                "unsupported snapshot schema version {found} (this build supports {supported})"
            ),
        }
    }
}

impl std::error::Error for UdmError {}

impl From<std::io::Error> for UdmError {
    fn from(e: std::io::Error) -> Self {
        UdmError::Io(e.to_string())
    }
}

/// Checks that `value` is finite, returning [`UdmError::InvalidValue`]
/// tagged with `what` otherwise.
pub fn ensure_finite(what: &'static str, value: f64) -> Result<f64> {
    if value.is_finite() {
        Ok(value)
    } else {
        Err(UdmError::InvalidValue { what, value })
    }
}

/// Checks that `value` is finite and non-negative.
pub fn ensure_non_negative(what: &'static str, value: f64) -> Result<f64> {
    if value.is_finite() && value >= 0.0 {
        Ok(value)
    } else {
        Err(UdmError::InvalidValue { what, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e = UdmError::DimensionMismatch {
            expected: 3,
            actual: 5,
        };
        assert_eq!(e.to_string(), "dimension mismatch: expected 3, got 5");
    }

    #[test]
    fn display_empty() {
        assert!(UdmError::EmptyDataset.to_string().contains("non-empty"));
    }

    #[test]
    fn display_invalid_value() {
        let e = UdmError::InvalidValue {
            what: "bandwidth",
            value: f64::NAN,
        };
        assert!(e.to_string().contains("bandwidth"));
    }

    #[test]
    fn ensure_finite_accepts_normal() {
        assert_eq!(ensure_finite("x", 1.5).unwrap(), 1.5);
        assert_eq!(ensure_finite("x", -1.5).unwrap(), -1.5);
        assert_eq!(ensure_finite("x", 0.0).unwrap(), 0.0);
    }

    #[test]
    fn ensure_finite_rejects_nan_and_inf() {
        assert!(ensure_finite("x", f64::NAN).is_err());
        assert!(ensure_finite("x", f64::INFINITY).is_err());
        assert!(ensure_finite("x", f64::NEG_INFINITY).is_err());
    }

    #[test]
    fn ensure_non_negative_rejects_negative() {
        assert!(ensure_non_negative("err", -0.1).is_err());
        assert_eq!(ensure_non_negative("err", 0.0).unwrap(), 0.0);
        assert_eq!(ensure_non_negative("err", 2.0).unwrap(), 2.0);
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: UdmError = io.into();
        assert!(matches!(e, UdmError::Io(_)));
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn display_serde_and_snapshot_errors() {
        assert_eq!(
            UdmError::Serde("eof".into()).to_string(),
            "serialization error: eof"
        );
        let e = UdmError::CorruptSnapshot {
            reason: "digest mismatch".into(),
        };
        assert!(e.to_string().contains("digest mismatch"));
        let e = UdmError::UnsupportedSnapshotVersion {
            found: 9,
            supported: 2,
        };
        assert!(e.to_string().contains("version 9"));
        assert!(e.to_string().contains("supports 2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<UdmError>();
    }
}
