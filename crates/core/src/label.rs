//! Class labels for supervised mining tasks.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An opaque class label `l_i` as used by the paper's classification
/// problem (§3): the data set `D` has `k` class labels `l_1 … l_k`.
///
/// Labels are small integers; the newtype prevents accidental mixing with
/// dimension indices or counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ClassLabel(pub u32);

impl ClassLabel {
    /// Returns the raw integer id of the label.
    #[inline]
    pub fn id(self) -> u32 {
        self.0
    }

    /// Returns the label usable as an index into per-class arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for ClassLabel {
    fn from(v: u32) -> Self {
        ClassLabel(v)
    }
}

impl From<ClassLabel> for u32 {
    fn from(l: ClassLabel) -> Self {
        l.0
    }
}

impl fmt::Display for ClassLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u32() {
        let l = ClassLabel::from(7u32);
        assert_eq!(l.id(), 7);
        assert_eq!(u32::from(l), 7);
        assert_eq!(l.index(), 7);
    }

    #[test]
    fn display_format() {
        assert_eq!(ClassLabel(3).to_string(), "l3");
    }

    #[test]
    fn ordering_follows_id() {
        assert!(ClassLabel(1) < ClassLabel(2));
        assert_eq!(ClassLabel(4), ClassLabel(4));
    }

    #[test]
    fn usable_as_map_key() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(ClassLabel(0), "a");
        m.insert(ClassLabel(1), "b");
        assert_eq!(m[&ClassLabel(1)], "b");
    }
}
