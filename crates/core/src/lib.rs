//! # udm-core
//!
//! Data model for *uncertain data mining* in the style of
//! Aggarwal, "On Density Based Transforms for Uncertain Data Mining"
//! (ICDE 2007).
//!
//! The central abstraction is the [`UncertainPoint`]: a `d`-dimensional
//! record `X_i` paired with a per-dimension error estimate `ψ_j(X_i)`
//! (a standard deviation). The paper makes the most general assumption —
//! the error is a function of both the row *and* the field — and so does
//! this crate: every cell carries its own error.
//!
//! On top of the point type this crate provides:
//!
//! * [`UncertainDataset`] — a validated, column-statistics-aware collection
//!   of uncertain points, with per-class partitioning for classification.
//! * [`Subspace`] — a cheap bitmask set of dimensions, the unit over which
//!   the paper's densities `g(x, S, D)` are evaluated, together with the
//!   Apriori-style join used by the roll-up classifier.
//! * [`stats`] — numerically stable streaming statistics (Welford) used by
//!   bandwidth selection and dataset summaries.
//! * [`num`] — numeric-safety guards: the sanctioned negative-variance
//!   clamp ([`num::clamped_sqrt`]) with an observability counter, finite
//!   input validation for estimator entry points, and the tolerant
//!   [`num::approx_eq`] comparison.
//! * [`scale`] — standard/min-max scalers that transform values and their
//!   errors consistently.
//!
//! Downstream crates build kernel density estimation (`udm-kde`),
//! error-adjusted micro-clustering (`udm-microcluster`), classification
//! (`udm-classify`) and clustering (`udm-cluster`) on this model.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod dataset;
pub mod error;
pub mod label;
pub mod num;
pub mod point;
pub mod quantile;
pub mod scale;
pub mod stats;
pub mod subspace;

pub use dataset::{ClassPartition, DatasetBuilder, UncertainDataset};
pub use error::{Result, UdmError};
pub use label::ClassLabel;
pub use num::{approx_eq, clamp_non_negative, clamped_sqrt, ensure_finite_slice, NonNegF64};
pub use point::UncertainPoint;
pub use quantile::{interquartile_range, median, quantile};
pub use scale::{MinMaxScaler, Scaler, StandardScaler};
pub use stats::{DimensionSummary, RunningStats};
pub use subspace::{Subspace, SubspaceIter};
