//! Numeric-safety guards for the density core.
//!
//! The estimators in this workspace depend on floating-point invariants
//! that fail *silently* rather than loudly when violated:
//!
//! * Lemma 1's pseudo-point error `Δ_j(C)² = CF2_j/r − (CF1_j/r)² + EF2_j/r`
//!   is mathematically non-negative but can go (slightly) negative under
//!   catastrophic cancellation of the `CF2/r − (CF1/r)²` term; feeding the
//!   raw value to `sqrt` would produce a `NaN` that poisons every density
//!   downstream.
//! * Eq. 5's error-adjusted distance relies on the `max{0, ·}` clamp per
//!   dimension.
//! * Bandwidths must stay finite and positive for the kernels to stay
//!   normalized.
//!
//! This module centralizes those clamps and guards so they are *auditable*:
//! [`clamped_sqrt`] / [`clamp_non_negative`] count every time the clamp
//! actually fires (see [`negative_clamp_count`]), which turns "silent
//! corruption" into an observable counter, and the `udm-lint` workspace
//! linter (rule **UDM003**) statically requires variance-like `sqrt`
//! arguments to be routed through here.

use crate::error::{Result, UdmError};

/// Name of the clamp-event counter in the `udm-observe` registry.
pub const NEGATIVE_CLAMPS_METRIC: &str = "udm_core_negative_clamps_total";

/// Registry handle for the clamp counter; the recording macro in
/// [`clamp_non_negative`] and these accessors resolve to the same metric
/// by name.
static NEGATIVE_CLAMPS: udm_observe::LazyCounter =
    udm_observe::LazyCounter::new("udm_core_negative_clamps_total");

/// Number of times [`clamp_non_negative`] / [`clamped_sqrt`] actually had
/// to clamp a negative (or NaN) input since process start (or the last
/// [`reset_negative_clamp_count`]).
///
/// A small number of events on near-degenerate clusters is expected FP
/// cancellation; a rapidly growing count signals corrupted sufficient
/// statistics upstream.
///
/// The count is backed by the `udm-observe` metrics registry (metric
/// [`NEGATIVE_CLAMPS_METRIC`]); this accessor is a thin shim kept for
/// existing callers. When telemetry is disabled the clamps still happen
/// but are not counted, and this returns 0.
pub fn negative_clamp_count() -> u64 {
    if udm_observe::enabled() {
        NEGATIVE_CLAMPS.get().get()
    } else {
        0
    }
}

/// Resets the clamp counter to zero (test and monitoring hook).
pub fn reset_negative_clamp_count() {
    if udm_observe::enabled() {
        NEGATIVE_CLAMPS.get().reset();
    }
}

/// Clamps a mathematically non-negative quantity at zero.
///
/// Returns `x` unchanged when `x ≥ 0`; returns `0.0` (and increments the
/// [`negative_clamp_count`] observability counter) when `x` is negative
/// *or NaN*. The NaN case matters: `NaN.max(0.0)` is `NaN` under a naive
/// clamp, so this is strictly safer than `x.max(0.0)`.
#[inline]
pub fn clamp_non_negative(x: f64) -> f64 {
    if x >= 0.0 {
        x
    } else {
        udm_observe::counter_inc!("udm_core_negative_clamps_total");
        0.0
    }
}

/// `√(max{0, x})` — the only sanctioned way to take the square root of a
/// variance-like expression (Lemma 1's `Δ²`, within-cluster variances,
/// mean-squared errors).
///
/// For `x ≥ 0` this is bit-for-bit `x.sqrt()`, so routing existing clamped
/// call sites through it cannot change any result; for negative or NaN
/// inputs it returns `0.0` and bumps [`negative_clamp_count`].
#[inline]
pub fn clamped_sqrt(x: f64) -> f64 {
    clamp_non_negative(x).sqrt()
}

/// A finite, non-negative `f64` — the domain of standard deviations,
/// bandwidths, errors `ψ`, and variances.
///
/// Constructing one is the *proof* that the guard ran; APIs that take a
/// `NonNegF64` cannot be handed a NaN or a negative width.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct NonNegF64(f64);

impl NonNegF64 {
    /// Zero.
    pub const ZERO: NonNegF64 = NonNegF64(0.0);

    /// Validates `value` as finite and non-negative.
    ///
    /// # Errors
    ///
    /// [`UdmError::InvalidValue`] tagged with `what` otherwise.
    pub fn new(what: &'static str, value: f64) -> Result<Self> {
        if value.is_finite() && value >= 0.0 {
            Ok(NonNegF64(value))
        } else {
            Err(UdmError::InvalidValue { what, value })
        }
    }

    /// Clamps instead of failing: negative/NaN becomes zero (counted),
    /// `+∞` is rejected as unrepresentable.
    ///
    /// # Errors
    ///
    /// [`UdmError::InvalidValue`] for `+∞`.
    pub fn clamped(what: &'static str, value: f64) -> Result<Self> {
        if value == f64::INFINITY {
            return Err(UdmError::InvalidValue { what, value });
        }
        Ok(NonNegF64(clamp_non_negative(value)))
    }

    /// The wrapped value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Square root (always well-defined on this domain).
    #[inline]
    pub fn sqrt(self) -> f64 {
        self.0.sqrt()
    }
}

impl From<NonNegF64> for f64 {
    fn from(v: NonNegF64) -> f64 {
        v.0
    }
}

/// Default absolute tolerance of [`approx_eq`].
pub const APPROX_EQ_ABS: f64 = 1e-12;
/// Default relative tolerance of [`approx_eq`].
pub const APPROX_EQ_REL: f64 = 1e-9;

/// Tolerant float equality: `|a − b| ≤ max(ABS, REL·max(|a|, |b|))`.
///
/// This is the helper the `udm-lint` **UDM002** fix mode rewrites bare
/// float `==` comparisons into. NaN compares unequal to everything
/// (including NaN), matching IEEE `==` semantics.
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    approx_eq_eps(a, b, APPROX_EQ_ABS, APPROX_EQ_REL)
}

/// [`approx_eq`] with explicit absolute and relative tolerances.
// This is the one place exact float comparison is the tool's job: the
// fast path must short-circuit on bitwise-equal operands and same-sign
// infinities before any subtraction.
#[allow(clippy::float_cmp)]
#[inline]
pub fn approx_eq_eps(a: f64, b: f64, abs_tol: f64, rel_tol: f64) -> bool {
    if a == b {
        // Covers exact equality and infinities of the same sign.
        return true;
    }
    let diff = (a - b).abs();
    // Non-finite diff (NaN operands, opposite infinities, overflow) is
    // never "approximately equal": `∞ ≤ rel·∞` would otherwise pass.
    diff.is_finite() && diff <= abs_tol.max(rel_tol * a.abs().max(b.abs()))
}

/// Validates that every element of `values` is finite.
///
/// This is the runtime guard public estimator entry points use on query
/// coordinates and per-dimension errors (`udm-lint` rule **UDM005**): a
/// NaN query would otherwise flow through every kernel product and come
/// back as a NaN "density" with no indication of where it entered.
///
/// # Errors
///
/// [`UdmError::InvalidValue`] tagged with `what` for the first non-finite
/// element.
pub fn ensure_finite_slice(what: &'static str, values: &[f64]) -> Result<()> {
    for &v in values {
        if !v.is_finite() {
            return Err(UdmError::InvalidValue { what, value: v });
        }
    }
    Ok(())
}

/// Convenience: [`ensure_finite_slice`] over an `Option<&[f64]>` (used
/// for optional query-error vectors).
///
/// # Errors
///
/// As [`ensure_finite_slice`]; `None` always passes.
pub fn ensure_finite_slice_opt(what: &'static str, values: Option<&[f64]>) -> Result<()> {
    match values {
        Some(vs) => ensure_finite_slice(what, vs),
        None => Ok(()),
    }
}

/// `u64` point/weight count as `f64`, with a debug-time guard that the
/// count is exactly representable (`≤ 2⁵³`). The sanctioned conversion
/// for hot-path modules where `udm-lint` rule **UDM004** bans bare lossy
/// `as` casts.
#[inline]
pub fn f64_from_count(n: u64) -> f64 {
    debug_assert!(
        n <= (1u64 << f64::MANTISSA_DIGITS),
        "count {n} exceeds the exactly-representable f64 range"
    );
    n as f64 // guarded by the debug_assert above
}

/// `usize` length as `f64` (same contract as [`f64_from_count`]).
#[inline]
pub fn f64_from_usize(n: usize) -> f64 {
    debug_assert!(
        (n as u64) <= (1u64 << f64::MANTISSA_DIGITS), // widening on 64-bit targets
        "length {n} exceeds the exactly-representable f64 range"
    );
    n as f64 // guarded by the debug_assert above
}

/// Debug-build assertion that a slice of floats is entirely finite.
///
/// Zero-cost in release builds; use on internal hot paths where the
/// runtime [`ensure_finite_slice`] guard would be redundant with checks
/// already performed at the public boundary.
#[macro_export]
macro_rules! debug_assert_finite {
    ($what:expr, $values:expr) => {
        if cfg!(debug_assertions) {
            for (__idx, __v) in ::core::iter::IntoIterator::into_iter($values).enumerate() {
                let __v: f64 = *__v;
                debug_assert!(
                    __v.is_finite(),
                    "non-finite {} ({}) at index {}",
                    $what,
                    __v,
                    __idx
                );
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_passes_non_negative_through_bitwise() {
        for x in [0.0, 1e-300, 1.5, f64::MAX] {
            assert_eq!(clamp_non_negative(x).to_bits(), x.to_bits());
            assert_eq!(clamped_sqrt(x).to_bits(), x.sqrt().to_bits());
        }
    }

    #[test]
    fn clamp_counts_negative_and_nan() {
        reset_negative_clamp_count();
        let before = negative_clamp_count();
        assert_eq!(clamp_non_negative(-1e-18), 0.0);
        assert_eq!(clamp_non_negative(f64::NAN), 0.0);
        assert_eq!(clamped_sqrt(-4.0), 0.0);
        assert_eq!(negative_clamp_count() - before, 3);
    }

    #[test]
    fn clamped_sqrt_never_nan() {
        for x in [-1.0, -0.0, 0.0, f64::NAN, f64::NEG_INFINITY, 4.0] {
            assert!(!clamped_sqrt(x).is_nan(), "x={x}");
        }
    }

    #[test]
    fn non_neg_f64_validates() {
        assert_eq!(NonNegF64::new("w", 2.25).unwrap().sqrt(), 1.5);
        assert_eq!(NonNegF64::new("w", 0.0).unwrap().get(), 0.0);
        assert!(NonNegF64::new("w", -0.1).is_err());
        assert!(NonNegF64::new("w", f64::NAN).is_err());
        assert!(NonNegF64::new("w", f64::INFINITY).is_err());
        assert_eq!(f64::from(NonNegF64::ZERO), 0.0);
    }

    #[test]
    fn non_neg_f64_clamped_counts() {
        reset_negative_clamp_count();
        assert_eq!(NonNegF64::clamped("w", -3.0).unwrap().get(), 0.0);
        assert!(negative_clamp_count() >= 1);
        assert!(NonNegF64::clamped("w", f64::INFINITY).is_err());
    }

    #[test]
    fn approx_eq_basics() {
        assert!(approx_eq(1.0, 1.0));
        assert!(approx_eq(1.0, 1.0 + 1e-13));
        assert!(approx_eq(1e9, 1e9 * (1.0 + 1e-10)));
        assert!(!approx_eq(1.0, 1.0001));
        assert!(!approx_eq(f64::NAN, f64::NAN));
        assert!(approx_eq(f64::INFINITY, f64::INFINITY));
        assert!(!approx_eq(f64::INFINITY, f64::NEG_INFINITY));
    }

    #[test]
    fn ensure_finite_slice_reports_offender() {
        assert!(ensure_finite_slice("q", &[0.0, 1.0, -2.0]).is_ok());
        let err = ensure_finite_slice("q", &[0.0, f64::NAN]).unwrap_err();
        assert!(matches!(err, UdmError::InvalidValue { what: "q", .. }));
        assert!(ensure_finite_slice("q", &[f64::INFINITY]).is_err());
        assert!(ensure_finite_slice_opt("q", None).is_ok());
        assert!(ensure_finite_slice_opt("q", Some(&[f64::NAN])).is_err());
    }

    #[test]
    fn count_conversions_are_exact_in_range() {
        assert_eq!(f64_from_count(0), 0.0);
        assert_eq!(f64_from_count(12_345), 12_345.0);
        assert_eq!(
            f64_from_usize(usize::try_from(1u64 << 53).unwrap()),
            2f64.powi(53)
        );
    }

    #[test]
    fn debug_assert_finite_accepts_finite() {
        let xs = [0.0, -1.0, 1e300];
        debug_assert_finite!("xs", xs.iter());
        debug_assert_finite!("xs", &xs);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    #[cfg(debug_assertions)]
    fn debug_assert_finite_panics_on_nan() {
        let xs = [0.0, f64::NAN];
        debug_assert_finite!("xs", &xs);
    }
}
