//! Uncertain points: values paired with per-dimension error estimates.

use crate::error::{ensure_finite, ensure_non_negative, Result, UdmError};
use crate::label::ClassLabel;
use crate::subspace::Subspace;
use serde::{Deserialize, Serialize};

/// A `d`-dimensional record `X_i` together with its per-dimension error
/// estimate `ψ_j(X_i)`.
///
/// Following the paper (§2), the error value `ψ_j(X_i)` is interpreted as a
/// *standard deviation*: e.g. the standard deviation of repeated physical
/// measurements, of an imputation procedure, or of a privacy-preserving
/// perturbation. The paper makes "the most general assumption in which the
/// error is defined by both the row and the field", so each cell carries its
/// own error.
///
/// Invariants (enforced by [`UncertainPoint::new`]):
/// * `values.len() == errors.len()`,
/// * every value is finite,
/// * every error is finite and non-negative.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UncertainPoint {
    values: Vec<f64>,
    errors: Vec<f64>,
    label: Option<ClassLabel>,
    /// Arrival time stamp `T_i` for streaming scenarios (§2.1). Points in
    /// static datasets default to 0.
    timestamp: u64,
}

impl UncertainPoint {
    /// Creates a new validated uncertain point.
    ///
    /// # Errors
    ///
    /// Returns [`UdmError::DimensionMismatch`] if `values` and `errors`
    /// disagree in length and [`UdmError::InvalidValue`] if any entry is
    /// non-finite or any error is negative.
    pub fn new(values: Vec<f64>, errors: Vec<f64>) -> Result<Self> {
        if values.len() != errors.len() {
            return Err(UdmError::DimensionMismatch {
                expected: values.len(),
                actual: errors.len(),
            });
        }
        for &v in &values {
            ensure_finite("point value", v)?;
        }
        for &e in &errors {
            ensure_non_negative("point error", e)?;
        }
        Ok(Self {
            values,
            errors,
            label: None,
            timestamp: 0,
        })
    }

    /// Creates a point whose cells are all *exact* (every `ψ_j = 0`).
    pub fn exact(values: Vec<f64>) -> Result<Self> {
        let errors = vec![0.0; values.len()];
        Self::new(values, errors)
    }

    /// Attaches a class label, consuming and returning the point
    /// (builder style).
    #[must_use]
    pub fn with_label(mut self, label: ClassLabel) -> Self {
        self.label = Some(label);
        self
    }

    /// Attaches an arrival timestamp, consuming and returning the point.
    #[must_use]
    pub fn with_timestamp(mut self, ts: u64) -> Self {
        self.timestamp = ts;
        self
    }

    /// The dimensionality `d` of the point.
    #[inline]
    pub fn dim(&self) -> usize {
        self.values.len()
    }

    /// The coordinate vector `X_i`.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The error vector `ψ(X_i)`.
    #[inline]
    pub fn errors(&self) -> &[f64] {
        &self.errors
    }

    /// The value along dimension `j` (`x_i^j`).
    #[inline]
    pub fn value(&self, j: usize) -> f64 {
        self.values[j]
    }

    /// The error along dimension `j` (`ψ_j(X_i)`).
    #[inline]
    pub fn error(&self, j: usize) -> f64 {
        self.errors[j]
    }

    /// The class label, if the point is labelled.
    #[inline]
    pub fn label(&self) -> Option<ClassLabel> {
        self.label
    }

    /// The arrival timestamp `T_i`.
    #[inline]
    pub fn timestamp(&self) -> u64 {
        self.timestamp
    }

    /// Returns `true` if every cell of the point is exact (`ψ ≡ 0`).
    pub fn is_exact(&self) -> bool {
        // udm-lint: allow(UDM002) exact cells carry ψ = 0.0 literally, never computed
        self.errors.iter().all(|&e| e == 0.0)
    }

    /// Returns a copy of the point with all errors forced to zero.
    ///
    /// This is how the paper's *unadjusted* baseline classifier is built:
    /// "exactly the same algorithm … except that all the entries in the data
    /// were assumed to have an error of zero" (§4).
    #[must_use]
    pub fn without_errors(&self) -> Self {
        Self {
            values: self.values.clone(),
            errors: vec![0.0; self.values.len()],
            label: self.label,
            timestamp: self.timestamp,
        }
    }

    /// Projects the point onto a subspace `S`, keeping the relative order of
    /// dimensions. Used to evaluate subspace densities `g(x, S, D)`.
    ///
    /// # Errors
    ///
    /// Returns [`UdmError::DimensionOutOfRange`] if `S` references a
    /// dimension `≥ self.dim()`.
    pub fn project(&self, subspace: Subspace) -> Result<UncertainPoint> {
        let mut values = Vec::with_capacity(subspace.cardinality());
        let mut errors = Vec::with_capacity(subspace.cardinality());
        for dim in subspace.dims() {
            if dim >= self.dim() {
                return Err(UdmError::DimensionOutOfRange {
                    dim,
                    dimensionality: self.dim(),
                });
            }
            values.push(self.values[dim]);
            errors.push(self.errors[dim]);
        }
        Ok(UncertainPoint {
            values,
            errors,
            label: self.label,
            timestamp: self.timestamp,
        })
    }

    /// Squared Euclidean distance between the *values* of two points,
    /// ignoring errors. The error-adjusted variant lives in
    /// `udm-microcluster::distance` (Eq. 5 of the paper).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if dimensionalities differ.
    pub fn squared_euclidean(&self, other: &UncertainPoint) -> f64 {
        debug_assert_eq!(self.dim(), other.dim());
        self.values
            .iter()
            .zip(other.values.iter())
            .map(|(a, b)| {
                let d = a - b;
                d * d
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(values: &[f64], errors: &[f64]) -> UncertainPoint {
        UncertainPoint::new(values.to_vec(), errors.to_vec()).unwrap()
    }

    #[test]
    fn new_validates_lengths() {
        let e = UncertainPoint::new(vec![1.0, 2.0], vec![0.1]).unwrap_err();
        assert!(matches!(e, UdmError::DimensionMismatch { .. }));
    }

    #[test]
    fn new_rejects_nan_value() {
        assert!(UncertainPoint::new(vec![f64::NAN], vec![0.0]).is_err());
    }

    #[test]
    fn new_rejects_negative_error() {
        assert!(UncertainPoint::new(vec![1.0], vec![-0.5]).is_err());
    }

    #[test]
    fn new_rejects_infinite_error() {
        assert!(UncertainPoint::new(vec![1.0], vec![f64::INFINITY]).is_err());
    }

    #[test]
    fn exact_points_have_zero_errors() {
        let p = UncertainPoint::exact(vec![3.0, 4.0]).unwrap();
        assert!(p.is_exact());
        assert_eq!(p.errors(), &[0.0, 0.0]);
    }

    #[test]
    fn builder_label_and_timestamp() {
        let p = pt(&[1.0], &[0.1])
            .with_label(ClassLabel(2))
            .with_timestamp(42);
        assert_eq!(p.label(), Some(ClassLabel(2)));
        assert_eq!(p.timestamp(), 42);
    }

    #[test]
    fn without_errors_zeroes_psi_only() {
        let p = pt(&[1.0, 2.0], &[0.5, 0.7]).with_label(ClassLabel(1));
        let q = p.without_errors();
        assert_eq!(q.values(), p.values());
        assert!(q.is_exact());
        assert_eq!(q.label(), Some(ClassLabel(1)));
    }

    #[test]
    fn project_selects_dims_in_order() {
        let p = pt(&[10.0, 20.0, 30.0, 40.0], &[1.0, 2.0, 3.0, 4.0]);
        let s = Subspace::from_dims(&[1, 3]).unwrap();
        let q = p.project(s).unwrap();
        assert_eq!(q.values(), &[20.0, 40.0]);
        assert_eq!(q.errors(), &[2.0, 4.0]);
        assert_eq!(q.dim(), 2);
    }

    #[test]
    fn project_out_of_range_errors() {
        let p = pt(&[1.0], &[0.0]);
        let s = Subspace::from_dims(&[2]).unwrap();
        assert!(matches!(
            p.project(s),
            Err(UdmError::DimensionOutOfRange { .. })
        ));
    }

    #[test]
    fn project_full_space_is_identity_on_values() {
        let p = pt(&[1.0, 2.0], &[0.3, 0.4]);
        let s = Subspace::full(2).unwrap();
        let q = p.project(s).unwrap();
        assert_eq!(q.values(), p.values());
        assert_eq!(q.errors(), p.errors());
    }

    #[test]
    fn squared_euclidean_matches_hand_computation() {
        let a = pt(&[0.0, 0.0], &[0.0, 0.0]);
        let b = pt(&[3.0, 4.0], &[9.0, 9.0]);
        assert_eq!(a.squared_euclidean(&b), 25.0);
    }

    #[test]
    fn zero_dimensional_point_is_legal() {
        let p = UncertainPoint::exact(vec![]).unwrap();
        assert_eq!(p.dim(), 0);
        assert!(p.is_exact());
    }
}
