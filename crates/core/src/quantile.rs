//! Order statistics: quantiles, median, interquartile range.
//!
//! Used by the robust Silverman bandwidth rule (`udm-kde`), which guards
//! against heavy-tailed columns by taking `min(σ, IQR/1.34)`.

use crate::error::{Result, UdmError};

/// Computes the `q`-quantile (`0 ≤ q ≤ 1`) of a sample using linear
/// interpolation between order statistics (type-7 / the spreadsheet
/// convention). The input need not be sorted.
///
/// # Errors
///
/// [`UdmError::EmptyDataset`] for empty input and
/// [`UdmError::InvalidValue`] for a non-finite sample value or a `q`
/// outside `[0, 1]`.
pub fn quantile(sample: &[f64], q: f64) -> Result<f64> {
    if sample.is_empty() {
        return Err(UdmError::EmptyDataset);
    }
    if !(q.is_finite() && (0.0..=1.0).contains(&q)) {
        return Err(UdmError::InvalidValue {
            what: "quantile level",
            value: q,
        });
    }
    let mut sorted = sample.to_vec();
    for &v in &sorted {
        if !v.is_finite() {
            return Err(UdmError::InvalidValue {
                what: "sample value",
                value: v,
            });
        }
    }
    sorted.sort_by(f64::total_cmp);
    Ok(quantile_sorted_unchecked(&sorted, q))
}

/// Like [`quantile`] but assumes `sorted` is already ascending and finite;
/// use when taking several quantiles of the same sample.
pub fn quantile_sorted_unchecked(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    // pos lies in [0, n−1] for the q ∈ [0, 1] the checked wrapper
    // guarantees, so floor/ceil fit in usize.
    #[allow(clippy::cast_possible_truncation)]
    let lo = pos.floor() as usize;
    #[allow(clippy::cast_possible_truncation)]
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// The median (0.5-quantile).
pub fn median(sample: &[f64]) -> Result<f64> {
    quantile(sample, 0.5)
}

/// The interquartile range `Q3 − Q1`.
pub fn interquartile_range(sample: &[f64]) -> Result<f64> {
    if sample.is_empty() {
        return Err(UdmError::EmptyDataset);
    }
    let mut sorted = sample.to_vec();
    for &v in &sorted {
        if !v.is_finite() {
            return Err(UdmError::InvalidValue {
                what: "sample value",
                value: v,
            });
        }
    }
    sorted.sort_by(f64::total_cmp);
    Ok(quantile_sorted_unchecked(&sorted, 0.75) - quantile_sorted_unchecked(&sorted, 0.25))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]).unwrap(), 2.5);
    }

    #[test]
    fn extremes_are_min_max() {
        let xs = [5.0, -1.0, 3.0];
        assert_eq!(quantile(&xs, 0.0).unwrap(), -1.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 5.0);
    }

    #[test]
    fn interpolates_between_order_stats() {
        // quartiles of 1..=5: Q1 = 2, Q3 = 4 under type-7
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&xs, 0.25).unwrap(), 2.0);
        assert_eq!(quantile(&xs, 0.75).unwrap(), 4.0);
        assert_eq!(interquartile_range(&xs).unwrap(), 2.0);
    }

    #[test]
    fn single_element() {
        assert_eq!(quantile(&[7.0], 0.3).unwrap(), 7.0);
        assert_eq!(interquartile_range(&[7.0]).unwrap(), 0.0);
    }

    #[test]
    fn unsorted_input_ok() {
        let xs = [9.0, 1.0, 5.0, 3.0, 7.0];
        assert_eq!(median(&xs).unwrap(), 5.0);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(quantile(&[], 0.5).is_err());
        assert!(quantile(&[1.0], 1.5).is_err());
        assert!(quantile(&[1.0], -0.1).is_err());
        assert!(quantile(&[f64::NAN], 0.5).is_err());
        assert!(interquartile_range(&[]).is_err());
    }

    #[test]
    fn quantile_is_monotone_in_q() {
        let xs = [2.0, 8.0, 4.0, 6.0, 0.0, 10.0];
        let mut last = f64::NEG_INFINITY;
        for i in 0..=10 {
            let v = quantile(&xs, i as f64 / 10.0).unwrap();
            assert!(v >= last);
            last = v;
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn quantile_within_range(
            xs in proptest::collection::vec(-1e6f64..1e6, 1..100),
            q in 0.0f64..=1.0,
        ) {
            let v = quantile(&xs, q).unwrap();
            let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(v >= min && v <= max);
        }

        #[test]
        fn iqr_non_negative(xs in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            prop_assert!(interquartile_range(&xs).unwrap() >= 0.0);
        }
    }
}
