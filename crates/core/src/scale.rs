//! Feature scaling for uncertain data.
//!
//! Scaling uncertain data must transform values *and* their errors
//! consistently: if dimension `j` is rescaled by `x ↦ (x − μ_j)/σ_j`, then a
//! standard deviation `ψ_j` on that dimension becomes `ψ_j/σ_j` (shift does
//! not affect a standard deviation; scale does). Both scalers here follow
//! that rule, which keeps the error-based kernels of `udm-kde`
//! scale-equivariant.

use crate::dataset::UncertainDataset;
use crate::error::{Result, UdmError};
use crate::point::UncertainPoint;
use serde::{Deserialize, Serialize};

/// Common interface for fitted scalers.
pub trait Scaler {
    /// Fits scaler parameters to the dataset.
    fn fit(dataset: &UncertainDataset) -> Result<Self>
    where
        Self: Sized;

    /// Transforms a single point.
    fn transform_point(&self, point: &UncertainPoint) -> Result<UncertainPoint>;

    /// Transforms a whole dataset.
    fn transform(&self, dataset: &UncertainDataset) -> Result<UncertainDataset> {
        let points = dataset
            .iter()
            .map(|p| self.transform_point(p))
            .collect::<Result<Vec<_>>>()?;
        UncertainDataset::from_points(points)
    }
}

/// Z-score standardization: `x ↦ (x − μ)/σ`, `ψ ↦ ψ/σ`.
///
/// Dimensions with zero variance are passed through centred but unscaled
/// (scale factor 1), so constant columns do not produce NaNs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// The fitted per-dimension means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// The fitted per-dimension standard deviations (1.0 where the column
    /// was constant).
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Applies the inverse transform to a point in scaled space.
    pub fn inverse_transform_point(&self, point: &UncertainPoint) -> Result<UncertainPoint> {
        if point.dim() != self.means.len() {
            return Err(UdmError::DimensionMismatch {
                expected: self.means.len(),
                actual: point.dim(),
            });
        }
        let values = point
            .values()
            .iter()
            .zip(self.means.iter().zip(self.stds.iter()))
            .map(|(&v, (&m, &s))| v * s + m)
            .collect();
        let errors = point
            .errors()
            .iter()
            .zip(self.stds.iter())
            .map(|(&e, &s)| e * s)
            .collect();
        let mut q = UncertainPoint::new(values, errors)?;
        if let Some(l) = point.label() {
            q = q.with_label(l);
        }
        Ok(q.with_timestamp(point.timestamp()))
    }
}

impl Scaler for StandardScaler {
    fn fit(dataset: &UncertainDataset) -> Result<Self> {
        if dataset.is_empty() {
            return Err(UdmError::EmptyDataset);
        }
        let summaries = dataset.summaries();
        let means = summaries.iter().map(|s| s.mean).collect();
        let stds = summaries
            .iter()
            .map(|s| if s.std > 0.0 { s.std } else { 1.0 })
            .collect();
        Ok(StandardScaler { means, stds })
    }

    fn transform_point(&self, point: &UncertainPoint) -> Result<UncertainPoint> {
        if point.dim() != self.means.len() {
            return Err(UdmError::DimensionMismatch {
                expected: self.means.len(),
                actual: point.dim(),
            });
        }
        let values = point
            .values()
            .iter()
            .zip(self.means.iter().zip(self.stds.iter()))
            .map(|(&v, (&m, &s))| (v - m) / s)
            .collect();
        let errors = point
            .errors()
            .iter()
            .zip(self.stds.iter())
            .map(|(&e, &s)| e / s)
            .collect();
        let mut q = UncertainPoint::new(values, errors)?;
        if let Some(l) = point.label() {
            q = q.with_label(l);
        }
        Ok(q.with_timestamp(point.timestamp()))
    }
}

/// Min-max scaling to `[0, 1]`: `x ↦ (x − min)/(max − min)`,
/// `ψ ↦ ψ/(max − min)`.
///
/// Constant columns are mapped to 0.0 with unscaled errors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinMaxScaler {
    mins: Vec<f64>,
    ranges: Vec<f64>,
}

impl MinMaxScaler {
    /// The fitted per-dimension minima.
    pub fn mins(&self) -> &[f64] {
        &self.mins
    }

    /// The fitted per-dimension ranges (1.0 where the column was constant).
    pub fn ranges(&self) -> &[f64] {
        &self.ranges
    }
}

impl Scaler for MinMaxScaler {
    fn fit(dataset: &UncertainDataset) -> Result<Self> {
        if dataset.is_empty() {
            return Err(UdmError::EmptyDataset);
        }
        let summaries = dataset.summaries();
        let mins = summaries.iter().map(|s| s.min).collect();
        let ranges = summaries
            .iter()
            .map(|s| {
                let r = s.max - s.min;
                if r > 0.0 {
                    r
                } else {
                    1.0
                }
            })
            .collect();
        Ok(MinMaxScaler { mins, ranges })
    }

    fn transform_point(&self, point: &UncertainPoint) -> Result<UncertainPoint> {
        if point.dim() != self.mins.len() {
            return Err(UdmError::DimensionMismatch {
                expected: self.mins.len(),
                actual: point.dim(),
            });
        }
        let values = point
            .values()
            .iter()
            .zip(self.mins.iter().zip(self.ranges.iter()))
            .map(|(&v, (&lo, &r))| (v - lo) / r)
            .collect();
        let errors = point
            .errors()
            .iter()
            .zip(self.ranges.iter())
            .map(|(&e, &r)| e / r)
            .collect();
        let mut q = UncertainPoint::new(values, errors)?;
        if let Some(l) = point.label() {
            q = q.with_label(l);
        }
        Ok(q.with_timestamp(point.timestamp()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::ClassLabel;

    fn dataset() -> UncertainDataset {
        UncertainDataset::from_points(vec![
            UncertainPoint::new(vec![0.0, 10.0], vec![1.0, 2.0])
                .unwrap()
                .with_label(ClassLabel(0)),
            UncertainPoint::new(vec![2.0, 20.0], vec![0.5, 1.0]).unwrap(),
            UncertainPoint::new(vec![4.0, 30.0], vec![0.0, 0.0]).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn standard_scaler_centres_and_scales() {
        let d = dataset();
        let sc = StandardScaler::fit(&d).unwrap();
        let t = sc.transform(&d).unwrap();
        let s = t.summaries();
        for dim in &s {
            assert!(dim.mean.abs() < 1e-12);
            assert!((dim.std - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn standard_scaler_scales_errors_consistently() {
        let d = dataset();
        let sc = StandardScaler::fit(&d).unwrap();
        let t = sc.transform(&d).unwrap();
        // dim 0 values (0,2,4): population std = sqrt(8/3)
        let sigma = (8.0f64 / 3.0).sqrt();
        assert!((t.point(0).error(0) - 1.0 / sigma).abs() < 1e-12);
    }

    #[test]
    fn standard_scaler_preserves_labels_and_timestamps() {
        let d = dataset();
        let sc = StandardScaler::fit(&d).unwrap();
        let t = sc.transform(&d).unwrap();
        assert_eq!(t.point(0).label(), Some(ClassLabel(0)));
        assert_eq!(t.point(1).label(), None);
    }

    #[test]
    fn standard_scaler_inverse_roundtrips() {
        let d = dataset();
        let sc = StandardScaler::fit(&d).unwrap();
        let t = sc.transform(&d).unwrap();
        for (orig, scaled) in d.iter().zip(t.iter()) {
            let back = sc.inverse_transform_point(scaled).unwrap();
            for j in 0..d.dim() {
                assert!((back.value(j) - orig.value(j)).abs() < 1e-9);
                assert!((back.error(j) - orig.error(j)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn standard_scaler_constant_column_is_safe() {
        let d = UncertainDataset::from_points(vec![
            UncertainPoint::new(vec![5.0], vec![0.1]).unwrap(),
            UncertainPoint::new(vec![5.0], vec![0.2]).unwrap(),
        ])
        .unwrap();
        let sc = StandardScaler::fit(&d).unwrap();
        let t = sc.transform(&d).unwrap();
        assert_eq!(t.point(0).value(0), 0.0);
        assert!(t.point(0).value(0).is_finite());
        assert_eq!(t.point(0).error(0), 0.1);
    }

    #[test]
    fn standard_scaler_rejects_empty_and_mismatched() {
        assert!(StandardScaler::fit(&UncertainDataset::new(2)).is_err());
        let d = dataset();
        let sc = StandardScaler::fit(&d).unwrap();
        let wrong = UncertainPoint::exact(vec![1.0]).unwrap();
        assert!(sc.transform_point(&wrong).is_err());
    }

    #[test]
    fn minmax_maps_to_unit_interval() {
        let d = dataset();
        let sc = MinMaxScaler::fit(&d).unwrap();
        let t = sc.transform(&d).unwrap();
        for p in t.iter() {
            for j in 0..t.dim() {
                assert!((0.0..=1.0).contains(&p.value(j)));
            }
        }
        assert_eq!(t.point(0).value(0), 0.0);
        assert_eq!(t.point(2).value(0), 1.0);
    }

    #[test]
    fn minmax_scales_errors_by_range() {
        let d = dataset();
        let sc = MinMaxScaler::fit(&d).unwrap();
        let t = sc.transform(&d).unwrap();
        // dim 1 range = 20, first point error 2.0 -> 0.1
        assert!((t.point(0).error(1) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn minmax_constant_column_is_safe() {
        let d = UncertainDataset::from_points(vec![
            UncertainPoint::new(vec![7.0], vec![0.3]).unwrap(),
            UncertainPoint::new(vec![7.0], vec![0.3]).unwrap(),
        ])
        .unwrap();
        let sc = MinMaxScaler::fit(&d).unwrap();
        let t = sc.transform(&d).unwrap();
        assert_eq!(t.point(0).value(0), 0.0);
        assert_eq!(t.point(0).error(0), 0.3);
    }
}
