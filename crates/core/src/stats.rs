//! Numerically stable streaming statistics.
//!
//! Bandwidth selection (Silverman's rule, `udm-kde`), dataset summaries and
//! the noise-injection model (`udm-data`) all need means and variances.
//! [`RunningStats`] implements Welford's online algorithm so a single pass
//! suffices and catastrophic cancellation is avoided even for data with a
//! large common offset.

use serde::{Deserialize, Serialize};

/// Welford online accumulator for mean/variance/min/max of a scalar stream.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds one observation into the accumulator.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Builds an accumulator from a slice in one pass.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = Self::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    /// Number of observations folded in.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; 0 for an empty accumulator.
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divide by `n`); 0 when `n < 1`.
    ///
    /// The paper's micro-cluster algebra (Lemma 1) uses population
    /// conventions — `CF2/r − (CF1/r)²` — so this is the default.
    #[inline]
    pub fn variance_population(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            crate::num::clamp_non_negative(self.m2 / self.count as f64)
        }
    }

    /// Sample variance (divide by `n − 1`); 0 when `n < 2`.
    #[inline]
    pub fn variance_sample(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            crate::num::clamp_non_negative(self.m2 / (self.count - 1) as f64)
        }
    }

    /// Population standard deviation.
    #[inline]
    pub fn std_population(&self) -> f64 {
        crate::num::clamped_sqrt(self.variance_population())
    }

    /// Sample standard deviation.
    #[inline]
    pub fn std_sample(&self) -> f64 {
        crate::num::clamped_sqrt(self.variance_sample())
    }

    /// Smallest observation; `+∞` when empty.
    #[inline]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `−∞` when empty.
    #[inline]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The raw Welford `M2` accumulator (sum of squared deviations from
    /// the running mean). Exposed so the accumulator can be persisted
    /// part-wise and restored bit-identically by [`Self::from_parts`].
    #[inline]
    pub fn m2(&self) -> f64 {
        self.m2
    }

    /// Reconstructs an accumulator from its raw parts, the inverse of
    /// reading `count`/`mean`/`m2`/`min`/`max`. `min`/`max` are taken as
    /// `Option` because the empty accumulator's `±∞` sentinels do not
    /// survive JSON; `None` restores the sentinels.
    pub fn from_parts(count: u64, mean: f64, m2: f64, min: Option<f64>, max: Option<f64>) -> Self {
        Self {
            count,
            mean,
            m2,
            min: min.unwrap_or(f64::INFINITY),
            max: max.unwrap_or(f64::NEG_INFINITY),
        }
    }

    /// Merges another accumulator into this one (Chan et al. parallel
    /// combination), so statistics can be computed on shards and combined.
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Per-dimension summary of a dataset: the quantities the rest of the
/// workspace needs most often (bandwidth rules, scaling, noise injection).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DimensionSummary {
    /// Mean of the dimension's values.
    pub mean: f64,
    /// Population standard deviation of the values (`σ` in the paper's
    /// noise model, where perturbation scale is drawn from `U[0, 2f]·σ`).
    pub std: f64,
    /// Minimum observed value.
    pub min: f64,
    /// Maximum observed value.
    pub max: f64,
    /// Root-mean-square of the recorded errors `ψ_j` on this dimension.
    pub rms_error: f64,
}

impl DimensionSummary {
    /// Builds a summary from parallel slices of values and errors.
    pub fn from_column(values: &[f64], errors: &[f64]) -> Self {
        let vs = RunningStats::from_slice(values);
        let mean_sq_err = if errors.is_empty() {
            0.0
        } else {
            errors.iter().map(|e| e * e).sum::<f64>() / errors.len() as f64
        };
        DimensionSummary {
            mean: vs.mean(),
            std: vs.std_population(),
            min: vs.min(),
            max: vs.max(),
            rms_error: crate::num::clamped_sqrt(mean_sq_err),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() <= eps, "{a} !~ {b}");
    }

    #[test]
    fn empty_stats_are_neutral() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance_population(), 0.0);
        assert_eq!(s.variance_sample(), 0.0);
    }

    #[test]
    fn single_observation() {
        let s = RunningStats::from_slice(&[5.0]);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.variance_population(), 0.0);
        assert_eq!(s.variance_sample(), 0.0);
        assert_eq!(s.min(), 5.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn matches_textbook_values() {
        // values 2,4,4,4,5,5,7,9: mean 5, population variance 4.
        let s = RunningStats::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_close(s.mean(), 5.0, 1e-12);
        assert_close(s.variance_population(), 4.0, 1e-12);
        assert_close(s.std_population(), 2.0, 1e-12);
        assert_close(s.variance_sample(), 32.0 / 7.0, 1e-12);
    }

    #[test]
    fn stable_under_large_offset() {
        let offset = 1e9;
        let s = RunningStats::from_slice(&[offset + 1.0, offset + 2.0, offset + 3.0]);
        assert_close(s.mean(), offset + 2.0, 1e-3);
        assert_close(s.variance_population(), 2.0 / 3.0, 1e-6);
    }

    #[test]
    fn merge_equals_single_pass() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let whole = RunningStats::from_slice(&xs);
        let mut left = RunningStats::from_slice(&xs[..37]);
        let right = RunningStats::from_slice(&xs[37..]);
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert_close(left.mean(), whole.mean(), 1e-10);
        assert_close(
            left.variance_population(),
            whole.variance_population(),
            1e-10,
        );
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::from_slice(&[1.0, 2.0]);
        let before = a.clone();
        a.merge(&RunningStats::new());
        assert_eq!(a, before);

        let mut e = RunningStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn from_parts_roundtrips_bit_identically() {
        let s = RunningStats::from_slice(&[1.5, -2.25, 7.125, 0.0625]);
        let back =
            RunningStats::from_parts(s.count(), s.mean(), s.m2(), Some(s.min()), Some(s.max()));
        assert_eq!(back, s);
        // The empty accumulator restores its infinity sentinels from None.
        let empty = RunningStats::from_parts(0, 0.0, 0.0, None, None);
        assert_eq!(empty, RunningStats::new());
    }

    #[test]
    fn min_max_track_extremes() {
        let s = RunningStats::from_slice(&[3.0, -1.0, 7.0, 2.0]);
        assert_eq!(s.min(), -1.0);
        assert_eq!(s.max(), 7.0);
    }

    #[test]
    fn dimension_summary_from_column() {
        let summary = DimensionSummary::from_column(&[1.0, 2.0, 3.0], &[0.0, 3.0, 4.0]);
        assert_close(summary.mean, 2.0, 1e-12);
        assert_close(summary.std, (2.0f64 / 3.0).sqrt(), 1e-12);
        assert_eq!(summary.min, 1.0);
        assert_eq!(summary.max, 3.0);
        // rms of (0,3,4) = sqrt(25/3)
        assert_close(summary.rms_error, (25.0f64 / 3.0).sqrt(), 1e-12);
    }

    #[test]
    fn dimension_summary_empty_errors() {
        let summary = DimensionSummary::from_column(&[1.0], &[]);
        assert_eq!(summary.rms_error, 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn welford_matches_naive(xs in proptest::collection::vec(-1e3f64..1e3, 1..200)) {
            let s = RunningStats::from_slice(&xs);
            let n = xs.len() as f64;
            let mean = xs.iter().sum::<f64>() / n;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
            prop_assert!((s.mean() - mean).abs() < 1e-6);
            prop_assert!((s.variance_population() - var).abs() < 1e-6);
        }

        #[test]
        fn merge_is_order_insensitive(
            xs in proptest::collection::vec(-1e3f64..1e3, 1..100),
            ys in proptest::collection::vec(-1e3f64..1e3, 1..100),
        ) {
            let a = RunningStats::from_slice(&xs);
            let b = RunningStats::from_slice(&ys);
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            prop_assert!((ab.mean() - ba.mean()).abs() < 1e-9);
            prop_assert!((ab.variance_population() - ba.variance_population()).abs() < 1e-9);
            prop_assert_eq!(ab.count(), ba.count());
        }

        #[test]
        fn variance_is_non_negative(xs in proptest::collection::vec(-1e6f64..1e6, 0..100)) {
            let s = RunningStats::from_slice(&xs);
            prop_assert!(s.variance_population() >= 0.0);
            prop_assert!(s.variance_sample() >= 0.0);
        }
    }
}
