//! Subspaces: sets of dimensions over which densities are evaluated.
//!
//! The paper's classifier (§3) repeatedly computes the joint density of the
//! data over *subsets of dimensions* `S ⊆ {1, …, d}` and enumerates
//! candidate subspaces with an Apriori-style roll-up: `C_{i+1}` is obtained
//! by joining the frequent `i`-dimensional set `L_i` with the 1-dimensional
//! set `L_1`. [`Subspace`] is the cheap value type that makes this
//! enumeration allocation-free: a 64-bit bitmask of dimension indices.

use crate::error::{Result, UdmError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A set of dimension indices represented as a 64-bit bitmask.
///
/// Supports datasets with up to [`Subspace::MAX_DIMS`] dimensions, which
/// comfortably covers the paper's datasets (the widest, ionosphere, has 34
/// quantitative dimensions).
///
/// # Example
///
/// ```
/// use udm_core::Subspace;
///
/// let s = Subspace::from_dims(&[0, 2]).unwrap();
/// let t = Subspace::singleton(4).unwrap();
/// let joined = s.join(t).unwrap();
/// assert_eq!(joined.dims().collect::<Vec<_>>(), vec![0, 2, 4]);
/// assert!(joined.overlaps(s));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Subspace(u64);

impl Subspace {
    /// Maximum number of dimensions a subspace can reference.
    pub const MAX_DIMS: usize = 64;

    /// The empty subspace.
    pub const EMPTY: Subspace = Subspace(0);

    /// Creates a subspace containing the single dimension `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`UdmError::SubspaceCapacityExceeded`] if
    /// `dim >= Self::MAX_DIMS`.
    pub fn singleton(dim: usize) -> Result<Self> {
        if dim >= Self::MAX_DIMS {
            return Err(UdmError::SubspaceCapacityExceeded { dim });
        }
        Ok(Subspace(1u64 << dim))
    }

    /// Creates a subspace from an explicit list of dimension indices.
    /// Duplicates are collapsed.
    pub fn from_dims(dims: &[usize]) -> Result<Self> {
        let mut mask = 0u64;
        for &d in dims {
            if d >= Self::MAX_DIMS {
                return Err(UdmError::SubspaceCapacityExceeded { dim: d });
            }
            mask |= 1u64 << d;
        }
        Ok(Subspace(mask))
    }

    /// The full space `{0, …, d-1}`.
    pub fn full(d: usize) -> Result<Self> {
        if d > Self::MAX_DIMS {
            return Err(UdmError::SubspaceCapacityExceeded { dim: d - 1 });
        }
        if d == Self::MAX_DIMS {
            return Ok(Subspace(u64::MAX));
        }
        Ok(Subspace((1u64 << d) - 1))
    }

    /// Raw bitmask accessor (stable across program runs; bit `j` ⇔ dim `j`).
    #[inline]
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Reconstructs a subspace from a raw bitmask.
    #[inline]
    pub fn from_bits(bits: u64) -> Self {
        Subspace(bits)
    }

    /// Number of dimensions in the subspace (`|S|`).
    #[inline]
    pub fn cardinality(self) -> usize {
        self.0.count_ones() as usize
    }

    /// `true` if the subspace contains no dimensions.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// `true` if dimension `dim` is a member of the subspace.
    #[inline]
    pub fn contains(self, dim: usize) -> bool {
        dim < Self::MAX_DIMS && (self.0 >> dim) & 1 == 1
    }

    /// Set union `S ∪ T`.
    #[inline]
    #[must_use]
    pub fn union(self, other: Subspace) -> Subspace {
        Subspace(self.0 | other.0)
    }

    /// Set intersection `S ∩ T`.
    #[inline]
    #[must_use]
    pub fn intersection(self, other: Subspace) -> Subspace {
        Subspace(self.0 & other.0)
    }

    /// Set difference `S \ T`.
    #[inline]
    #[must_use]
    pub fn difference(self, other: Subspace) -> Subspace {
        Subspace(self.0 & !other.0)
    }

    /// `true` if the two subspaces share at least one dimension.
    ///
    /// The classifier's final selection step repeatedly picks the highest
    /// accuracy subspace and "removes all sets in L which *overlap* with sets
    /// in N" (Fig. 3) — this is that predicate.
    #[inline]
    pub fn overlaps(self, other: Subspace) -> bool {
        self.0 & other.0 != 0
    }

    /// `true` if `self ⊆ other`.
    #[inline]
    pub fn is_subset_of(self, other: Subspace) -> bool {
        self.0 & !other.0 == 0
    }

    /// Inserts a dimension, returning the enlarged subspace.
    ///
    /// # Errors
    ///
    /// Returns [`UdmError::SubspaceCapacityExceeded`] for out-of-capacity
    /// dimensions.
    pub fn with_dim(self, dim: usize) -> Result<Subspace> {
        if dim >= Self::MAX_DIMS {
            return Err(UdmError::SubspaceCapacityExceeded { dim });
        }
        Ok(Subspace(self.0 | (1u64 << dim)))
    }

    /// Iterates member dimensions in increasing order.
    #[inline]
    pub fn dims(self) -> SubspaceIter {
        SubspaceIter(self.0)
    }

    /// The Apriori-style join used by the roll-up (Fig. 3): extends an
    /// `i`-dimensional subspace by a single dimension drawn from a
    /// 1-dimensional subspace, producing an `(i+1)`-dimensional candidate.
    ///
    /// Returns `None` when the singleton is already a member (the join would
    /// not grow the subspace) — the roll-up must skip such candidates.
    pub fn join(self, singleton: Subspace) -> Option<Subspace> {
        debug_assert_eq!(singleton.cardinality(), 1);
        if self.overlaps(singleton) {
            None
        } else {
            Some(self.union(singleton))
        }
    }

    /// Enumerates all `i-1`-dimensional subsets obtained by dropping exactly
    /// one member dimension. Used to check the Apriori property.
    pub fn proper_subsets_one_smaller(self) -> impl Iterator<Item = Subspace> {
        self.dims()
            .map(move |d| Subspace(self.0 & !(1u64 << d)))
            .collect::<Vec<_>>()
            .into_iter()
    }

    /// Validates that all member dimensions are `< dimensionality`.
    pub fn validate_for(self, dimensionality: usize) -> Result<()> {
        match self.dims().next_back_max() {
            Some(max) if max >= dimensionality => Err(UdmError::DimensionOutOfRange {
                dim: max,
                dimensionality,
            }),
            _ => Ok(()),
        }
    }
}

impl fmt::Display for Subspace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, d) in self.dims().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "}}")
    }
}

/// Iterator over the member dimensions of a [`Subspace`], ascending.
#[derive(Debug, Clone)]
pub struct SubspaceIter(u64);

impl SubspaceIter {
    /// Returns the largest member dimension without consuming the iterator
    /// state semantics (helper for validation).
    fn next_back_max(&self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(63 - self.0.leading_zeros() as usize)
        }
    }
}

impl Iterator for SubspaceIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let d = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(d)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for SubspaceIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_and_contains() {
        let s = Subspace::singleton(5).unwrap();
        assert!(s.contains(5));
        assert!(!s.contains(4));
        assert_eq!(s.cardinality(), 1);
    }

    #[test]
    fn singleton_out_of_capacity() {
        assert!(Subspace::singleton(64).is_err());
        assert!(Subspace::singleton(63).is_ok());
    }

    #[test]
    fn from_dims_collapses_duplicates() {
        let s = Subspace::from_dims(&[1, 3, 1, 3]).unwrap();
        assert_eq!(s.cardinality(), 2);
        assert_eq!(s.dims().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn full_space() {
        let s = Subspace::full(6).unwrap();
        assert_eq!(s.cardinality(), 6);
        assert_eq!(s.dims().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4, 5]);
        let all = Subspace::full(64).unwrap();
        assert_eq!(all.cardinality(), 64);
        assert!(Subspace::full(65).is_err());
    }

    #[test]
    fn full_zero_is_empty() {
        assert!(Subspace::full(0).unwrap().is_empty());
    }

    #[test]
    fn set_algebra() {
        let a = Subspace::from_dims(&[0, 1, 2]).unwrap();
        let b = Subspace::from_dims(&[2, 3]).unwrap();
        assert_eq!(a.union(b), Subspace::from_dims(&[0, 1, 2, 3]).unwrap());
        assert_eq!(a.intersection(b), Subspace::from_dims(&[2]).unwrap());
        assert_eq!(a.difference(b), Subspace::from_dims(&[0, 1]).unwrap());
        assert!(a.overlaps(b));
        assert!(!a.overlaps(Subspace::from_dims(&[4]).unwrap()));
    }

    #[test]
    fn subset_predicate() {
        let a = Subspace::from_dims(&[1, 2]).unwrap();
        let b = Subspace::from_dims(&[0, 1, 2]).unwrap();
        assert!(a.is_subset_of(b));
        assert!(!b.is_subset_of(a));
        assert!(Subspace::EMPTY.is_subset_of(a));
    }

    #[test]
    fn join_grows_by_one() {
        let a = Subspace::from_dims(&[0, 2]).unwrap();
        let s = Subspace::singleton(4).unwrap();
        let joined = a.join(s).unwrap();
        assert_eq!(joined.cardinality(), 3);
        assert!(joined.contains(4));
    }

    #[test]
    fn join_with_member_is_none() {
        let a = Subspace::from_dims(&[0, 2]).unwrap();
        assert!(a.join(Subspace::singleton(2).unwrap()).is_none());
    }

    #[test]
    fn proper_subsets() {
        let a = Subspace::from_dims(&[1, 3, 5]).unwrap();
        let subs: Vec<_> = a.proper_subsets_one_smaller().collect();
        assert_eq!(subs.len(), 3);
        for s in subs {
            assert_eq!(s.cardinality(), 2);
            assert!(s.is_subset_of(a));
        }
    }

    #[test]
    fn validate_for_dimensionality() {
        let s = Subspace::from_dims(&[0, 5]).unwrap();
        assert!(s.validate_for(6).is_ok());
        assert!(matches!(
            s.validate_for(5),
            Err(UdmError::DimensionOutOfRange { dim: 5, .. })
        ));
        assert!(Subspace::EMPTY.validate_for(0).is_ok());
    }

    #[test]
    fn display_sorted() {
        let s = Subspace::from_dims(&[4, 0, 2]).unwrap();
        assert_eq!(s.to_string(), "{0,2,4}");
        assert_eq!(Subspace::EMPTY.to_string(), "{}");
    }

    #[test]
    fn iterator_is_exact_size() {
        let s = Subspace::from_dims(&[0, 63]).unwrap();
        let it = s.dims();
        assert_eq!(it.len(), 2);
        assert_eq!(it.collect::<Vec<_>>(), vec![0, 63]);
    }

    #[test]
    fn bits_roundtrip() {
        let s = Subspace::from_dims(&[7, 9]).unwrap();
        assert_eq!(Subspace::from_bits(s.bits()), s);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_subspace() -> impl Strategy<Value = Subspace> {
        proptest::collection::vec(0usize..16, 0..8)
            .prop_map(|dims| Subspace::from_dims(&dims).unwrap())
    }

    proptest! {
        #[test]
        fn union_laws(a in arb_subspace(), b in arb_subspace()) {
            prop_assert_eq!(a.union(b), b.union(a));
            prop_assert_eq!(a.union(a), a);
            prop_assert!(a.is_subset_of(a.union(b)));
            prop_assert!(b.is_subset_of(a.union(b)));
        }

        #[test]
        fn intersection_laws(a in arb_subspace(), b in arb_subspace()) {
            prop_assert_eq!(a.intersection(b), b.intersection(a));
            prop_assert!(a.intersection(b).is_subset_of(a));
            prop_assert_eq!(a.overlaps(b), !a.intersection(b).is_empty());
        }

        #[test]
        fn difference_partitions(a in arb_subspace(), b in arb_subspace()) {
            let diff = a.difference(b);
            prop_assert!(!diff.overlaps(b));
            prop_assert_eq!(diff.union(a.intersection(b)), a);
        }

        #[test]
        fn cardinality_inclusion_exclusion(a in arb_subspace(), b in arb_subspace()) {
            prop_assert_eq!(
                a.union(b).cardinality() + a.intersection(b).cardinality(),
                a.cardinality() + b.cardinality()
            );
        }

        #[test]
        fn dims_roundtrip(a in arb_subspace()) {
            let dims: Vec<usize> = a.dims().collect();
            prop_assert_eq!(Subspace::from_dims(&dims).unwrap(), a);
            prop_assert_eq!(dims.len(), a.cardinality());
        }
    }
}
