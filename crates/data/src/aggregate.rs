//! Partially aggregated data (the paper's fourth motivating use case):
//! "many demographic data sets only include the statistics of household
//! income over different localities rather than the precise income for
//! individuals."
//!
//! [`aggregate_groups`] turns groups of raw records into single uncertain
//! records: the aggregate's value per dimension is the group mean and its
//! error is the group's standard deviation — exactly the `ψ` the
//! error-based machinery expects, so aggregated data plugs straight into
//! density estimation and classification.

use udm_core::{ClassLabel, Result, RunningStats, UdmError, UncertainDataset, UncertainPoint};

/// How group labels are decided when members disagree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupLabelPolicy {
    /// The group's label is its members' majority label (ties broken by
    /// the smaller label id); unlabelled members abstain.
    Majority,
    /// Aggregates carry no label.
    Drop,
}

/// Aggregates consecutive groups of `group_size` points into uncertain
/// pseudo-records (mean value, std-deviation error per dimension). A
/// trailing partial group is aggregated as well.
///
/// # Example
///
/// ```
/// use udm_core::{UncertainDataset, UncertainPoint};
/// use udm_data::aggregate::{aggregate_groups, GroupLabelPolicy};
///
/// let raw = UncertainDataset::from_points(vec![
///     UncertainPoint::exact(vec![1.0]).unwrap(),
///     UncertainPoint::exact(vec![3.0]).unwrap(),
/// ]).unwrap();
/// let agg = aggregate_groups(&raw, 2, GroupLabelPolicy::Drop).unwrap();
/// assert_eq!(agg.point(0).value(0), 2.0);    // group mean
/// assert_eq!(agg.point(0).error(0), 1.0);    // group std becomes ψ
/// ```
///
/// # Errors
///
/// [`UdmError::InvalidConfig`] for `group_size == 0`;
/// [`UdmError::EmptyDataset`] for empty input.
pub fn aggregate_groups(
    data: &UncertainDataset,
    group_size: usize,
    labels: GroupLabelPolicy,
) -> Result<UncertainDataset> {
    if group_size == 0 {
        return Err(UdmError::InvalidConfig(
            "group_size must be at least 1".into(),
        ));
    }
    if data.is_empty() {
        return Err(UdmError::EmptyDataset);
    }
    let mut out = UncertainDataset::new(data.dim());
    for group in data.points().chunks(group_size) {
        let mut stats = vec![RunningStats::new(); data.dim()];
        let mut votes: std::collections::BTreeMap<ClassLabel, usize> = Default::default();
        for p in group {
            for (j, st) in stats.iter_mut().enumerate() {
                st.push(p.value(j));
            }
            if let Some(l) = p.label() {
                *votes.entry(l).or_insert(0) += 1;
            }
        }
        let values: Vec<f64> = stats.iter().map(|s| s.mean()).collect();
        let errors: Vec<f64> = stats.iter().map(|s| s.std_population()).collect();
        let mut point = UncertainPoint::new(values, errors)?;
        if let GroupLabelPolicy::Majority = labels {
            if let Some((&label, _)) = votes.iter().max_by_key(|(_, &c)| c) {
                point = point.with_label(label);
            }
        }
        out.push(point)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw() -> UncertainDataset {
        UncertainDataset::from_points(vec![
            UncertainPoint::exact(vec![1.0, 10.0])
                .unwrap()
                .with_label(ClassLabel(0)),
            UncertainPoint::exact(vec![3.0, 10.0])
                .unwrap()
                .with_label(ClassLabel(0)),
            UncertainPoint::exact(vec![2.0, 10.0])
                .unwrap()
                .with_label(ClassLabel(1)),
            UncertainPoint::exact(vec![100.0, 20.0])
                .unwrap()
                .with_label(ClassLabel(1)),
        ])
        .unwrap()
    }

    #[test]
    fn aggregates_mean_and_std() {
        let agg = aggregate_groups(&raw(), 3, GroupLabelPolicy::Majority).unwrap();
        assert_eq!(agg.len(), 2); // group of 3 + trailing group of 1
        let g = agg.point(0);
        assert!((g.value(0) - 2.0).abs() < 1e-12);
        // std of (1,3,2) = sqrt(2/3)
        assert!((g.error(0) - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        // constant dimension has zero error
        assert_eq!(g.error(1), 0.0);
    }

    #[test]
    fn majority_label_wins() {
        let agg = aggregate_groups(&raw(), 3, GroupLabelPolicy::Majority).unwrap();
        assert_eq!(agg.point(0).label(), Some(ClassLabel(0)));
        assert_eq!(agg.point(1).label(), Some(ClassLabel(1)));
    }

    #[test]
    fn drop_policy_removes_labels() {
        let agg = aggregate_groups(&raw(), 2, GroupLabelPolicy::Drop).unwrap();
        assert!(agg.iter().all(|p| p.label().is_none()));
    }

    #[test]
    fn trailing_singleton_group_has_zero_error() {
        let agg = aggregate_groups(&raw(), 3, GroupLabelPolicy::Majority).unwrap();
        let tail = agg.point(1);
        assert_eq!(tail.values(), &[100.0, 20.0]);
        assert!(tail.is_exact());
    }

    #[test]
    fn group_size_one_is_identity_on_values() {
        let agg = aggregate_groups(&raw(), 1, GroupLabelPolicy::Majority).unwrap();
        assert_eq!(agg.len(), 4);
        for (a, b) in agg.iter().zip(raw().iter()) {
            assert_eq!(a.values(), b.values());
            assert!(a.is_exact());
            assert_eq!(a.label(), b.label());
        }
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(aggregate_groups(&raw(), 0, GroupLabelPolicy::Drop).is_err());
        let empty = UncertainDataset::new(2);
        assert!(aggregate_groups(&empty, 2, GroupLabelPolicy::Drop).is_err());
    }

    #[test]
    fn aggregated_data_supports_density_mining() {
        // The whole point: aggregates are valid uncertain points.
        let agg = aggregate_groups(&raw(), 2, GroupLabelPolicy::Majority).unwrap();
        assert_eq!(agg.dim(), 2);
        assert!(agg.iter().any(|p| !p.is_exact()));
    }
}
