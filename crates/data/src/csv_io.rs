//! CSV I/O for uncertain datasets.
//!
//! Canonical row layout: `v_1,…,v_d[,e_1,…,e_d][,label]`. Files written by
//! this module start with a self-describing header comment:
//!
//! ```text
//! #udm,dim=3,errors=1,labels=1
//! ```
//!
//! [`read_csv`] uses that header when present; otherwise the caller must
//! supply an explicit [`CsvSchema`].

use crate::error::{DataError, DataResult};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use udm_core::{ClassLabel, UdmError, UncertainDataset, UncertainPoint};

/// Describes the column layout of a CSV file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsvSchema {
    /// Number of value columns `d`.
    pub dim: usize,
    /// Whether `d` error columns follow the values.
    pub has_errors: bool,
    /// Whether a trailing integer label column is present.
    pub has_labels: bool,
}

impl CsvSchema {
    fn columns(&self) -> usize {
        self.dim * (1 + self.has_errors as usize) + self.has_labels as usize
    }

    fn header(&self) -> String {
        format!(
            "#udm,dim={},errors={},labels={}",
            self.dim, self.has_errors as u8, self.has_labels as u8
        )
    }

    fn parse_header(line: &str) -> Option<CsvSchema> {
        let rest = line.strip_prefix("#udm,")?;
        let mut dim = None;
        let mut errors = None;
        let mut labels = None;
        for field in rest.split(',') {
            let (key, value) = field.split_once('=')?;
            match key.trim() {
                "dim" => dim = value.trim().parse::<usize>().ok(),
                "errors" => errors = value.trim().parse::<u8>().ok(),
                "labels" => labels = value.trim().parse::<u8>().ok(),
                _ => {}
            }
        }
        Some(CsvSchema {
            dim: dim?,
            has_errors: errors? != 0,
            has_labels: labels? != 0,
        })
    }
}

/// Writes a dataset to a writer in the canonical layout, with header.
///
/// Errors are written whenever any point carries a non-zero error; labels
/// whenever any point is labelled.
pub fn write_csv<W: Write>(writer: W, data: &UncertainDataset) -> DataResult<()> {
    let schema = CsvSchema {
        dim: data.dim(),
        has_errors: data.iter().any(|p| !p.is_exact()),
        has_labels: data.iter().any(|p| p.label().is_some()),
    };
    let mut w = BufWriter::new(writer);
    writeln!(w, "{}", schema.header())?;
    let mut line = String::new();
    for p in data.iter() {
        line.clear();
        for (i, v) in p.values().iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!("{v}"));
        }
        if schema.has_errors {
            for e in p.errors() {
                line.push_str(&format!(",{e}"));
            }
        }
        if schema.has_labels {
            let l = p.label().map(|l| l.id()).unwrap_or(u32::MAX);
            line.push_str(&format!(",{l}"));
        }
        writeln!(w, "{line}")?;
    }
    w.flush()?;
    Ok(())
}

/// Writes a dataset to a file. See [`write_csv`]; errors carry the path.
pub fn write_csv_file(path: &Path, data: &UncertainDataset) -> DataResult<()> {
    let f = std::fs::File::create(path).map_err(|e| DataError::from(e).with_path(path))?;
    write_csv(f, data).map_err(|e| e.with_path(path))
}

/// Reads a dataset from a reader. `schema` overrides any header; when
/// `None`, the `#udm` header is required. Parse errors carry the 1-based
/// line and, for cell-level failures, column.
pub fn read_csv<R: std::io::Read>(
    reader: R,
    schema: Option<CsvSchema>,
) -> DataResult<UncertainDataset> {
    let mut r = BufReader::new(reader);
    let mut line = String::new();
    let mut line_no = 0usize;
    let mut schema = schema;
    let mut data: Option<UncertainDataset> = None;

    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            break;
        }
        line_no += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed.starts_with('#') {
            if schema.is_none() {
                schema = CsvSchema::parse_header(trimmed);
            }
            continue;
        }
        let schema = schema.ok_or_else(|| {
            DataError::parse(
                line_no,
                "no schema: missing #udm header and no explicit schema given",
            )
        })?;
        let fields: Vec<&str> = trimmed.split(',').collect();
        if fields.len() != schema.columns() {
            return Err(DataError::parse(
                line_no,
                format!(
                    "expected {} columns, found {}",
                    schema.columns(),
                    fields.len()
                ),
            ));
        }
        // `col` is the 0-based field index; reported columns are 1-based.
        let parse_f64 = |col: usize, s: &str| -> DataResult<f64> {
            s.trim().parse::<f64>().map_err(|e| {
                DataError::parse_at(line_no, col + 1, format!("bad number {s:?}: {e}"))
            })
        };
        let values = fields[..schema.dim]
            .iter()
            .enumerate()
            .map(|(col, s)| parse_f64(col, s))
            .collect::<DataResult<Vec<_>>>()?;
        let errors = if schema.has_errors {
            fields[schema.dim..2 * schema.dim]
                .iter()
                .enumerate()
                .map(|(i, s)| parse_f64(schema.dim + i, s))
                .collect::<DataResult<Vec<_>>>()?
        } else {
            vec![0.0; schema.dim]
        };
        let mut point = UncertainPoint::new(values, errors)?;
        if schema.has_labels {
            let raw = fields[schema.columns() - 1].trim();
            let id = raw.parse::<u32>().map_err(|e| {
                DataError::parse_at(line_no, schema.columns(), format!("bad label {raw:?}: {e}"))
            })?;
            if id != u32::MAX {
                point = point.with_label(ClassLabel(id));
            }
        }
        match &mut data {
            Some(d) => d.push(point)?,
            None => {
                let mut d = UncertainDataset::new(schema.dim);
                d.push(point)?;
                data = Some(d);
            }
        }
    }
    data.ok_or(DataError::Invalid(UdmError::EmptyDataset))
}

/// Reads a dataset from a file. See [`read_csv`]; errors carry the path.
pub fn read_csv_file(path: &Path, schema: Option<CsvSchema>) -> DataResult<UncertainDataset> {
    let f = std::fs::File::open(path).map_err(|e| DataError::from(e).with_path(path))?;
    read_csv(f, schema).map_err(|e| e.with_path(path))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> UncertainDataset {
        UncertainDataset::from_points(vec![
            UncertainPoint::new(vec![1.5, -2.0], vec![0.1, 0.0])
                .unwrap()
                .with_label(ClassLabel(0)),
            UncertainPoint::new(vec![3.25, 4.0], vec![0.0, 0.5])
                .unwrap()
                .with_label(ClassLabel(1)),
        ])
        .unwrap()
    }

    #[test]
    fn roundtrip_with_errors_and_labels() {
        let d = sample();
        let mut buf = Vec::new();
        write_csv(&mut buf, &d).unwrap();
        let back = read_csv(&buf[..], None).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn roundtrip_exact_unlabelled() {
        let d = UncertainDataset::from_points(vec![
            UncertainPoint::exact(vec![1.0]).unwrap(),
            UncertainPoint::exact(vec![2.0]).unwrap(),
        ])
        .unwrap();
        let mut buf = Vec::new();
        write_csv(&mut buf, &d).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("#udm,dim=1,errors=0,labels=0"));
        let back = read_csv(&buf[..], None).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn explicit_schema_overrides_missing_header() {
        let csv = "1.0,2.0,7\n3.0,4.0,9\n";
        let schema = CsvSchema {
            dim: 2,
            has_errors: false,
            has_labels: true,
        };
        let d = read_csv(csv.as_bytes(), Some(schema)).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.point(0).label(), Some(ClassLabel(7)));
    }

    #[test]
    fn missing_schema_is_parse_error() {
        let e = read_csv("1.0,2.0\n".as_bytes(), None).unwrap_err();
        assert_eq!(e.line(), Some(1));
    }

    #[test]
    fn wrong_column_count_reports_line() {
        let csv = "#udm,dim=2,errors=0,labels=0\n1.0,2.0\n1.0\n";
        let e = read_csv(csv.as_bytes(), None).unwrap_err();
        assert_eq!(e.line(), Some(3));
        assert_eq!(e.column(), None); // row-level failure
    }

    #[test]
    fn bad_number_reports_line_and_column() {
        let csv = "#udm,dim=2,errors=1,labels=0\n1.0,2.0,0.1,0.2\n3.0,4.0,0.1,oops\n";
        let e = read_csv(csv.as_bytes(), None).unwrap_err();
        assert_eq!(e.line(), Some(3));
        assert_eq!(e.column(), Some(4));
        assert!(e.to_string().starts_with("3:4:"), "{e}");
    }

    #[test]
    fn bad_label_reports_its_column() {
        let csv = "#udm,dim=1,errors=0,labels=1\n5.0,benign\n";
        let e = read_csv(csv.as_bytes(), None).unwrap_err();
        assert_eq!(e.line(), Some(2));
        assert_eq!(e.column(), Some(2));
    }

    #[test]
    fn blank_lines_and_comments_skipped() {
        let csv = "#udm,dim=1,errors=0,labels=0\n\n# comment\n5.0\n";
        let d = read_csv(csv.as_bytes(), None).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.point(0).value(0), 5.0);
    }

    #[test]
    fn empty_input_is_empty_dataset_error() {
        let e = read_csv("#udm,dim=1,errors=0,labels=0\n".as_bytes(), None).unwrap_err();
        assert!(matches!(
            e,
            DataError::Invalid(udm_core::UdmError::EmptyDataset)
        ));
    }

    #[test]
    fn file_errors_name_the_file() {
        let e = read_csv_file(Path::new("/nonexistent/x.csv"), None).unwrap_err();
        assert!(e.to_string().contains("x.csv"), "{e}");
    }

    #[test]
    fn file_roundtrip() {
        let d = sample();
        let dir = std::env::temp_dir().join("udm_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.csv");
        write_csv_file(&path, &d).unwrap();
        let back = read_csv_file(&path, None).unwrap();
        assert_eq!(back, d);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unlabelled_sentinel_roundtrips_among_labelled() {
        let d = UncertainDataset::from_points(vec![
            UncertainPoint::exact(vec![0.0])
                .unwrap()
                .with_label(ClassLabel(1)),
            UncertainPoint::exact(vec![1.0]).unwrap(), // unlabelled
        ])
        .unwrap();
        let mut buf = Vec::new();
        write_csv(&mut buf, &d).unwrap();
        let back = read_csv(&buf[..], None).unwrap();
        assert_eq!(back.point(1).label(), None);
        assert_eq!(back.point(0).label(), Some(ClassLabel(1)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_dataset() -> impl Strategy<Value = UncertainDataset> {
        (1usize..5).prop_flat_map(|dim| {
            proptest::collection::vec(
                (
                    proptest::collection::vec(-1e6f64..1e6, dim..=dim),
                    proptest::collection::vec(0.0f64..1e3, dim..=dim),
                    proptest::option::of(0u32..6),
                ),
                1..30,
            )
            .prop_map(move |rows| {
                let mut d = UncertainDataset::new(dim);
                for (vs, es, label) in rows {
                    let mut p = UncertainPoint::new(vs, es).unwrap();
                    if let Some(l) = label {
                        p = p.with_label(ClassLabel(l));
                    }
                    d.push(p).unwrap();
                }
                d
            })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn csv_roundtrip_is_exact(d in arb_dataset()) {
            let mut buf = Vec::new();
            write_csv(&mut buf, &d).unwrap();
            let back = read_csv(&buf[..], None).unwrap();
            prop_assert_eq!(back, d);
        }
    }
}
