//! Typed errors for the data loaders and parsers.
//!
//! [`DataError`] carries enough context — file path, 1-based line, and
//! (for cell-level failures) 1-based column — for a CLI user to point an
//! editor at the offending cell. It converts losslessly into
//! [`UdmError`] so library code returning [`udm_core::Result`] can `?`
//! straight through a loader call.

use std::fmt;
use std::path::{Path, PathBuf};
use udm_core::UdmError;

/// Result alias for the loaders and parsers in this crate.
pub type DataResult<T> = std::result::Result<T, DataError>;

/// Error raised while loading or parsing external data.
#[derive(Debug)]
pub enum DataError {
    /// I/O failure opening or reading a source.
    Io {
        /// File involved, when known.
        path: Option<PathBuf>,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A row or cell that could not be parsed.
    Parse {
        /// File involved, when known.
        path: Option<PathBuf>,
        /// 1-based line number where parsing failed.
        line: usize,
        /// 1-based column (comma-separated field index) for cell-level
        /// failures; `None` for row-level ones (arity, missing schema).
        column: Option<usize>,
        /// Description of the failure.
        message: String,
    },
    /// The parsed data violated a dataset invariant (dimensionality,
    /// finiteness, emptiness, …).
    Invalid(UdmError),
}

impl DataError {
    /// Builds a row-level parse error.
    pub fn parse(line: usize, message: impl Into<String>) -> Self {
        DataError::Parse {
            path: None,
            line,
            column: None,
            message: message.into(),
        }
    }

    /// Builds a cell-level parse error with a 1-based column.
    pub fn parse_at(line: usize, column: usize, message: impl Into<String>) -> Self {
        DataError::Parse {
            path: None,
            line,
            column: Some(column),
            message: message.into(),
        }
    }

    /// Attaches a file path to the error (no-op for [`DataError::Invalid`]
    /// and for errors that already carry one).
    #[must_use]
    pub fn with_path(mut self, p: &Path) -> Self {
        match &mut self {
            DataError::Io { path, .. } | DataError::Parse { path, .. } => {
                if path.is_none() {
                    *path = Some(p.to_path_buf());
                }
            }
            DataError::Invalid(_) => {}
        }
        self
    }

    /// The 1-based line number, for parse errors.
    pub fn line(&self) -> Option<usize> {
        match self {
            DataError::Parse { line, .. } => Some(*line),
            _ => None,
        }
    }

    /// The 1-based column, for cell-level parse errors.
    pub fn column(&self) -> Option<usize> {
        match self {
            DataError::Parse { column, .. } => *column,
            _ => None,
        }
    }
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Io { path, source } => match path {
                Some(p) => write!(f, "{}: {source}", p.display()),
                None => write!(f, "I/O error: {source}"),
            },
            DataError::Parse {
                path,
                line,
                column,
                message,
            } => {
                if let Some(p) = path {
                    write!(f, "{}:", p.display())?;
                }
                write!(f, "{line}:")?;
                if let Some(c) = column {
                    write!(f, "{c}:")?;
                }
                write!(f, " {message}")
            }
            DataError::Invalid(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io { source, .. } => Some(source),
            DataError::Invalid(e) => Some(e),
            DataError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for DataError {
    fn from(source: std::io::Error) -> Self {
        DataError::Io { path: None, source }
    }
}

impl From<UdmError> for DataError {
    fn from(e: UdmError) -> Self {
        match e {
            UdmError::Parse { line, message } => DataError::Parse {
                path: None,
                line,
                column: None,
                message,
            },
            other => DataError::Invalid(other),
        }
    }
}

impl From<DataError> for UdmError {
    fn from(e: DataError) -> Self {
        match e {
            DataError::Io { path, source } => match path {
                Some(p) => UdmError::Io(format!("{}: {source}", p.display())),
                None => UdmError::Io(source.to_string()),
            },
            // Fold path/column into the message so the context survives
            // the narrower UdmError::Parse shape.
            DataError::Parse {
                path,
                line,
                column,
                message,
            } => {
                let mut prefix = String::new();
                if let Some(p) = path {
                    prefix.push_str(&format!("{}: ", p.display()));
                }
                if let Some(c) = column {
                    prefix.push_str(&format!("column {c}: "));
                }
                UdmError::Parse {
                    line,
                    message: format!("{prefix}{message}"),
                }
            }
            DataError::Invalid(inner) => inner,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn display_points_at_the_cell() {
        let e = DataError::parse_at(7, 3, "bad number \"x\"").with_path(Path::new("d.csv"));
        assert_eq!(e.to_string(), "d.csv:7:3: bad number \"x\"");
        assert_eq!(e.line(), Some(7));
        assert_eq!(e.column(), Some(3));
    }

    #[test]
    fn display_without_path_or_column() {
        let e = DataError::parse(2, "expected 5 columns, found 3");
        assert_eq!(e.to_string(), "2: expected 5 columns, found 3");
        assert_eq!(e.column(), None);
    }

    #[test]
    fn with_path_does_not_overwrite() {
        let e = DataError::parse(1, "x")
            .with_path(Path::new("a.csv"))
            .with_path(Path::new("b.csv"));
        match e {
            DataError::Parse { path, .. } => assert_eq!(path, Some(PathBuf::from("a.csv"))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn round_trips_to_udm_error_with_context() {
        let e = DataError::parse_at(4, 2, "bad label").with_path(Path::new("x.csv"));
        let u = UdmError::from(e);
        match u {
            UdmError::Parse { line, message } => {
                assert_eq!(line, 4);
                assert!(message.contains("x.csv"), "{message}");
                assert!(message.contains("column 2"), "{message}");
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn invariant_errors_pass_through_unchanged() {
        let e = DataError::from(UdmError::EmptyDataset);
        assert!(matches!(e, DataError::Invalid(UdmError::EmptyDataset)));
        assert!(matches!(UdmError::from(e), UdmError::EmptyDataset));
    }

    #[test]
    fn udm_parse_errors_keep_their_line() {
        let e = DataError::from(UdmError::Parse {
            line: 9,
            message: "m".into(),
        });
        assert_eq!(e.line(), Some(9));
    }

    #[test]
    fn io_errors_carry_the_path() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = DataError::from(io).with_path(Path::new("missing.csv"));
        assert!(e.to_string().starts_with("missing.csv:"));
        assert!(matches!(UdmError::from(e), UdmError::Io(m) if m.contains("missing.csv")));
    }
}
