//! Deterministic fault injection for streaming ingest.
//!
//! Real uncertain-data sources are exactly the ones that emit garbage:
//! sensors report NaN after a brownout, imputation pipelines mislabel a
//! column and produce negative or absurdly inflated ψ, collectors replay
//! or reorder batches, and UDP-style transports truncate and drop
//! records. The uncertain-mining literature stresses that error models in
//! the wild are misspecified, so the ingest path must be exercised
//! against corrupted input rather than assume clean ψ.
//!
//! [`FaultyStream`] wraps any materialized record source and injects a
//! configurable, seeded mix of faults, producing [`RawRecord`]s — the
//! *unvalidated* wire form of a stream record, which (unlike
//! [`UncertainPoint`]) is allowed to hold non-finite cells, negative
//! errors and wrong arity. The quarantine policy engine in
//! `udm-microcluster` consumes these records and decides per record to
//! accept, repair, quarantine or reject.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use udm_core::{ClassLabel, Result, UdmError, UncertainDataset, UncertainPoint};

/// A stream record *before* validation: the wire form of an arrival.
///
/// Unlike [`UncertainPoint`], nothing is guaranteed: values may be
/// non-finite, errors negative or non-finite, and the arity may disagree
/// with the stream's dimensionality. [`RawRecord::into_point`] performs
/// the validating conversion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RawRecord {
    /// Position in the stream (0-based); stable across fault injection so
    /// recovery drills can replay "every record with `seq > k`".
    pub seq: u64,
    /// Claimed arrival timestamp (may be duplicated or out of order).
    pub timestamp: u64,
    /// Cell values (possibly NaN/±∞, possibly truncated).
    pub values: Vec<f64>,
    /// Cell errors ψ (possibly negative, non-finite or truncated).
    pub errors: Vec<f64>,
    /// Class label, if the source was labelled.
    pub label: Option<ClassLabel>,
}

impl RawRecord {
    /// Wraps a clean point as a raw record with stream position `seq`.
    pub fn from_point(seq: u64, point: &UncertainPoint) -> Self {
        RawRecord {
            seq,
            timestamp: point.timestamp(),
            values: point.values().to_vec(),
            errors: point.errors().to_vec(),
            label: point.label(),
        }
    }

    /// Validating conversion into an [`UncertainPoint`].
    ///
    /// # Errors
    ///
    /// Exactly the [`UncertainPoint::new`] invariants: equal arity,
    /// finite values, finite non-negative errors.
    pub fn into_point(self) -> Result<UncertainPoint> {
        let mut p = UncertainPoint::new(self.values, self.errors)?.with_timestamp(self.timestamp);
        if let Some(l) = self.label {
            p = p.with_label(l);
        }
        Ok(p)
    }
}

/// The corruption modes [`FaultyStream`] can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FaultKind {
    /// One cell value becomes NaN.
    NanCell,
    /// One cell value becomes ±∞.
    InfCell,
    /// One cell error ψ becomes negative.
    NegativeError,
    /// One cell error ψ is multiplied by a huge factor.
    InflatedError,
    /// The record claims the same timestamp as its predecessor.
    DuplicateTimestamp,
    /// The record claims a timestamp earlier than its predecessor.
    OutOfOrderTimestamp,
    /// Trailing cells are cut off (arity mismatch).
    Truncated,
    /// The record and its next `burst_len − 1` successors vanish.
    BurstDrop,
}

impl FaultKind {
    /// Every fault kind, in declaration order.
    pub const ALL: [FaultKind; 8] = [
        FaultKind::NanCell,
        FaultKind::InfCell,
        FaultKind::NegativeError,
        FaultKind::InflatedError,
        FaultKind::DuplicateTimestamp,
        FaultKind::OutOfOrderTimestamp,
        FaultKind::Truncated,
        FaultKind::BurstDrop,
    ];

    /// Stable snake_case name (report keys, CLI output).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::NanCell => "nan_cell",
            FaultKind::InfCell => "inf_cell",
            FaultKind::NegativeError => "negative_error",
            FaultKind::InflatedError => "inflated_error",
            FaultKind::DuplicateTimestamp => "duplicate_timestamp",
            FaultKind::OutOfOrderTimestamp => "out_of_order_timestamp",
            FaultKind::Truncated => "truncated",
            FaultKind::BurstDrop => "burst_drop",
        }
    }

    fn index(self) -> usize {
        FaultKind::ALL
            .iter()
            .position(|&k| k == self)
            // udm-lint: allow(UDM001) ALL contains every variant by construction
            .expect("kind in ALL")
    }
}

/// Which faults to inject, how often, and how hard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Per-record probability of injecting *some* fault, in `[0, 1]`.
    pub rate: f64,
    /// Relative weight of each [`FaultKind`] (indexed as
    /// [`FaultKind::ALL`], so always 8 entries); kinds with weight 0
    /// never fire. Weights need not sum to 1.
    pub weights: Vec<f64>,
    /// Records removed per [`FaultKind::BurstDrop`] event (≥ 1).
    pub burst_len: usize,
    /// Multiplier applied by [`FaultKind::InflatedError`] (> 1).
    pub inflation: f64,
}

impl FaultPlan {
    /// A plan injecting every fault kind with equal weight at `rate`.
    pub fn uniform(rate: f64) -> Self {
        FaultPlan {
            rate,
            weights: vec![1.0; 8],
            burst_len: 3,
            inflation: 1e6,
        }
    }

    /// A plan injecting only `kind` at `rate`.
    pub fn only(kind: FaultKind, rate: f64) -> Self {
        let mut weights = vec![0.0; 8];
        weights[kind.index()] = 1.0;
        FaultPlan {
            rate,
            weights,
            burst_len: 3,
            inflation: 1e6,
        }
    }

    fn validate(&self) -> Result<()> {
        if !(self.rate.is_finite() && (0.0..=1.0).contains(&self.rate)) {
            return Err(UdmError::InvalidValue {
                what: "fault rate",
                value: self.rate,
            });
        }
        if self.weights.len() != FaultKind::ALL.len() {
            return Err(UdmError::InvalidConfig(format!(
                "fault plan needs {} weights, got {}",
                FaultKind::ALL.len(),
                self.weights.len()
            )));
        }
        let total: f64 = self.weights.iter().sum();
        if self.weights.iter().any(|&w| !(w.is_finite() && w >= 0.0)) || total <= 0.0 {
            return Err(UdmError::InvalidConfig(
                "fault weights must be finite, non-negative and not all zero".into(),
            ));
        }
        if self.burst_len == 0 {
            return Err(UdmError::InvalidConfig(
                "burst_len must be at least 1".into(),
            ));
        }
        if !(self.inflation.is_finite() && self.inflation > 1.0) {
            return Err(UdmError::InvalidValue {
                what: "error inflation factor",
                value: self.inflation,
            });
        }
        Ok(())
    }
}

/// Count of injected faults per kind, plus records dropped entirely.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultLog {
    counts: Vec<u64>,
    /// Records removed from the stream by burst drops.
    pub dropped: u64,
}

impl Default for FaultLog {
    fn default() -> Self {
        FaultLog {
            counts: vec![0; FaultKind::ALL.len()],
            dropped: 0,
        }
    }
}

impl FaultLog {
    /// Number of injection events of `kind`.
    pub fn count(&self, kind: FaultKind) -> u64 {
        self.counts.get(kind.index()).copied().unwrap_or(0)
    }

    /// Total injection events across all kinds.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

impl std::fmt::Display for FaultLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} faults injected (", self.total())?;
        let mut first = true;
        for kind in FaultKind::ALL {
            let c = self.count(kind);
            if c > 0 {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "{} {}", kind.name(), c)?;
                first = false;
            }
        }
        write!(f, "), {} records dropped", self.dropped)
    }
}

/// A seeded fault-injecting adapter over a materialized record source.
///
/// The source order is preserved; `seq` numbers refer to the *clean*
/// stream, so a downstream consumer can correlate faulty arrivals with
/// their pristine originals (and recovery drills can replay exact tails).
///
/// # Example
///
/// ```
/// use udm_core::UncertainPoint;
/// use udm_core::UncertainDataset;
/// use udm_data::fault::{FaultKind, FaultPlan, FaultyStream};
///
/// let data = UncertainDataset::from_points(
///     (0..50).map(|i| UncertainPoint::exact(vec![i as f64]).unwrap()).collect(),
/// ).unwrap();
/// let stream = FaultyStream::new(&data, FaultPlan::only(FaultKind::NanCell, 0.2), 7).unwrap();
/// let (records, log) = stream.records();
/// assert_eq!(records.len(), 50); // NanCell corrupts in place, drops nothing
/// assert!(log.count(FaultKind::NanCell) > 0);
/// assert!(records.iter().any(|r| r.values.iter().any(|v| v.is_nan())));
/// ```
#[derive(Debug, Clone)]
pub struct FaultyStream {
    source: Vec<RawRecord>,
    plan: FaultPlan,
    seed: u64,
}

impl FaultyStream {
    /// Wraps a dataset (ordered as a stream) with a validated fault plan.
    ///
    /// # Errors
    ///
    /// [`UdmError::InvalidConfig`] / [`UdmError::InvalidValue`] for an
    /// invalid plan.
    pub fn new(source: &UncertainDataset, plan: FaultPlan, seed: u64) -> Result<Self> {
        plan.validate()?;
        let records = source
            .iter()
            .enumerate()
            .map(|(i, p)| RawRecord::from_point(i as u64, p))
            .collect();
        Ok(FaultyStream {
            source: records,
            plan,
            seed,
        })
    }

    /// Wraps pre-built raw records (e.g. a replayed tail).
    ///
    /// # Errors
    ///
    /// As [`FaultyStream::new`].
    pub fn from_records(source: Vec<RawRecord>, plan: FaultPlan, seed: u64) -> Result<Self> {
        plan.validate()?;
        Ok(FaultyStream { source, plan, seed })
    }

    /// Number of records in the clean source.
    pub fn source_len(&self) -> usize {
        self.source.len()
    }

    /// Materializes the faulty stream. Deterministic in the seed: calling
    /// twice yields identical records and log.
    pub fn records(&self) -> (Vec<RawRecord>, FaultLog) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut log = FaultLog::default();
        let mut out: Vec<RawRecord> = Vec::with_capacity(self.source.len());
        let mut drop_remaining = 0usize;
        let total_w: f64 = self.plan.weights.iter().sum();
        for rec in &self.source {
            // Consume the per-record draw unconditionally so the fault
            // positions of kind A are unchanged by toggling kind B.
            let fault_draw = rng.gen::<f64>();
            let kind_draw = rng.gen::<f64>() * total_w;
            if drop_remaining > 0 {
                drop_remaining -= 1;
                log.dropped += 1;
                continue;
            }
            if fault_draw >= self.plan.rate {
                out.push(rec.clone());
                continue;
            }
            let mut pick = kind_draw;
            let mut kind = FaultKind::BurstDrop;
            for k in FaultKind::ALL {
                let w = self.plan.weights[k.index()];
                if pick < w {
                    kind = k;
                    break;
                }
                pick -= w;
            }
            log.counts[kind.index()] += 1;
            let mut rec = rec.clone();
            let dim = rec.values.len();
            let cell = if dim == 0 { 0 } else { rng.gen_range(0..dim) };
            match kind {
                FaultKind::NanCell => {
                    if dim > 0 {
                        rec.values[cell] = f64::NAN;
                    }
                }
                FaultKind::InfCell => {
                    if dim > 0 {
                        rec.values[cell] = if rng.gen::<f64>() < 0.5 {
                            f64::INFINITY
                        } else {
                            f64::NEG_INFINITY
                        };
                    }
                }
                FaultKind::NegativeError => {
                    if dim > 0 {
                        rec.errors[cell] = -(rec.errors[cell].abs() + rng.gen::<f64>() + 0.1);
                    }
                }
                FaultKind::InflatedError => {
                    if dim > 0 {
                        rec.errors[cell] = (rec.errors[cell].abs() + 1.0) * self.plan.inflation;
                    }
                }
                FaultKind::DuplicateTimestamp => {
                    if let Some(prev) = out.last() {
                        rec.timestamp = prev.timestamp;
                    }
                }
                FaultKind::OutOfOrderTimestamp => {
                    let jump = rng.gen_range(1..51u64);
                    rec.timestamp = rec.timestamp.saturating_sub(jump);
                }
                FaultKind::Truncated => {
                    let keep = if dim == 0 { 0 } else { rng.gen_range(0..dim) };
                    rec.values.truncate(keep);
                    rec.errors.truncate(keep);
                }
                FaultKind::BurstDrop => {
                    drop_remaining = self.plan.burst_len - 1;
                    log.dropped += 1;
                    continue;
                }
            }
            out.push(rec);
        }
        (out, log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean(n: usize) -> UncertainDataset {
        UncertainDataset::from_points(
            (0..n)
                .map(|i| {
                    UncertainPoint::new(vec![i as f64, -(i as f64)], vec![0.1, 0.2])
                        .unwrap()
                        .with_label(ClassLabel((i % 2) as u32))
                        .with_timestamp(i as u64)
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn zero_rate_is_identity() {
        let d = clean(40);
        let s = FaultyStream::new(&d, FaultPlan::uniform(0.0), 1).unwrap();
        let (records, log) = s.records();
        assert_eq!(log.total(), 0);
        assert_eq!(log.dropped, 0);
        assert_eq!(records.len(), 40);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
            assert_eq!(r.clone().into_point().unwrap(), *d.point(i));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let d = clean(200);
        let s = FaultyStream::new(&d, FaultPlan::uniform(0.3), 11).unwrap();
        let (a, la) = s.records();
        let (b, lb) = s.records();
        assert_eq!(la, lb);
        // RawRecord is PartialEq but NaN != NaN, so compare bit patterns.
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.seq, y.seq);
            assert_eq!(x.timestamp, y.timestamp);
            let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&x.values), bits(&y.values));
            assert_eq!(bits(&x.errors), bits(&y.errors));
        }
        let other = FaultyStream::new(&d, FaultPlan::uniform(0.3), 12).unwrap();
        let (_, lc) = other.records();
        assert_ne!(la, lc);
    }

    #[test]
    fn each_kind_produces_its_signature() {
        let d = clean(400);
        let case = |kind: FaultKind| {
            let s = FaultyStream::new(&d, FaultPlan::only(kind, 0.25), 5).unwrap();
            let (records, log) = s.records();
            assert!(log.count(kind) > 0, "{kind:?} never fired");
            (records, log)
        };

        let (records, _) = case(FaultKind::NanCell);
        assert!(records.iter().any(|r| r.values.iter().any(|v| v.is_nan())));

        let (records, _) = case(FaultKind::InfCell);
        assert!(records
            .iter()
            .any(|r| r.values.iter().any(|v| v.is_infinite())));

        let (records, _) = case(FaultKind::NegativeError);
        assert!(records.iter().any(|r| r.errors.iter().any(|e| *e < 0.0)));

        let (records, _) = case(FaultKind::InflatedError);
        assert!(records.iter().any(|r| r.errors.iter().any(|e| *e > 1e5)));

        let (records, _) = case(FaultKind::Truncated);
        assert!(records.iter().any(|r| r.values.len() < 2));

        let (records, log) = case(FaultKind::BurstDrop);
        assert!(log.dropped > 0);
        assert!(records.len() < 400);
        assert_eq!(records.len() as u64 + log.dropped, 400);

        let (records, _) = case(FaultKind::DuplicateTimestamp);
        let dup = records.windows(2).any(|w| w[0].timestamp == w[1].timestamp);
        assert!(dup, "no duplicated timestamps");

        let (records, _) = case(FaultKind::OutOfOrderTimestamp);
        let ooo = records.windows(2).any(|w| w[1].timestamp < w[0].timestamp);
        assert!(ooo, "no out-of-order timestamps");
    }

    #[test]
    fn seq_numbers_survive_injection() {
        let d = clean(300);
        let s = FaultyStream::new(&d, FaultPlan::uniform(0.4), 9).unwrap();
        let (records, _) = s.records();
        // seq strictly increasing (drops leave gaps, never reorders).
        assert!(records.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn labels_are_preserved() {
        let d = clean(50);
        let s = FaultyStream::new(&d, FaultPlan::only(FaultKind::NanCell, 0.5), 3).unwrap();
        let (records, _) = s.records();
        assert!(records.iter().all(|r| r.label.is_some()));
    }

    #[test]
    fn invalid_plans_rejected() {
        let d = clean(5);
        assert!(FaultyStream::new(&d, FaultPlan::uniform(1.5), 0).is_err());
        assert!(FaultyStream::new(&d, FaultPlan::uniform(f64::NAN), 0).is_err());
        let mut p = FaultPlan::uniform(0.1);
        p.weights = vec![0.0; 8];
        assert!(FaultyStream::new(&d, p, 0).is_err());
        let mut p = FaultPlan::uniform(0.1);
        p.weights = vec![1.0; 3];
        assert!(FaultyStream::new(&d, p, 0).is_err());
        let mut p = FaultPlan::uniform(0.1);
        p.burst_len = 0;
        assert!(FaultyStream::new(&d, p, 0).is_err());
        let mut p = FaultPlan::uniform(0.1);
        p.inflation = 0.5;
        assert!(FaultyStream::new(&d, p, 0).is_err());
    }

    #[test]
    fn raw_record_point_roundtrip_and_validation() {
        let p = UncertainPoint::new(vec![1.0], vec![0.5])
            .unwrap()
            .with_label(ClassLabel(3))
            .with_timestamp(42);
        let r = RawRecord::from_point(7, &p);
        assert_eq!(r.seq, 7);
        assert_eq!(r.clone().into_point().unwrap(), p);

        let mut bad = r.clone();
        bad.values[0] = f64::NAN;
        assert!(bad.into_point().is_err());
        let mut bad = r.clone();
        bad.errors[0] = -1.0;
        assert!(bad.into_point().is_err());
        let mut bad = r;
        bad.errors.pop();
        assert!(bad.into_point().is_err());
    }

    #[test]
    fn fault_log_display_lists_kinds() {
        let d = clean(200);
        let s = FaultyStream::new(&d, FaultPlan::only(FaultKind::NanCell, 0.3), 2).unwrap();
        let (_, log) = s.records();
        let text = log.to_string();
        assert!(text.contains("nan_cell"), "{text}");
        assert!(text.contains("records dropped"), "{text}");
    }
}
