//! Missing data and imputation with error tracking.
//!
//! The paper's introduction lists imputation as a primary source of
//! quantified uncertainty: "in the case of missing data, imputation
//! procedures can be used to estimate the missing values. If such
//! procedures are used, then the statistical error of imputation for a
//! given entry is often known a-priori."
//!
//! This module provides that pipeline: a missingness model that knocks
//! out cells ([`MissingnessModel`]), an incomplete-data container
//! ([`IncompleteDataset`]), and imputers that fill the holes *and record
//! the imputation error* as the cell's ψ — producing an
//! [`UncertainDataset`] ready for the error-adjusted machinery.

use crate::synth::standard_normal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use udm_core::{ClassLabel, Result, RunningStats, UdmError, UncertainDataset, UncertainPoint};

/// A dataset with holes: `None` cells are missing.
#[derive(Debug, Clone, PartialEq)]
pub struct IncompleteDataset {
    dim: usize,
    rows: Vec<IncompleteRow>,
}

/// One row of an [`IncompleteDataset`].
#[derive(Debug, Clone, PartialEq)]
pub struct IncompleteRow {
    /// Cell values; `None` = missing.
    pub values: Vec<Option<f64>>,
    /// Class label, if any.
    pub label: Option<ClassLabel>,
}

impl IncompleteDataset {
    /// Creates an empty incomplete dataset of dimensionality `dim`.
    pub fn new(dim: usize) -> Self {
        IncompleteDataset {
            dim,
            rows: Vec::new(),
        }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows are present.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows.
    pub fn rows(&self) -> &[IncompleteRow] {
        &self.rows
    }

    /// Appends a row, validating arity.
    pub fn push(&mut self, row: IncompleteRow) -> Result<()> {
        if row.values.len() != self.dim {
            return Err(UdmError::DimensionMismatch {
                expected: self.dim,
                actual: row.values.len(),
            });
        }
        for v in row.values.iter().flatten() {
            if !v.is_finite() {
                return Err(UdmError::InvalidValue {
                    what: "cell value",
                    value: *v,
                });
            }
        }
        self.rows.push(row);
        Ok(())
    }

    /// Fraction of missing cells.
    pub fn missing_fraction(&self) -> f64 {
        let total = self.rows.len() * self.dim;
        if total == 0 {
            return 0.0;
        }
        let missing = self
            .rows
            .iter()
            .flat_map(|r| r.values.iter())
            .filter(|v| v.is_none())
            .count();
        missing as f64 / total as f64
    }
}

/// How cells go missing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MissingnessModel {
    /// Missing completely at random: each cell is knocked out
    /// independently with probability `rate`.
    Mcar {
        /// Per-cell missingness probability in `[0, 1)`.
        rate: f64,
    },
    /// Entire dimensions are unreliable: cells of the listed dimensions
    /// are knocked out with probability `rate`, others never.
    PerDimension {
        /// Per-cell missingness probability for the affected dimensions.
        rate: f64,
        /// Bitmask of affected dimensions (bit `j` = dimension `j`).
        dims: u64,
    },
}

impl MissingnessModel {
    fn validate(&self) -> Result<()> {
        let rate = match self {
            MissingnessModel::Mcar { rate } | MissingnessModel::PerDimension { rate, .. } => *rate,
        };
        if !(rate.is_finite() && (0.0..1.0).contains(&rate)) {
            return Err(UdmError::InvalidValue {
                what: "missingness rate",
                value: rate,
            });
        }
        Ok(())
    }

    /// Applies the model to a complete dataset, deterministically under
    /// `seed`.
    pub fn apply(&self, data: &UncertainDataset, seed: u64) -> Result<IncompleteDataset> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = IncompleteDataset::new(data.dim());
        for p in data.iter() {
            let values = (0..data.dim())
                .map(|j| {
                    let knocked = match self {
                        MissingnessModel::Mcar { rate } => rng.gen::<f64>() < *rate,
                        MissingnessModel::PerDimension { rate, dims } => {
                            (dims >> j) & 1 == 1 && rng.gen::<f64>() < *rate
                        }
                    };
                    if knocked {
                        None
                    } else {
                        Some(p.value(j))
                    }
                })
                .collect();
            out.push(IncompleteRow {
                values,
                label: p.label(),
            })?;
        }
        Ok(out)
    }
}

/// Mean imputation with error tracking: a missing cell of dimension `j`
/// is filled with the column mean of the *observed* values and its error
/// is recorded as the column's observed standard deviation — the a-priori
/// standard error of mean imputation. Observed cells keep ψ = 0.
///
/// # Example
///
/// ```
/// use udm_data::imputation::{impute_mean, IncompleteDataset, IncompleteRow};
///
/// let mut inc = IncompleteDataset::new(1);
/// inc.push(IncompleteRow { values: vec![Some(2.0)], label: None }).unwrap();
/// inc.push(IncompleteRow { values: vec![Some(4.0)], label: None }).unwrap();
/// inc.push(IncompleteRow { values: vec![None], label: None }).unwrap();
/// let imputed = impute_mean(&inc).unwrap();
/// assert_eq!(imputed.point(2).value(0), 3.0); // column mean
/// assert!(imputed.point(2).error(0) > 0.0);   // imputation error recorded
/// ```
///
/// # Errors
///
/// [`UdmError::EmptyDataset`] if the input is empty or some column has no
/// observed value at all.
pub fn impute_mean(data: &IncompleteDataset) -> Result<UncertainDataset> {
    if data.is_empty() {
        return Err(UdmError::EmptyDataset);
    }
    let mut col_stats = vec![RunningStats::new(); data.dim()];
    for row in data.rows() {
        for (j, v) in row.values.iter().enumerate() {
            if let Some(v) = v {
                col_stats[j].push(*v);
            }
        }
    }
    for (j, st) in col_stats.iter().enumerate() {
        if st.count() == 0 {
            return Err(UdmError::InvalidConfig(format!(
                "column {j} has no observed values to impute from"
            )));
        }
    }
    let mut out = UncertainDataset::new(data.dim());
    for row in data.rows() {
        let mut values = Vec::with_capacity(data.dim());
        let mut errors = Vec::with_capacity(data.dim());
        for (j, v) in row.values.iter().enumerate() {
            match v {
                Some(v) => {
                    values.push(*v);
                    errors.push(0.0);
                }
                None => {
                    values.push(col_stats[j].mean());
                    errors.push(col_stats[j].std_population());
                }
            }
        }
        let mut p = UncertainPoint::new(values, errors)?;
        if let Some(l) = row.label {
            p = p.with_label(l);
        }
        out.push(p)?;
    }
    Ok(out)
}

/// Stochastic ("hot-deck style") mean imputation: like [`impute_mean`]
/// but the filled value is drawn from `N(mean_j, σ_j²)` instead of being
/// the mean itself, which preserves column variance. The recorded error
/// is still `σ_j`. Deterministic under `seed`.
pub fn impute_stochastic(data: &IncompleteDataset, seed: u64) -> Result<UncertainDataset> {
    let deterministic = impute_mean(data)?;
    // Re-draw only the imputed cells (those with ψ > 0).
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = UncertainDataset::new(data.dim());
    for p in deterministic.iter() {
        let mut values = p.values().to_vec();
        for (j, slot) in values.iter_mut().enumerate() {
            if p.error(j) > 0.0 {
                *slot = p.value(j) + p.error(j) * standard_normal(&mut rng);
            }
        }
        let mut q = UncertainPoint::new(values, p.errors().to_vec())?;
        if let Some(l) = p.label() {
            q = q.with_label(l);
        }
        out.push(q)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(n: usize) -> UncertainDataset {
        UncertainDataset::from_points(
            (0..n)
                .map(|i| {
                    UncertainPoint::exact(vec![i as f64, (i * 2) as f64])
                        .unwrap()
                        .with_label(ClassLabel((i % 2) as u32))
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn mcar_rate_respected() {
        let d = complete(2000);
        let inc = MissingnessModel::Mcar { rate: 0.3 }.apply(&d, 1).unwrap();
        let frac = inc.missing_fraction();
        assert!((frac - 0.3).abs() < 0.03, "fraction {frac}");
    }

    #[test]
    fn mcar_zero_rate_keeps_everything() {
        let d = complete(50);
        let inc = MissingnessModel::Mcar { rate: 0.0 }.apply(&d, 1).unwrap();
        assert_eq!(inc.missing_fraction(), 0.0);
    }

    #[test]
    fn per_dimension_only_affects_listed_dims() {
        let d = complete(500);
        let inc = MissingnessModel::PerDimension {
            rate: 0.5,
            dims: 0b01, // only dimension 0
        }
        .apply(&d, 2)
        .unwrap();
        for row in inc.rows() {
            assert!(row.values[1].is_some());
        }
        let dim0_missing = inc.rows().iter().filter(|r| r.values[0].is_none()).count();
        assert!(dim0_missing > 150 && dim0_missing < 350);
    }

    #[test]
    fn invalid_rates_rejected() {
        let d = complete(5);
        assert!(MissingnessModel::Mcar { rate: 1.0 }.apply(&d, 0).is_err());
        assert!(MissingnessModel::Mcar { rate: -0.1 }.apply(&d, 0).is_err());
        assert!(MissingnessModel::Mcar { rate: f64::NAN }
            .apply(&d, 0)
            .is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let d = complete(100);
        let a = MissingnessModel::Mcar { rate: 0.2 }.apply(&d, 9).unwrap();
        let b = MissingnessModel::Mcar { rate: 0.2 }.apply(&d, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn impute_mean_fills_with_observed_mean_and_std() {
        let mut inc = IncompleteDataset::new(1);
        for v in [2.0, 4.0, 9.0] {
            inc.push(IncompleteRow {
                values: vec![Some(v)],
                label: None,
            })
            .unwrap();
        }
        inc.push(IncompleteRow {
            values: vec![None],
            label: Some(ClassLabel(1)),
        })
        .unwrap();
        let imputed = impute_mean(&inc).unwrap();
        let p = imputed.point(3);
        assert!((p.value(0) - 5.0).abs() < 1e-12);
        // population std of (2,4,9): sqrt(26/3 ... ) compute: mean 5, devs (-3,-1,4), ssq 26, /3
        assert!((p.error(0) - (26.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(p.label(), Some(ClassLabel(1)));
        // observed rows keep psi = 0
        assert!(imputed.point(0).is_exact());
    }

    #[test]
    fn impute_mean_rejects_fully_missing_column() {
        let mut inc = IncompleteDataset::new(2);
        inc.push(IncompleteRow {
            values: vec![Some(1.0), None],
            label: None,
        })
        .unwrap();
        assert!(impute_mean(&inc).is_err());
    }

    #[test]
    fn impute_mean_rejects_empty() {
        assert!(impute_mean(&IncompleteDataset::new(1)).is_err());
    }

    #[test]
    fn stochastic_imputation_preserves_errors_and_spreads_values() {
        let d = complete(400);
        let inc = MissingnessModel::Mcar { rate: 0.4 }.apply(&d, 3).unwrap();
        let det = impute_mean(&inc).unwrap();
        let sto = impute_stochastic(&inc, 4).unwrap();
        assert_eq!(det.len(), sto.len());
        // Errors identical; imputed values differ for most imputed cells.
        let mut differing = 0;
        let mut imputed_cells = 0;
        for (a, b) in det.iter().zip(sto.iter()) {
            for j in 0..2 {
                assert_eq!(a.error(j), b.error(j));
                if a.error(j) > 0.0 {
                    imputed_cells += 1;
                    if (a.value(j) - b.value(j)).abs() > 1e-12 {
                        differing += 1;
                    }
                } else {
                    assert_eq!(a.value(j), b.value(j));
                }
            }
        }
        assert!(imputed_cells > 0);
        assert_eq!(differing, imputed_cells);
    }

    #[test]
    fn pipeline_feeds_error_adjusted_mining() {
        // The end-to-end motivation: missing -> imputed-with-errors ->
        // usable uncertain dataset.
        let d = complete(100);
        let inc = MissingnessModel::Mcar { rate: 0.25 }.apply(&d, 5).unwrap();
        let imputed = impute_mean(&inc).unwrap();
        assert_eq!(imputed.len(), 100);
        assert!(imputed.iter().any(|p| !p.is_exact()));
        assert!(imputed.iter().any(|p| p.is_exact()));
    }

    #[test]
    fn push_validates() {
        let mut inc = IncompleteDataset::new(2);
        assert!(inc
            .push(IncompleteRow {
                values: vec![Some(1.0)],
                label: None
            })
            .is_err());
        assert!(inc
            .push(IncompleteRow {
                values: vec![Some(f64::NAN), None],
                label: None
            })
            .is_err());
    }
}
