//! # udm-data
//!
//! Workloads for the uncertain-data-mining experiments.
//!
//! The paper's evaluation (§4) takes four UCI datasets (adult, ionosphere,
//! wisconsin breast cancer, forest cover), keeps their quantitative
//! attributes, and *injects* synthetic errors: for every cell the error
//! standard deviation is drawn uniformly from `[0, 2f]·σ_j` (where `σ_j`
//! is the column's standard deviation) and the stored value is displaced
//! by a zero-mean normal with that standard deviation. The parameter `f`
//! sweeps 0–3.
//!
//! This crate provides:
//!
//! * [`synth`] — seeded Gaussian-mixture-per-class generators,
//! * [`uci`] — stand-in profiles mimicking the shape of the four UCI
//!   datasets (dimensionality, class count, priors, class overlap), used
//!   when the real files are unavailable (see `DESIGN.md` for the
//!   substitution rationale), plus a loader for the real files when
//!   present,
//! * [`noise`] — the paper's error-injection model,
//! * [`csv_io`] — CSV reading/writing of uncertain datasets,
//! * [`split`] — seeded (optionally stratified) train/test splits,
//! * [`imputation`] — missingness models and imputers that record the
//!   imputation error as ψ (the paper's missing-data use case),
//! * [`aggregate`] — partially aggregated data: group means with
//!   std-deviation errors (the paper's demographic-statistics use case),
//! * [`fault`] — deterministic fault injection for chaos-testing the
//!   streaming ingest path (NaN/Inf cells, corrupted ψ, timestamp
//!   anomalies, truncation, burst drops),
//! * [`uci_raw`] — parsers for the raw UCI file formats (adult,
//!   ionosphere, breast-cancer-wisconsin, covtype), so the real data can
//!   replace the stand-ins when available.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod aggregate;
pub mod csv_io;
pub mod error;
pub mod fault;
pub mod imputation;
pub mod noise;
pub mod split;
pub mod stream;
pub mod synth;
pub mod uci;
pub mod uci_raw;

pub use aggregate::{aggregate_groups, GroupLabelPolicy};
pub use error::{DataError, DataResult};
pub use fault::{FaultKind, FaultLog, FaultPlan, FaultyStream, RawRecord};
pub use imputation::{impute_mean, impute_stochastic, IncompleteDataset, MissingnessModel};
pub use noise::ErrorModel;
pub use split::{stratified_split, train_test_split, Split};
pub use stream::{DriftingStream, Regime};
pub use synth::{GaussianClassSpec, MixtureGenerator};
pub use uci::UciDataset;
