//! The paper's error-injection model (§4).
//!
//! "For each entry, the standard deviation parameter of the normal
//! distribution was chosen from a uniform distribution in the range
//! `[0, 2·f]·σ`, where `σ` is the standard deviation of that dimension in
//! the underlying data" — then the entry is displaced by a zero-mean
//! normal with that standard deviation, and the chosen standard deviation
//! is recorded as the cell's error estimate `ψ`.
//!
//! At `f = 3` the majority of entries are distorted by up to 3 column
//! standard deviations, which reduces an error-oblivious classifier to
//! near-random performance — the regime where the error-adjusted method
//! shows its advantage.

use crate::synth::standard_normal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use udm_core::{Result, UdmError, UncertainDataset, UncertainPoint};

/// How per-cell error standard deviations are chosen during injection.
///
/// # Example
///
/// ```
/// use udm_core::{UncertainDataset, UncertainPoint};
/// use udm_data::ErrorModel;
///
/// let clean = UncertainDataset::from_points(
///     (0..50).map(|i| UncertainPoint::exact(vec![i as f64]).unwrap()).collect(),
/// ).unwrap();
/// let noisy = ErrorModel::paper(1.5).apply(&clean, 7).unwrap();
/// assert_eq!(noisy.len(), 50);
/// assert!(noisy.iter().any(|p| !p.is_exact())); // errors were recorded
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ErrorModel {
    /// The paper's model: `ψ ~ U[0, 2f]·σ_j` per cell, value displaced by
    /// `N(0, ψ²)`. The field is the error level `f`.
    PaperUniform {
        /// The error level `f` (the paper sweeps 0–3).
        f: f64,
    },
    /// Every cell of dimension `j` gets the same fixed error `ψ_j`; values
    /// are displaced by `N(0, ψ_j²)`.
    FixedPerDimension {
        /// Fixed error per dimension.
        psis: Vec<f64>,
    },
    /// Heteroscedastic variant: like the paper's model but only a fraction
    /// `p` of cells is perturbed (the rest stay exact) — models data where
    /// only some sources are unreliable.
    SparseUniform {
        /// The error level `f` for perturbed cells.
        f: f64,
        /// Probability that a cell is perturbed at all.
        p: f64,
    },
}

impl ErrorModel {
    /// The paper's model at error level `f`.
    pub fn paper(f: f64) -> Self {
        ErrorModel::PaperUniform { f }
    }

    fn validate(&self) -> Result<()> {
        match self {
            ErrorModel::PaperUniform { f } => {
                if !(f.is_finite() && *f >= 0.0) {
                    return Err(UdmError::InvalidValue {
                        what: "error level f",
                        value: *f,
                    });
                }
            }
            ErrorModel::FixedPerDimension { psis } => {
                if psis.iter().any(|&p| !(p.is_finite() && p >= 0.0)) {
                    return Err(UdmError::InvalidConfig(
                        "fixed per-dimension errors must be finite and non-negative".into(),
                    ));
                }
            }
            ErrorModel::SparseUniform { f, p } => {
                if !(f.is_finite() && *f >= 0.0) {
                    return Err(UdmError::InvalidValue {
                        what: "error level f",
                        value: *f,
                    });
                }
                if !(p.is_finite() && (0.0..=1.0).contains(p)) {
                    return Err(UdmError::InvalidValue {
                        what: "perturbation probability p",
                        value: *p,
                    });
                }
            }
        }
        Ok(())
    }

    /// Applies the model to a dataset, returning a perturbed copy whose
    /// cells carry the injected error estimates. Labels and timestamps are
    /// preserved. Deterministic under `seed`.
    ///
    /// # Errors
    ///
    /// Propagates validation failures; [`UdmError::EmptyDataset`] when the
    /// input has no points (column σ would be undefined).
    pub fn apply(&self, data: &UncertainDataset, seed: u64) -> Result<UncertainDataset> {
        self.validate()?;
        if data.is_empty() {
            return Err(UdmError::EmptyDataset);
        }
        if let ErrorModel::FixedPerDimension { psis } = self {
            if psis.len() != data.dim() {
                return Err(UdmError::DimensionMismatch {
                    expected: data.dim(),
                    actual: psis.len(),
                });
            }
        }
        let sigmas: Vec<f64> = data.summaries().iter().map(|s| s.std).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = UncertainDataset::new(data.dim());
        for p in data.iter() {
            let mut values = Vec::with_capacity(data.dim());
            let mut errors = Vec::with_capacity(data.dim());
            for j in 0..data.dim() {
                let psi = match self {
                    ErrorModel::PaperUniform { f } => rng.gen::<f64>() * 2.0 * f * sigmas[j],
                    ErrorModel::FixedPerDimension { psis } => psis[j],
                    ErrorModel::SparseUniform { f, p } => {
                        if rng.gen::<f64>() < *p {
                            rng.gen::<f64>() * 2.0 * f * sigmas[j]
                        } else {
                            0.0
                        }
                    }
                };
                let displaced = p.value(j)
                    + if psi > 0.0 {
                        psi * standard_normal(&mut rng)
                    } else {
                        0.0
                    };
                values.push(displaced);
                errors.push(psi);
            }
            let mut q = UncertainPoint::new(values, errors)?;
            if let Some(l) = p.label() {
                q = q.with_label(l);
            }
            out.push(q.with_timestamp(p.timestamp()))?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udm_core::ClassLabel;

    fn base(n: usize) -> UncertainDataset {
        UncertainDataset::from_points(
            (0..n)
                .map(|i| {
                    UncertainPoint::exact(vec![i as f64, (i % 7) as f64])
                        .unwrap()
                        .with_label(ClassLabel((i % 2) as u32))
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn zero_f_is_identity_on_values() {
        let d = base(50);
        let noisy = ErrorModel::paper(0.0).apply(&d, 1).unwrap();
        for (a, b) in d.iter().zip(noisy.iter()) {
            assert_eq!(a.values(), b.values());
            assert!(b.is_exact());
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let d = base(50);
        let a = ErrorModel::paper(1.5).apply(&d, 7).unwrap();
        let b = ErrorModel::paper(1.5).apply(&d, 7).unwrap();
        assert_eq!(a, b);
        let c = ErrorModel::paper(1.5).apply(&d, 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn labels_preserved() {
        let d = base(20);
        let noisy = ErrorModel::paper(2.0).apply(&d, 3).unwrap();
        for (a, b) in d.iter().zip(noisy.iter()) {
            assert_eq!(a.label(), b.label());
        }
    }

    #[test]
    fn errors_within_uniform_bound() {
        let d = base(200);
        let f = 1.2;
        let sigmas: Vec<f64> = d.summaries().iter().map(|s| s.std).collect();
        let noisy = ErrorModel::paper(f).apply(&d, 5).unwrap();
        for p in noisy.iter() {
            for (j, &sigma) in sigmas.iter().enumerate() {
                assert!(p.error(j) >= 0.0);
                assert!(p.error(j) <= 2.0 * f * sigma + 1e-12);
            }
        }
    }

    #[test]
    fn mean_error_scales_with_f() {
        let d = base(500);
        let mean_err = |f: f64| {
            let noisy = ErrorModel::paper(f).apply(&d, 11).unwrap();
            noisy.iter().map(|p| p.error(0)).sum::<f64>() / noisy.len() as f64
        };
        let e1 = mean_err(0.5);
        let e2 = mean_err(2.0);
        // expected mean psi = f * sigma, so ratio ≈ 4
        assert!((e2 / e1 - 4.0).abs() < 0.5, "ratio {}", e2 / e1);
    }

    #[test]
    fn displacement_statistics_match_recorded_errors() {
        // Displacement of each cell should be ~N(0, psi^2): check the
        // aggregate z-scores have roughly unit variance.
        let d = base(2000);
        let noisy = ErrorModel::paper(1.0).apply(&d, 13).unwrap();
        let mut zs = Vec::new();
        for (orig, pert) in d.iter().zip(noisy.iter()) {
            let psi = pert.error(0);
            if psi > 1e-9 {
                zs.push((pert.value(0) - orig.value(0)) / psi);
            }
        }
        let n = zs.len() as f64;
        let mean = zs.iter().sum::<f64>() / n;
        let var = zs.iter().map(|z| (z - mean).powi(2)).sum::<f64>() / n;
        assert!(mean.abs() < 0.05, "z mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "z var {var}");
    }

    #[test]
    fn fixed_model_uses_given_psis() {
        let d = base(30);
        let noisy = ErrorModel::FixedPerDimension {
            psis: vec![0.5, 0.0],
        }
        .apply(&d, 2)
        .unwrap();
        for (orig, p) in d.iter().zip(noisy.iter()) {
            assert_eq!(p.error(0), 0.5);
            assert_eq!(p.error(1), 0.0);
            // zero-psi dimension is undisplaced
            assert_eq!(p.value(1), orig.value(1));
        }
    }

    #[test]
    fn fixed_model_validates_dim() {
        let d = base(5);
        assert!(ErrorModel::FixedPerDimension { psis: vec![0.1] }
            .apply(&d, 0)
            .is_err());
    }

    #[test]
    fn sparse_model_leaves_fraction_exact() {
        let d = base(1000);
        let noisy = ErrorModel::SparseUniform { f: 1.0, p: 0.3 }
            .apply(&d, 17)
            .unwrap();
        let perturbed_cells = noisy
            .iter()
            .flat_map(|p| p.errors().iter().copied())
            .filter(|&e| e > 0.0)
            .count();
        let frac = perturbed_cells as f64 / (1000.0 * 2.0);
        assert!((frac - 0.3).abs() < 0.05, "fraction {frac}");
    }

    #[test]
    fn invalid_parameters_rejected() {
        let d = base(5);
        assert!(ErrorModel::paper(-1.0).apply(&d, 0).is_err());
        assert!(ErrorModel::paper(f64::NAN).apply(&d, 0).is_err());
        assert!(ErrorModel::SparseUniform { f: 1.0, p: 1.5 }
            .apply(&d, 0)
            .is_err());
        let empty = UncertainDataset::new(1);
        assert!(ErrorModel::paper(1.0).apply(&empty, 0).is_err());
    }
}
