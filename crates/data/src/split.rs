//! Seeded train/test splitting.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeMap;
use udm_core::{ClassLabel, Result, UdmError, UncertainDataset};

/// A train/test split of a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Split {
    /// Training portion.
    pub train: UncertainDataset,
    /// Held-out test portion.
    pub test: UncertainDataset,
}

fn validate_fraction(test_fraction: f64) -> Result<()> {
    if !(test_fraction.is_finite() && (0.0..1.0).contains(&test_fraction) && test_fraction > 0.0) {
        return Err(UdmError::InvalidValue {
            what: "test fraction",
            value: test_fraction,
        });
    }
    Ok(())
}

/// Shuffles the dataset with `seed` and holds out `test_fraction` of it.
///
/// At least one point is always left on each side for non-degenerate
/// inputs (`len ≥ 2`).
///
/// # Errors
///
/// [`UdmError::InvalidValue`] for a fraction outside `(0, 1)`;
/// [`UdmError::EmptyDataset`] when fewer than 2 points are available.
pub fn train_test_split(data: &UncertainDataset, test_fraction: f64, seed: u64) -> Result<Split> {
    validate_fraction(test_fraction)?;
    if data.len() < 2 {
        return Err(UdmError::EmptyDataset);
    }
    let mut indices: Vec<usize> = (0..data.len()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    indices.shuffle(&mut rng);
    // len·fraction <= len for the validated fraction ∈ (0, 1).
    #[allow(clippy::cast_possible_truncation)]
    let n_test = ((data.len() as f64 * test_fraction).round() as usize)
        .max(1)
        .min(data.len() - 1);
    let mut test = UncertainDataset::new(data.dim());
    let mut train = UncertainDataset::new(data.dim());
    for (rank, &i) in indices.iter().enumerate() {
        let p = data.point(i).clone();
        if rank < n_test {
            test.push(p)?;
        } else {
            train.push(p)?;
        }
    }
    Ok(Split { train, test })
}

/// Stratified split: preserves per-class proportions by splitting each
/// class independently (unlabelled points are split like their own class).
///
/// # Errors
///
/// Same conditions as [`train_test_split`].
pub fn stratified_split(data: &UncertainDataset, test_fraction: f64, seed: u64) -> Result<Split> {
    validate_fraction(test_fraction)?;
    if data.len() < 2 {
        return Err(UdmError::EmptyDataset);
    }
    // Group indices per label (None -> its own bucket).
    let mut buckets: BTreeMap<Option<ClassLabel>, Vec<usize>> = BTreeMap::new();
    for (i, p) in data.iter().enumerate() {
        buckets.entry(p.label()).or_default().push(i);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut train = UncertainDataset::new(data.dim());
    let mut test = UncertainDataset::new(data.dim());
    for (_, mut idxs) in buckets {
        idxs.shuffle(&mut rng);
        // len·fraction <= len for the validated fraction ∈ (0, 1).
        #[allow(clippy::cast_possible_truncation)]
        let n_test = if idxs.len() == 1 {
            0 // lone member goes to train; can't represent both sides
        } else {
            ((idxs.len() as f64 * test_fraction).round() as usize)
                .max(1)
                .min(idxs.len() - 1)
        };
        for (rank, &i) in idxs.iter().enumerate() {
            let p = data.point(i).clone();
            if rank < n_test {
                test.push(p)?;
            } else {
                train.push(p)?;
            }
        }
    }
    if test.is_empty() || train.is_empty() {
        return Err(UdmError::EmptyDataset);
    }
    Ok(Split { train, test })
}

#[cfg(test)]
mod tests {
    use super::*;
    use udm_core::UncertainPoint;

    fn labelled_data(n: usize) -> UncertainDataset {
        UncertainDataset::from_points(
            (0..n)
                .map(|i| {
                    UncertainPoint::exact(vec![i as f64])
                        .unwrap()
                        .with_label(ClassLabel((i % 4 == 0) as u32))
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn split_sizes_add_up() {
        let d = labelled_data(100);
        let s = train_test_split(&d, 0.3, 1).unwrap();
        assert_eq!(s.train.len() + s.test.len(), 100);
        assert_eq!(s.test.len(), 30);
    }

    #[test]
    fn split_is_deterministic() {
        let d = labelled_data(50);
        let a = train_test_split(&d, 0.2, 9).unwrap();
        let b = train_test_split(&d, 0.2, 9).unwrap();
        assert_eq!(a, b);
        let c = train_test_split(&d, 0.2, 10).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn split_partitions_without_duplication() {
        let d = labelled_data(40);
        let s = train_test_split(&d, 0.25, 3).unwrap();
        let mut seen: Vec<f64> = s
            .train
            .iter()
            .chain(s.test.iter())
            .map(|p| p.value(0))
            .collect();
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expected: Vec<f64> = (0..40).map(|i| i as f64).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn split_rejects_bad_fraction_and_tiny_data() {
        let d = labelled_data(10);
        assert!(train_test_split(&d, 0.0, 0).is_err());
        assert!(train_test_split(&d, 1.0, 0).is_err());
        assert!(train_test_split(&d, -0.5, 0).is_err());
        let single = labelled_data(1);
        assert!(train_test_split(&single, 0.5, 0).is_err());
    }

    #[test]
    fn both_sides_nonempty_even_for_extreme_fractions() {
        let d = labelled_data(5);
        let s = train_test_split(&d, 0.01, 0).unwrap();
        assert!(!s.test.is_empty());
        let s = train_test_split(&d, 0.99, 0).unwrap();
        assert!(!s.train.is_empty());
    }

    #[test]
    fn stratified_preserves_proportions() {
        let d = labelled_data(400); // 25% class 1
        let s = stratified_split(&d, 0.25, 5).unwrap();
        let test_part = s.test.partition_by_class();
        let frac1 = test_part.prior(ClassLabel(1));
        assert!((frac1 - 0.25).abs() < 0.02, "class-1 prior {frac1}");
        assert_eq!(s.train.len() + s.test.len(), 400);
    }

    #[test]
    fn stratified_handles_singleton_class() {
        let mut d = labelled_data(10);
        d.push(
            UncertainPoint::exact(vec![99.0])
                .unwrap()
                .with_label(ClassLabel(7)),
        )
        .unwrap();
        let s = stratified_split(&d, 0.3, 2).unwrap();
        // The lone class-7 point must be in train.
        assert!(s.train.iter().any(|p| p.label() == Some(ClassLabel(7))));
        assert!(!s.test.iter().any(|p| p.label() == Some(ClassLabel(7))));
    }
}
