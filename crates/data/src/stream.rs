//! Drifting stream workloads.
//!
//! The paper frames micro-clustering as a *stream* method ("the data
//! stream consists of a set of multi-dimensional records X̄₁…X̄ₖ…
//! arriving at time stamps T₁…Tₖ…", §2.1). This generator produces such
//! streams with **concept drift**: a sequence of regimes, each an
//! arbitrary labelled mixture with its own duration and error scale.
//! Timestamps are attached, so the output feeds the maintainer and the
//! pyramidal store directly.

use crate::synth::{standard_normal, MixtureGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use udm_core::{Result, UdmError, UncertainDataset, UncertainPoint};

/// One phase of a drifting stream.
#[derive(Debug, Clone)]
pub struct Regime {
    /// The population points are drawn from during this regime.
    pub mixture: MixtureGenerator,
    /// How many arrivals the regime lasts.
    pub duration: u64,
    /// Per-cell error scale: each cell's ψ is drawn from `U[0, scale]`
    /// and its value displaced by `N(0, ψ²)`.
    pub error_scale: f64,
}

/// Generates a timestamped uncertain stream from a regime schedule.
#[derive(Debug, Clone)]
pub struct DriftingStream {
    regimes: Vec<Regime>,
    seed: u64,
}

impl DriftingStream {
    /// Creates the generator, validating the schedule.
    pub fn new(regimes: Vec<Regime>, seed: u64) -> Result<Self> {
        if regimes.is_empty() {
            return Err(UdmError::InvalidConfig(
                "stream needs at least one regime".into(),
            ));
        }
        let dim = regimes[0].mixture.dim();
        for (i, r) in regimes.iter().enumerate() {
            if r.mixture.dim() != dim {
                return Err(UdmError::DimensionMismatch {
                    expected: dim,
                    actual: r.mixture.dim(),
                });
            }
            if r.duration == 0 {
                return Err(UdmError::InvalidConfig(format!(
                    "regime {i} has zero duration"
                )));
            }
            if !(r.error_scale.is_finite() && r.error_scale >= 0.0) {
                return Err(UdmError::InvalidValue {
                    what: "regime error scale",
                    value: r.error_scale,
                });
            }
        }
        Ok(DriftingStream { regimes, seed })
    }

    /// Total arrivals across the whole schedule.
    pub fn total_duration(&self) -> u64 {
        self.regimes.iter().map(|r| r.duration).sum()
    }

    /// Dimensionality of the stream.
    pub fn dim(&self) -> usize {
        self.regimes[0].mixture.dim()
    }

    /// Materializes the entire stream as a timestamped dataset (labels
    /// come from the regimes' mixtures). Deterministic in `seed`.
    pub fn generate(&self) -> UncertainDataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out = UncertainDataset::new(self.dim());
        let mut t: u64 = 0;
        for (i, regime) in self.regimes.iter().enumerate() {
            // Draw the regime's clean points in one batch (deterministic
            // per regime), then perturb cell-wise.
            // Regime durations are experiment-sized; usize holds them.
            #[allow(clippy::cast_possible_truncation)]
            let clean = regime
                .mixture
                .generate(regime.duration as usize, self.seed ^ (i as u64) << 32);
            for p in clean.iter() {
                let mut values = Vec::with_capacity(self.dim());
                let mut errors = Vec::with_capacity(self.dim());
                for j in 0..self.dim() {
                    let psi = rng.gen::<f64>() * regime.error_scale;
                    let displaced = if psi > 0.0 {
                        p.value(j) + psi * standard_normal(&mut rng)
                    } else {
                        p.value(j)
                    };
                    values.push(displaced);
                    errors.push(psi);
                }
                // udm-lint: allow(UDM001) regime means/stds/error_scale validated finite, so cells are finite
                let mut q = UncertainPoint::new(values, errors).expect("finite cells");
                if let Some(l) = p.label() {
                    q = q.with_label(l);
                }
                // udm-lint: allow(UDM001) all regimes share dim(), checked at construction
                out.push(q.with_timestamp(t)).expect("uniform dims");
                t += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::GaussianClassSpec;

    fn mixture_at(center: f64) -> MixtureGenerator {
        MixtureGenerator::new(
            1,
            vec![GaussianClassSpec::spherical(vec![center], 0.5, 1.0)],
        )
        .unwrap()
    }

    fn two_regimes() -> DriftingStream {
        DriftingStream::new(
            vec![
                Regime {
                    mixture: mixture_at(0.0),
                    duration: 200,
                    error_scale: 0.1,
                },
                Regime {
                    mixture: mixture_at(30.0),
                    duration: 100,
                    error_scale: 1.0,
                },
            ],
            7,
        )
        .unwrap()
    }

    #[test]
    fn validates_schedule() {
        assert!(DriftingStream::new(vec![], 0).is_err());
        assert!(DriftingStream::new(
            vec![Regime {
                mixture: mixture_at(0.0),
                duration: 0,
                error_scale: 0.1,
            }],
            0
        )
        .is_err());
        assert!(DriftingStream::new(
            vec![Regime {
                mixture: mixture_at(0.0),
                duration: 10,
                error_scale: -1.0,
            }],
            0
        )
        .is_err());
    }

    #[test]
    fn timestamps_are_sequential_and_total_matches() {
        let s = two_regimes();
        assert_eq!(s.total_duration(), 300);
        let d = s.generate();
        assert_eq!(d.len(), 300);
        for (i, p) in d.iter().enumerate() {
            assert_eq!(p.timestamp(), i as u64);
        }
    }

    #[test]
    fn regimes_shift_the_distribution() {
        let d = two_regimes().generate();
        let early: f64 = d.points()[..200].iter().map(|p| p.value(0)).sum::<f64>() / 200.0;
        let late: f64 = d.points()[200..].iter().map(|p| p.value(0)).sum::<f64>() / 100.0;
        assert!(early.abs() < 1.0, "early mean {early}");
        assert!((late - 30.0).abs() < 2.0, "late mean {late}");
    }

    #[test]
    fn error_scales_differ_between_regimes() {
        let d = two_regimes().generate();
        let early_err: f64 = d.points()[..200].iter().map(|p| p.error(0)).sum::<f64>() / 200.0;
        let late_err: f64 = d.points()[200..].iter().map(|p| p.error(0)).sum::<f64>() / 100.0;
        assert!(late_err > early_err * 3.0, "{early_err} vs {late_err}");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = two_regimes().generate();
        let b = two_regimes().generate();
        assert_eq!(a, b);
        let c = DriftingStream::new(
            vec![Regime {
                mixture: mixture_at(0.0),
                duration: 300,
                error_scale: 0.1,
            }],
            8,
        )
        .unwrap()
        .generate();
        assert_ne!(a, c);
    }

    #[test]
    fn single_regime_schedule_works() {
        let s = DriftingStream::new(
            vec![Regime {
                mixture: mixture_at(5.0),
                duration: 120,
                error_scale: 0.2,
            }],
            3,
        )
        .unwrap();
        assert_eq!(s.total_duration(), 120);
        assert_eq!(s.dim(), 1);
        let d = s.generate();
        assert_eq!(d.len(), 120);
        let mean: f64 = d.iter().map(|p| p.value(0)).sum::<f64>() / 120.0;
        assert!((mean - 5.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn timestamps_strictly_increase_across_regime_boundaries() {
        // Three regimes; the u64 timestamps must keep strictly increasing
        // through both boundaries, with no reset or repeat per regime.
        let s = DriftingStream::new(
            vec![
                Regime {
                    mixture: mixture_at(0.0),
                    duration: 50,
                    error_scale: 0.1,
                },
                Regime {
                    mixture: mixture_at(10.0),
                    duration: 70,
                    error_scale: 0.1,
                },
                Regime {
                    mixture: mixture_at(20.0),
                    duration: 30,
                    error_scale: 0.1,
                },
            ],
            13,
        )
        .unwrap();
        let d = s.generate();
        assert_eq!(d.len(), 150);
        let ts: Vec<u64> = d.iter().map(|p| p.timestamp()).collect();
        assert!(ts.windows(2).all(|w| w[1] == w[0] + 1));
        // Boundary arrivals continue the global clock.
        assert_eq!(ts[49], 49);
        assert_eq!(ts[50], 50);
        assert_eq!(ts[119], 119);
        assert_eq!(ts[120], 120);
        assert_eq!(ts[149], 149);
    }

    #[test]
    fn zero_error_scale_yields_exact_cells() {
        let s = DriftingStream::new(
            vec![Regime {
                mixture: mixture_at(2.0),
                duration: 80,
                error_scale: 0.0,
            }],
            4,
        )
        .unwrap();
        let d = s.generate();
        // ψ must be bit-exact zero and the values undisplaced, so every
        // point reports itself as exact.
        for p in d.iter() {
            assert!(p.is_exact());
            assert_eq!(p.error(0).to_bits(), 0.0f64.to_bits());
        }
    }

    #[test]
    fn feeds_the_micro_cluster_pipeline() {
        // The contract this module exists for.
        let d = two_regimes().generate();
        assert!(d.iter().any(|p| !p.is_exact()));
        assert!(d.iter().all(|p| p.label().is_some()));
    }
}
