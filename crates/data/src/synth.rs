//! Seeded Gaussian-mixture-per-class dataset generators.
//!
//! Every generator in this crate is fully deterministic under a caller
//! supplied seed, so experiments are reproducible run-to-run and the
//! benchmark harness can regenerate the exact workloads of each figure.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use udm_core::{ClassLabel, Result, UdmError, UncertainDataset, UncertainPoint};

/// Standard normal sample via Box–Muller (avoids a rand_distr dependency).
pub(crate) fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// One class of a Gaussian mixture: an axis-aligned Gaussian blob.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussianClassSpec {
    /// Class mean per dimension.
    pub mean: Vec<f64>,
    /// Class standard deviation per dimension.
    pub std: Vec<f64>,
    /// Relative sampling weight (prior); normalized across classes.
    pub weight: f64,
}

impl GaussianClassSpec {
    /// Creates a spherical class: equal `std` along every dimension.
    pub fn spherical(mean: Vec<f64>, std: f64, weight: f64) -> Self {
        let d = mean.len();
        GaussianClassSpec {
            mean,
            std: vec![std; d],
            weight,
        }
    }
}

/// A labelled Gaussian mixture generator.
///
/// Each component is one Gaussian blob; by default component `i` emits
/// label `l_i`, but several components may share a label (multi-modal
/// classes, the common shape of real data) via
/// [`MixtureGenerator::new_with_labels`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixtureGenerator {
    dim: usize,
    classes: Vec<GaussianClassSpec>,
    labels: Vec<ClassLabel>,
}

impl MixtureGenerator {
    /// Creates a generator where component `i` emits `ClassLabel(i)`,
    /// validating that all components share the given dimensionality and
    /// have positive weight and non-negative stds.
    pub fn new(dim: usize, classes: Vec<GaussianClassSpec>) -> Result<Self> {
        // Class counts are single digits; u32 cannot overflow.
        #[allow(clippy::cast_possible_truncation)]
        let labels = (0..classes.len() as u32).map(ClassLabel).collect();
        Self::new_with_labels(dim, classes, labels)
    }

    /// Creates a generator with an explicit label per component, so a
    /// class can consist of several sub-clusters.
    pub fn new_with_labels(
        dim: usize,
        classes: Vec<GaussianClassSpec>,
        labels: Vec<ClassLabel>,
    ) -> Result<Self> {
        if classes.is_empty() {
            return Err(UdmError::InvalidConfig(
                "mixture needs at least one component".into(),
            ));
        }
        if labels.len() != classes.len() {
            return Err(UdmError::InvalidConfig(format!(
                "{} labels for {} components",
                labels.len(),
                classes.len()
            )));
        }
        for (i, c) in classes.iter().enumerate() {
            if c.mean.len() != dim || c.std.len() != dim {
                return Err(UdmError::DimensionMismatch {
                    expected: dim,
                    actual: c.mean.len().min(c.std.len()),
                });
            }
            if !(c.weight.is_finite() && c.weight > 0.0) {
                return Err(UdmError::InvalidValue {
                    what: "class weight",
                    value: c.weight,
                });
            }
            if c.std.iter().any(|&s| !(s.is_finite() && s >= 0.0)) {
                return Err(UdmError::InvalidConfig(format!(
                    "component {i} has a negative or non-finite std"
                )));
            }
            if c.mean.iter().any(|&m| !m.is_finite()) {
                return Err(UdmError::InvalidConfig(format!(
                    "component {i} has a non-finite mean"
                )));
            }
        }
        Ok(MixtureGenerator {
            dim,
            classes,
            labels,
        })
    }

    /// Dimensionality of generated points.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of distinct class labels `k`.
    pub fn num_classes(&self) -> usize {
        let mut ls: Vec<ClassLabel> = self.labels.clone();
        ls.sort();
        ls.dedup();
        ls.len()
    }

    /// Number of mixture components (≥ number of classes).
    pub fn num_components(&self) -> usize {
        self.classes.len()
    }

    /// Generates `n` labelled exact points (ψ ≡ 0) deterministically from
    /// `seed`.
    pub fn generate(&self, n: usize, seed: u64) -> UncertainDataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let total_w: f64 = self.classes.iter().map(|c| c.weight).sum();
        let mut data = UncertainDataset::new(self.dim);
        for _ in 0..n {
            // Pick a class by weight.
            let mut pick = rng.gen::<f64>() * total_w;
            let mut class_idx = self.classes.len() - 1;
            for (i, c) in self.classes.iter().enumerate() {
                if pick < c.weight {
                    class_idx = i;
                    break;
                }
                pick -= c.weight;
            }
            let spec = &self.classes[class_idx];
            let values: Vec<f64> = (0..self.dim)
                .map(|j| spec.mean[j] + spec.std[j] * standard_normal(&mut rng))
                .collect();
            let point = UncertainPoint::exact(values)
                // udm-lint: allow(UDM001) means/stds validated finite at construction, so draws are finite
                .expect("generated values are finite")
                .with_label(self.labels[class_idx]);
            // udm-lint: allow(UDM001) every point is built with self.dim coordinates
            data.push(point).expect("dimensionality is uniform");
        }
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blob(separation: f64) -> MixtureGenerator {
        MixtureGenerator::new(
            2,
            vec![
                GaussianClassSpec::spherical(vec![0.0, 0.0], 1.0, 1.0),
                GaussianClassSpec::spherical(vec![separation, 0.0], 1.0, 1.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn validates_specs() {
        assert!(MixtureGenerator::new(2, vec![]).is_err());
        assert!(
            MixtureGenerator::new(2, vec![GaussianClassSpec::spherical(vec![0.0], 1.0, 1.0)])
                .is_err()
        );
        assert!(
            MixtureGenerator::new(1, vec![GaussianClassSpec::spherical(vec![0.0], 1.0, 0.0)])
                .is_err()
        );
        assert!(MixtureGenerator::new(
            1,
            vec![GaussianClassSpec {
                mean: vec![0.0],
                std: vec![-1.0],
                weight: 1.0
            }]
        )
        .is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let g = two_blob(5.0);
        let a = g.generate(100, 42);
        let b = g.generate(100, 42);
        assert_eq!(a, b);
        let c = g.generate(100, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn generates_requested_count_and_dim() {
        let g = two_blob(5.0);
        let d = g.generate(257, 7);
        assert_eq!(d.len(), 257);
        assert_eq!(d.dim(), 2);
    }

    #[test]
    fn labels_cover_all_classes() {
        let g = two_blob(5.0);
        let d = g.generate(200, 1);
        let labels = d.labels();
        assert_eq!(labels, vec![ClassLabel(0), ClassLabel(1)]);
    }

    #[test]
    fn class_means_are_respected() {
        let g = two_blob(10.0);
        let d = g.generate(4000, 3);
        let part = d.partition_by_class();
        let c0 = part.class(ClassLabel(0)).unwrap();
        let c1 = part.class(ClassLabel(1)).unwrap();
        let m0 = c0.summaries()[0].mean;
        let m1 = c1.summaries()[0].mean;
        assert!(m0.abs() < 0.15, "class 0 mean {m0}");
        assert!((m1 - 10.0).abs() < 0.15, "class 1 mean {m1}");
    }

    #[test]
    fn weights_control_priors() {
        let g = MixtureGenerator::new(
            1,
            vec![
                GaussianClassSpec::spherical(vec![0.0], 1.0, 3.0),
                GaussianClassSpec::spherical(vec![10.0], 1.0, 1.0),
            ],
        )
        .unwrap();
        let d = g.generate(8000, 5);
        let part = d.partition_by_class();
        let p0 = part.prior(ClassLabel(0));
        assert!((p0 - 0.75).abs() < 0.03, "prior {p0}");
    }

    #[test]
    fn points_are_exact() {
        let g = two_blob(1.0);
        let d = g.generate(50, 9);
        assert!(d.iter().all(|p| p.is_exact()));
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
