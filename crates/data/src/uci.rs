//! Stand-in profiles for the paper's four UCI datasets.
//!
//! The evaluation (§4) uses the quantitative attributes of *adult*,
//! *ionosphere*, *wisconsin breast cancer* and *forest cover* from the UCI
//! repository. When the real files are unavailable (this build environment
//! has no network access), each dataset is replaced by a **seeded
//! Gaussian-mixture stand-in** matched to the real dataset's published
//! shape: dimensionality, number of classes, class priors, and a class
//! separation tuned so the zero-error classifier accuracies land near the
//! paper's reported operating points. See `DESIGN.md` ("Substitutions")
//! for why this preserves the experiments' behaviour.
//!
//! Real files can still be used: convert them to the canonical CSV layout
//! of [`crate::csv_io`] (values, then an integer label column) and load
//! with [`UciDataset::load_csv`].

use crate::csv_io;
use crate::synth::{GaussianClassSpec, MixtureGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::Path;
use udm_core::UncertainDataset;

/// The four datasets of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UciDataset {
    /// Adult ("census income"): 6 quantitative dims, 2 classes (≈76/24),
    /// 32 561 rows in the real file.
    Adult,
    /// Ionosphere: 34 quantitative dims, 2 classes (≈64/36), 351 rows —
    /// the paper's widest dataset, used for the dimensionality sweep
    /// (Fig. 10).
    Ionosphere,
    /// Wisconsin breast cancer (original): 9 quantitative dims, 2 classes
    /// (≈65/35), 683 complete rows.
    BreastCancer,
    /// Forest cover type: 10 quantitative dims, 7 classes (priors heavily
    /// skewed to types 1–2), 581 012 rows — the paper's large dataset.
    ForestCover,
}

impl UciDataset {
    /// All four datasets, in the order the paper lists them.
    pub const ALL: [UciDataset; 4] = [
        UciDataset::Adult,
        UciDataset::Ionosphere,
        UciDataset::BreastCancer,
        UciDataset::ForestCover,
    ];

    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            UciDataset::Adult => "adult",
            UciDataset::Ionosphere => "ionosphere",
            UciDataset::BreastCancer => "breast_cancer",
            UciDataset::ForestCover => "forest_cover",
        }
    }

    /// Number of quantitative dimensions used by the paper.
    pub fn dim(self) -> usize {
        match self {
            UciDataset::Adult => 6,
            UciDataset::Ionosphere => 34,
            UciDataset::BreastCancer => 9,
            UciDataset::ForestCover => 10,
        }
    }

    /// Number of classes.
    pub fn num_classes(self) -> usize {
        match self {
            UciDataset::ForestCover => 7,
            _ => 2,
        }
    }

    /// Size of the real dataset (used as the default generation size for
    /// small sets; forest-cover experiments subsample).
    pub fn real_size(self) -> usize {
        match self {
            UciDataset::Adult => 32_561,
            UciDataset::Ionosphere => 351,
            UciDataset::BreastCancer => 683,
            UciDataset::ForestCover => 581_012,
        }
    }

    /// A practical default generation size for experiments: the real size
    /// for the small sets, a 20k subsample for adult/forest-cover scale.
    pub fn default_size(self) -> usize {
        match self {
            UciDataset::Adult => 8_000,
            UciDataset::Ionosphere => 351,
            UciDataset::BreastCancer => 683,
            UciDataset::ForestCover => 10_000,
        }
    }

    /// Class priors of the real dataset (normalized).
    pub fn class_priors(self) -> Vec<f64> {
        match self {
            UciDataset::Adult => vec![0.759, 0.241],
            UciDataset::Ionosphere => vec![0.641, 0.359],
            UciDataset::BreastCancer => vec![0.650, 0.350],
            // covertype class distribution (types 1..7)
            UciDataset::ForestCover => vec![0.365, 0.488, 0.062, 0.005, 0.016, 0.030, 0.035],
        }
    }

    /// Number of Gaussian sub-clusters per class in the stand-in. Real
    /// UCI classes are multi-modal; this is what makes the error
    /// experiments behave as in the paper (sharp kernels on displaced
    /// points fabricate cross-class structure, which only the
    /// error-adjusted method suppresses).
    fn subclusters_per_class(self) -> usize {
        match self {
            UciDataset::Adult => 10,
            UciDataset::Ionosphere => 4,
            UciDataset::BreastCancer => 3,
            UciDataset::ForestCover => 8,
        }
    }

    /// Half-width of the cube sub-cluster centres are drawn from, in
    /// units of the within-sub-cluster std (≈1). Larger = easier classes.
    /// Tuned so zero-error accuracies land near the paper's operating
    /// points.
    fn spread(self) -> f64 {
        match self {
            UciDataset::Adult => 2.6,
            UciDataset::Ionosphere => 2.2,
            UciDataset::BreastCancer => 4.5,
            UciDataset::ForestCover => 2.6,
        }
    }

    /// Magnitude of the per-class *coarse* mean offset (per dimension,
    /// uniform in `[-tilt, tilt]`). Real classes differ both in fine
    /// multi-modal structure and in coarse location; the coarse component
    /// is what survives heavy smoothing and keeps the error-adjusted
    /// classifier above the prior at large error levels.
    fn class_tilt(self) -> f64 {
        match self {
            UciDataset::Adult => 1.1,
            UciDataset::Ionosphere => 1.2,
            UciDataset::BreastCancer => 2.0,
            UciDataset::ForestCover => 0.9,
        }
    }

    /// Fixed structure seed: class means/stds are a stable property of the
    /// stand-in "population", independent of the sampling seed.
    fn structure_seed(self) -> u64 {
        match self {
            UciDataset::Adult => 0xADu64,
            UciDataset::Ionosphere => 0x10u64,
            UciDataset::BreastCancer => 0xBCu64,
            UciDataset::ForestCover => 0xFCu64,
        }
    }

    /// Builds the stand-in mixture for this dataset.
    ///
    /// Each class is a union of a per-dataset number of Gaussian
    /// sub-clusters whose centres are drawn (deterministically, from the
    /// structure seed) uniformly inside the cube `[-spread, spread]^d`,
    /// with per-dimension stds in `[0.7, 1.3]` to mimic heterogeneous real
    /// attributes. Sub-clusters of different classes interleave, producing
    /// the fine-grained multi-modal structure of real data. Sub-cluster
    /// weights within a class are drawn from `U[0.5, 1.5]` and scaled so
    /// the class priors match the real dataset's.
    pub fn mixture(self) -> MixtureGenerator {
        let dim = self.dim();
        let priors = self.class_priors();
        let spread = self.spread();
        let m = self.subclusters_per_class();
        let mut rng = StdRng::seed_from_u64(self.structure_seed());
        let mut components = Vec::with_capacity(priors.len() * m);
        let mut labels = Vec::with_capacity(priors.len() * m);
        let tilt = self.class_tilt();
        for (class_idx, &prior) in priors.iter().enumerate() {
            // Coarse per-class offset: survives smoothing.
            let offset: Vec<f64> = (0..dim)
                .map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * tilt)
                .collect();
            // Raw sub-cluster weights, normalized to the class prior.
            let raw: Vec<f64> = (0..m).map(|_| 0.5 + rng.gen::<f64>()).collect();
            let total: f64 = raw.iter().sum();
            for &w in &raw {
                let mean: Vec<f64> = (0..dim)
                    .map(|j| offset[j] + (rng.gen::<f64>() * 2.0 - 1.0) * spread)
                    .collect();
                let std: Vec<f64> = (0..dim).map(|_| 0.7 + 0.6 * rng.gen::<f64>()).collect();
                components.push(GaussianClassSpec {
                    mean,
                    std,
                    weight: prior * w / total,
                });
                // Class counts are single digits; u32 cannot overflow.
                #[allow(clippy::cast_possible_truncation)]
                labels.push(udm_core::ClassLabel(class_idx as u32));
            }
        }
        MixtureGenerator::new_with_labels(dim, components, labels)
            // udm-lint: allow(UDM001) specs are drawn from bounded finite ranges, validation cannot fail
            .expect("profile specs are valid by construction")
    }

    /// Generates `n` labelled exact points of the stand-in, deterministic
    /// under `seed`. Apply [`crate::noise::ErrorModel`] afterwards to
    /// inject the paper's errors.
    pub fn generate(self, n: usize, seed: u64) -> UncertainDataset {
        self.mixture().generate(n, seed)
    }

    /// Loads a real dataset converted to the canonical CSV layout
    /// (`#udm` header or `values…,label` with explicit schema — see
    /// [`crate::csv_io`]). Parse failures are reported with file, line
    /// and column via [`crate::DataError`].
    pub fn load_csv(self, path: &Path) -> crate::DataResult<UncertainDataset> {
        csv_io::read_csv_file(path, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udm_core::ClassLabel;

    #[test]
    fn shapes_match_published_profiles() {
        assert_eq!(UciDataset::Adult.dim(), 6);
        assert_eq!(UciDataset::Ionosphere.dim(), 34);
        assert_eq!(UciDataset::BreastCancer.dim(), 9);
        assert_eq!(UciDataset::ForestCover.dim(), 10);
        assert_eq!(UciDataset::ForestCover.num_classes(), 7);
        assert_eq!(UciDataset::Adult.num_classes(), 2);
    }

    #[test]
    fn priors_are_normalized() {
        for ds in UciDataset::ALL {
            let total: f64 = ds.class_priors().iter().sum();
            assert!((total - 1.0).abs() < 0.02, "{}: {total}", ds.name());
            assert_eq!(ds.class_priors().len(), ds.num_classes());
        }
    }

    #[test]
    fn generation_matches_shape() {
        for ds in UciDataset::ALL {
            let d = ds.generate(500, 42);
            assert_eq!(d.dim(), ds.dim(), "{}", ds.name());
            assert_eq!(d.len(), 500);
            assert!(d.labels().len() <= ds.num_classes());
        }
    }

    #[test]
    fn generation_is_deterministic_and_stable_across_sizes() {
        let a = UciDataset::Adult.generate(100, 7);
        let b = UciDataset::Adult.generate(100, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn structure_is_independent_of_sampling_seed() {
        // Same population: per-class means should agree across seeds.
        let a = UciDataset::BreastCancer.generate(4000, 1);
        let b = UciDataset::BreastCancer.generate(4000, 2);
        let pa = a.partition_by_class();
        let pb = b.partition_by_class();
        for l in pa.labels() {
            let ma = pa.class(l).unwrap().summaries()[0].mean;
            let mb = pb.class(l).unwrap().summaries()[0].mean;
            assert!((ma - mb).abs() < 0.3, "{l}: {ma} vs {mb}");
        }
    }

    #[test]
    fn forest_cover_priors_skewed_to_first_two() {
        let d = UciDataset::ForestCover.generate(10_000, 3);
        let part = d.partition_by_class();
        let big = part.prior(ClassLabel(0)) + part.prior(ClassLabel(1));
        assert!(big > 0.8, "combined prior of classes 0,1 = {big}");
    }

    #[test]
    fn names_unique() {
        let names: std::collections::HashSet<_> =
            UciDataset::ALL.iter().map(|d| d.name()).collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn load_csv_roundtrip() {
        let d = UciDataset::BreastCancer.generate(20, 5);
        let dir = std::env::temp_dir().join("udm_uci_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bc.csv");
        crate::csv_io::write_csv_file(&path, &d).unwrap();
        let back = UciDataset::BreastCancer.load_csv(&path).unwrap();
        assert_eq!(back, d);
        std::fs::remove_file(&path).ok();
    }
}
