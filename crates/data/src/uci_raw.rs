//! Parsers for the *raw* UCI repository file formats of the paper's four
//! datasets, so the real data can be dropped in when available.
//!
//! Each parser extracts exactly the quantitative attributes the paper
//! uses, attaches the class label, and (where the raw format marks
//! missing values, as breast-cancer does with `?`) returns an
//! [`IncompleteDataset`] ready for error-tracked imputation.
//!
//! | file | format | parser |
//! |---|---|---|
//! | `adult.data` | 14 mixed columns + `<=50K`/`>50K` label | [`parse_adult`] |
//! | `ionosphere.data` | 34 numeric + `g`/`b` label | [`parse_ionosphere`] |
//! | `breast-cancer-wisconsin.data` | id + 9 numeric (`?` = missing) + `2`/`4` | [`parse_breast_cancer`] |
//! | `covtype.data` | 54 numeric + label `1..7` | [`parse_covertype`] |

use crate::error::{DataError, DataResult};
use crate::imputation::{IncompleteDataset, IncompleteRow};
use std::io::{BufRead, BufReader, Read};
use udm_core::{ClassLabel, UdmError, UncertainDataset, UncertainPoint};

fn read_lines<R: Read>(reader: R) -> impl Iterator<Item = (usize, String)> {
    BufReader::new(reader)
        .lines()
        .map_while(|l| l.ok())
        .enumerate()
        .map(|(i, l)| (i + 1, l))
        .filter(|(_, l)| !l.trim().is_empty())
}

/// Parses `adult.data`: keeps the 6 quantitative columns the paper uses
/// (age, fnlwgt, education-num, capital-gain, capital-loss,
/// hours-per-week; indices 0, 2, 4, 10, 11, 12) and maps `<=50K` → 0,
/// `>50K` → 1. Rows with `?` in a kept column are skipped (the raw adult
/// marks missingness only in categorical columns, but be permissive).
pub fn parse_adult<R: Read>(reader: R) -> DataResult<UncertainDataset> {
    const KEEP: [usize; 6] = [0, 2, 4, 10, 11, 12];
    let mut out = UncertainDataset::new(KEEP.len());
    for (line_no, line) in read_lines(reader) {
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() < 15 {
            return Err(DataError::parse(
                line_no,
                format!("expected 15 fields, found {}", fields.len()),
            ));
        }
        if KEEP.iter().any(|&k| fields[k] == "?") {
            continue;
        }
        let mut values = Vec::with_capacity(KEEP.len());
        for &k in &KEEP {
            values.push(fields[k].parse::<f64>().map_err(|e| {
                DataError::parse_at(line_no, k + 1, format!("bad number {:?}: {e}", fields[k]))
            })?);
        }
        let label = match fields[14].trim_end_matches('.') {
            "<=50K" => ClassLabel(0),
            ">50K" => ClassLabel(1),
            other => {
                return Err(DataError::parse_at(
                    line_no,
                    15,
                    format!("unknown label {other:?}"),
                ))
            }
        };
        out.push(UncertainPoint::exact(values)?.with_label(label))?;
    }
    if out.is_empty() {
        return Err(DataError::Invalid(UdmError::EmptyDataset));
    }
    Ok(out)
}

/// Parses `ionosphere.data`: 34 numeric columns, label `g` (good → 0) or
/// `b` (bad → 1).
pub fn parse_ionosphere<R: Read>(reader: R) -> DataResult<UncertainDataset> {
    let mut out = UncertainDataset::new(34);
    for (line_no, line) in read_lines(reader) {
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != 35 {
            return Err(DataError::parse(
                line_no,
                format!("expected 35 fields, found {}", fields.len()),
            ));
        }
        let values = fields[..34]
            .iter()
            .enumerate()
            .map(|(i, s)| {
                s.parse::<f64>().map_err(|e| {
                    DataError::parse_at(line_no, i + 1, format!("bad number {s:?}: {e}"))
                })
            })
            .collect::<DataResult<Vec<_>>>()?;
        let label = match fields[34] {
            "g" => ClassLabel(0),
            "b" => ClassLabel(1),
            other => {
                return Err(DataError::parse_at(
                    line_no,
                    35,
                    format!("unknown label {other:?}"),
                ))
            }
        };
        out.push(UncertainPoint::exact(values)?.with_label(label))?;
    }
    if out.is_empty() {
        return Err(DataError::Invalid(UdmError::EmptyDataset));
    }
    Ok(out)
}

/// Parses `breast-cancer-wisconsin.data`: sample id (dropped), 9 numeric
/// attributes where `?` marks a missing value, class `2` (benign → 0) or
/// `4` (malignant → 1). Returns an [`IncompleteDataset`] — run
/// [`crate::imputation::impute_mean`] to obtain error-tracked uncertain
/// points, exactly the paper's imputation use case.
pub fn parse_breast_cancer<R: Read>(reader: R) -> DataResult<IncompleteDataset> {
    let mut out = IncompleteDataset::new(9);
    for (line_no, line) in read_lines(reader) {
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != 11 {
            return Err(DataError::parse(
                line_no,
                format!("expected 11 fields, found {}", fields.len()),
            ));
        }
        let values = fields[1..10]
            .iter()
            .enumerate()
            .map(|(i, s)| {
                if *s == "?" {
                    Ok(None)
                } else {
                    s.parse::<f64>().map(Some).map_err(|e| {
                        DataError::parse_at(line_no, i + 2, format!("bad number {s:?}: {e}"))
                    })
                }
            })
            .collect::<DataResult<Vec<_>>>()?;
        let label = match fields[10] {
            "2" => ClassLabel(0),
            "4" => ClassLabel(1),
            other => {
                return Err(DataError::parse_at(
                    line_no,
                    11,
                    format!("unknown class {other:?}"),
                ))
            }
        };
        out.push(IncompleteRow {
            values,
            label: Some(label),
        })?;
    }
    if out.is_empty() {
        return Err(DataError::Invalid(UdmError::EmptyDataset));
    }
    Ok(out)
}

/// Parses `covtype.data`: keeps the 10 quantitative columns (the paper
/// uses only quantitative attributes; columns 10..54 are one-hot
/// wilderness/soil indicators) and the cover type `1..7` mapped to labels
/// `0..6`.
pub fn parse_covertype<R: Read>(reader: R) -> DataResult<UncertainDataset> {
    let mut out = UncertainDataset::new(10);
    for (line_no, line) in read_lines(reader) {
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != 55 {
            return Err(DataError::parse(
                line_no,
                format!("expected 55 fields, found {}", fields.len()),
            ));
        }
        let values = fields[..10]
            .iter()
            .enumerate()
            .map(|(i, s)| {
                s.parse::<f64>().map_err(|e| {
                    DataError::parse_at(line_no, i + 1, format!("bad number {s:?}: {e}"))
                })
            })
            .collect::<DataResult<Vec<_>>>()?;
        let cover_type: u32 = fields[54]
            .parse()
            .map_err(|e| DataError::parse_at(line_no, 55, format!("bad cover type: {e}")))?;
        if !(1..=7).contains(&cover_type) {
            return Err(DataError::parse_at(
                line_no,
                55,
                format!("cover type {cover_type} out of range"),
            ));
        }
        out.push(UncertainPoint::exact(values)?.with_label(ClassLabel(cover_type - 1)))?;
    }
    if out.is_empty() {
        return Err(DataError::Invalid(UdmError::EmptyDataset));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adult_extracts_quantitative_columns() {
        let raw = "39, State-gov, 77516, Bachelors, 13, Never-married, Adm-clerical, \
                   Not-in-family, White, Male, 2174, 0, 40, United-States, <=50K\n\
                   50, Self-emp-not-inc, 83311, Bachelors, 13, Married-civ-spouse, \
                   Exec-managerial, Husband, White, Male, 0, 0, 13, United-States, >50K\n";
        let d = parse_adult(raw.as_bytes()).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.dim(), 6);
        assert_eq!(
            d.point(0).values(),
            &[39.0, 77516.0, 13.0, 2174.0, 0.0, 40.0]
        );
        assert_eq!(d.point(0).label(), Some(ClassLabel(0)));
        assert_eq!(d.point(1).label(), Some(ClassLabel(1)));
    }

    #[test]
    fn adult_handles_test_file_trailing_dot_labels() {
        // adult.test suffixes labels with '.'
        let raw = "39, X, 1, X, 2, X, X, X, X, X, 3, 4, 5, X, >50K.\n";
        let d = parse_adult(raw.as_bytes()).unwrap();
        assert_eq!(d.point(0).label(), Some(ClassLabel(1)));
    }

    #[test]
    fn adult_rejects_garbage() {
        assert!(parse_adult("1,2,3\n".as_bytes()).is_err());
        let bad_label = "39, X, 1, X, 2, X, X, X, X, X, 3, 4, 5, X, maybe\n";
        assert!(parse_adult(bad_label.as_bytes()).is_err());
        assert!(parse_adult("".as_bytes()).is_err());
    }

    #[test]
    fn ionosphere_parses_and_maps_labels() {
        let mut row: Vec<String> = (0..34).map(|i| format!("{}", i as f64 * 0.01)).collect();
        row.push("g".into());
        let line1 = row.join(",");
        row[34] = "b".into();
        let line2 = row.join(",");
        let raw = format!("{line1}\n{line2}\n");
        let d = parse_ionosphere(raw.as_bytes()).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.dim(), 34);
        assert_eq!(d.point(0).label(), Some(ClassLabel(0)));
        assert_eq!(d.point(1).label(), Some(ClassLabel(1)));
    }

    #[test]
    fn ionosphere_validates_arity() {
        assert!(parse_ionosphere("1,2,3,g\n".as_bytes()).is_err());
    }

    #[test]
    fn breast_cancer_tracks_missing_cells() {
        let raw = "1000025,5,1,1,1,2,1,3,1,1,2\n\
                   1002945,5,4,4,5,7,10,3,2,1,2\n\
                   1057013,8,4,5,1,2,?,7,3,1,4\n";
        let d = parse_breast_cancer(raw.as_bytes()).unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.dim(), 9);
        assert!(d.rows()[2].values[5].is_none());
        assert_eq!(d.rows()[2].label, Some(ClassLabel(1)));
        assert!(d.missing_fraction() > 0.0);
        // And it flows into the imputation pipeline:
        let imputed = crate::imputation::impute_mean(&d).unwrap();
        assert!(imputed.point(2).error(5) > 0.0);
    }

    #[test]
    fn breast_cancer_rejects_unknown_class() {
        let raw = "1,5,1,1,1,2,1,3,1,1,9\n";
        assert!(parse_breast_cancer(raw.as_bytes()).is_err());
    }

    #[test]
    fn covertype_keeps_first_ten_columns() {
        let mut fields: Vec<String> = (0..54).map(|i| format!("{i}")).collect();
        fields.push("3".into());
        let raw = fields.join(",") + "\n";
        let d = parse_covertype(raw.as_bytes()).unwrap();
        assert_eq!(d.dim(), 10);
        assert_eq!(d.point(0).value(9), 9.0);
        assert_eq!(d.point(0).label(), Some(ClassLabel(2)));
    }

    #[test]
    fn covertype_validates_label_range() {
        let mut fields: Vec<String> = (0..54).map(|i| format!("{i}")).collect();
        fields.push("8".into());
        let raw = fields.join(",") + "\n";
        assert!(parse_covertype(raw.as_bytes()).is_err());
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let raw = "1000025,5,1,1,1,2,1,3,1,1,2\nbroken\n";
        let e = parse_breast_cancer(raw.as_bytes()).unwrap_err();
        assert_eq!(e.line(), Some(2), "{e}");
    }

    #[test]
    fn cell_errors_carry_columns() {
        let raw = "1000025,5,1,bad,1,2,1,3,1,1,2\n";
        let e = parse_breast_cancer(raw.as_bytes()).unwrap_err();
        assert_eq!(e.line(), Some(1));
        assert_eq!(e.column(), Some(4), "{e}");
        let raw = "39, X, oops, X, 2, X, X, X, X, X, 3, 4, 5, X, >50K\n";
        let e = parse_adult(raw.as_bytes()).unwrap_err();
        assert_eq!(e.column(), Some(3), "{e}");
    }
}
