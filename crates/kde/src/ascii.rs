//! Terminal rendering of 1-D density curves.
//!
//! Turns a [`Grid1D`] into a column chart of unicode block glyphs — the
//! quickest way to *see* what the error adjustment does to a density, in
//! examples, the CLI, and doc output. Pure string formatting; no
//! terminal control codes.

use crate::grid::Grid1D;

/// Eight vertical block glyphs, shortest to tallest.
const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders the grid as a single-line sparkline (one glyph per sample).
///
/// Empty grids render as an empty string; a constant-zero grid renders
/// as all-minimum glyphs.
pub fn sparkline(grid: &Grid1D) -> String {
    let max = grid.ys.iter().cloned().fold(0.0f64, f64::max);
    if max <= 0.0 {
        return BLOCKS[0].to_string().repeat(grid.ys.len());
    }
    grid.ys
        .iter()
        .map(|&y| {
            // y/max ∈ [0, 1], so the rounded level fits in usize.
            #[allow(clippy::cast_possible_truncation)]
            let level = ((y / max) * (BLOCKS.len() - 1) as f64).round() as usize;
            BLOCKS[level.min(BLOCKS.len() - 1)]
        })
        .collect()
}

/// Renders the grid as a multi-row chart of the given height, with an
/// axis line annotated by the x-range and the peak density.
pub fn chart(grid: &Grid1D, height: usize) -> String {
    let height = height.max(1);
    let max = grid.ys.iter().cloned().fold(0.0f64, f64::max);
    let mut out = String::new();
    for row in (0..height).rev() {
        let threshold_lo = row as f64 / height as f64;
        for &y in &grid.ys {
            let frac = if max > 0.0 { y / max } else { 0.0 };
            let cell = if frac <= threshold_lo {
                ' '
            } else {
                let within = ((frac - threshold_lo) * height as f64).clamp(0.0, 1.0);
                // within is clamped to [0, 1]; the level fits in usize.
                #[allow(clippy::cast_possible_truncation)]
                let level = (within * (BLOCKS.len() - 1) as f64).round() as usize;
                BLOCKS[level.min(BLOCKS.len() - 1)]
            };
            out.push(cell);
        }
        out.push('\n');
    }
    let (lo, hi) = match (grid.xs.first(), grid.xs.last()) {
        (Some(&a), Some(&b)) => (a, b),
        _ => (0.0, 0.0),
    };
    out.push_str(&format!(
        "{lo:<12.4}{:>width$.4}  (peak density {max:.4})\n",
        hi,
        width = grid.xs.len().saturating_sub(12).max(1)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(ys: &[f64]) -> Grid1D {
        Grid1D {
            xs: (0..ys.len()).map(|i| i as f64).collect(),
            ys: ys.to_vec(),
        }
    }

    #[test]
    fn sparkline_peaks_at_max() {
        let s = sparkline(&grid(&[0.0, 0.5, 1.0, 0.5, 0.0]));
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 5);
        assert_eq!(chars[2], '█');
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[0], chars[4]);
    }

    #[test]
    fn sparkline_handles_all_zero() {
        let s = sparkline(&grid(&[0.0, 0.0, 0.0]));
        assert_eq!(s, "▁▁▁");
    }

    #[test]
    fn sparkline_empty_grid() {
        assert_eq!(sparkline(&grid(&[])), "");
    }

    #[test]
    fn chart_has_requested_height_plus_axis() {
        let c = chart(&grid(&[0.1, 0.9, 0.4]), 4);
        assert_eq!(c.lines().count(), 5);
        // tallest column reaches the top row
        let top = c.lines().next().unwrap();
        assert!(top.chars().any(|ch| ch != ' '), "{c}");
    }

    #[test]
    fn chart_axis_mentions_peak() {
        let c = chart(&grid(&[0.25, 0.5]), 2);
        assert!(c.contains("peak density 0.5"), "{c}");
    }

    #[test]
    fn renders_real_density() {
        use crate::estimator::{ErrorKde, KdeConfig};
        use udm_core::{UncertainDataset, UncertainPoint};
        let d = UncertainDataset::from_points(vec![
            UncertainPoint::new(vec![0.0], vec![0.2]).unwrap(),
            UncertainPoint::new(vec![5.0], vec![1.5]).unwrap(),
        ])
        .unwrap();
        let kde = ErrorKde::fit(&d, KdeConfig::default()).unwrap();
        let g = Grid1D::from_kde(&kde, 0, -3.0, 9.0, 60).unwrap();
        let s = sparkline(&g);
        assert_eq!(s.chars().count(), 60);
        assert!(s.contains('█'));
    }
}
