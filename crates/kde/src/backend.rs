//! The pluggable density-backend seam.
//!
//! Every density consumer in the workspace — the subspace classifier's
//! roll-up oracle, naive density Bayes, the serving daemon's batcher and
//! request handlers, the CLI drills — evaluates densities through one
//! object-safe trait, [`DensityBackend`], instead of a hard-wired
//! estimator type. The trait is deliberately small: point density,
//! subspace density (optionally convolved with the query's own error),
//! a many-subspaces batch entry, and an *optional* kernel-column cache
//! hook for backends whose arithmetic factorizes per dimension.
//!
//! [`BackendSpec`] is the accuracy-vs-latency knob that selects an
//! implementation:
//!
//! | spec | cost per query | error |
//! |------|----------------|-------|
//! | `Exact` | `O(q·d)` | none — bit-identical to the direct estimator |
//! | `Coreset { eps }` | `O(q'·d)`, `q' ≤ q` | certified `L∞ ≤ eps · f_max` |
//! | `Hbe { eps, tau }` | near-field + `O(1/(eps²·√tau))` samples | stochastic, deterministic per (model, query) |
//!
//! The concrete implementations live in `udm_microcluster::backend`
//! (they need the micro-cluster estimator, which this crate cannot see);
//! this module owns the trait, the spec grammar shared by the CLI and
//! the HTTP API (`exact | coreset:EPS | hbe:EPS[,TAU]`), and the
//! per-backend observability helpers.

use serde::{Deserialize, Serialize};
use udm_core::{Result, Subspace, UdmError};

use crate::columns::KernelColumns;

/// Default mass fraction `tau` below which the HBE estimator stops
/// caring about relative accuracy (Charikar–Siminelakis style density
/// floor).
pub const DEFAULT_HBE_TAU: f64 = 1e-2;

/// Which density implementation a consumer wants, with its accuracy
/// knobs. Parsed from / rendered to the shared CLI & HTTP grammar
/// `exact | coreset:EPS | hbe:EPS[,TAU]`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum BackendSpec {
    /// The exact micro-cluster mixture — every pseudo-point, every query.
    #[default]
    Exact,
    /// Deterministic coreset: pseudo-points greedily merged while a
    /// certified `L∞` error budget of `eps · f_max` holds, where
    /// `f_max` is the mixture's peak-density upper bound.
    Coreset {
        /// Relative `L∞` budget in `(0, 1)`.
        eps: f64,
    },
    /// Hashing-based estimator: exact near-field via per-dimension grid
    /// hashing plus weighted importance sampling of the far field.
    Hbe {
        /// Target relative error on densities above the `tau` floor.
        eps: f64,
        /// Density floor as a fraction of the peak-density bound.
        tau: f64,
    },
}

impl BackendSpec {
    /// The backend's short name — the metrics key and the display/parse
    /// discriminant.
    pub fn name(&self) -> &'static str {
        match self {
            BackendSpec::Exact => "exact",
            BackendSpec::Coreset { .. } => "coreset",
            BackendSpec::Hbe { .. } => "hbe",
        }
    }

    /// Validates the accuracy knobs.
    ///
    /// # Errors
    ///
    /// [`UdmError::InvalidConfig`] when `eps` or `tau` leaves `(0, 1)`.
    pub fn validate(&self) -> Result<()> {
        let check = |what: &str, v: f64| -> Result<()> {
            if !(v.is_finite() && v > 0.0 && v < 1.0) {
                return Err(UdmError::InvalidConfig(format!(
                    "backend {what} must be in (0, 1), got {v}"
                )));
            }
            Ok(())
        };
        match self {
            BackendSpec::Exact => Ok(()),
            BackendSpec::Coreset { eps } => check("eps", *eps),
            BackendSpec::Hbe { eps, tau } => {
                check("eps", *eps)?;
                check("tau", *tau)
            }
        }
    }

    /// Parses the shared spec grammar: `exact`, `coreset:EPS` or
    /// `hbe:EPS[,TAU]` (TAU defaults to [`DEFAULT_HBE_TAU`]).
    ///
    /// # Errors
    ///
    /// [`UdmError::InvalidConfig`] on an unknown backend name, a
    /// malformed number, or knobs outside `(0, 1)`.
    pub fn parse(text: &str) -> Result<Self> {
        let bad = |msg: String| UdmError::InvalidConfig(msg);
        let (head, args) = match text.split_once(':') {
            Some((h, a)) => (h, Some(a)),
            None => (text, None),
        };
        let num = |what: &str, s: &str| -> Result<f64> {
            s.trim()
                .parse::<f64>()
                .map_err(|_| bad(format!("backend spec `{text}`: bad {what} `{s}`")))
        };
        let spec = match (head.trim(), args) {
            ("exact", None) => BackendSpec::Exact,
            ("exact", Some(_)) => {
                return Err(bad(format!(
                    "backend spec `{text}`: exact takes no arguments"
                )))
            }
            ("coreset", Some(a)) => BackendSpec::Coreset {
                eps: num("eps", a)?,
            },
            ("coreset", None) => {
                return Err(bad(format!("backend spec `{text}`: coreset needs `:EPS`")))
            }
            ("hbe", Some(a)) => match a.split_once(',') {
                Some((e, t)) => BackendSpec::Hbe {
                    eps: num("eps", e)?,
                    tau: num("tau", t)?,
                },
                None => BackendSpec::Hbe {
                    eps: num("eps", a)?,
                    tau: DEFAULT_HBE_TAU,
                },
            },
            ("hbe", None) => {
                return Err(bad(format!(
                    "backend spec `{text}`: hbe needs `:EPS[,TAU]`"
                )))
            }
            (other, _) => {
                return Err(bad(format!(
                "unknown density backend `{other}` (expected exact | coreset:EPS | hbe:EPS[,TAU])"
            )))
            }
        };
        spec.validate()?;
        Ok(spec)
    }
}

impl std::fmt::Display for BackendSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendSpec::Exact => write!(f, "exact"),
            BackendSpec::Coreset { eps } => write!(f, "coreset:{eps}"),
            BackendSpec::Hbe { eps, tau } => write!(f, "hbe:{eps},{tau}"),
        }
    }
}

/// An object-safe density estimator.
///
/// All query coordinates are in *full-dimensional* space; subspace
/// queries select which dimensions participate. `query_errors`, when
/// present, convolves each kernel with the query point's own
/// per-dimension error ψ(x) (the paper's Figure 1 scenario).
///
/// Implementations must validate their inputs (finite values, matching
/// arity) on every public entry point — enforced by lint rule UDM005,
/// which covers `DensityBackend` impl blocks.
pub trait DensityBackend: Send + Sync + std::fmt::Debug {
    /// The backend's short name (`"exact"`, `"coreset"`, `"hbe"`) —
    /// used as the per-backend metrics key.
    fn name(&self) -> &'static str;

    /// Dimensionality of the underlying model.
    fn dim(&self) -> usize;

    /// Density at `x` over the full dimensionality.
    ///
    /// # Errors
    ///
    /// Arity mismatches, non-finite inputs, evaluation failures.
    fn density(&self, x: &[f64]) -> Result<f64>;

    /// Density at `x` over `subspace`, optionally convolved with the
    /// query's own per-dimension error.
    ///
    /// # Errors
    ///
    /// As [`DensityBackend::density`], plus empty/out-of-range subspaces.
    fn density_subspace(
        &self,
        x: &[f64],
        query_errors: Option<&[f64]>,
        subspace: Subspace,
    ) -> Result<f64>;

    /// Densities at `x` over many subspaces in one call — the batch
    /// entry the roll-up and benches use; backends amortize per-query
    /// work (column caches, hash lookups, sample draws) across it.
    ///
    /// # Errors
    ///
    /// As [`DensityBackend::density_subspace`]; the first failing
    /// subspace aborts the batch.
    fn density_subspaces(
        &self,
        x: &[f64],
        query_errors: Option<&[f64]>,
        subspaces: &[Subspace],
    ) -> Result<Vec<f64>>;

    /// The per-query kernel-column cache, for backends whose density
    /// factorizes into per-dimension kernel columns (`Exact`,
    /// `Coreset`). `Ok(None)` means the backend has no columnar form
    /// (`Hbe`) and callers should fall back to per-subspace queries.
    ///
    /// # Errors
    ///
    /// Arity mismatches and non-finite inputs.
    fn kernel_columns(
        &self,
        x: &[f64],
        query_errors: Option<&[f64]>,
    ) -> Result<Option<KernelColumns>> {
        let _ = (x, query_errors);
        Ok(None)
    }
}

/// Records one density query against a backend: a per-backend query
/// counter and a per-backend latency histogram, keyed by
/// [`DensityBackend::name`]. The metric names are static per backend so
/// the lock-light registry's literal-keyed fast path applies.
pub fn record_query(backend: &str, seconds: f64) {
    if !udm_observe::enabled() {
        return;
    }
    let (queries, latency) = match backend {
        "exact" => (
            "udm_backend_exact_queries_total",
            "udm_backend_exact_query_seconds",
        ),
        "coreset" => (
            "udm_backend_coreset_queries_total",
            "udm_backend_coreset_query_seconds",
        ),
        "hbe" => (
            "udm_backend_hbe_queries_total",
            "udm_backend_hbe_query_seconds",
        ),
        _ => (
            "udm_backend_other_queries_total",
            "udm_backend_other_query_seconds",
        ),
    };
    udm_observe::global().counter(queries).inc();
    udm_observe::global().histogram(latency).observe(seconds);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_and_validates() {
        assert_eq!(BackendSpec::parse("exact").unwrap(), BackendSpec::Exact);
        assert_eq!(
            BackendSpec::parse("coreset:0.1").unwrap(),
            BackendSpec::Coreset { eps: 0.1 }
        );
        assert_eq!(
            BackendSpec::parse("hbe:0.2").unwrap(),
            BackendSpec::Hbe {
                eps: 0.2,
                tau: DEFAULT_HBE_TAU
            }
        );
        assert_eq!(
            BackendSpec::parse("hbe:0.2,0.05").unwrap(),
            BackendSpec::Hbe {
                eps: 0.2,
                tau: 0.05
            }
        );
        for bad in [
            "",
            "fast",
            "coreset",
            "coreset:",
            "coreset:2.0",
            "coreset:nan",
            "hbe",
            "hbe:0",
            "hbe:0.1,9",
            "exact:1",
        ] {
            assert!(BackendSpec::parse(bad).is_err(), "accepted `{bad}`");
        }
        for spec in [
            BackendSpec::Exact,
            BackendSpec::Coreset { eps: 0.25 },
            BackendSpec::Hbe {
                eps: 0.125,
                tau: 0.5,
            },
        ] {
            let text = spec.to_string();
            assert_eq!(BackendSpec::parse(&text).unwrap(), spec, "via `{text}`");
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(BackendSpec::Exact.name(), "exact");
        assert_eq!(BackendSpec::Coreset { eps: 0.1 }.name(), "coreset");
        assert_eq!(BackendSpec::Hbe { eps: 0.1, tau: 0.1 }.name(), "hbe");
    }

    #[test]
    fn record_query_touches_registry() {
        record_query("exact", 0.001);
        record_query("unknown-backend", 0.001);
        let snap = udm_observe::Snapshot::capture();
        if udm_observe::enabled() {
            assert!(snap
                .counters
                .iter()
                .any(|c| c.name == "udm_backend_exact_queries_total"));
        }
    }
}
