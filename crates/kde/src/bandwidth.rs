//! Bandwidth (smoothing parameter) selection.
//!
//! The paper uses the Silverman approximation rule (§2, citing reference \[11\]):
//! `h = 1.06 · σ · N^{−1/5}`, chosen per dimension with each dimension's own
//! `σ`. This module provides that rule plus Scott's rule and a fixed
//! bandwidth for ablation.

use serde::{Deserialize, Serialize};
use udm_core::{quantile::interquartile_range, Result, RunningStats, UdmError, UncertainDataset};

/// Silverman's *robust* rule: `h = 0.9 · min(σ, IQR/1.34) · n^{−1/5}` —
/// the full form recommended in Silverman (1986) for possibly
/// heavy-tailed or multi-modal data.
pub fn silverman_robust_bandwidth(sigma: f64, iqr: f64, n: usize) -> f64 {
    debug_assert!(sigma >= 0.0 && iqr >= 0.0);
    if n == 0 {
        return f64::MIN_POSITIVE.sqrt();
    }
    let spread = if iqr > 0.0 {
        sigma.min(iqr / 1.34)
    } else {
        sigma
    };
    let h = 0.9 * spread * (n as f64).powf(-0.2);
    if h > 0.0 {
        h
    } else {
        1e-9
    }
}

/// Silverman's rule of thumb: `h = 1.06 · σ · n^{−1/5}`.
///
/// Returns a small positive floor when `σ = 0` (degenerate column) so the
/// kernel never collapses to a point mass.
pub fn silverman_bandwidth(sigma: f64, n: usize) -> f64 {
    debug_assert!(sigma >= 0.0);
    if n == 0 {
        return f64::MIN_POSITIVE.sqrt();
    }
    let h = 1.06 * sigma * (n as f64).powf(-0.2);
    if h > 0.0 {
        h
    } else {
        // Degenerate (constant) column: any tiny positive width works; the
        // density is a spike at the constant.
        1e-9
    }
}

/// Scott's rule: `h = σ · n^{−1/(d+4)}` where `d` is the evaluation
/// dimensionality.
pub fn scott_bandwidth(sigma: f64, n: usize, d: usize) -> f64 {
    debug_assert!(sigma >= 0.0);
    if n == 0 {
        return f64::MIN_POSITIVE.sqrt();
    }
    let h = sigma * (n as f64).powf(-1.0 / (d as f64 + 4.0));
    if h > 0.0 {
        h
    } else {
        1e-9
    }
}

/// Strategy for choosing per-dimension bandwidths `h_j`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum BandwidthRule {
    /// The paper's choice: `h_j = 1.06 · σ_j · N^{−1/5}`.
    #[default]
    Silverman,
    /// Scott's multivariate rule: `h_j = σ_j · N^{−1/(d+4)}`.
    Scott,
    /// A single fixed bandwidth used for every dimension.
    Fixed(f64),
    /// Silverman scaled by a multiplicative factor (for
    /// over/under-smoothing ablations).
    ScaledSilverman(f64),
    /// Silverman's robust variant `0.9·min(σ, IQR/1.34)·N^{−1/5}`, which
    /// resists heavy tails and multi-modality. Requires raw column access
    /// (falls back to plain Silverman in
    /// [`BandwidthRule::bandwidths_from_sigmas`], where only σ is known).
    SilvermanRobust,
    /// Per-dimension leave-one-out cross-validation: for each dimension,
    /// the Silverman bandwidth is rescaled by the factor (from a fixed
    /// log-spaced grid in `[1/4, 4]`) that maximizes the leave-one-out
    /// log-likelihood of the column under the error-adjusted kernel.
    /// Cost is `O(d·N²)` — use on datasets up to a few thousand points,
    /// or compute once and cache via [`BandwidthRule::Fixed`]. Requires
    /// raw data (falls back to plain Silverman in
    /// [`BandwidthRule::bandwidths_from_sigmas`]).
    SilvermanLooCv,
}

/// Scale grid tried by [`BandwidthRule::SilvermanLooCv`] (log-spaced).
const LOO_CV_GRID: [f64; 9] = [0.25, 0.354, 0.5, 0.707, 1.0, 1.414, 2.0, 2.828, 4.0];

/// Leave-one-out log-likelihood of a 1-D error-adjusted KDE on the given
/// column with bandwidth `h` (−∞ when some point has zero leave-one-out
/// density).
fn loo_log_likelihood(values: &[f64], errors: &[f64], h: f64) -> f64 {
    use crate::error_kernel::{ErrorKernelForm, GaussianErrorKernel};
    let kernel = GaussianErrorKernel::new(ErrorKernelForm::Normalized);
    let n = values.len();
    if n < 2 {
        return f64::NEG_INFINITY;
    }
    let mut total = 0.0;
    for i in 0..n {
        let mut density = 0.0;
        for j in 0..n {
            if i != j {
                density += kernel.evaluate(values[i] - values[j], h, errors[j]);
            }
        }
        density /= (n - 1) as f64;
        if density <= 0.0 {
            return f64::NEG_INFINITY;
        }
        total += density.ln();
    }
    total
}

impl BandwidthRule {
    /// Computes per-dimension bandwidths for a dataset.
    ///
    /// # Errors
    ///
    /// [`UdmError::EmptyDataset`] when the dataset has no points, or
    /// [`UdmError::InvalidValue`] for a non-positive fixed bandwidth.
    pub fn bandwidths(&self, dataset: &UncertainDataset) -> Result<Vec<f64>> {
        if dataset.is_empty() {
            return Err(UdmError::EmptyDataset);
        }
        let n = dataset.len();
        let d = dataset.dim();
        match *self {
            BandwidthRule::Fixed(h) => {
                if !(h.is_finite() && h > 0.0) {
                    return Err(UdmError::InvalidValue {
                        what: "fixed bandwidth",
                        value: h,
                    });
                }
                Ok(vec![h; d])
            }
            BandwidthRule::Silverman => Ok(self
                .per_dim_sigmas(dataset)
                .into_iter()
                .map(|s| silverman_bandwidth(s, n))
                .collect()),
            BandwidthRule::Scott => Ok(self
                .per_dim_sigmas(dataset)
                .into_iter()
                .map(|s| scott_bandwidth(s, n, d))
                .collect()),
            BandwidthRule::ScaledSilverman(factor) => {
                if !(factor.is_finite() && factor > 0.0) {
                    return Err(UdmError::InvalidValue {
                        what: "bandwidth scale factor",
                        value: factor,
                    });
                }
                Ok(self
                    .per_dim_sigmas(dataset)
                    .into_iter()
                    .map(|s| silverman_bandwidth(s, n) * factor)
                    .collect())
            }
            BandwidthRule::SilvermanRobust => {
                let sigmas = self.per_dim_sigmas(dataset);
                (0..d)
                    .map(|j| {
                        let column = dataset.column_values(j)?;
                        let iqr = interquartile_range(&column)?;
                        Ok(silverman_robust_bandwidth(sigmas[j], iqr, n))
                    })
                    .collect()
            }
            BandwidthRule::SilvermanLooCv => {
                let sigmas = self.per_dim_sigmas(dataset);
                (0..d)
                    .map(|j| {
                        let values = dataset.column_values(j)?;
                        let errors = dataset.column_errors(j)?;
                        let base = silverman_bandwidth(sigmas[j], n);
                        let mut best = base;
                        let mut best_ll = f64::NEG_INFINITY;
                        for &scale in &LOO_CV_GRID {
                            let h = base * scale;
                            let ll = loo_log_likelihood(&values, &errors, h);
                            if ll > best_ll {
                                best_ll = ll;
                                best = h;
                            }
                        }
                        Ok(best)
                    })
                    .collect()
            }
        }
    }

    /// Bandwidths from externally supplied per-dimension σ and count; used
    /// by the micro-cluster estimator where the σ come from cluster feature
    /// statistics rather than raw columns.
    pub fn bandwidths_from_sigmas(&self, sigmas: &[f64], n: usize) -> Result<Vec<f64>> {
        if n == 0 {
            return Err(UdmError::EmptyDataset);
        }
        let d = sigmas.len();
        match *self {
            BandwidthRule::Fixed(h) => {
                if !(h.is_finite() && h > 0.0) {
                    return Err(UdmError::InvalidValue {
                        what: "fixed bandwidth",
                        value: h,
                    });
                }
                Ok(vec![h; d])
            }
            BandwidthRule::Silverman => {
                Ok(sigmas.iter().map(|&s| silverman_bandwidth(s, n)).collect())
            }
            BandwidthRule::Scott => Ok(sigmas.iter().map(|&s| scott_bandwidth(s, n, d)).collect()),
            BandwidthRule::ScaledSilverman(factor) => {
                if !(factor.is_finite() && factor > 0.0) {
                    return Err(UdmError::InvalidValue {
                        what: "bandwidth scale factor",
                        value: factor,
                    });
                }
                Ok(sigmas
                    .iter()
                    .map(|&s| silverman_bandwidth(s, n) * factor)
                    .collect())
            }
            // Raw columns are unavailable here; σ-based Silverman is the
            // closest well-defined fallback.
            BandwidthRule::SilvermanRobust | BandwidthRule::SilvermanLooCv => {
                Ok(sigmas.iter().map(|&s| silverman_bandwidth(s, n)).collect())
            }
        }
    }

    fn per_dim_sigmas(&self, dataset: &UncertainDataset) -> Vec<f64> {
        (0..dataset.dim())
            .map(|j| {
                let mut st = RunningStats::new();
                for p in dataset.iter() {
                    st.push(p.value(j));
                }
                st.std_population()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udm_core::UncertainPoint;

    fn dataset(n: usize) -> UncertainDataset {
        let points = (0..n)
            .map(|i| UncertainPoint::exact(vec![i as f64, 2.0 * i as f64]).unwrap())
            .collect();
        UncertainDataset::from_points(points).unwrap()
    }

    #[test]
    fn silverman_formula() {
        let h = silverman_bandwidth(2.0, 32);
        let expected = 1.06 * 2.0 * (32.0f64).powf(-0.2);
        assert!((h - expected).abs() < 1e-12);
    }

    #[test]
    fn silverman_shrinks_with_n() {
        assert!(silverman_bandwidth(1.0, 10) > silverman_bandwidth(1.0, 10_000));
    }

    #[test]
    fn silverman_degenerate_sigma_is_positive() {
        assert!(silverman_bandwidth(0.0, 100) > 0.0);
    }

    #[test]
    fn silverman_zero_n_is_positive() {
        assert!(silverman_bandwidth(1.0, 0) > 0.0);
    }

    #[test]
    fn scott_formula() {
        let h = scott_bandwidth(3.0, 100, 2);
        let expected = 3.0 * (100.0f64).powf(-1.0 / 6.0);
        assert!((h - expected).abs() < 1e-12);
    }

    #[test]
    fn rule_silverman_per_dimension() {
        let d = dataset(50);
        let hs = BandwidthRule::Silverman.bandwidths(&d).unwrap();
        assert_eq!(hs.len(), 2);
        // dim 1 has twice the sigma of dim 0, so twice the bandwidth.
        assert!((hs[1] / hs[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn rule_fixed_uniform() {
        let d = dataset(10);
        let hs = BandwidthRule::Fixed(0.7).bandwidths(&d).unwrap();
        assert_eq!(hs, vec![0.7, 0.7]);
    }

    #[test]
    fn rule_fixed_rejects_bad_values() {
        let d = dataset(10);
        assert!(BandwidthRule::Fixed(0.0).bandwidths(&d).is_err());
        assert!(BandwidthRule::Fixed(-1.0).bandwidths(&d).is_err());
        assert!(BandwidthRule::Fixed(f64::NAN).bandwidths(&d).is_err());
    }

    #[test]
    fn rule_scaled_silverman() {
        let d = dataset(50);
        let base = BandwidthRule::Silverman.bandwidths(&d).unwrap();
        let doubled = BandwidthRule::ScaledSilverman(2.0).bandwidths(&d).unwrap();
        for (b, s) in base.iter().zip(doubled.iter()) {
            assert!((s / b - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn rule_rejects_empty_dataset() {
        let empty = UncertainDataset::new(3);
        assert!(BandwidthRule::Silverman.bandwidths(&empty).is_err());
    }

    #[test]
    fn bandwidths_from_sigmas_matches_column_path() {
        let d = dataset(50);
        let sigmas: Vec<f64> = d.summaries().iter().map(|s| s.std).collect();
        let from_cols = BandwidthRule::Silverman.bandwidths(&d).unwrap();
        let from_sig = BandwidthRule::Silverman
            .bandwidths_from_sigmas(&sigmas, d.len())
            .unwrap();
        for (a, b) in from_cols.iter().zip(from_sig.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn robust_rule_uses_smaller_of_sigma_and_iqr() {
        // Heavy-tailed: IQR/1.34 < sigma, robust picks the IQR term.
        let h = silverman_robust_bandwidth(10.0, 1.34, 100);
        let expected = 0.9 * 1.0 * (100.0f64).powf(-0.2);
        assert!((h - expected).abs() < 1e-12);
        // Light-tailed: sigma smaller.
        let h = silverman_robust_bandwidth(0.5, 13.4, 100);
        let expected = 0.9 * 0.5 * (100.0f64).powf(-0.2);
        assert!((h - expected).abs() < 1e-12);
    }

    #[test]
    fn robust_rule_degenerate_iqr_falls_back_to_sigma() {
        let h = silverman_robust_bandwidth(2.0, 0.0, 50);
        let expected = 0.9 * 2.0 * (50.0f64).powf(-0.2);
        assert!((h - expected).abs() < 1e-12);
    }

    #[test]
    fn rule_silverman_robust_on_dataset() {
        let d = dataset(100);
        let hs = BandwidthRule::SilvermanRobust.bandwidths(&d).unwrap();
        assert_eq!(hs.len(), 2);
        assert!(hs.iter().all(|&h| h > 0.0));
        // Uniform-ish column: robust is tighter than plain Silverman here.
        let plain = BandwidthRule::Silverman.bandwidths(&d).unwrap();
        assert!(hs[0] < plain[0]);
    }

    #[test]
    fn loo_cv_picks_reasonable_bandwidth_on_gaussian_data() {
        // For roughly Gaussian data, the LOO-CV optimum is near the
        // Silverman bandwidth (within the grid's reach).
        let points = (0..120)
            .map(|i| {
                // deterministic, roughly normal via sum of uniforms
                let u = |k: usize| (((i * 31 + k * 17) % 97) as f64) / 96.0;
                let v = (u(1) + u(2) + u(3) + u(4) - 2.0) * 1.7;
                UncertainPoint::exact(vec![v]).unwrap()
            })
            .collect();
        let d = UncertainDataset::from_points(points).unwrap();
        let silverman = BandwidthRule::Silverman.bandwidths(&d).unwrap()[0];
        let cv = BandwidthRule::SilvermanLooCv.bandwidths(&d).unwrap()[0];
        assert!(cv > 0.0);
        let ratio = cv / silverman;
        assert!((0.24..=4.01).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn loo_cv_prefers_narrow_bandwidth_for_clustered_data() {
        // Two tight clumps: over-smoothing merges them, so CV should pick
        // a scale at or below Silverman (which sees the full spread).
        let mut points = Vec::new();
        for i in 0..40 {
            let o = (i % 8) as f64 * 0.01;
            points.push(UncertainPoint::exact(vec![o]).unwrap());
            points.push(UncertainPoint::exact(vec![10.0 + o]).unwrap());
        }
        let d = UncertainDataset::from_points(points).unwrap();
        let silverman = BandwidthRule::Silverman.bandwidths(&d).unwrap()[0];
        let cv = BandwidthRule::SilvermanLooCv.bandwidths(&d).unwrap()[0];
        assert!(cv < silverman, "cv {cv} vs silverman {silverman}");
    }

    #[test]
    fn loo_cv_fallback_from_sigmas_is_silverman() {
        let a = BandwidthRule::SilvermanLooCv
            .bandwidths_from_sigmas(&[2.0], 100)
            .unwrap();
        let b = BandwidthRule::Silverman
            .bandwidths_from_sigmas(&[2.0], 100)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn scott_smaller_than_silverman_in_low_dim() {
        // For d=1, Scott = σ n^{-1/5}, Silverman = 1.06 σ n^{-1/5}.
        let s = scott_bandwidth(1.0, 100, 1);
        let sil = silverman_bandwidth(1.0, 100);
        assert!(s < sil);
    }
}
