//! Closed-form CDF and interval-mass queries for one-dimensional
//! error-based Gaussian mixtures.
//!
//! Because both the standard and the error-based kernels are Gaussians,
//! the mixture CDF is a weighted sum of normal CDFs and can be evaluated
//! exactly (to `erf` precision) — no quadrature required. This backs
//! probability queries such as "what is the probability mass of the
//! error-adjusted density below a threshold", which uncertain-data
//! applications use for range predicates.

use crate::estimator::ErrorKde;
use udm_core::{Result, UdmError};

/// `Φ(z)`, the standard normal CDF, via a high-accuracy `erf`
/// approximation (Abramowitz & Stegun 7.1.26; |error| < 1.5e-7).
pub fn standard_normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// The error function `erf(x)` (A&S 7.1.26 polynomial approximation).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// CDF of a 1-D error-adjusted KDE at `x`: the average of per-point
/// normal CDFs with standard deviations `√(h² + ψ_i²)`.
///
/// # Errors
///
/// [`UdmError::InvalidConfig`] if the estimator is not one-dimensional.
pub fn kde_cdf(kde: &ErrorKde<'_>, x: f64) -> Result<f64> {
    if kde.data().dim() != 1 {
        return Err(UdmError::InvalidConfig(
            "closed-form CDF requires a 1-dimensional estimator".into(),
        ));
    }
    let h = kde.bandwidths()[0];
    let mut total = 0.0;
    for p in kde.data().iter() {
        let psi = if kde.is_error_adjusted() {
            p.error(0)
        } else {
            0.0
        };
        let sd = (h * h + psi * psi).sqrt();
        total += if sd > 0.0 {
            standard_normal_cdf((x - p.value(0)) / sd)
        } else if x >= p.value(0) {
            1.0
        } else {
            0.0
        };
    }
    Ok(total / kde.data().len() as f64)
}

/// Probability mass of the mixture in `[lo, hi]`.
///
/// # Errors
///
/// Same conditions as [`kde_cdf`]; additionally rejects `lo > hi`.
pub fn kde_interval_mass(kde: &ErrorKde<'_>, lo: f64, hi: f64) -> Result<f64> {
    if lo > hi {
        return Err(UdmError::InvalidValue {
            what: "interval bounds (lo > hi)",
            value: lo - hi,
        });
    }
    Ok((kde_cdf(kde, hi)? - kde_cdf(kde, lo)?).max(0.0))
}

/// Inverts the CDF by bisection: the `q`-quantile of the mixture.
///
/// # Errors
///
/// Same conditions as [`kde_cdf`]; rejects `q` outside `(0, 1)`.
pub fn kde_quantile(kde: &ErrorKde<'_>, q: f64) -> Result<f64> {
    if !(q.is_finite() && q > 0.0 && q < 1.0) {
        return Err(UdmError::InvalidValue {
            what: "quantile level",
            value: q,
        });
    }
    if kde.data().dim() != 1 {
        return Err(UdmError::InvalidConfig(
            "closed-form quantile requires a 1-dimensional estimator".into(),
        ));
    }
    // Bracket: widest point ± enough deviations.
    let h = kde.bandwidths()[0];
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for p in kde.data().iter() {
        let sd = (h * h + p.error(0) * p.error(0)).sqrt();
        lo = lo.min(p.value(0) - 10.0 * sd - 1.0);
        hi = hi.max(p.value(0) + 10.0 * sd + 1.0);
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if kde_cdf(kde, mid)? < q {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::KdeConfig;
    use udm_core::{UncertainDataset, UncertainPoint};

    fn noisy_1d() -> UncertainDataset {
        UncertainDataset::from_points(vec![
            UncertainPoint::new(vec![0.0], vec![0.5]).unwrap(),
            UncertainPoint::new(vec![2.0], vec![0.0]).unwrap(),
            UncertainPoint::new(vec![5.0], vec![1.5]).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn erf_known_values() {
        // The A&S polynomial has absolute error < 1.5e-7, also at 0.
        assert!(erf(0.0).abs() < 1e-6);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(3.0) - 0.999_977_91).abs() < 1e-6);
    }

    #[test]
    fn normal_cdf_symmetry() {
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-6);
        for z in [0.5, 1.0, 2.5] {
            let s = standard_normal_cdf(z) + standard_normal_cdf(-z);
            assert!((s - 1.0).abs() < 1e-7, "z={z}");
        }
    }

    #[test]
    fn cdf_limits_and_monotonicity() {
        let d = noisy_1d();
        let kde = ErrorKde::fit(&d, KdeConfig::default()).unwrap();
        assert!(kde_cdf(&kde, -100.0).unwrap() < 1e-6);
        assert!(kde_cdf(&kde, 100.0).unwrap() > 1.0 - 1e-6);
        let mut last = -1.0;
        for i in -20..=20 {
            let v = kde_cdf(&kde, i as f64 * 0.5).unwrap();
            assert!(v >= last - 1e-12);
            last = v;
        }
    }

    #[test]
    fn cdf_matches_quadrature_of_pdf() {
        let d = noisy_1d();
        let kde = ErrorKde::fit(&d, KdeConfig::default()).unwrap();
        let by_quadrature =
            crate::quadrature::trapezoid(|x| kde.density(&[x]).unwrap(), -30.0, 3.0, 60_001);
        let closed_form = kde_cdf(&kde, 3.0).unwrap();
        assert!(
            (by_quadrature - closed_form).abs() < 1e-5,
            "{by_quadrature} vs {closed_form}"
        );
    }

    #[test]
    fn interval_mass_totals_one() {
        let d = noisy_1d();
        let kde = ErrorKde::fit(&d, KdeConfig::default()).unwrap();
        let m = kde_interval_mass(&kde, -100.0, 100.0).unwrap();
        assert!((m - 1.0).abs() < 1e-6);
        assert!(kde_interval_mass(&kde, 5.0, 2.0).is_err());
    }

    #[test]
    fn quantile_inverts_cdf() {
        let d = noisy_1d();
        let kde = ErrorKde::fit(&d, KdeConfig::default()).unwrap();
        for q in [0.1, 0.5, 0.9] {
            let x = kde_quantile(&kde, q).unwrap();
            let back = kde_cdf(&kde, x).unwrap();
            assert!((back - q).abs() < 1e-6, "q={q}: cdf(quantile)={back}");
        }
        assert!(kde_quantile(&kde, 0.0).is_err());
        assert!(kde_quantile(&kde, 1.0).is_err());
    }

    #[test]
    fn rejects_multidimensional_estimators() {
        let d = UncertainDataset::from_points(vec![
            UncertainPoint::exact(vec![0.0, 1.0]).unwrap(),
            UncertainPoint::exact(vec![1.0, 0.0]).unwrap(),
        ])
        .unwrap();
        let kde = ErrorKde::fit(&d, KdeConfig::default()).unwrap();
        assert!(kde_cdf(&kde, 0.0).is_err());
        assert!(kde_quantile(&kde, 0.5).is_err());
    }

    #[test]
    fn unadjusted_cdf_ignores_errors() {
        let d = noisy_1d();
        let adj = ErrorKde::fit(&d, KdeConfig::error_adjusted()).unwrap();
        let unadj = ErrorKde::fit(&d, KdeConfig::unadjusted()).unwrap();
        // Just left of the precise point at 2.0, the adjusted mixture has
        // fatter tails from the noisy points, so CDFs differ.
        let a = kde_cdf(&adj, 1.0).unwrap();
        let u = kde_cdf(&unadj, 1.0).unwrap();
        assert!((a - u).abs() > 1e-4, "{a} vs {u}");
    }
}
