//! Chunked, autovectorizer-friendly inner loops for the columnar
//! (structure-of-arrays) kernel path.
//!
//! The columnar layout in [`crate::columns`] turns subspace density
//! evaluation into three primitive loops over contiguous `f64` slices:
//! seeding a per-row product accumulator, multiplying one dimension's
//! kernel column into it, and a final ordered sum. The multiply loops
//! are written with fixed-width `chunks_exact` bodies so the
//! autovectorizer can lift them to SIMD (the 4/8-wide bodies have no
//! bounds checks, no cross-iteration dependence, and a single
//! load-multiply-store per lane); the final sum is deliberately a
//! plain sequential loop because its evaluation *order* is part of the
//! bit-for-bit contract with the scalar reference path.
//!
//! [`gaussian_kernel_row`] is the column *build* counterpart: one
//! dimension's kernel evaluations for every row, from precomputed
//! prefactors and variances, generic over the exponential so a single
//! monomorphized loop serves both the exact (`f64::exp`) and
//! bounded-error ([`crate::fastexp::fast_exp`]) builds.
//!
//! [`with_scratch`] supplies the per-thread product buffer so the hot
//! path performs no per-call allocation; re-entrant use (or a poisoned
//! borrow) falls back to a fresh allocation rather than panicking.

use std::cell::RefCell;

/// Width of the unrolled multiply bodies. Eight f64 lanes span one or
/// two SIMD registers on every x86-64 feature level (SSE2 → AVX-512).
const UNROLL: usize = 8;

thread_local! {
    /// Per-thread product accumulator reused across subspace queries.
    static SCRATCH: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with a zero-copy per-thread scratch slice of length `len`.
///
/// The slice contents are unspecified on entry; callers must
/// initialize it (see [`seed_products`]). Falls back to a fresh
/// allocation when the thread-local buffer is already borrowed
/// (re-entrant use), so this never panics.
pub fn with_scratch<R>(len: usize, f: impl FnOnce(&mut [f64]) -> R) -> R {
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut buf) => {
            if buf.len() < len {
                buf.resize(len, 0.0);
            }
            f(&mut buf[..len])
        }
        Err(_) => f(&mut vec![0.0; len]),
    })
}

/// Seeds the per-row product accumulator: row weights when given
/// (micro-cluster counts `n(C_i)`), else `1.0` — exactly the value the
/// scalar reference loop starts each row's running product from.
pub fn seed_products(acc: &mut [f64], weights: Option<&[f64]>) {
    match weights {
        Some(w) => {
            let n = acc.len().min(w.len());
            acc[..n].copy_from_slice(&w[..n]);
        }
        None => acc.fill(1.0),
    }
}

/// `acc[i] *= col[i]` over the common prefix, 8-wide unrolled.
///
/// Per-row multiplication order is preserved by construction: the
/// caller invokes this once per subspace dimension in ascending order,
/// so row `r` sees exactly the multiply sequence of the scalar loop.
pub fn mul_assign(acc: &mut [f64], col: &[f64]) {
    let n = acc.len().min(col.len());
    let mut a = acc[..n].chunks_exact_mut(UNROLL);
    let mut c = col[..n].chunks_exact(UNROLL);
    for (av, cv) in a.by_ref().zip(c.by_ref()) {
        av[0] *= cv[0];
        av[1] *= cv[1];
        av[2] *= cv[2];
        av[3] *= cv[3];
        av[4] *= cv[4];
        av[5] *= cv[5];
        av[6] *= cv[6];
        av[7] *= cv[7];
    }
    for (av, cv) in a.into_remainder().iter_mut().zip(c.remainder()) {
        *av *= cv;
    }
}

/// Sequential sum in ascending index order.
///
/// NOT a pairwise/unrolled reduction on purpose: the scalar reference
/// path accumulates `sum += prod` row by row, and reassociating the
/// sum would break the bit-for-bit cache contract.
pub fn ordered_sum(xs: &[f64]) -> f64 {
    let mut sum = 0.0;
    for &x in xs {
        sum += x;
    }
    sum
}

/// One dimension's kernel column: for every row `r`,
/// `out[r] = pref[r] · exp(−(xj − cen[r])² / two_var[r])`.
///
/// These are exactly the operations (and operand order) of
/// `GaussianErrorKernel::evaluate` with its prefactor and doubled
/// variance precomputed, so the column is bit-identical to `rows`
/// scalar kernel calls when `exp` is the same function. Generic over
/// the exponential: monomorphized once with `f64::exp` (or
/// [`crate::fastexp::hot_exp`]) for the exact build and once with
/// [`crate::fastexp::fast_exp`] for the bounded-error build, keeping
/// the call inlineable in both.
pub fn gaussian_kernel_row<F: Fn(f64) -> f64 + Copy>(
    out: &mut [f64],
    xj: f64,
    cen: &[f64],
    pref: &[f64],
    two_var: &[f64],
    exp: F,
) {
    let n = out.len().min(cen.len()).min(pref.len()).min(two_var.len());
    let mut o = out[..n].chunks_exact_mut(4);
    let mut c = cen[..n].chunks_exact(4);
    let mut p = pref[..n].chunks_exact(4);
    let mut v = two_var[..n].chunks_exact(4);
    for (((ov, cv), pv), vv) in o.by_ref().zip(c.by_ref()).zip(p.by_ref()).zip(v.by_ref()) {
        let d0 = xj - cv[0];
        let d1 = xj - cv[1];
        let d2 = xj - cv[2];
        let d3 = xj - cv[3];
        ov[0] = pv[0] * exp(-d0 * d0 / vv[0]);
        ov[1] = pv[1] * exp(-d1 * d1 / vv[1]);
        ov[2] = pv[2] * exp(-d2 * d2 / vv[2]);
        ov[3] = pv[3] * exp(-d3 * d3 / vv[3]);
    }
    let (o_rem, c_rem, p_rem, v_rem) = (
        o.into_remainder(),
        c.remainder(),
        p.remainder(),
        v.remainder(),
    );
    for i in 0..o_rem.len() {
        let d = xj - c_rem[i];
        o_rem[i] = p_rem[i] * exp(-d * d / v_rem[i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_assign_matches_scalar_for_all_lengths() {
        for n in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 64, 100] {
            let mut acc: Vec<f64> = (0..n).map(|i| 1.0 + i as f64 * 0.5).collect();
            let col: Vec<f64> = (0..n).map(|i| 0.9 + i as f64 * 0.01).collect();
            let expected: Vec<f64> = acc.iter().zip(&col).map(|(a, c)| a * c).collect();
            mul_assign(&mut acc, &col);
            for (got, want) in acc.iter().zip(&expected) {
                assert_eq!(got.to_bits(), want.to_bits());
            }
        }
    }

    #[test]
    fn seed_products_weights_and_ones() {
        let mut acc = vec![0.0; 4];
        seed_products(&mut acc, Some(&[2.0, 3.0, 4.0, 5.0]));
        assert_eq!(acc, vec![2.0, 3.0, 4.0, 5.0]);
        seed_products(&mut acc, None);
        assert_eq!(acc, vec![1.0; 4]);
    }

    #[test]
    fn ordered_sum_is_sequential() {
        // Grouping-sensitive values: any reassociation would differ.
        let xs: Vec<f64> = (0..1000).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let mut expected = 0.0;
        for &x in &xs {
            expected += x;
        }
        assert_eq!(ordered_sum(&xs).to_bits(), expected.to_bits());
    }

    #[test]
    fn gaussian_row_matches_scalar_kernel_ops() {
        for n in [1usize, 3, 4, 5, 8, 13] {
            let cen: Vec<f64> = (0..n).map(|i| i as f64 * 0.7 - 1.0).collect();
            let pref: Vec<f64> = (0..n).map(|i| 0.2 + i as f64 * 0.05).collect();
            let two_var: Vec<f64> = (0..n).map(|i| 0.5 + i as f64 * 0.3).collect();
            let xj = 0.37;
            let mut out = vec![0.0; n];
            gaussian_kernel_row(&mut out, xj, &cen, &pref, &two_var, f64::exp);
            for i in 0..n {
                let d = xj - cen[i];
                let want = pref[i] * (-d * d / two_var[i]).exp();
                assert_eq!(out[i].to_bits(), want.to_bits(), "row {i} of {n}");
            }
        }
    }

    #[test]
    fn scratch_reuse_and_reentrancy() {
        let a = with_scratch(8, |buf| {
            buf.fill(2.0);
            // Re-entrant use must not panic; it gets a fresh buffer.
            let inner = with_scratch(4, |b2| {
                b2.fill(3.0);
                ordered_sum(b2)
            });
            ordered_sum(buf) + inner
        });
        assert_eq!(a, 16.0 + 12.0);
        // The outer buffer grows monotonically and is reused.
        let b = with_scratch(2, |buf| buf.len());
        assert_eq!(b, 2);
    }
}
