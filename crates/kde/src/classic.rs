//! Classic (error-free) multivariate KDE, generic over the kernel
//! function — the Eq. 1 estimator in its textbook form.
//!
//! [`crate::ErrorKde`] is Gaussian-only because only the Gaussian has the
//! closed-form error convolution of Eq. 3. When data is exact (or errors
//! are deliberately ignored) any kernel works; this estimator provides
//! the product-kernel form with a caller-chosen [`Kernel`], which is also
//! how the compact-support kernels (Epanechnikov, uniform, triangular)
//! become usable for fast density queries: points outside the support
//! radius contribute exactly zero.

use crate::bandwidth::BandwidthRule;
use crate::kernel::Kernel;
use udm_core::num::{ensure_finite_slice, f64_from_usize};
use udm_core::{Result, Subspace, UdmError, UncertainDataset};

/// Product-kernel density estimator `f(x) = (1/N)·Σ_i Π_j K_{h_j}(x_j − X_i^j)`.
#[derive(Debug)]
pub struct ClassicKde<'a, K: Kernel> {
    data: &'a UncertainDataset,
    bandwidths: Vec<f64>,
    kernel: K,
}

impl<'a, K: Kernel> ClassicKde<'a, K> {
    /// Fits the estimator with the given kernel and bandwidth rule.
    pub fn fit(data: &'a UncertainDataset, kernel: K, rule: BandwidthRule) -> Result<Self> {
        let bandwidths = rule.bandwidths(data)?;
        Ok(ClassicKde {
            data,
            bandwidths,
            kernel,
        })
    }

    /// The fitted per-dimension bandwidths.
    pub fn bandwidths(&self) -> &[f64] {
        &self.bandwidths
    }

    /// Density at `x` over the full dimensionality.
    pub fn density(&self, x: &[f64]) -> Result<f64> {
        if x.len() != self.data.dim() {
            return Err(UdmError::DimensionMismatch {
                expected: self.data.dim(),
                actual: x.len(),
            });
        }
        self.density_subspace(x, Subspace::full(self.data.dim())?)
    }

    /// Density at `x` over the subspace `S` (full-dimensional query
    /// coordinates, only `S`'s components read).
    pub fn density_subspace(&self, x: &[f64], subspace: Subspace) -> Result<f64> {
        if x.len() != self.data.dim() {
            return Err(UdmError::DimensionMismatch {
                expected: self.data.dim(),
                actual: x.len(),
            });
        }
        subspace.validate_for(self.data.dim())?;
        if subspace.is_empty() {
            return Err(UdmError::InvalidConfig(
                "cannot evaluate a density over the empty subspace".into(),
            ));
        }
        if self.data.is_empty() {
            return Err(UdmError::EmptyDataset);
        }
        ensure_finite_slice("query coordinate", x)?;
        let support = self.kernel.support_radius();
        let mut sum = 0.0;
        for p in self.data.iter() {
            let mut prod = 1.0;
            for j in subspace.dims() {
                let diff = x[j] - p.value(j);
                if let Some(r) = support {
                    if diff.abs() > r * self.bandwidths[j] {
                        prod = 0.0;
                        break;
                    }
                }
                prod *= self.kernel.evaluate(diff, self.bandwidths[j]);
                // udm-lint: allow(UDM002) exact underflow short-circuit (bit-for-bit cache contract)
                if prod == 0.0 {
                    break;
                }
            }
            sum += prod;
        }
        Ok(sum / f64_from_usize(self.data.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::{ErrorKde, KdeConfig};
    use crate::kernel::{EpanechnikovKernel, GaussianKernel, TriangularKernel, UniformKernel};
    use crate::quadrature::trapezoid;
    use udm_core::UncertainPoint;

    fn data_1d() -> UncertainDataset {
        UncertainDataset::from_points(
            [0.0, 0.5, 1.0, 3.0, 3.5, 4.0]
                .iter()
                .map(|&v| UncertainPoint::exact(vec![v]).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn gaussian_classic_matches_unadjusted_error_kde() {
        let d = data_1d();
        let classic = ClassicKde::fit(&d, GaussianKernel, BandwidthRule::Silverman).unwrap();
        let error_kde = ErrorKde::fit(&d, KdeConfig::unadjusted()).unwrap();
        // The error-based path routes its exp through hot_exp, so under
        // fast-math it may differ from the libm-exp classic kernel by
        // the documented fast_exp budget (amplified by the prefactor).
        let tol = if cfg!(feature = "fast-math") {
            1e-6
        } else {
            1e-12
        };
        for x in [-1.0, 0.0, 0.7, 2.0, 4.2] {
            let a = classic.density(&[x]).unwrap();
            let b = error_kde.density(&[x]).unwrap();
            assert!((a - b).abs() < tol, "x={x}: {a} vs {b}");
        }
    }

    #[test]
    fn all_kernels_integrate_to_one() {
        let d = data_1d();
        macro_rules! check {
            ($k:expr) => {
                let kde = ClassicKde::fit(&d, $k, BandwidthRule::Silverman).unwrap();
                let mass = trapezoid(|x| kde.density(&[x]).unwrap(), -20.0, 25.0, 40_001);
                assert!((mass - 1.0).abs() < 1e-3, "{:?}: {mass}", $k);
            };
        }
        check!(GaussianKernel);
        check!(EpanechnikovKernel);
        check!(UniformKernel);
        check!(TriangularKernel);
    }

    #[test]
    fn compact_kernels_vanish_far_from_data() {
        let d = data_1d();
        let kde = ClassicKde::fit(&d, EpanechnikovKernel, BandwidthRule::Silverman).unwrap();
        assert_eq!(kde.density(&[100.0]).unwrap(), 0.0);
        assert!(kde.density(&[0.5]).unwrap() > 0.0);
    }

    #[test]
    fn subspace_and_validation() {
        let d = UncertainDataset::from_points(vec![
            UncertainPoint::exact(vec![0.0, 5.0]).unwrap(),
            UncertainPoint::exact(vec![1.0, 6.0]).unwrap(),
        ])
        .unwrap();
        let kde = ClassicKde::fit(&d, GaussianKernel, BandwidthRule::Silverman).unwrap();
        let s = Subspace::singleton(1).unwrap();
        let a = kde.density_subspace(&[999.0, 5.5], s).unwrap();
        assert!(a > 0.0);
        assert!(kde.density(&[0.0]).is_err());
        assert!(kde.density_subspace(&[0.0, 0.0], Subspace::EMPTY).is_err());
    }

    #[test]
    fn epanechnikov_peak_higher_than_gaussian_at_mode() {
        // Same bandwidth: the compact kernel concentrates more mass near
        // its centre than the Gaussian.
        let d = UncertainDataset::from_points(vec![
            UncertainPoint::exact(vec![0.0]).unwrap(),
            UncertainPoint::exact(vec![0.0]).unwrap(),
        ])
        .unwrap();
        let g = ClassicKde::fit(&d, GaussianKernel, BandwidthRule::Fixed(1.0)).unwrap();
        let e = ClassicKde::fit(&d, EpanechnikovKernel, BandwidthRule::Fixed(1.0)).unwrap();
        assert!(e.density(&[0.0]).unwrap() > g.density(&[0.0]).unwrap());
    }
}
