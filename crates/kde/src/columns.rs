//! Factorized kernel-column cache for the subspace roll-up hot path.
//!
//! The product form of the error-based density (Eq. 4) factorizes over
//! dimensions: for a fixed query `x`, the kernel value of point `i` in
//! dimension `j` does not depend on which subspace is being evaluated.
//! The roll-up classifier asks for `g(x, S, D)` over *many* subspaces of
//! the same query, so recomputing `Q'_{h_j}(x_j − X_i^j, ψ_j)` per
//! subspace repeats the expensive `exp` calls `O(#subspaces)` times.
//!
//! [`KernelColumns`] materializes the full `n × d` matrix of
//! per-dimension kernel evaluations once per query (flat row-major,
//! SoA-friendly); every subsequent subspace density is then a sum over
//! rows of a product over the cached columns selected by `S` — no
//! further kernel evaluations.
//!
//! The cached path replicates the naive loop exactly: the running
//! product starts from the row weight, multiplies the cached values in
//! ascending dimension order, and short-circuits on `prod == 0.0`
//! (gradual underflow makes hard zeros common in high dimensions).
//! Because the cached values come from the *same* kernel calls the naive
//! loop would make, the result is bit-for-bit identical — the naive
//! `density_subspace` remains available as the correctness oracle.

use udm_core::{Result, Subspace, UdmError};

/// Per-query cache of kernel evaluations, one row per (pseudo-)point and
/// one column per dimension.
///
/// Built by [`crate::ErrorKde::kernel_columns`] for the exact estimator
/// and by `MicroClusterKde::kernel_columns` (in `udm-microcluster`) for
/// the compressed one; both reduce subspace evaluation from
/// `O(n·|S|)` kernel calls to `O(n·|S|)` multiplications.
#[derive(Debug, Clone)]
pub struct KernelColumns {
    rows: usize,
    dim: usize,
    /// Row-major `rows × dim` kernel values.
    cols: Vec<f64>,
    /// Per-row weights (`n(C_i)` for micro-clusters); `None` means every
    /// row weighs 1, as in the point-based estimator.
    weights: Option<Vec<f64>>,
    /// Normalization divisor (`N` in Eq. 4 / Eq. 10).
    norm: f64,
}

impl KernelColumns {
    /// Assembles a cache from precomputed kernel values.
    ///
    /// # Errors
    ///
    /// [`UdmError::DimensionMismatch`] when `cols.len()` is not a
    /// multiple of `dim` or `weights` (when given) doesn't match the row
    /// count; [`UdmError::EmptyDataset`] for zero rows;
    /// [`UdmError::InvalidValue`] for a non-positive normalizer.
    pub fn new(dim: usize, cols: Vec<f64>, weights: Option<Vec<f64>>, norm: f64) -> Result<Self> {
        if dim == 0 || !cols.len().is_multiple_of(dim) {
            return Err(UdmError::DimensionMismatch {
                expected: dim.max(1),
                actual: cols.len(),
            });
        }
        let rows = cols.len() / dim;
        if rows == 0 {
            return Err(UdmError::EmptyDataset);
        }
        if let Some(w) = &weights {
            if w.len() != rows {
                return Err(UdmError::DimensionMismatch {
                    expected: rows,
                    actual: w.len(),
                });
            }
        }
        if !(norm.is_finite() && norm > 0.0) {
            return Err(UdmError::InvalidValue {
                what: "normalizer",
                value: norm,
            });
        }
        Ok(KernelColumns {
            rows,
            dim,
            cols,
            weights,
            norm,
        })
    }

    /// Number of cached rows (points or pseudo-points).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Full dimensionality of the cache.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Density over `subspace` from the cached columns alone.
    ///
    /// Matches the naive estimator bit-for-bit: same multiply order
    /// (ascending dimension), same starting weight, same
    /// `prod == 0.0` short-circuit.
    ///
    /// # Errors
    ///
    /// [`UdmError::DimensionOutOfRange`] if `subspace` exceeds the
    /// cached dimensionality; [`UdmError::InvalidConfig`] for the empty
    /// subspace.
    pub fn density(&self, subspace: Subspace) -> Result<f64> {
        subspace.validate_for(self.dim)?;
        if subspace.is_empty() {
            return Err(UdmError::InvalidConfig(
                "cannot evaluate a density over the empty subspace".into(),
            ));
        }
        let mut sum = 0.0;
        for r in 0..self.rows {
            let row = &self.cols[r * self.dim..(r + 1) * self.dim];
            let mut prod = match &self.weights {
                Some(w) => w[r],
                None => 1.0,
            };
            for j in subspace.dims() {
                prod *= row[j];
                // udm-lint: allow(UDM002) exact underflow short-circuit (bit-for-bit cache contract)
                if prod == 0.0 {
                    break;
                }
            }
            sum += prod;
        }
        Ok(sum / self.norm)
    }

    /// Batch evaluation over many subspaces of the same query — the
    /// roll-up's access pattern. Fails fast on the first invalid
    /// subspace.
    pub fn density_many(&self, subspaces: &[Subspace]) -> Result<Vec<f64>> {
        subspaces.iter().map(|&s| self.density(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_shape_and_norm() {
        assert!(KernelColumns::new(0, vec![], None, 1.0).is_err());
        assert!(KernelColumns::new(2, vec![1.0; 3], None, 1.0).is_err());
        assert!(KernelColumns::new(2, vec![], None, 1.0).is_err());
        assert!(KernelColumns::new(1, vec![1.0], Some(vec![1.0, 2.0]), 1.0).is_err());
        assert!(KernelColumns::new(1, vec![1.0], None, 0.0).is_err());
        assert!(KernelColumns::new(1, vec![1.0], None, f64::NAN).is_err());
        let c = KernelColumns::new(2, vec![0.5, 0.25, 1.0, 2.0], None, 2.0).unwrap();
        assert_eq!(c.rows(), 2);
        assert_eq!(c.dim(), 2);
    }

    #[test]
    fn density_is_weighted_row_products_over_norm() {
        // rows: [0.5, 0.25], [1.0, 2.0]; weights 3, 1; norm 4
        let c =
            KernelColumns::new(2, vec![0.5, 0.25, 1.0, 2.0], Some(vec![3.0, 1.0]), 4.0).unwrap();
        let full = Subspace::full(2).unwrap();
        let expected = (3.0 * 0.5 * 0.25 + 1.0 * 2.0) / 4.0;
        assert_eq!(c.density(full).unwrap(), expected);
        let s0 = Subspace::singleton(0).unwrap();
        assert_eq!(c.density(s0).unwrap(), (3.0 * 0.5 + 1.0) / 4.0);
    }

    #[test]
    fn rejects_bad_subspaces() {
        let c = KernelColumns::new(1, vec![1.0], None, 1.0).unwrap();
        assert!(c.density(Subspace::EMPTY).is_err());
        assert!(c.density(Subspace::singleton(1).unwrap()).is_err());
    }

    #[test]
    fn zero_column_short_circuits_like_naive() {
        // A hard-zero kernel value (underflow) must zero the whole row
        // regardless of later columns — including columns that would
        // produce non-finite garbage if multiplied after the break.
        let c = KernelColumns::new(
            3,
            vec![
                0.0,
                f64::INFINITY, // never reached: prod is already 0
                5.0,
                1.0,
                1.0,
                1.0,
            ],
            None,
            2.0,
        )
        .unwrap();
        let full = Subspace::full(3).unwrap();
        // Row 0 contributes exactly 0 (short-circuit), row 1 contributes 1.
        assert_eq!(c.density(full).unwrap(), 0.5);
        assert!(c.density(full).unwrap().is_finite());
    }

    #[test]
    fn density_many_matches_individual_calls() {
        let c = KernelColumns::new(2, vec![0.1, 0.9, 0.3, 0.7], None, 2.0).unwrap();
        let subs = [
            Subspace::singleton(0).unwrap(),
            Subspace::singleton(1).unwrap(),
            Subspace::full(2).unwrap(),
        ];
        let batch = c.density_many(&subs).unwrap();
        for (i, &s) in subs.iter().enumerate() {
            assert_eq!(batch[i], c.density(s).unwrap());
        }
        assert!(c.density_many(&[Subspace::EMPTY]).is_err());
    }
}
