//! Factorized kernel-column cache for the subspace roll-up hot path.
//!
//! The product form of the error-based density (Eq. 4) factorizes over
//! dimensions: for a fixed query `x`, the kernel value of point `i` in
//! dimension `j` does not depend on which subspace is being evaluated.
//! The roll-up classifier asks for `g(x, S, D)` over *many* subspaces of
//! the same query, so recomputing `Q'_{h_j}(x_j − X_i^j, ψ_j)` per
//! subspace repeats the expensive `exp` calls `O(#subspaces)` times.
//!
//! [`KernelColumns`] materializes the full `n × d` matrix of
//! per-dimension kernel evaluations once per query; every subsequent
//! subspace density is then a sum over rows of a product over the
//! cached columns selected by `S` — no further kernel evaluations.
//!
//! ## Columnar (SoA) layout and the bit-for-bit contract
//!
//! Internally the matrix is stored **dimension-major**: column `j` is
//! the contiguous slice `cols[j·rows .. (j+1)·rows]`. Subspace
//! evaluation is then data-parallel: seed a per-row product
//! accumulator from the weights, multiply each selected column in with
//! the unrolled loops of [`crate::chunked`], and reduce with an
//! ordered sequential sum. The scalar reference loop multiplies each
//! row's kernels in ascending dimension order and sums rows in
//! ascending row order — the columnar schedule performs *the same
//! multiplications on the same operands in the same per-row order* and
//! the same final ordered sum, so the result is bit-for-bit identical.
//!
//! The one behavioural subtlety is the scalar loop's underflow
//! short-circuit (`prod == 0.0 → break`, common in high dimensions).
//! Skipping the break is bit-preserving as long as every cached value
//! is finite: `0.0 × k = 0.0` exactly for any finite `k ≥ 0`, so the
//! remaining multiplies are no-ops. Only `0 × ∞` (possible through the
//! degenerate point-mass kernel) would differ — [`KernelColumns`]
//! therefore records an `all_finite` flag at construction and routes
//! caches containing non-finite values through the scalar loop with
//! the literal break, preserving the contract in the degenerate case
//! too. The naive `density_subspace` remains the correctness oracle.

use crate::chunked;
use udm_core::{Result, Subspace, UdmError};

/// Per-query cache of kernel evaluations, one row per (pseudo-)point and
/// one column per dimension, stored dimension-major (SoA).
///
/// Built by [`crate::ErrorKde::kernel_columns`] for the exact estimator
/// and by `MicroClusterKde::kernel_columns` (in `udm-microcluster`) for
/// the compressed one; both reduce subspace evaluation from
/// `O(n·|S|)` kernel calls to `O(n·|S|)` multiplications.
#[derive(Debug, Clone)]
pub struct KernelColumns {
    rows: usize,
    dim: usize,
    /// Dimension-major `dim × rows` kernel values: column `j` occupies
    /// `cols[j*rows .. (j+1)*rows]`.
    cols: Vec<f64>,
    /// Per-row weights (`n(C_i)` for micro-clusters); `None` means every
    /// row weighs 1, as in the point-based estimator.
    weights: Option<Vec<f64>>,
    /// Normalization divisor (`N` in Eq. 4 / Eq. 10).
    norm: f64,
    /// Whether every cached value is finite; when false the evaluation
    /// falls back to the row-wise loop with the exact short-circuit.
    all_finite: bool,
}

impl KernelColumns {
    /// Assembles a cache from precomputed kernel values in **row-major**
    /// order (`cols[r*dim + j]`), the layout the scalar builders emit;
    /// the values are transposed into the internal columnar layout.
    ///
    /// # Errors
    ///
    /// [`UdmError::DimensionMismatch`] when `cols.len()` is not a
    /// multiple of `dim` or `weights` (when given) doesn't match the row
    /// count; [`UdmError::EmptyDataset`] for zero rows;
    /// [`UdmError::InvalidValue`] for a non-positive normalizer.
    pub fn new(dim: usize, cols: Vec<f64>, weights: Option<Vec<f64>>, norm: f64) -> Result<Self> {
        Self::validate(dim, &cols, weights.as_deref(), norm)?;
        let rows = cols.len() / dim;
        let mut transposed = vec![0.0; cols.len()];
        for r in 0..rows {
            let row = &cols[r * dim..(r + 1) * dim];
            for (j, &v) in row.iter().enumerate() {
                transposed[j * rows + r] = v;
            }
        }
        Ok(Self::assemble(dim, rows, transposed, weights, norm))
    }

    /// Assembles a cache from values already in the internal
    /// **dimension-major** order (`cols[j*rows + r]`) — the layout the
    /// columnar builders produce directly, skipping the transpose.
    ///
    /// # Errors
    ///
    /// As [`Self::new`].
    pub fn from_dim_major(
        dim: usize,
        cols: Vec<f64>,
        weights: Option<Vec<f64>>,
        norm: f64,
    ) -> Result<Self> {
        Self::validate(dim, &cols, weights.as_deref(), norm)?;
        let rows = cols.len() / dim;
        Ok(Self::assemble(dim, rows, cols, weights, norm))
    }

    fn validate(dim: usize, cols: &[f64], weights: Option<&[f64]>, norm: f64) -> Result<()> {
        if dim == 0 || !cols.len().is_multiple_of(dim) {
            return Err(UdmError::DimensionMismatch {
                expected: dim.max(1),
                actual: cols.len(),
            });
        }
        let rows = cols.len() / dim;
        if rows == 0 {
            return Err(UdmError::EmptyDataset);
        }
        if let Some(w) = weights {
            if w.len() != rows {
                return Err(UdmError::DimensionMismatch {
                    expected: rows,
                    actual: w.len(),
                });
            }
        }
        if !(norm.is_finite() && norm > 0.0) {
            return Err(UdmError::InvalidValue {
                what: "normalizer",
                value: norm,
            });
        }
        Ok(())
    }

    fn assemble(
        dim: usize,
        rows: usize,
        cols: Vec<f64>,
        weights: Option<Vec<f64>>,
        norm: f64,
    ) -> Self {
        let all_finite = cols.iter().all(|v| v.is_finite());
        KernelColumns {
            rows,
            dim,
            cols,
            weights,
            norm,
            all_finite,
        }
    }

    /// Number of cached rows (points or pseudo-points).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Full dimensionality of the cache.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Whether subspace queries take the dim-major columnar fast path.
    /// `false` means a non-finite kernel value was cached and every query
    /// falls back to the row-wise ordering; serving layers surface this so
    /// an operator can tell which arithmetic path produced a response.
    pub fn is_columnar(&self) -> bool {
        self.all_finite
    }

    /// Column `j` as a contiguous slice (one kernel value per row).
    #[inline]
    fn column(&self, j: usize) -> &[f64] {
        &self.cols[j * self.rows..(j + 1) * self.rows]
    }

    /// Density over `subspace` from the cached columns alone.
    ///
    /// Matches the naive estimator bit-for-bit: same multiply order
    /// (ascending dimension), same starting weight, same final ordered
    /// sum; the underflow short-circuit is either a no-op (all values
    /// finite — see the module docs) or taken literally (fallback).
    ///
    /// # Errors
    ///
    /// [`UdmError::DimensionOutOfRange`] if `subspace` exceeds the
    /// cached dimensionality; [`UdmError::InvalidConfig`] for the empty
    /// subspace.
    pub fn density(&self, subspace: Subspace) -> Result<f64> {
        subspace.validate_for(self.dim)?;
        if subspace.is_empty() {
            return Err(UdmError::InvalidConfig(
                "cannot evaluate a density over the empty subspace".into(),
            ));
        }
        if !self.all_finite {
            return Ok(self.density_rowwise(subspace));
        }
        let sum = chunked::with_scratch(self.rows, |prod| {
            chunked::seed_products(prod, self.weights.as_deref());
            for j in subspace.dims() {
                chunked::mul_assign(prod, self.column(j));
            }
            chunked::ordered_sum(prod)
        });
        Ok(sum / self.norm)
    }

    /// The scalar reference schedule: row-wise products with the
    /// literal `prod == 0.0` short-circuit, for caches that contain
    /// non-finite values (degenerate point-mass kernels).
    fn density_rowwise(&self, subspace: Subspace) -> f64 {
        let mut sum = 0.0;
        for r in 0..self.rows {
            let mut prod = match &self.weights {
                Some(w) => w[r],
                None => 1.0,
            };
            for j in subspace.dims() {
                prod *= self.cols[j * self.rows + r];
                // udm-lint: allow(UDM002) exact underflow short-circuit (bit-for-bit cache contract)
                if prod == 0.0 {
                    break;
                }
            }
            sum += prod;
        }
        sum / self.norm
    }

    /// Batch evaluation over many subspaces of the same query — the
    /// roll-up's access pattern. Fails fast on the first invalid
    /// subspace.
    pub fn density_many(&self, subspaces: &[Subspace]) -> Result<Vec<f64>> {
        subspaces.iter().map(|&s| self.density(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_shape_and_norm() {
        assert!(KernelColumns::new(0, vec![], None, 1.0).is_err());
        assert!(KernelColumns::new(2, vec![1.0; 3], None, 1.0).is_err());
        assert!(KernelColumns::new(2, vec![], None, 1.0).is_err());
        assert!(KernelColumns::new(1, vec![1.0], Some(vec![1.0, 2.0]), 1.0).is_err());
        assert!(KernelColumns::new(1, vec![1.0], None, 0.0).is_err());
        assert!(KernelColumns::new(1, vec![1.0], None, f64::NAN).is_err());
        let c = KernelColumns::new(2, vec![0.5, 0.25, 1.0, 2.0], None, 2.0).unwrap();
        assert_eq!(c.rows(), 2);
        assert_eq!(c.dim(), 2);
        assert!(KernelColumns::from_dim_major(2, vec![1.0; 3], None, 1.0).is_err());
        assert!(KernelColumns::from_dim_major(1, vec![1.0], None, -1.0).is_err());
    }

    #[test]
    fn density_is_weighted_row_products_over_norm() {
        // rows: [0.5, 0.25], [1.0, 2.0]; weights 3, 1; norm 4
        let c =
            KernelColumns::new(2, vec![0.5, 0.25, 1.0, 2.0], Some(vec![3.0, 1.0]), 4.0).unwrap();
        let full = Subspace::full(2).unwrap();
        let expected = (3.0 * 0.5 * 0.25 + 1.0 * 2.0) / 4.0;
        assert_eq!(c.density(full).unwrap(), expected);
        let s0 = Subspace::singleton(0).unwrap();
        assert_eq!(c.density(s0).unwrap(), (3.0 * 0.5 + 1.0) / 4.0);
    }

    #[test]
    fn dim_major_constructor_matches_row_major() {
        // Same 2×2 matrix given in both layouts must evaluate identically.
        let row_major = KernelColumns::new(2, vec![0.5, 0.25, 1.0, 2.0], None, 2.0).unwrap();
        // dim-major: column 0 = [0.5, 1.0], column 1 = [0.25, 2.0]
        let dim_major =
            KernelColumns::from_dim_major(2, vec![0.5, 1.0, 0.25, 2.0], None, 2.0).unwrap();
        for s in [
            Subspace::singleton(0).unwrap(),
            Subspace::singleton(1).unwrap(),
            Subspace::full(2).unwrap(),
        ] {
            assert_eq!(
                row_major.density(s).unwrap().to_bits(),
                dim_major.density(s).unwrap().to_bits()
            );
        }
    }

    #[test]
    fn rejects_bad_subspaces() {
        let c = KernelColumns::new(1, vec![1.0], None, 1.0).unwrap();
        assert!(c.density(Subspace::EMPTY).is_err());
        assert!(c.density(Subspace::singleton(1).unwrap()).is_err());
    }

    #[test]
    fn zero_column_short_circuits_like_naive() {
        // A hard-zero kernel value (underflow) must zero the whole row
        // regardless of later columns — including columns that would
        // produce non-finite garbage if multiplied after the break.
        // The ∞ forces the row-wise fallback path with the literal break.
        let c = KernelColumns::new(
            3,
            vec![
                0.0,
                f64::INFINITY, // never reached: prod is already 0
                5.0,
                1.0,
                1.0,
                1.0,
            ],
            None,
            2.0,
        )
        .unwrap();
        let full = Subspace::full(3).unwrap();
        // Row 0 contributes exactly 0 (short-circuit), row 1 contributes 1.
        assert_eq!(c.density(full).unwrap(), 0.5);
        assert!(c.density(full).unwrap().is_finite());
    }

    #[test]
    fn hard_zero_rows_stay_zero_on_the_columnar_path() {
        // All-finite cache with an underflowed value: the columnar path
        // (no break) must produce the same hard zero the scalar loop's
        // short-circuit does, for every subspace containing dim 0.
        let c =
            KernelColumns::new(2, vec![0.0, 1e-300, 2.0, 3.0], Some(vec![5.0, 1.0]), 2.0).unwrap();
        let full = Subspace::full(2).unwrap();
        // Row 0: 5·0·1e-300 = 0 exactly; row 1: 1·2·3 = 6.
        assert_eq!(c.density(full).unwrap().to_bits(), (6.0f64 / 2.0).to_bits());
    }

    #[test]
    fn columnar_matches_rowwise_schedule_bitwise() {
        // Random-ish finite cache: the columnar fast path and the scalar
        // reference schedule must agree bit-for-bit on every subspace.
        let dim = 5;
        let rows = 37;
        let mut vals = Vec::with_capacity(dim * rows);
        for i in 0..dim * rows {
            // Deterministic spread over several magnitudes, incl. exact 0s.
            let v = if i % 11 == 0 {
                0.0
            } else {
                (i as f64 * 0.618_033_988_749).fract() * 10f64.powi((i % 7) as i32 - 3)
            };
            vals.push(v);
        }
        let weights: Vec<f64> = (0..rows).map(|r| 1.0 + (r % 5) as f64).collect();
        let c = KernelColumns::new(dim, vals, Some(weights), 3.5).unwrap();
        assert!(c.all_finite);
        for bits in 1u64..(1 << dim) {
            let s = Subspace::from_bits(bits);
            let fast = c.density(s).unwrap();
            let reference = c.density_rowwise(s);
            assert_eq!(fast.to_bits(), reference.to_bits(), "subspace {bits:#b}");
        }
    }

    #[test]
    fn density_many_matches_individual_calls() {
        let c = KernelColumns::new(2, vec![0.1, 0.9, 0.3, 0.7], None, 2.0).unwrap();
        let subs = [
            Subspace::singleton(0).unwrap(),
            Subspace::singleton(1).unwrap(),
            Subspace::full(2).unwrap(),
        ];
        let batch = c.density_many(&subs).unwrap();
        for (i, &s) in subs.iter().enumerate() {
            assert_eq!(batch[i], c.density(s).unwrap());
        }
        assert!(c.density_many(&[Subspace::EMPTY]).is_err());
    }
}
