//! The error-based Gaussian kernel (Eq. 3 of the paper).
//!
//! For a point with error `ψ`, the kernel bump is widened so that, as the
//! bandwidth `h → 0` (large-`N` limit of the Silverman rule), the kernel
//! converges to a Gaussian whose standard error equals the point's own
//! standard error `ψ`; conversely at `ψ = 0` it reduces to the standard
//! kernel (both boundary cases are verified by tests).
//!
//! ## Paper-faithful vs. renormalized form
//!
//! Equation 3 as printed uses `(h + ψ)` in the normalizing prefactor but
//! `(h² + ψ²)` in the exponent:
//!
//! ```text
//! Q'(u, ψ) = 1/(√2π·(h+ψ)) · exp(−u² / (2·(h²+ψ²)))         (paper)
//! ```
//!
//! A Gaussian with variance `h² + ψ²` integrates to 1 only with the
//! prefactor `1/(√2π·√(h²+ψ²))`. Since `h + ψ ≥ √(h²+ψ²)`, the printed form
//! slightly *under-weights* points for which both `h` and `ψ` are nonzero
//! (by a factor of at most `√2`), and the resulting density does not
//! integrate exactly to 1. Both boundary cases quoted in the paper (`h→0`
//! or `ψ→0`) agree between the two forms.
//!
//! We implement both: [`ErrorKernelForm::PaperFaithful`] reproduces Eq. 3
//! verbatim; [`ErrorKernelForm::Normalized`] (the default) uses the proper
//! Gaussian normalization, which is what the classification-accuracy ratios
//! of §3 implicitly assume. The difference is benchmarked in the ablation
//! suite.

use crate::fastexp::hot_exp;
use crate::kernel::INV_SQRT_2PI;
use serde::{Deserialize, Serialize};
use udm_core::num::clamped_sqrt;

/// Which normalizing prefactor the error-based kernel uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ErrorKernelForm {
    /// `1/(√2π · √(h² + ψ²))` — a true Gaussian density (integrates to 1).
    #[default]
    Normalized,
    /// `1/(√2π · (h + ψ))` — Eq. 3 exactly as printed in the paper.
    PaperFaithful,
}

/// The one-dimensional error-based Gaussian kernel `Q'_h(x − X_i, ψ(X_i))`.
///
/// Multi-dimensional densities take the product of this kernel over the
/// dimensions of the evaluation subspace, each dimension using its own
/// bandwidth `h_j` and error `ψ_j(X_i)` (§2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct GaussianErrorKernel {
    form: ErrorKernelForm,
}

impl GaussianErrorKernel {
    /// Creates the kernel with the given normalization form.
    pub fn new(form: ErrorKernelForm) -> Self {
        Self { form }
    }

    /// The configured form.
    pub fn form(&self) -> ErrorKernelForm {
        self.form
    }

    /// Evaluates `Q'_h(diff, ψ)` where `diff = x − X_i`.
    ///
    /// `h` and `psi` must be non-negative; if both are zero the kernel is a
    /// point mass (`+∞` at `diff == 0`, else `0`).
    #[inline]
    pub fn evaluate(&self, diff: f64, h: f64, psi: f64) -> f64 {
        match self.factors(h, psi) {
            Some((pref, two_var)) => pref * hot_exp(-diff * diff / two_var),
            None => {
                // udm-lint: allow(UDM002) degenerate point mass sits exactly at diff == 0
                if diff == 0.0 {
                    f64::INFINITY
                } else {
                    0.0
                }
            }
        }
    }

    /// The diff-independent factors of the kernel: the normalizing
    /// prefactor `1/(√2π·scale)` and the doubled variance `2·(h²+ψ²)`,
    /// so that `evaluate(diff, h, psi)` is exactly
    /// `pref · exp(−diff²/two_var)`.
    ///
    /// `None` for the degenerate point-mass case (`h = ψ = 0`). The
    /// columnar builders precompute these per (row, dimension) pair and
    /// stay bit-for-bit identical to [`Self::evaluate`] because the
    /// remaining per-element operations (`−diff·diff/two_var`, one
    /// multiply) are the same operations on the same operands.
    #[inline]
    pub fn factors(&self, h: f64, psi: f64) -> Option<(f64, f64)> {
        debug_assert!(h >= 0.0 && psi >= 0.0);
        let var = h * h + psi * psi;
        if var <= 0.0 {
            return None;
        }
        let scale = match self.form {
            // `clamped_sqrt` is bit-for-bit `sqrt` on this var ≥ 0 branch.
            ErrorKernelForm::Normalized => clamped_sqrt(var),
            ErrorKernelForm::PaperFaithful => h + psi,
        };
        Some((INV_SQRT_2PI / scale, 2.0 * var))
    }

    /// Effective standard deviation of the bump: `√(h² + ψ²)`.
    #[inline]
    pub fn effective_width(h: f64, psi: f64) -> f64 {
        clamped_sqrt(h * h + psi * psi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{GaussianKernel, Kernel};
    use crate::quadrature::trapezoid;

    #[test]
    fn reduces_to_standard_kernel_at_zero_error() {
        // Boundary case from the paper: "the error-based kernel function
        // converges to the standard kernel function when ψ(X_i) is 0".
        let ek = GaussianErrorKernel::new(ErrorKernelForm::Normalized);
        let pk = GaussianErrorKernel::new(ErrorKernelForm::PaperFaithful);
        // Under fast-math the error-based kernel's exp carries the
        // documented fast_exp budget vs the libm-exp standard kernel.
        let tol = if cfg!(feature = "fast-math") {
            1e-6
        } else {
            1e-12
        };
        for diff in [-2.0, -0.5, 0.0, 0.7, 3.0] {
            for h in [0.2, 1.0, 4.0] {
                let std = GaussianKernel.evaluate(diff, h);
                assert!((ek.evaluate(diff, h, 0.0) - std).abs() < tol);
                assert!((pk.evaluate(diff, h, 0.0) - std).abs() < tol);
            }
        }
    }

    #[test]
    fn zero_bandwidth_limit_is_error_gaussian() {
        // Boundary case: as h → 0 the kernel is a Gaussian with standard
        // error exactly ψ.
        let ek = GaussianErrorKernel::default();
        let psi = 1.5;
        let tol = if cfg!(feature = "fast-math") {
            1e-6
        } else {
            1e-12
        };
        for diff in [-1.0, 0.0, 2.0] {
            let expected = INV_SQRT_2PI / psi * (-diff * diff / (2.0 * psi * psi)).exp();
            assert!((ek.evaluate(diff, 0.0, psi) - expected).abs() < tol);
        }
    }

    #[test]
    fn normalized_form_integrates_to_one() {
        let ek = GaussianErrorKernel::new(ErrorKernelForm::Normalized);
        for (h, psi) in [(0.5, 0.0), (0.5, 1.0), (0.0, 2.0), (1.0, 1.0)] {
            let integral = trapezoid(|x| ek.evaluate(x, h, psi), -40.0, 40.0, 80_001);
            assert!((integral - 1.0).abs() < 1e-6, "h={h} psi={psi}: {integral}");
        }
    }

    #[test]
    fn paper_form_underweights_when_both_positive() {
        let pk = GaussianErrorKernel::new(ErrorKernelForm::PaperFaithful);
        let integral = trapezoid(|x| pk.evaluate(x, 1.0, 1.0), -40.0, 40.0, 80_001);
        // prefactor ratio sqrt(2)/2: mass = sqrt(h²+ψ²)/(h+ψ) = 1/√2.
        assert!((integral - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-6);
    }

    #[test]
    fn larger_error_flattens_the_bump() {
        let ek = GaussianErrorKernel::default();
        let peak_small = ek.evaluate(0.0, 0.5, 0.1);
        let peak_large = ek.evaluate(0.0, 0.5, 2.0);
        assert!(peak_small > peak_large);
        // ... but raises the tails:
        let tail_small = ek.evaluate(5.0, 0.5, 0.1);
        let tail_large = ek.evaluate(5.0, 0.5, 2.0);
        assert!(tail_large > tail_small);
    }

    #[test]
    fn degenerate_point_mass() {
        let ek = GaussianErrorKernel::default();
        assert!(ek.evaluate(0.0, 0.0, 0.0).is_infinite());
        assert_eq!(ek.evaluate(1.0, 0.0, 0.0), 0.0);
    }

    #[test]
    fn effective_width_pythagorean() {
        assert!((GaussianErrorKernel::effective_width(3.0, 4.0) - 5.0).abs() < 1e-12);
        assert_eq!(GaussianErrorKernel::effective_width(0.0, 2.0), 2.0);
    }

    #[test]
    fn symmetric_in_diff() {
        let ek = GaussianErrorKernel::default();
        for d in [0.3, 1.7, 9.0] {
            assert_eq!(ek.evaluate(d, 1.0, 0.5), ek.evaluate(-d, 1.0, 0.5));
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn non_negative_everywhere(
            diff in -50.0f64..50.0,
            h in 0.0f64..10.0,
            psi in 0.0f64..10.0,
        ) {
            prop_assume!(h + psi > 0.0);
            let ek = GaussianErrorKernel::default();
            prop_assert!(ek.evaluate(diff, h, psi) >= 0.0);
            let pk = GaussianErrorKernel::new(ErrorKernelForm::PaperFaithful);
            prop_assert!(pk.evaluate(diff, h, psi) >= 0.0);
        }

        #[test]
        fn monotone_decreasing_in_abs_diff(
            d1 in 0.0f64..10.0,
            extra in 0.001f64..10.0,
            h in 0.01f64..5.0,
            psi in 0.0f64..5.0,
        ) {
            let ek = GaussianErrorKernel::default();
            let closer = ek.evaluate(d1, h, psi);
            let farther = ek.evaluate(d1 + extra, h, psi);
            prop_assert!(closer >= farther);
        }

        #[test]
        fn peak_decreases_with_error(
            h in 0.01f64..5.0,
            psi1 in 0.0f64..5.0,
            dpsi in 0.001f64..5.0,
        ) {
            let ek = GaussianErrorKernel::default();
            prop_assert!(ek.evaluate(0.0, h, psi1) > ek.evaluate(0.0, h, psi1 + dpsi));
        }

        #[test]
        fn forms_agree_when_one_scale_vanishes(
            diff in -10.0f64..10.0,
            s in 0.01f64..5.0,
        ) {
            let n = GaussianErrorKernel::new(ErrorKernelForm::Normalized);
            let p = GaussianErrorKernel::new(ErrorKernelForm::PaperFaithful);
            prop_assert!((n.evaluate(diff, s, 0.0) - p.evaluate(diff, s, 0.0)).abs() < 1e-12);
            prop_assert!((n.evaluate(diff, 0.0, s) - p.evaluate(diff, 0.0, s)).abs() < 1e-12);
        }
    }
}
