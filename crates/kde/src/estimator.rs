//! The point-based error-adjusted density estimator (Eqs. 1, 4 of the
//! paper), evaluable over the full space or any subspace.

use crate::bandwidth::BandwidthRule;
use crate::columns::KernelColumns;
use crate::error_kernel::{ErrorKernelForm, GaussianErrorKernel};
use serde::{Deserialize, Serialize};
use udm_core::num::{ensure_finite_slice, f64_from_usize};
use udm_core::{Result, Subspace, UdmError, UncertainDataset};

/// Configuration for [`ErrorKde`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KdeConfig {
    /// How per-dimension bandwidths `h_j` are chosen.
    pub bandwidth: BandwidthRule,
    /// Normalization form of the error-based kernel (see
    /// [`crate::error_kernel`]).
    pub form: ErrorKernelForm,
    /// When `false`, all errors are treated as zero: the estimator computes
    /// the plain Eq. 1 density. This is the switch that builds the paper's
    /// *unadjusted* baseline (§4) without duplicating any code.
    pub error_adjusted: bool,
}

impl Default for KdeConfig {
    fn default() -> Self {
        KdeConfig {
            bandwidth: BandwidthRule::Silverman,
            form: ErrorKernelForm::Normalized,
            error_adjusted: true,
        }
    }
}

impl KdeConfig {
    /// Configuration matching the paper's error-adjusted method.
    pub fn error_adjusted() -> Self {
        Self::default()
    }

    /// Configuration for the unadjusted baseline (ψ treated as 0).
    pub fn unadjusted() -> Self {
        KdeConfig {
            error_adjusted: false,
            ..Self::default()
        }
    }
}

/// Error-adjusted kernel density estimator over a borrowed dataset.
///
/// The estimate at `x` over subspace `S` is (Eq. 4, product form):
///
/// ```text
/// f^Q(x) = (1/N) · Σ_i Π_{j ∈ S} Q'_{h_j}(x_j − X_i^j, ψ_j(X_i))
/// ```
///
/// This is the exact (non-compressed) estimator: evaluation is `O(N·|S|)`
/// per query. The scalable micro-cluster variant lives in
/// `udm-microcluster::density`.
///
/// # Example
///
/// ```
/// use udm_core::{UncertainDataset, UncertainPoint};
/// use udm_kde::{ErrorKde, KdeConfig};
///
/// let data = UncertainDataset::from_points(vec![
///     UncertainPoint::new(vec![0.0], vec![0.5]).unwrap(), // noisy
///     UncertainPoint::new(vec![1.0], vec![0.0]).unwrap(), // exact
/// ]).unwrap();
/// let kde = ErrorKde::fit(&data, KdeConfig::error_adjusted()).unwrap();
/// let density = kde.density(&[0.5]).unwrap();
/// assert!(density > 0.0);
/// ```
#[derive(Debug)]
pub struct ErrorKde<'a> {
    data: &'a UncertainDataset,
    bandwidths: Vec<f64>,
    kernel: GaussianErrorKernel,
    error_adjusted: bool,
}

impl<'a> ErrorKde<'a> {
    /// Fits the estimator: computes per-dimension bandwidths from the data.
    ///
    /// # Errors
    ///
    /// Propagates bandwidth-selection failures (empty dataset, invalid
    /// fixed bandwidth).
    pub fn fit(data: &'a UncertainDataset, config: KdeConfig) -> Result<Self> {
        let bandwidths = config.bandwidth.bandwidths(data)?;
        Ok(ErrorKde {
            data,
            bandwidths,
            kernel: GaussianErrorKernel::new(config.form),
            error_adjusted: config.error_adjusted,
        })
    }

    /// The fitted per-dimension bandwidths `h_j`.
    pub fn bandwidths(&self) -> &[f64] {
        &self.bandwidths
    }

    /// The underlying dataset.
    pub fn data(&self) -> &UncertainDataset {
        self.data
    }

    /// Whether per-point errors widen the kernels (`false` for the
    /// unadjusted baseline configuration).
    pub fn is_error_adjusted(&self) -> bool {
        self.error_adjusted
    }

    /// Density at `x` over the full dimensionality (Eq. 4).
    ///
    /// # Errors
    ///
    /// [`UdmError::DimensionMismatch`] if `x.len() != d`.
    pub fn density(&self, x: &[f64]) -> Result<f64> {
        if x.len() != self.data.dim() {
            return Err(UdmError::DimensionMismatch {
                expected: self.data.dim(),
                actual: x.len(),
            });
        }
        let full = Subspace::full(self.data.dim().min(Subspace::MAX_DIMS))?;
        self.density_subspace(x, full)
    }

    /// Density at `x` over the subspace `S` — the paper's `g(x, S, D)`.
    ///
    /// `x` is given in **full-dimensional** coordinates; only the
    /// coordinates named by `S` are read. This matches how the roll-up
    /// classifier queries many subspaces for one test point.
    ///
    /// # Errors
    ///
    /// [`UdmError::DimensionMismatch`] on wrong query arity,
    /// [`UdmError::DimensionOutOfRange`] if `S` exceeds the data
    /// dimensionality, and [`UdmError::InvalidConfig`] for an empty `S`
    /// (a zero-dimensional density is meaningless).
    pub fn density_subspace(&self, x: &[f64], subspace: Subspace) -> Result<f64> {
        if x.len() != self.data.dim() {
            return Err(UdmError::DimensionMismatch {
                expected: self.data.dim(),
                actual: x.len(),
            });
        }
        subspace.validate_for(self.data.dim())?;
        if subspace.is_empty() {
            return Err(UdmError::InvalidConfig(
                "cannot evaluate a density over the empty subspace".into(),
            ));
        }
        if self.data.is_empty() {
            return Err(UdmError::EmptyDataset);
        }
        ensure_finite_slice("query coordinate", x)?;
        let mut sum = 0.0;
        // Kernel evaluations are tallied locally and published once per
        // query, so the hot loop carries no atomic traffic.
        let mut evals: u64 = 0;
        for p in self.data.iter() {
            let mut prod = 1.0;
            for j in subspace.dims() {
                let psi = if self.error_adjusted { p.error(j) } else { 0.0 };
                prod *= self
                    .kernel
                    .evaluate(x[j] - p.value(j), self.bandwidths[j], psi);
                evals += 1;
                // udm-lint: allow(UDM002) exact underflow short-circuit (bit-for-bit cache contract)
                if prod == 0.0 {
                    break;
                }
            }
            sum += prod;
        }
        udm_observe::counter_add!("udm_kde_kernel_evals_total", evals);
        Ok(sum / f64_from_usize(self.data.len()))
    }

    /// Builds the per-query kernel-column cache for `x`: every
    /// per-dimension kernel evaluation the naive [`Self::density_subspace`]
    /// loop would make, computed once and reusable across arbitrarily many
    /// subspace queries of the same point (see [`crate::columns`]).
    ///
    /// [`KernelColumns::density`] on the result is bit-for-bit identical
    /// to [`Self::density_subspace`] for every valid subspace.
    ///
    /// # Errors
    ///
    /// [`UdmError::DimensionMismatch`] on wrong query arity,
    /// [`UdmError::EmptyDataset`] for an empty dataset.
    pub fn kernel_columns(&self, x: &[f64]) -> Result<KernelColumns> {
        if x.len() != self.data.dim() {
            return Err(UdmError::DimensionMismatch {
                expected: self.data.dim(),
                actual: x.len(),
            });
        }
        if self.data.is_empty() {
            return Err(UdmError::EmptyDataset);
        }
        ensure_finite_slice("query coordinate", x)?;
        let dim = self.data.dim();
        let rows = self.data.len();
        // Filled dimension-major so the cache's internal SoA layout is
        // produced directly (no transpose). Each kernel evaluation is
        // independent, so the fill order does not affect the values.
        let mut cols = vec![0.0; rows * dim];
        for (j, &xj) in x.iter().enumerate() {
            let h = self.bandwidths[j];
            let col = &mut cols[j * rows..(j + 1) * rows];
            for (r, p) in self.data.iter().enumerate() {
                let psi = if self.error_adjusted { p.error(j) } else { 0.0 };
                col[r] = self.kernel.evaluate(xj - p.value(j), h, psi);
            }
        }
        udm_observe::counter_inc!("udm_kde_column_builds_total");
        udm_observe::counter_add!(
            "udm_kde_kernel_evals_total",
            u64::try_from(cols.len()).unwrap_or(u64::MAX)
        );
        KernelColumns::from_dim_major(dim, cols, None, f64_from_usize(self.data.len()))
    }

    /// Batch evaluation of many subspace densities of one query through
    /// the column cache — `O(n·d)` kernel calls total instead of
    /// `O(n·Σ|S|)`.
    ///
    /// # Errors
    ///
    /// As [`Self::kernel_columns`], plus per-subspace validation errors.
    pub fn density_subspaces(&self, x: &[f64], subspaces: &[Subspace]) -> Result<Vec<f64>> {
        self.kernel_columns(x)?.density_many(subspaces)
    }

    /// Convenience: density of a 1-dimensional subspace `{dim}`.
    pub fn density_1d(&self, x: f64, dim: usize) -> Result<f64> {
        let mut query = vec![0.0; self.data.dim()];
        if dim >= self.data.dim() {
            return Err(UdmError::DimensionOutOfRange {
                dim,
                dimensionality: self.data.dim(),
            });
        }
        query[dim] = x;
        self.density_subspace(&query, Subspace::singleton(dim)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadrature::{trapezoid, trapezoid2d};
    use udm_core::UncertainPoint;

    fn exact_1d(values: &[f64]) -> UncertainDataset {
        UncertainDataset::from_points(
            values
                .iter()
                .map(|&v| UncertainPoint::exact(vec![v]).unwrap())
                .collect(),
        )
        .unwrap()
    }

    fn noisy_1d(values_errors: &[(f64, f64)]) -> UncertainDataset {
        UncertainDataset::from_points(
            values_errors
                .iter()
                .map(|&(v, e)| UncertainPoint::new(vec![v], vec![e]).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn density_integrates_to_one_1d() {
        let d = exact_1d(&[0.0, 1.0, 2.0, 5.0, 5.5]);
        let kde = ErrorKde::fit(&d, KdeConfig::default()).unwrap();
        let mass = trapezoid(|x| kde.density(&[x]).unwrap(), -30.0, 40.0, 50_001);
        assert!((mass - 1.0).abs() < 1e-6, "mass={mass}");
    }

    #[test]
    fn error_adjusted_density_integrates_to_one_1d() {
        let d = noisy_1d(&[(0.0, 0.5), (1.0, 2.0), (3.0, 0.0)]);
        let kde = ErrorKde::fit(&d, KdeConfig::default()).unwrap();
        let mass = trapezoid(|x| kde.density(&[x]).unwrap(), -40.0, 50.0, 50_001);
        assert!((mass - 1.0).abs() < 1e-6, "mass={mass}");
    }

    #[test]
    fn density_2d_integrates_to_one() {
        let points = vec![
            UncertainPoint::new(vec![0.0, 0.0], vec![0.3, 0.1]).unwrap(),
            UncertainPoint::new(vec![1.0, 2.0], vec![0.0, 0.8]).unwrap(),
            UncertainPoint::new(vec![-1.0, 1.0], vec![0.2, 0.2]).unwrap(),
        ];
        let d = UncertainDataset::from_points(points).unwrap();
        let kde = ErrorKde::fit(&d, KdeConfig::default()).unwrap();
        let mass = trapezoid2d(
            |x, y| kde.density(&[x, y]).unwrap(),
            (-15.0, 15.0),
            (-15.0, 15.0),
            601,
            601,
        );
        assert!((mass - 1.0).abs() < 1e-3, "mass={mass}");
    }

    #[test]
    fn unadjusted_ignores_errors() {
        let noisy = noisy_1d(&[(0.0, 5.0), (1.0, 5.0)]);
        let clean = exact_1d(&[0.0, 1.0]);
        let kde_unadj = ErrorKde::fit(&noisy, KdeConfig::unadjusted()).unwrap();
        let kde_clean = ErrorKde::fit(&clean, KdeConfig::default()).unwrap();
        for x in [-1.0, 0.0, 0.5, 2.0] {
            let a = kde_unadj.density(&[x]).unwrap();
            let b = kde_clean.density(&[x]).unwrap();
            assert!((a - b).abs() < 1e-12, "x={x}: {a} vs {b}");
        }
    }

    #[test]
    fn adjusted_flattens_peak_of_noisy_point() {
        // One precise point and one noisy point at different locations: the
        // density at the noisy point's location should be lower than at the
        // precise point's location.
        let d = noisy_1d(&[(0.0, 0.0), (5.0, 3.0)]);
        let kde = ErrorKde::fit(&d, KdeConfig::default()).unwrap();
        let at_precise = kde.density(&[0.0]).unwrap();
        let at_noisy = kde.density(&[5.0]).unwrap();
        assert!(at_precise > at_noisy);
    }

    #[test]
    fn subspace_density_matches_projected_dataset() {
        let points = vec![
            UncertainPoint::new(vec![0.0, 10.0, -3.0], vec![0.1, 0.5, 0.0]).unwrap(),
            UncertainPoint::new(vec![1.0, 12.0, -1.0], vec![0.0, 0.2, 0.4]).unwrap(),
            UncertainPoint::new(vec![2.0, 11.0, -2.0], vec![0.3, 0.1, 0.2]).unwrap(),
        ];
        let d = UncertainDataset::from_points(points).unwrap();
        let s = Subspace::from_dims(&[0, 2]).unwrap();

        let kde_full = ErrorKde::fit(&d, KdeConfig::default()).unwrap();
        let via_subspace = kde_full
            .density_subspace(&[0.5, 999.0, -2.5], s) // dim 1 coordinate ignored
            .unwrap();

        // Independent computation: project the dataset, fit with the same
        // bandwidths (hand-built via Fixed per-dim is not possible here, so
        // recompute: Silverman bandwidths depend only on the column, which
        // projection preserves).
        let projected = d.project(s).unwrap();
        let kde_proj = ErrorKde::fit(&projected, KdeConfig::default()).unwrap();
        let direct = kde_proj.density(&[0.5, -2.5]).unwrap();

        assert!(
            (via_subspace - direct).abs() < 1e-12,
            "{via_subspace} vs {direct}"
        );
    }

    #[test]
    fn rejects_wrong_arity_and_bad_subspace() {
        let d = exact_1d(&[0.0, 1.0]);
        let kde = ErrorKde::fit(&d, KdeConfig::default()).unwrap();
        assert!(kde.density(&[0.0, 1.0]).is_err());
        assert!(kde
            .density_subspace(&[0.0], Subspace::from_dims(&[3]).unwrap())
            .is_err());
        assert!(kde.density_subspace(&[0.0], Subspace::EMPTY).is_err());
    }

    #[test]
    fn rejects_empty_dataset() {
        let empty = UncertainDataset::new(1);
        assert!(ErrorKde::fit(&empty, KdeConfig::default()).is_err());
    }

    #[test]
    fn density_1d_helper_matches_subspace_call() {
        let points = vec![
            UncertainPoint::new(vec![0.0, 5.0], vec![0.1, 0.2]).unwrap(),
            UncertainPoint::new(vec![1.0, 6.0], vec![0.2, 0.1]).unwrap(),
        ];
        let d = UncertainDataset::from_points(points).unwrap();
        let kde = ErrorKde::fit(&d, KdeConfig::default()).unwrap();
        let a = kde.density_1d(5.5, 1).unwrap();
        let b = kde
            .density_subspace(&[0.0, 5.5], Subspace::singleton(1).unwrap())
            .unwrap();
        assert!((a - b).abs() < 1e-15);
        assert!(kde.density_1d(0.0, 7).is_err());
    }

    #[test]
    fn density_is_translation_equivariant() {
        let base = noisy_1d(&[(0.0, 0.4), (2.0, 0.1)]);
        let shifted = noisy_1d(&[(10.0, 0.4), (12.0, 0.1)]);
        let k1 = ErrorKde::fit(&base, KdeConfig::default()).unwrap();
        let k2 = ErrorKde::fit(&shifted, KdeConfig::default()).unwrap();
        for x in [-1.0, 0.0, 1.0, 2.5] {
            let a = k1.density(&[x]).unwrap();
            let b = k2.density(&[x + 10.0]).unwrap();
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn cached_columns_match_naive_bitwise() {
        let points = vec![
            UncertainPoint::new(vec![0.0, 10.0, -3.0], vec![0.1, 0.5, 0.0]).unwrap(),
            UncertainPoint::new(vec![1.0, 12.0, -1.0], vec![0.0, 0.2, 0.4]).unwrap(),
            UncertainPoint::new(vec![2.0, 11.0, -2.0], vec![0.3, 0.1, 0.2]).unwrap(),
        ];
        let d = UncertainDataset::from_points(points).unwrap();
        let kde = ErrorKde::fit(&d, KdeConfig::default()).unwrap();
        let x = [0.5, 11.5, -2.5];
        let cols = kde.kernel_columns(&x).unwrap();
        // All 7 non-empty subspaces of 3 dimensions.
        for bits in 1u64..8 {
            let s = Subspace::from_bits(bits);
            let naive = kde.density_subspace(&x, s).unwrap();
            let cached = cols.density(s).unwrap();
            assert_eq!(naive.to_bits(), cached.to_bits(), "subspace {bits:#b}");
        }
    }

    #[test]
    fn cached_path_short_circuits_underflowed_rows() {
        // With a tight fixed bandwidth, the kernel of the far point
        // underflows to a hard 0.0 in dimension 0; the cached path must
        // short-circuit that row exactly like the naive loop (satellite:
        // `prod == 0.0 → break` equivalence) and stay finite.
        let points = vec![
            UncertainPoint::exact(vec![0.0, 0.0]).unwrap(),
            UncertainPoint::exact(vec![1e6, 0.0]).unwrap(),
        ];
        let d = UncertainDataset::from_points(points).unwrap();
        let config = KdeConfig {
            bandwidth: BandwidthRule::Fixed(1.0),
            ..KdeConfig::default()
        };
        let kde = ErrorKde::fit(&d, config).unwrap();
        let x = [0.0, 0.0];
        // Confirm the underflow actually happens for the far row.
        let far = kde.kernel.evaluate(1e6, 1.0, 0.0);
        assert_eq!(far, 0.0);
        let cols = kde.kernel_columns(&x).unwrap();
        for bits in 1u64..4 {
            let s = Subspace::from_bits(bits);
            let naive = kde.density_subspace(&x, s).unwrap();
            let cached = cols.density(s).unwrap();
            assert_eq!(naive.to_bits(), cached.to_bits(), "subspace {bits:#b}");
            assert!(naive.is_finite());
        }
    }

    #[test]
    fn density_subspaces_batches_through_the_cache() {
        let points = vec![
            UncertainPoint::new(vec![0.0, 1.0], vec![0.1, 0.0]).unwrap(),
            UncertainPoint::new(vec![2.0, 3.0], vec![0.0, 0.2]).unwrap(),
        ];
        let d = UncertainDataset::from_points(points).unwrap();
        let kde = ErrorKde::fit(&d, KdeConfig::default()).unwrap();
        let subs = [
            Subspace::singleton(0).unwrap(),
            Subspace::singleton(1).unwrap(),
            Subspace::full(2).unwrap(),
        ];
        let batch = kde.density_subspaces(&[1.0, 2.0], &subs).unwrap();
        for (i, &s) in subs.iter().enumerate() {
            let naive = kde.density_subspace(&[1.0, 2.0], s).unwrap();
            assert_eq!(batch[i].to_bits(), naive.to_bits());
        }
        assert!(kde.density_subspaces(&[1.0], &subs).is_err());
        assert!(kde.kernel_columns(&[1.0]).is_err());
    }

    #[test]
    fn mass_concentrates_near_data() {
        let d = exact_1d(&[0.0, 0.1, -0.1, 0.05]);
        let kde = ErrorKde::fit(&d, KdeConfig::default()).unwrap();
        assert!(kde.density(&[0.0]).unwrap() > kde.density(&[10.0]).unwrap());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use udm_core::UncertainPoint;

    fn arbitrary_dataset() -> impl Strategy<Value = UncertainDataset> {
        proptest::collection::vec((-50.0f64..50.0, 0.0f64..5.0), 2..30).prop_map(|rows| {
            UncertainDataset::from_points(
                rows.into_iter()
                    .map(|(v, e)| UncertainPoint::new(vec![v], vec![e]).unwrap())
                    .collect(),
            )
            .unwrap()
        })
    }

    /// Multi-dimensional dataset + query + non-empty subspace, for
    /// exercising the kernel-column cache across dimensionalities.
    fn dataset_query_subspace(
    ) -> impl Strategy<Value = (UncertainDataset, Vec<f64>, Subspace, bool)> {
        (1usize..6).prop_flat_map(|dim| {
            let rows = proptest::collection::vec(
                proptest::collection::vec((-50.0f64..50.0, 0.0f64..5.0), dim..=dim),
                2..20,
            );
            let query = proptest::collection::vec(-60.0f64..60.0, dim..=dim);
            let mask = 1u64..(1u64 << dim);
            (rows, query, mask, proptest::bool::ANY).prop_map(|(rows, query, mask, adjusted)| {
                let data = UncertainDataset::from_points(
                    rows.into_iter()
                        .map(|cells| {
                            let (vs, es): (Vec<f64>, Vec<f64>) = cells.into_iter().unzip();
                            UncertainPoint::new(vs, es).unwrap()
                        })
                        .collect(),
                )
                .unwrap();
                (data, query, Subspace::from_bits(mask), adjusted)
            })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn density_is_non_negative(d in arbitrary_dataset(), x in -100.0f64..100.0) {
            let kde = ErrorKde::fit(&d, KdeConfig::default()).unwrap();
            prop_assert!(kde.density(&[x]).unwrap() >= 0.0);
        }

        #[test]
        fn cached_columns_agree_with_naive(
            (d, x, s, adjusted) in dataset_query_subspace(),
        ) {
            let config = if adjusted {
                KdeConfig::error_adjusted()
            } else {
                KdeConfig::unadjusted()
            };
            let kde = ErrorKde::fit(&d, config).unwrap();
            let naive = kde.density_subspace(&x, s).unwrap();
            let cached = kde.kernel_columns(&x).unwrap().density(s).unwrap();
            // The acceptance bar is 1e-12 *relative* error; the cached
            // path actually reproduces the naive loop bit-for-bit.
            let rel = (cached - naive).abs() / naive.abs().max(f64::MIN_POSITIVE);
            prop_assert!(rel <= 1e-12, "naive {naive} vs cached {cached} (rel {rel})");
            prop_assert_eq!(naive.to_bits(), cached.to_bits());
        }

        #[test]
        fn adjusted_equals_unadjusted_on_exact_data(
            values in proptest::collection::vec(-50.0f64..50.0, 2..20),
            x in -60.0f64..60.0,
        ) {
            let d = UncertainDataset::from_points(
                values.iter().map(|&v| UncertainPoint::exact(vec![v]).unwrap()).collect(),
            ).unwrap();
            let adj = ErrorKde::fit(&d, KdeConfig::error_adjusted()).unwrap();
            let unadj = ErrorKde::fit(&d, KdeConfig::unadjusted()).unwrap();
            let a = adj.density(&[x]).unwrap();
            let b = unadj.density(&[x]).unwrap();
            prop_assert!((a - b).abs() < 1e-12);
        }
    }
}
