//! Bounded-error fast exponential for the Gaussian kernel hot path.
//!
//! Every kernel evaluation costs one `exp`, and profiling the subspace
//! roll-up shows the column builds are `exp`-bound: the rest of the
//! per-element work is a subtraction, two multiplies and a divide. The
//! libm `exp` call is correctly rounded but opaque to the optimizer —
//! it can neither inline nor vectorize, so it caps the throughput of
//! the columnar builders in [`crate::columns`] and
//! `udm_microcluster::density`.
//!
//! [`fast_exp`] trades the last few bits for a short, branch-free,
//! inlineable table-plus-polynomial pipeline (the classic `exp2`-style
//! scheme used by vectorized math libraries):
//!
//! 1. **8-way Cody–Waite range reduction**: `x = m·(ln2/8) + r` with
//!    `|r| ≤ ln2/16 ≈ 0.0433`, where `m·(ln2/8)` is subtracted in two
//!    parts (`LN2_HI_8` has 20 trailing zero mantissa bits, so
//!    `m·LN2_HI_8` is exact for the `|m| ≤ 8172` range used here). The
//!    integer `m` is extracted with the round-to-nearest "magic
//!    number" trick (adding `1.5·2^52` forces it into the low mantissa
//!    bits), avoiding a libm `round` call.
//! 2. **Degree-4 Taylor polynomial** for `exp(r)` on the reduced
//!    interval, in Estrin form so the dependency chain is 4 FP ops
//!    instead of 8. The truncation error is `≤ r⁵/5! ≈ 1.3e−9`
//!    relative — an 8× shorter interval buys three polynomial terms.
//! 3. **Table + exponent assembly**: write `m = 8e + j` with
//!    `j ∈ 0..8`; then `2^(m/8) = 2^e · 2^(j/8)`. The eight
//!    `2^(j/8)` significands come from a correctly-rounded bit table
//!    and `2^e` is added directly onto their IEEE-754 exponent field
//!    with integer ops.
//!
//! The Gaussian kernel only ever feeds non-positive arguments
//! (`−diff²/(2σ²) ≤ 0`), and on that domain the error contract is
//! *absolute*: `|fast_exp(x) − exp(x)| ≤` [`FAST_EXP_MAX_ABS_ERROR`]
//! (since `exp(x) ≤ 1` there, the ~1.3e−9 relative error is also an
//! absolute bound; the proptests below enforce both forms). Positive
//! arguments defer to `f64::exp`, so the function is total and the
//! error contract is never silently violated outside its fast domain.
//!
//! Nothing in this module is gated: [`fast_exp`] is always compiled
//! (benchmarks A/B it against `f64::exp` in a single binary, and the
//! error-bound proptests always run). The `fast-math` feature only
//! selects which implementation [`hot_exp`] — the exp used by the
//! kernel hot path — resolves to. With the feature off (the default)
//! `hot_exp` is exactly `f64::exp` and every density is bit-for-bit
//! reproducible against the scalar reference path.

/// Documented absolute error bound of [`fast_exp`] against `f64::exp`
/// for arguments `x ≤ 0` (the Gaussian kernel's domain). Enforced by
/// proptests in this module; quoted in DESIGN.md's error budget.
pub const FAST_EXP_MAX_ABS_ERROR: f64 = 1e-8;

/// Below this argument `exp(x)` is within `3e−308` of zero (and the
/// `2^k` scale would leave the normal range), so [`fast_exp`] returns
/// exactly `0.0`. The introduced absolute error is ≤ `exp(−708)`,
/// i.e. ~300 orders of magnitude inside the error budget.
const UNDERFLOW_CUTOFF: f64 = -708.0;

/// High part of `ln2 / 8` (`0x3FB62E42FEE00000`): 20 trailing zero
/// mantissa bits make `m·LN2_HI_8` exact for `|m| < 2^20`.
const LN2_HI_8: f64 = f64::from_bits(0x3FB6_2E42_FEE0_0000);
/// Low part of `ln2 / 8` (`0x3DBA39EF35793C76`); `LN2_HI_8 + LN2_LO_8`
/// matches `ln2 / 8` to ~105 bits.
const LN2_LO_8: f64 = f64::from_bits(0x3DBA_39EF_3579_3C76);
/// `8 / ln2`: the reduction multiplier, so the magic-number trick
/// rounds `x·8/ln2` rather than `x/ln2` (eighth-of-an-octave steps).
const EIGHT_OVER_LN2: f64 = 8.0 * std::f64::consts::LOG2_E;
/// `1.5·2^52`: adding then subtracting rounds to the nearest integer
/// and leaves that integer in the low mantissa bits.
const SHIFT: f64 = 6_755_399_441_055_744.0;
/// Correctly-rounded bit patterns of `2^(j/8)` for `j = 0..8`. Every
/// entry has biased exponent 1023, so adding `e·2^52` with integer
/// ops rescales the table value by an exact power of two.
const EXP2_FRAC_BITS: [u64; 8] = [
    0x3FF0_0000_0000_0000, // 2^(0/8) = 1.0
    0x3FF1_72B8_3C7D_517B, // 2^(1/8)
    0x3FF3_06FE_0A31_B715, // 2^(2/8)
    0x3FF4_BFDA_D536_2A27, // 2^(3/8)
    0x3FF6_A09E_667F_3BCD, // 2^(4/8) = sqrt(2)
    0x3FF8_ACE5_422A_A0DB, // 2^(5/8)
    0x3FFA_E89F_995A_D3AD, // 2^(6/8)
    0x3FFD_5818_DCFB_A487, // 2^(7/8)
];

// Taylor coefficients 1/3! and 1/4! for exp(r) on |r| ≤ ln2/16.
const C3: f64 = 1.0 / 6.0;
const C4: f64 = 1.0 / 24.0;

/// Fast `exp` with a bounded absolute error of
/// [`FAST_EXP_MAX_ABS_ERROR`] vs `f64::exp` for `x ≤ 0`.
///
/// Total over all of `f64`: `NaN` propagates, `−∞` and everything
/// below the underflow cutoff return `0.0`, and positive arguments
/// defer to `f64::exp` (they are outside the kernel's domain and the
/// absolute-error contract).
#[inline]
pub fn fast_exp(x: f64) -> f64 {
    // Ordered so NaN (which fails every comparison) propagates first.
    if x.is_nan() {
        return x;
    }
    if x < UNDERFLOW_CUTOFF {
        return 0.0;
    }
    if x > 0.0 {
        return x.exp();
    }
    // m = round(x · 8/ln2) via the shift trick; −8172 ≤ m ≤ 0 here.
    // `mul_add` is used deliberately throughout: rustc never contracts
    // `a*b + c` on its own, and a fused step both shortens the pipeline
    // and drops the intermediate rounding (the repo builds with
    // `target-cpu=native`, so these lower to hardware FMA).
    let shifted = x.mul_add(EIGHT_OVER_LN2, SHIFT);
    let m = shifted - SHIFT;
    // Two-part reduction: r = x − m·(ln2/8), |r| ≤ ln2/16 + 1 ulp.
    let r_hi = (-m).mul_add(LN2_HI_8, x);
    let r = (-m).mul_add(LN2_LO_8, r_hi);
    // exp(r) ≈ Σ r^i/i!, degree 4, Estrin form: the r2 square runs in
    // parallel with (1+r), halving the latency chain vs Horner.
    let r2 = r * r;
    let p = r2.mul_add(r2.mul_add(C4, r.mul_add(C3, 0.5)), 1.0 + r);
    // 2^(m/8) = 2^e · 2^(j/8) with m = 8e + j. The mantissa of
    // `shifted` holds m in two's complement relative to SHIFT's bit
    // pattern, so the wrapping arithmetic below is exact integer math
    // for |m| < 2^51: the low 3 bits index the table and the rest,
    // shifted into the exponent field (e·2^52 = (8e)·2^49), add e to
    // the table entry's biased exponent. 1023 + e ∈ [1, 1023] keeps
    // the scale a normal number. `j ≤ 7`, so `try_from` cannot fail
    // and the `unwrap_or` arm is dead.
    let mi = shifted.to_bits().wrapping_sub(SHIFT.to_bits());
    let j = usize::try_from(mi & 7).unwrap_or(0);
    let e8 = mi & !7u64;
    let scale = f64::from_bits(EXP2_FRAC_BITS[j].wrapping_add(e8.wrapping_shl(49)));
    p * scale
}

/// The exponential used by the kernel hot path.
///
/// Resolves to [`fast_exp`] when the `fast-math` feature is enabled
/// and to `f64::exp` otherwise. Both the scalar reference kernels and
/// the columnar builders call this, so the cached-vs-naive bit-exact
/// contract holds under either build; only the relationship to the
/// true exponential changes (exact by default, bounded-error under
/// `fast-math`).
#[inline(always)]
pub fn hot_exp(x: f64) -> f64 {
    #[cfg(feature = "fast-math")]
    {
        fast_exp(x)
    }
    #[cfg(not(feature = "fast-math"))]
    {
        x.exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_at_zero_and_powers_of_two_domain() {
        assert_eq!(fast_exp(0.0), 1.0);
        assert_eq!(fast_exp(-0.0), 1.0);
    }

    #[test]
    fn special_values() {
        assert!(fast_exp(f64::NAN).is_nan());
        assert_eq!(fast_exp(f64::NEG_INFINITY), 0.0);
        assert_eq!(fast_exp(-1.0e9), 0.0);
        // Positive arguments defer to the libm exp bit-for-bit.
        for x in [0.5, 3.0, 100.0, 700.0, f64::INFINITY] {
            assert_eq!(fast_exp(x).to_bits(), x.exp().to_bits());
        }
    }

    #[test]
    fn below_cutoff_is_zero_and_above_is_positive() {
        assert_eq!(fast_exp(-708.001), 0.0);
        let just_above = fast_exp(-707.999);
        assert!(just_above > 0.0 && just_above.is_finite());
    }

    #[test]
    fn spot_checks_within_budget() {
        for &x in &[-1e-12, -0.1, -0.5, -1.0, -2.0, -10.0, -87.3, -300.0, -700.0] {
            let err = (fast_exp(x) - x.exp()).abs();
            assert!(err <= FAST_EXP_MAX_ABS_ERROR, "x={x}: abs err {err:e}");
        }
    }

    #[cfg(not(feature = "fast-math"))]
    #[test]
    fn hot_exp_is_libm_exp_by_default() {
        for &x in &[-5.0, -0.25, 0.0, 1.5] {
            assert_eq!(hot_exp(x).to_bits(), x.exp().to_bits());
        }
    }

    #[cfg(feature = "fast-math")]
    #[test]
    fn hot_exp_is_fast_exp_under_fast_math() {
        for &x in &[-5.0, -0.25, 0.0] {
            assert_eq!(hot_exp(x).to_bits(), fast_exp(x).to_bits());
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(2048))]

        // The documented contract: absolute error vs f64::exp over the
        // kernel's whole domain, including past the underflow cutoff.
        #[test]
        fn absolute_error_bound_on_kernel_domain(x in -800.0f64..=0.0) {
            let err = (fast_exp(x) - x.exp()).abs();
            prop_assert!(
                err <= FAST_EXP_MAX_ABS_ERROR,
                "x={x}: fast {} vs exp {} (abs err {err:e})",
                fast_exp(x),
                x.exp()
            );
        }

        // Stronger than the contract: the relative error stays within
        // the budget wherever the result is a normal number, so the
        // bound does not rely on exp(x) being tiny.
        #[test]
        fn relative_error_bound_on_normal_range(x in -700.0f64..=0.0) {
            let truth = x.exp();
            let rel = (fast_exp(x) - truth).abs() / truth;
            prop_assert!(rel <= FAST_EXP_MAX_ABS_ERROR, "x={x}: rel err {rel:e}");
        }

        // Monotone non-increasing error in the deep-negative tail: past
        // the cutoff the error is the true exp itself, still in budget.
        #[test]
        fn deep_tail_is_zero_with_negligible_error(x in -5000.0f64..-708.0) {
            prop_assert_eq!(fast_exp(x), 0.0);
            prop_assert!(x.exp() <= FAST_EXP_MAX_ABS_ERROR);
        }
    }
}
