//! Dense grid evaluation of density estimates, for plotting, numeric
//! verification, and the example binaries.

use crate::estimator::ErrorKde;
use serde::{Deserialize, Serialize};
use udm_core::{Result, Subspace, UdmError};

/// A 1-D evaluation grid: sample locations and density values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid1D {
    /// Sample locations, ascending and equally spaced.
    pub xs: Vec<f64>,
    /// Density values at the corresponding locations.
    pub ys: Vec<f64>,
}

impl Grid1D {
    /// Evaluates an arbitrary function on `n` equally spaced samples of
    /// `[lo, hi]`.
    pub fn evaluate<F: FnMut(f64) -> f64>(lo: f64, hi: f64, n: usize, mut f: F) -> Result<Self> {
        if n < 2 {
            return Err(UdmError::InvalidConfig(
                "grid needs at least 2 samples".into(),
            ));
        }
        if !(lo.is_finite() && hi.is_finite() && lo < hi) {
            return Err(UdmError::InvalidValue {
                what: "grid bounds",
                value: hi - lo,
            });
        }
        let step = (hi - lo) / (n - 1) as f64;
        let xs: Vec<f64> = (0..n).map(|i| lo + step * i as f64).collect();
        let ys = xs.iter().map(|&x| f(x)).collect();
        Ok(Grid1D { xs, ys })
    }

    /// Evaluates the 1-D marginal density of `kde` along dimension `dim`.
    pub fn from_kde(kde: &ErrorKde<'_>, dim: usize, lo: f64, hi: f64, n: usize) -> Result<Self> {
        let mut err = None;
        let g = Self::evaluate(lo, hi, n, |x| match kde.density_1d(x, dim) {
            Ok(v) => v,
            Err(e) => {
                err = Some(e);
                f64::NAN
            }
        })?;
        match err {
            Some(e) => Err(e),
            None => Ok(g),
        }
    }

    /// Location of the highest density value (argmax).
    pub fn argmax(&self) -> Option<f64> {
        self.xs
            .iter()
            .zip(self.ys.iter())
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(&x, _)| x)
    }

    /// Total mass by trapezoidal quadrature over the grid.
    pub fn mass(&self) -> f64 {
        if self.xs.len() < 2 {
            return 0.0;
        }
        let mut total = 0.0;
        for w in self.xs.windows(2).zip(self.ys.windows(2)) {
            let (xw, yw) = w;
            total += 0.5 * (yw[0] + yw[1]) * (xw[1] - xw[0]);
        }
        total
    }
}

/// A 2-D evaluation grid over a pair of dimensions, row-major in `y`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid2D {
    /// Sample locations along the first dimension.
    pub xs: Vec<f64>,
    /// Sample locations along the second dimension.
    pub ys: Vec<f64>,
    /// `zs[i][j]` = density at `(xs[i], ys[j])`.
    pub zs: Vec<Vec<f64>>,
}

impl Grid2D {
    /// Evaluates the joint density of `kde` over dimensions `(dim_x, dim_y)`
    /// on an `nx × ny` grid.
    pub fn from_kde(
        kde: &ErrorKde<'_>,
        (dim_x, dim_y): (usize, usize),
        (lo_x, hi_x): (f64, f64),
        (lo_y, hi_y): (f64, f64),
        nx: usize,
        ny: usize,
    ) -> Result<Self> {
        if nx < 2 || ny < 2 {
            return Err(UdmError::InvalidConfig(
                "grid needs at least 2 samples per axis".into(),
            ));
        }
        let d = kde.data().dim();
        if dim_x >= d || dim_y >= d {
            return Err(UdmError::DimensionOutOfRange {
                dim: dim_x.max(dim_y),
                dimensionality: d,
            });
        }
        if dim_x == dim_y {
            return Err(UdmError::InvalidConfig(
                "2-D grid requires two distinct dimensions".into(),
            ));
        }
        let subspace = Subspace::from_dims(&[dim_x, dim_y])?;
        let sx = (hi_x - lo_x) / (nx - 1) as f64;
        let sy = (hi_y - lo_y) / (ny - 1) as f64;
        let xs: Vec<f64> = (0..nx).map(|i| lo_x + sx * i as f64).collect();
        let ys: Vec<f64> = (0..ny).map(|j| lo_y + sy * j as f64).collect();
        let mut query = vec![0.0; d];
        let mut zs = Vec::with_capacity(nx);
        for &x in &xs {
            let mut row = Vec::with_capacity(ny);
            for &y in &ys {
                query[dim_x] = x;
                query[dim_y] = y;
                row.push(kde.density_subspace(&query, subspace)?);
            }
            zs.push(row);
        }
        Ok(Grid2D { xs, ys, zs })
    }

    /// The grid cell with maximal density, as `(x, y)`.
    pub fn argmax(&self) -> Option<(f64, f64)> {
        let mut best = None;
        let mut best_v = f64::NEG_INFINITY;
        for (i, row) in self.zs.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v > best_v {
                    best_v = v;
                    best = Some((self.xs[i], self.ys[j]));
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::KdeConfig;
    use udm_core::{UncertainDataset, UncertainPoint};

    fn dataset_1d() -> UncertainDataset {
        UncertainDataset::from_points(vec![
            UncertainPoint::new(vec![0.0], vec![0.1]).unwrap(),
            UncertainPoint::new(vec![0.2], vec![0.0]).unwrap(),
            UncertainPoint::new(vec![-0.1], vec![0.3]).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn evaluate_spacing_and_len() {
        let g = Grid1D::evaluate(0.0, 1.0, 11, |x| x).unwrap();
        assert_eq!(g.xs.len(), 11);
        assert!((g.xs[1] - g.xs[0] - 0.1).abs() < 1e-12);
        assert_eq!(g.ys[10], 1.0);
    }

    #[test]
    fn evaluate_rejects_bad_input() {
        assert!(Grid1D::evaluate(0.0, 1.0, 1, |x| x).is_err());
        assert!(Grid1D::evaluate(1.0, 0.0, 10, |x| x).is_err());
        assert!(Grid1D::evaluate(0.0, f64::INFINITY, 10, |x| x).is_err());
    }

    #[test]
    fn from_kde_mass_near_one() {
        let d = dataset_1d();
        let kde = ErrorKde::fit(&d, KdeConfig::default()).unwrap();
        let g = Grid1D::from_kde(&kde, 0, -10.0, 10.0, 4001).unwrap();
        assert!((g.mass() - 1.0).abs() < 1e-4, "mass={}", g.mass());
    }

    #[test]
    fn argmax_near_data_mode() {
        let d = dataset_1d();
        let kde = ErrorKde::fit(&d, KdeConfig::default()).unwrap();
        let g = Grid1D::from_kde(&kde, 0, -5.0, 5.0, 2001).unwrap();
        let m = g.argmax().unwrap();
        assert!(m.abs() < 0.5, "argmax={m}");
    }

    #[test]
    fn grid2d_shape_and_argmax() {
        let d = UncertainDataset::from_points(vec![
            UncertainPoint::new(vec![1.0, 2.0], vec![0.1, 0.1]).unwrap(),
            UncertainPoint::new(vec![1.1, 2.1], vec![0.1, 0.1]).unwrap(),
            UncertainPoint::new(vec![0.9, 1.9], vec![0.1, 0.1]).unwrap(),
        ])
        .unwrap();
        let kde = ErrorKde::fit(&d, KdeConfig::default()).unwrap();
        let g = Grid2D::from_kde(&kde, (0, 1), (-2.0, 4.0), (-1.0, 5.0), 61, 61).unwrap();
        assert_eq!(g.zs.len(), 61);
        assert_eq!(g.zs[0].len(), 61);
        let (mx, my) = g.argmax().unwrap();
        assert!((mx - 1.0).abs() < 0.5);
        assert!((my - 2.0).abs() < 0.5);
    }

    #[test]
    fn grid2d_rejects_bad_dims() {
        let d = dataset_1d();
        let kde = ErrorKde::fit(&d, KdeConfig::default()).unwrap();
        assert!(Grid2D::from_kde(&kde, (0, 1), (0.0, 1.0), (0.0, 1.0), 4, 4).is_err());
        let d2 =
            UncertainDataset::from_points(vec![UncertainPoint::exact(vec![0.0, 1.0]).unwrap()])
                .unwrap();
        let kde2 = ErrorKde::fit(&d2, KdeConfig::default()).unwrap();
        assert!(Grid2D::from_kde(&kde2, (0, 0), (0.0, 1.0), (0.0, 1.0), 4, 4).is_err());
    }

    #[test]
    fn mass_of_trivial_grid_is_zero() {
        let g = Grid1D {
            xs: vec![0.0],
            ys: vec![1.0],
        };
        assert_eq!(g.mass(), 0.0);
    }
}
