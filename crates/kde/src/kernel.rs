//! Classic (error-free) kernel functions.
//!
//! A kernel `K` is a symmetric probability density; the scaled kernel used
//! in estimation is `K_h(u) = (1/h)·K(u/h)` (Eq. 2 of the paper for the
//! Gaussian case). All kernels here integrate to 1 over ℝ, which the test
//! suite verifies by quadrature.

use serde::{Deserialize, Serialize};

/// The constant `1/√(2π)`.
pub(crate) const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;

/// A symmetric, normalized kernel function.
pub trait Kernel: std::fmt::Debug + Send + Sync {
    /// Evaluates the *standardized* kernel `K(u)`.
    fn profile(&self, u: f64) -> f64;

    /// Evaluates the scaled kernel `K_h(diff) = (1/h)·K(diff/h)`.
    ///
    /// For degenerate `h = 0` the kernel collapses to a point mass; we
    /// return `+∞` at `diff == 0` and `0` elsewhere, which keeps densities
    /// well-ordered in comparisons even if not integrable.
    fn evaluate(&self, diff: f64, h: f64) -> f64 {
        if h <= 0.0 {
            // udm-lint: allow(UDM002) degenerate point mass sits exactly at diff == 0
            return if diff == 0.0 { f64::INFINITY } else { 0.0 };
        }
        self.profile(diff / h) / h
    }

    /// Radius (in multiples of `h`) beyond which the kernel is exactly or
    /// effectively zero. `None` means unbounded support (Gaussian).
    fn support_radius(&self) -> Option<f64>;
}

/// The Gaussian kernel `K(u) = (1/√2π)·e^{−u²/2}` — the kernel the paper
/// uses throughout (Eq. 2), and the only one with an analytic error-based
/// generalization (see [`crate::error_kernel`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaussianKernel;

impl Kernel for GaussianKernel {
    #[inline]
    fn profile(&self, u: f64) -> f64 {
        INV_SQRT_2PI * (-0.5 * u * u).exp()
    }

    fn support_radius(&self) -> Option<f64> {
        None
    }
}

/// The Epanechnikov kernel `K(u) = 0.75·(1 − u²)` for `|u| ≤ 1` — the
/// mean-integrated-squared-error optimal kernel; provided for completeness
/// and for exact-support grid evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpanechnikovKernel;

impl Kernel for EpanechnikovKernel {
    #[inline]
    fn profile(&self, u: f64) -> f64 {
        if u.abs() <= 1.0 {
            0.75 * (1.0 - u * u)
        } else {
            0.0
        }
    }

    fn support_radius(&self) -> Option<f64> {
        Some(1.0)
    }
}

/// The uniform (box) kernel `K(u) = 1/2` for `|u| ≤ 1`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UniformKernel;

impl Kernel for UniformKernel {
    #[inline]
    fn profile(&self, u: f64) -> f64 {
        if u.abs() <= 1.0 {
            0.5
        } else {
            0.0
        }
    }

    fn support_radius(&self) -> Option<f64> {
        Some(1.0)
    }
}

/// The triangular kernel `K(u) = 1 − |u|` for `|u| ≤ 1`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TriangularKernel;

impl Kernel for TriangularKernel {
    #[inline]
    fn profile(&self, u: f64) -> f64 {
        let a = u.abs();
        if a <= 1.0 {
            1.0 - a
        } else {
            0.0
        }
    }

    fn support_radius(&self) -> Option<f64> {
        Some(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadrature::trapezoid;

    fn integrates_to_one<K: Kernel>(k: &K) {
        // Tolerance admits the half-cell quadrature error at the jump
        // discontinuities of compact kernels (uniform): 2 × step/2 × K(1).
        let integral = trapezoid(|u| k.profile(u), -10.0, 10.0, 20_001);
        assert!(
            (integral - 1.0).abs() < 1e-3,
            "kernel {k:?} integrates to {integral}"
        );
    }

    #[test]
    fn all_kernels_are_normalized() {
        integrates_to_one(&GaussianKernel);
        integrates_to_one(&EpanechnikovKernel);
        integrates_to_one(&UniformKernel);
        integrates_to_one(&TriangularKernel);
    }

    #[test]
    fn gaussian_peak_value() {
        assert!((GaussianKernel.profile(0.0) - INV_SQRT_2PI).abs() < 1e-15);
    }

    #[test]
    fn kernels_are_symmetric() {
        for u in [0.1, 0.5, 0.9, 2.0] {
            assert_eq!(GaussianKernel.profile(u), GaussianKernel.profile(-u));
            assert_eq!(
                EpanechnikovKernel.profile(u),
                EpanechnikovKernel.profile(-u)
            );
            assert_eq!(UniformKernel.profile(u), UniformKernel.profile(-u));
            assert_eq!(TriangularKernel.profile(u), TriangularKernel.profile(-u));
        }
    }

    #[test]
    fn scaled_kernel_integrates_to_one_for_any_h() {
        for h in [0.1, 1.0, 3.7] {
            let integral = trapezoid(|x| GaussianKernel.evaluate(x, h), -50.0, 50.0, 100_001);
            assert!((integral - 1.0).abs() < 1e-6, "h={h}: {integral}");
        }
    }

    #[test]
    fn scaling_shrinks_peak() {
        let narrow = GaussianKernel.evaluate(0.0, 0.5);
        let wide = GaussianKernel.evaluate(0.0, 2.0);
        assert!(narrow > wide);
    }

    #[test]
    fn compact_kernels_vanish_outside_support() {
        assert_eq!(EpanechnikovKernel.profile(1.01), 0.0);
        assert_eq!(UniformKernel.profile(-1.01), 0.0);
        assert_eq!(TriangularKernel.profile(2.0), 0.0);
    }

    #[test]
    fn degenerate_bandwidth_is_point_mass() {
        assert_eq!(GaussianKernel.evaluate(0.5, 0.0), 0.0);
        assert!(GaussianKernel.evaluate(0.0, 0.0).is_infinite());
    }

    #[test]
    fn support_radii() {
        assert_eq!(GaussianKernel.support_radius(), None);
        assert_eq!(EpanechnikovKernel.support_radius(), Some(1.0));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn kernels_are_non_negative(u in -100.0f64..100.0) {
            prop_assert!(GaussianKernel.profile(u) >= 0.0);
            prop_assert!(EpanechnikovKernel.profile(u) >= 0.0);
            prop_assert!(UniformKernel.profile(u) >= 0.0);
            prop_assert!(TriangularKernel.profile(u) >= 0.0);
        }

        #[test]
        fn gaussian_is_maximized_at_origin(u in -100.0f64..100.0) {
            prop_assert!(GaussianKernel.profile(u) <= GaussianKernel.profile(0.0));
        }

        #[test]
        fn evaluate_scales_correctly(diff in -10.0f64..10.0, h in 0.01f64..10.0) {
            let direct = GaussianKernel.evaluate(diff, h);
            let manual = GaussianKernel.profile(diff / h) / h;
            prop_assert!((direct - manual).abs() < 1e-12);
        }
    }
}
