//! # udm-kde
//!
//! Kernel density estimation with per-point error adjustment — the
//! *density based transform* at the heart of Aggarwal, ICDE 2007 (§2).
//!
//! Standard KDE replaces each discrete point `X_i` with a smooth bump of
//! width `h` (Eq. 1–2 of the paper). When a per-dimension error estimate
//! `ψ_j(X_i)` is available, the **error-based kernel** (Eq. 3) widens each
//! point's bump by its own error, so unreliable points spread their mass
//! over a wider region and dominate their exact locality less:
//!
//! ```text
//! Q'_h(x − X_i, ψ) ∝ exp( −(x − X_i)² / (2·(h² + ψ²)) )
//! ```
//!
//! The error-based density `f^Q(x)` (Eq. 4) is the average of these kernels,
//! and the multi-dimensional case takes the product over dimensions —
//! including over arbitrary *subspaces*, which is what the subspace
//! classifier in `udm-classify` exploits.
//!
//! Provided here:
//!
//! * [`backend`] — the pluggable [`DensityBackend`] trait and the
//!   `exact | coreset:EPS | hbe:EPS[,TAU]` accuracy-vs-latency spec every
//!   density consumer selects implementations through,
//! * [`kernel`] — classic kernel functions (Gaussian, Epanechnikov, …),
//! * [`error_kernel`] — the paper's error-based Gaussian kernel (Eq. 3) in
//!   both paper-faithful and renormalized forms,
//! * [`bandwidth`] — Silverman / Scott / fixed bandwidth selection,
//! * [`estimator`] — the point-based density estimator over datasets and
//!   subspaces (Eqs. 1, 4),
//! * [`columns`] — the factorized per-query kernel-column cache that the
//!   subspace roll-up reuses across every subspace it enumerates, stored
//!   dimension-major (SoA) for SIMD-friendly subspace products,
//! * [`chunked`] — the unrolled contiguous inner loops behind the
//!   columnar path (column multiply, ordered reduction, column build),
//! * [`fastexp`] — a bounded-error fast `exp` selected by the
//!   `fast-math` feature (default off; the default build is bit-exact),
//! * [`grid`] — dense grid evaluation for plotting and numeric checks,
//! * [`quadrature`] — trapezoidal integration used to verify normalization,
//! * [`cdf`] — closed-form CDF/quantile/interval-mass queries for 1-D
//!   mixtures,
//! * [`sampling`] — exact sampling from fitted mixtures.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod ascii;
pub mod backend;
pub mod bandwidth;
pub mod cdf;
pub mod chunked;
pub mod classic;
pub mod columns;
pub mod error_kernel;
pub mod estimator;
pub mod fastexp;
pub mod grid;
pub mod kernel;
pub mod quadrature;
pub mod sampling;

pub use ascii::{chart, sparkline};
pub use backend::{BackendSpec, DensityBackend};
pub use bandwidth::{silverman_bandwidth, silverman_robust_bandwidth, BandwidthRule};
pub use cdf::{kde_cdf, kde_interval_mass, kde_quantile};
pub use classic::ClassicKde;
pub use columns::KernelColumns;
pub use error_kernel::{ErrorKernelForm, GaussianErrorKernel};
pub use estimator::{ErrorKde, KdeConfig};
pub use fastexp::{fast_exp, hot_exp, FAST_EXP_MAX_ABS_ERROR};
pub use grid::{Grid1D, Grid2D};
pub use kernel::{EpanechnikovKernel, GaussianKernel, Kernel, TriangularKernel, UniformKernel};
pub use sampling::{sample_dataset, sample_one};
