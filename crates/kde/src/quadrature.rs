//! Simple numeric integration helpers.
//!
//! Used by the test suites (and available to examples) to verify that
//! kernels and density estimates integrate to 1, and to compute mass in an
//! interval when comparing error-adjusted and unadjusted densities.

/// Composite trapezoidal rule for `∫_a^b f(x) dx` with `n ≥ 2` samples.
///
/// # Panics
///
/// Panics if `n < 2` or `a >= b`.
pub fn trapezoid<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, n: usize) -> f64 {
    assert!(n >= 2, "trapezoid needs at least 2 samples");
    assert!(a < b, "integration bounds must satisfy a < b");
    let h = (b - a) / (n - 1) as f64;
    let mut sum = 0.5 * (f(a) + f(b));
    for i in 1..n - 1 {
        sum += f(a + h * i as f64);
    }
    sum * h
}

/// Composite 2-D trapezoidal rule over the rectangle `[ax,bx] × [ay,by]`.
pub fn trapezoid2d<F: Fn(f64, f64) -> f64>(
    f: F,
    (ax, bx): (f64, f64),
    (ay, by): (f64, f64),
    nx: usize,
    ny: usize,
) -> f64 {
    assert!(nx >= 2 && ny >= 2, "trapezoid2d needs at least 2x2 samples");
    let hx = (bx - ax) / (nx - 1) as f64;
    let hy = (by - ay) / (ny - 1) as f64;
    let mut total = 0.0;
    for i in 0..nx {
        let x = ax + hx * i as f64;
        let wx = if i == 0 || i == nx - 1 { 0.5 } else { 1.0 };
        for j in 0..ny {
            let y = ay + hy * j as f64;
            let wy = if j == 0 || j == ny - 1 { 0.5 } else { 1.0 };
            total += wx * wy * f(x, y);
        }
    }
    total * hx * hy
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrates_constant() {
        let v = trapezoid(|_| 2.0, 0.0, 3.0, 100);
        assert!((v - 6.0).abs() < 1e-12);
    }

    #[test]
    fn integrates_linear_exactly() {
        let v = trapezoid(|x| x, 0.0, 1.0, 2);
        assert!((v - 0.5).abs() < 1e-12);
    }

    #[test]
    fn integrates_quadratic() {
        let v = trapezoid(|x| x * x, 0.0, 1.0, 10_001);
        assert!((v - 1.0 / 3.0).abs() < 1e-8);
    }

    #[test]
    fn integrates_sine_over_period() {
        let v = trapezoid(|x| x.sin(), 0.0, std::f64::consts::PI, 10_001);
        assert!((v - 2.0).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "at least 2 samples")]
    fn rejects_tiny_n() {
        trapezoid(|_| 1.0, 0.0, 1.0, 1);
    }

    #[test]
    #[should_panic(expected = "a < b")]
    fn rejects_inverted_bounds() {
        trapezoid(|_| 1.0, 1.0, 0.0, 10);
    }

    #[test]
    fn trapezoid2d_constant() {
        let v = trapezoid2d(|_, _| 3.0, (0.0, 2.0), (0.0, 5.0), 50, 50);
        assert!((v - 30.0).abs() < 1e-9);
    }

    #[test]
    fn trapezoid2d_separable_product() {
        // ∫∫ x·y over [0,1]² = 1/4
        let v = trapezoid2d(|x, y| x * y, (0.0, 1.0), (0.0, 1.0), 101, 101);
        assert!((v - 0.25).abs() < 1e-6);
    }
}
