//! Sampling from fitted error-based KDE mixtures.
//!
//! A fitted estimator is a mixture of axis-aligned Gaussians, so exact
//! sampling is two steps: pick a component (uniformly over points —
//! every kernel carries weight `1/N`), then draw each coordinate from
//! `N(X_i^j, h_j² + ψ_j²)`. Useful for simulation, data augmentation, and
//! Monte-Carlo estimates of functionals of the error-adjusted density.

use crate::estimator::ErrorKde;
use rand::Rng;
use udm_core::{Result, UdmError, UncertainDataset, UncertainPoint};

fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// Draws one sample from the fitted mixture.
pub fn sample_one<R: Rng>(kde: &ErrorKde<'_>, rng: &mut R) -> Vec<f64> {
    let data = kde.data();
    let i = rng.gen_range(0..data.len());
    let p = data.point(i);
    (0..data.dim())
        .map(|j| {
            let psi = if kde.is_error_adjusted() {
                p.error(j)
            } else {
                0.0
            };
            let sd = (kde.bandwidths()[j].powi(2) + psi * psi).sqrt();
            p.value(j) + sd * standard_normal(rng)
        })
        .collect()
}

/// Draws `n` samples as a new (exact-valued) dataset. Labels are copied
/// from the originating mixture component, so class-conditional samplers
/// stay class-consistent.
///
/// # Errors
///
/// [`UdmError::InvalidConfig`] if `n == 0`.
pub fn sample_dataset<R: Rng>(
    kde: &ErrorKde<'_>,
    n: usize,
    rng: &mut R,
) -> Result<UncertainDataset> {
    if n == 0 {
        return Err(UdmError::InvalidConfig(
            "cannot sample an empty dataset".into(),
        ));
    }
    let data = kde.data();
    let mut out = UncertainDataset::new(data.dim());
    for _ in 0..n {
        let i = rng.gen_range(0..data.len());
        let p = data.point(i);
        let values: Vec<f64> = (0..data.dim())
            .map(|j| {
                let psi = if kde.is_error_adjusted() {
                    p.error(j)
                } else {
                    0.0
                };
                let sd = (kde.bandwidths()[j].powi(2) + psi * psi).sqrt();
                p.value(j) + sd * standard_normal(rng)
            })
            .collect();
        let mut q = UncertainPoint::exact(values)?;
        if let Some(l) = p.label() {
            q = q.with_label(l);
        }
        out.push(q)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::KdeConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use udm_core::{ClassLabel, RunningStats};

    fn source() -> UncertainDataset {
        UncertainDataset::from_points(vec![
            UncertainPoint::new(vec![0.0], vec![0.3])
                .unwrap()
                .with_label(ClassLabel(0)),
            UncertainPoint::new(vec![10.0], vec![0.0])
                .unwrap()
                .with_label(ClassLabel(1)),
        ])
        .unwrap()
    }

    #[test]
    fn samples_have_right_dim() {
        let d = source();
        let kde = ErrorKde::fit(&d, KdeConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sample_one(&kde, &mut rng).len(), 1);
    }

    #[test]
    fn sample_mean_matches_mixture_mean() {
        let d = source();
        let kde = ErrorKde::fit(&d, KdeConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut st = RunningStats::new();
        for _ in 0..20_000 {
            st.push(sample_one(&kde, &mut rng)[0]);
        }
        // Mixture mean = (0 + 10)/2 = 5.
        assert!((st.mean() - 5.0).abs() < 0.1, "mean {}", st.mean());
    }

    #[test]
    fn sample_dataset_copies_labels() {
        let d = source();
        // A tight fixed bandwidth keeps the two components separated, so
        // labels are identifiable from the sampled values.
        let cfg = KdeConfig {
            bandwidth: crate::bandwidth::BandwidthRule::Fixed(0.2),
            ..KdeConfig::default()
        };
        let kde = ErrorKde::fit(&d, cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let s = sample_dataset(&kde, 500, &mut rng).unwrap();
        assert_eq!(s.len(), 500);
        // Samples near 0 carry label 0, near 10 label 1 (components are
        // far apart relative to their spreads).
        for p in s.iter() {
            let expected = if p.value(0) < 5.0 {
                ClassLabel(0)
            } else {
                ClassLabel(1)
            };
            assert_eq!(p.label(), Some(expected), "value {}", p.value(0));
        }
    }

    #[test]
    fn adjusted_sampling_is_wider_than_unadjusted() {
        let wide = UncertainDataset::from_points(vec![
            UncertainPoint::new(vec![0.0], vec![4.0]).unwrap(),
            UncertainPoint::new(vec![0.0], vec![4.0]).unwrap(),
        ])
        .unwrap();
        let adj = ErrorKde::fit(&wide, KdeConfig::error_adjusted()).unwrap();
        let unadj = ErrorKde::fit(&wide, KdeConfig::unadjusted()).unwrap();
        let spread = |kde: &ErrorKde<'_>, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut st = RunningStats::new();
            for _ in 0..5000 {
                st.push(sample_one(kde, &mut rng)[0]);
            }
            st.std_population()
        };
        assert!(spread(&adj, 4) > spread(&unadj, 4) * 2.0);
    }

    #[test]
    fn zero_samples_rejected() {
        let d = source();
        let kde = ErrorKde::fit(&d, KdeConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        assert!(sample_dataset(&kde, 0, &mut rng).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let d = source();
        let kde = ErrorKde::fit(&d, KdeConfig::default()).unwrap();
        let a = sample_dataset(&kde, 50, &mut StdRng::seed_from_u64(7)).unwrap();
        let b = sample_dataset(&kde, 50, &mut StdRng::seed_from_u64(7)).unwrap();
        assert_eq!(a, b);
    }
}
