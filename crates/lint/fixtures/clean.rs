//! A file that satisfies every rule, even in fixture mode.

pub fn density(query: &[f64]) -> f64 {
    if !query.iter().all(|q| q.is_finite()) {
        return 0.0;
    }
    query.iter().sum()
}
