//! UDM001 fixture: panicking constructs in non-test code.

pub fn first(v: &[u64]) -> u64 {
    *v.first().unwrap()
}

pub fn named(x: Option<u64>) -> u64 {
    // the expect below sits on line 9
    x.expect("x must be set")
}

pub fn boom(flag: bool) {
    if flag {
        panic!("unreachable regime");
    }
}

pub fn release_due(quarantine: &mut Vec<u64>) -> u64 {
    // draining the quarantine buffer during recovery must not panic
    quarantine.pop().unwrap()
}

pub fn restore_checkpoint(raw: &str) -> u64 {
    raw.parse().expect("checkpoint digest must parse")
}
