//! UDM001 fixture: panicking constructs in non-test code.

pub fn first(v: &[u64]) -> u64 {
    *v.first().unwrap()
}

pub fn named(x: Option<u64>) -> u64 {
    // the expect below sits on line 9
    x.expect("x must be set")
}

pub fn boom(flag: bool) {
    if flag {
        panic!("unreachable regime");
    }
}
