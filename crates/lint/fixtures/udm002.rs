//! UDM002 fixture: bare float comparisons.

pub fn is_zero(x: f64) -> bool {
    x == 0.0
}

pub fn weights_differ(w: f64) -> bool {
    // A deliberately exact sentinel comparison, waived:
    // udm-lint: allow(UDM002) sentinel weight is assigned exactly, never computed
    if w == -1.0 {
        return true;
    }
    w != 0.5
}
