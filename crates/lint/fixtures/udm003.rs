//! UDM003 fixture: sqrt of variance-like expressions.

pub fn stddev(variance: f64) -> f64 {
    variance.sqrt()
}

pub fn pseudo_error(sum_sq: f64, mean_sq: f64) -> f64 {
    (sum_sq - mean_sq).sqrt()
}
