//! UDM004 fixture: lossy casts in hot-path code.

pub fn weight(count: u64) -> f64 {
    count as f64
}

pub fn bucket(x: f64) -> usize {
    x as usize
}
