//! UDM004 fixture: lossy casts inside a chunked columnar inner loop —
//! the shape of `kde/chunked` / `kde/fastexp` hot-path code, where
//! index-to-float and bit-trick conversions must use the checked
//! `udm_core::num` helpers (or bit ops) instead of `as`.

pub fn chunked_mul_with_index_weights(acc: &mut [f64]) {
    let mut chunks = acc.chunks_exact_mut(4);
    let mut base = 0usize;
    for chunk in chunks.by_ref() {
        chunk[0] *= base as f64;
        chunk[1] *= (base + 1) as f64;
        chunk[2] *= (base + 2) as f64;
        chunk[3] *= (base + 3) as f64;
        base += 4;
    }
    for (i, v) in chunks.into_remainder().iter_mut().enumerate() {
        *v *= (base + i) as f64;
    }
}

pub fn exponent_assembly(k: f64) -> f64 {
    // The fastexp-shaped violation: extracting the integer part with a
    // lossy cast instead of the magic-number bit trick.
    let ki = k as i64;
    f64::from_bits(((1023 + ki) as u64) << 52)
}
