//! UDM005 fixture: unvalidated public estimator entry point.

pub struct Estimator {
    bandwidth: f64,
}

impl Estimator {
    pub fn density(&self, query: &[f64]) -> f64 {
        query.iter().map(|q| q * self.bandwidth).sum()
    }
}

pub struct RecoveredEstimator {
    scale: f64,
}

impl RecoveredEstimator {
    // restored from a checkpoint without re-validating its inputs
    pub fn density_after_recovery(&self, query: &[f64]) -> f64 {
        query.iter().map(|q| q * self.scale).sum()
    }
}
