//! UDM005 fixture: methods of an `impl DensityBackend for …` block are
//! estimator entry points even without `pub` (trait-object dispatch
//! reaches them from outside). The unguarded `density` fires; the
//! validating `density_checked` passes.

pub struct Approximate {
    scale: f64,
}

pub trait DensityBackend {
    fn density(&self, x: &[f64]) -> f64;
    fn density_checked(&self, x: &[f64]) -> f64;
}

impl DensityBackend for Approximate {
    // Forwards raw floats with no guard: fires even though non-pub.
    fn density(&self, x: &[f64]) -> f64 {
        x.iter().map(|v| v * self.scale).sum()
    }

    // The compliant twin: validates finiteness before the arithmetic.
    fn density_checked(&self, x: &[f64]) -> f64 {
        if x.iter().any(|v| !v.is_finite()) {
            return 0.0;
        }
        self.density(x)
    }
}
