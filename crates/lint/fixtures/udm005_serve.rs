//! UDM005 fixture: serve-layer request handlers. `handle_density_request`
//! forwards raw floats with no guard (fires); `handle_classify_request`
//! validates finiteness before evaluating (passes).

pub struct Snapshot {
    weight: f64,
}

impl Snapshot {
    fn mass(&self, query: &[f64]) -> f64 {
        query.iter().map(|q| q * self.weight).sum()
    }
}

// A serve request handler that forwards raw floats without a guard.
pub fn handle_density_request(snap: &Snapshot, query: &[f64]) -> f64 {
    snap.mass(query)
}

// The compliant twin: validates before touching the kernel arithmetic.
pub fn handle_classify_request(snap: &Snapshot, query: &[f64]) -> Option<f64> {
    if query.iter().any(|q| !q.is_finite()) {
        return None;
    }
    Some(snap.mass(query))
}
