//! UDM006 fixture: span guards dropped before their scope runs.

pub fn fit_model(rows: usize) -> usize {
    let _ = udm_observe::span!("fit");
    rows * 2
}

pub fn evaluate_model(rows: usize) -> usize {
    udm_observe::span!("evaluate");
    rows + 1
}

pub fn well_instrumented(rows: usize) -> usize {
    let _span_fit = udm_observe::span!("fit");
    rows
}
