//! UDM007 fixture: non-Sync state captured by parallel-seam closures.

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub fn densities_shared_cell(xs: &[f64]) -> f64 {
    let cache = RefCell::new(0.0_f64);
    // firing: RefCell captured into a guarded_par_map closure
    guarded_par_map(xs, |x| {
        *cache.borrow_mut() += x;
        x * 2.0
    });
    0.0
}

pub fn densities_mut_capture(xs: &[f64], out: &mut Vec<f64>) {
    let mut total = 0.0_f64;
    // firing: the closure assigns to a captured binding
    guarded_par_map(xs, |x| {
        total += x;
        x + 1.0
    });
    out.push(total);
}

pub fn densities_atomic(xs: &[f64]) -> usize {
    let hits = AtomicUsize::new(0);
    // non-firing: atomics are safe to share across the seam
    guarded_par_map(xs, |x| {
        hits.fetch_add(1, Ordering::Relaxed);
        x * 2.0
    });
    hits.load(Ordering::Relaxed)
}

pub fn densities_pure(xs: &[f64], bandwidth: f64) -> Vec<f64> {
    // non-firing: read-only capture of a Copy value
    guarded_par_map(xs, |x| x / bandwidth)
}

pub fn densities_mutex(xs: &[f64]) -> f64 {
    let acc = Mutex::new(0.0_f64);
    // non-firing: sync wrapper mediates the shared state
    guarded_par_map(xs, |x| {
        let mut guard = acc.lock().unwrap_or_else(|e| e.into_inner());
        *guard += x;
        x
    });
    let v = *acc.lock().unwrap_or_else(|e| e.into_inner());
    v
}

fn guarded_par_map(xs: &[f64], f: impl Fn(f64) -> f64) -> Vec<f64> {
    xs.iter().map(|&x| f(x)).collect()
}
