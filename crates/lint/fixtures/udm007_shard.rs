//! UDM007 fixture: shard-worker fan-out seams. The supervisor in
//! `udm_microcluster::shard` round-robins workers on one thread today;
//! these are the shapes a threaded worker pool must NOT take.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

pub fn shard_workers_shared_registry(partitions: &[Vec<f64>]) -> f64 {
    let merged = RefCell::new(0.0_f64);
    rayon::scope(|s| {
        for part in partitions {
            s.spawn(|_| {
                // firing: per-shard workers funnel into a RefCell
                *merged.borrow_mut() += part.iter().sum::<f64>();
            });
        }
    });
    0.0
}

pub fn shard_pair_coverage(left: &[f64], right: &[f64]) -> f64 {
    let mut covered = 0.0_f64;
    rayon::join(
        || {
            // firing: both halves assign to the captured accumulator
            covered += left.iter().sum::<f64>();
        },
        || right.iter().sum::<f64>(),
    );
    covered
}

pub fn shard_workers_mutexed_merge(partitions: &[Vec<f64>]) -> f64 {
    let merged = Mutex::new(0.0_f64);
    rayon::scope(|s| {
        for part in partitions {
            s.spawn(|_| {
                // non-firing: the merge accumulator is lock-mediated
                let mut guard = merged.lock().unwrap_or_else(|e| e.into_inner());
                *guard += part.iter().sum::<f64>();
            });
        }
    });
    let v = *merged.lock().unwrap_or_else(|e| e.into_inner());
    v
}

pub fn shard_restart_tally(partitions: &[Vec<f64>]) -> u64 {
    let restarts = AtomicU64::new(0);
    rayon::scope(|s| {
        for _ in partitions {
            s.spawn(|_| {
                // non-firing: restart counts cross the seam atomically
                restarts.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    restarts.load(Ordering::Relaxed)
}

mod rayon {
    pub struct Scope;
    impl Scope {
        pub fn spawn(&self, f: impl FnOnce(&Scope)) {
            f(&Scope);
        }
    }
    pub fn scope(f: impl FnOnce(&Scope)) {
        f(&Scope);
    }
    pub fn join<A: FnOnce() -> RA, B: FnOnce() -> RB, RA, RB>(a: A, b: B) -> (RA, RB) {
        (a(), b())
    }
}
