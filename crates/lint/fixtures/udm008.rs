//! UDM008 fixture: fast-math-gated items reached from default-build code.

#[cfg(feature = "fast-math")]
pub fn approx_kernel(x: f64) -> f64 {
    x * x
}

#[cfg(feature = "fast-math")]
pub const APPROX_TABLE_BITS: usize = 11;

pub fn default_path(x: f64) -> f64 {
    // firing: ungated call into a fast-math-only item
    approx_kernel(x) + 1.0
}

pub fn table_len() -> usize {
    // firing: gated constant referenced from default-build code
    1usize << APPROX_TABLE_BITS
}

#[cfg(feature = "fast-math")]
pub fn approx_density(x: f64) -> f64 {
    // non-firing: caller carries the same gate
    approx_kernel(x)
}

pub fn hot_kernel(x: f64) -> f64 {
    #[cfg(feature = "fast-math")]
    {
        approx_kernel(x)
    }
    #[cfg(not(feature = "fast-math"))]
    {
        x.exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ab_compare() {
        // non-firing: benches/tests are exactly where A/B comparisons live
        assert!(approx_kernel(1.0) > 0.0);
    }
}
