//! UDM009 fixture: nondeterministic one-time initialisers.

use std::collections::{BTreeMap, HashMap};
use std::sync::OnceLock;
use std::time::Instant;

static SEED: OnceLock<u64> = OnceLock::new();
static WEIGHTS: OnceLock<Vec<f64>> = OnceLock::new();
static ORDER: OnceLock<Vec<String>> = OnceLock::new();
static TABLE: OnceLock<Vec<f64>> = OnceLock::new();

pub fn seed() -> u64 {
    // firing: wall-clock time decides the cached value
    *SEED.get_or_init(|| u64::from(Instant::now().elapsed().subsec_nanos()))
}

pub fn flat_weights(map: &HashMap<String, f64>) -> usize {
    // firing: HashMap iteration order leaks into the cached vector
    WEIGHTS
        .get_or_init(|| map.iter().map(|(_, v)| *v).collect())
        .len()
}

pub fn ordered(map: &BTreeMap<String, f64>) -> usize {
    // non-firing: BTreeMap iteration is deterministic
    ORDER
        .get_or_init(|| map.keys().cloned().collect())
        .len()
}

pub fn kernel_table(n: usize) -> f64 {
    // non-firing: pure arithmetic initialiser
    TABLE
        .get_or_init(|| std::iter::repeat(0.5).take(n).collect())
        .iter()
        .sum()
}
