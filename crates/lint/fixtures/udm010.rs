//! UDM010 fixture: `unsafe` blocks without an adjacent SAFETY comment.

pub fn sum_unchecked(xs: &[f64], n: usize) -> f64 {
    let mut acc = 0.0;
    for i in 0..n {
        // firing: no SAFETY justification for the unchecked access
        acc += unsafe { *xs.get_unchecked(i) };
    }
    acc
}

pub fn reinterpret(bits: u64) -> f64 {
    // firing: comment above is not a SAFETY comment
    // fast path used by the table kernel
    unsafe { std::mem::transmute::<u64, f64>(bits) }
}

pub fn head_unchecked(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    // non-firing: justified block
    // SAFETY: emptiness was checked on the line above, so index 0 exists.
    unsafe { *xs.get_unchecked(0) }
}

pub fn tail_unchecked(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    // non-firing: same-line justification
    unsafe { *xs.get_unchecked(xs.len() - 1) } // SAFETY: non-empty checked above
}
