//! The lightweight AST produced by [`crate::parser`].
//!
//! This is a *structural overlay* on the token stream, not a full Rust
//! syntax tree: items, blocks, closures, attributes and delimiter
//! groups are materialized as nodes; everything else stays a flat run
//! of token references. The design invariant — checked by the
//! round-trip suite — is **total token coverage**: an in-order walk of
//! the tree visits every token index exactly once, so byte spans are
//! preserved and no construct can silently vanish from analysis.

use crate::lexer::Tok;

/// A parsed `cfg` predicate, e.g. `all(feature = "fast-math", not(test))`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CfgPredicate {
    /// `feature = "name"`.
    Feature(String),
    /// The bare `test` atom.
    Test,
    /// Any other bare atom (`unix`, `doc`, …).
    Ident(String),
    /// Any other `key = "value"` pair (`target_os = "linux"`, …).
    KeyValue(String, String),
    /// `not(..)`.
    Not(Box<CfgPredicate>),
    /// `all(..)`.
    All(Vec<CfgPredicate>),
    /// `any(..)`.
    Any(Vec<CfgPredicate>),
}

impl CfgPredicate {
    /// Evaluates the predicate under a build configuration: `test_on`
    /// toggles the `test` atom, `features` is the enabled feature set.
    /// Unknown atoms and key/value pairs evaluate to `false` — the
    /// conservative reading for "is this compiled in the default
    /// workspace build".
    pub fn eval(&self, test_on: bool, features: &[&str]) -> bool {
        match self {
            CfgPredicate::Feature(f) => features.contains(&f.as_str()),
            CfgPredicate::Test => test_on,
            CfgPredicate::Ident(_) | CfgPredicate::KeyValue(_, _) => false,
            CfgPredicate::Not(p) => !p.eval(test_on, features),
            CfgPredicate::All(ps) => ps.iter().all(|p| p.eval(test_on, features)),
            CfgPredicate::Any(ps) => ps.iter().any(|p| p.eval(test_on, features)),
        }
    }

    /// True when the gated item only exists in test builds: absent
    /// without `test` under *any* feature assignment, present with
    /// `test` under some assignment (checked at the all-off and all-on
    /// corners, which is exact for gates without feature `not`-mixes).
    pub fn is_test_only(&self) -> bool {
        let off_without_test = !self.eval(false, &[]) && !self.eval_features_on(false);
        off_without_test && (self.eval(true, &[]) || self.eval_features_on(true))
    }

    /// Evaluates with every `feature = ".."` atom forced to `true`.
    fn eval_features_on(&self, test_on: bool) -> bool {
        match self {
            CfgPredicate::Feature(_) => true,
            CfgPredicate::Test => test_on,
            CfgPredicate::Ident(_) | CfgPredicate::KeyValue(_, _) => false,
            CfgPredicate::Not(p) => !p.eval_features_on(test_on),
            CfgPredicate::All(ps) => ps.iter().all(|p| p.eval_features_on(test_on)),
            CfgPredicate::Any(ps) => ps.iter().any(|p| p.eval_features_on(test_on)),
        }
    }

    /// Features that, enabled alone, bring a default-absent item into
    /// the build. Empty for items already present by default.
    pub fn enabling_features(&self) -> Vec<String> {
        if self.eval(false, &[]) {
            return Vec::new();
        }
        let mut names = Vec::new();
        self.collect_feature_names(&mut names);
        names.retain(|f| self.eval(false, &[f.as_str()]));
        names.dedup();
        names
    }

    fn collect_feature_names(&self, out: &mut Vec<String>) {
        match self {
            CfgPredicate::Feature(f) => out.push(f.clone()),
            CfgPredicate::Not(p) => p.collect_feature_names(out),
            CfgPredicate::All(ps) | CfgPredicate::Any(ps) => {
                for p in ps {
                    p.collect_feature_names(out);
                }
            }
            _ => {}
        }
    }
}

/// One attribute, outer (`#[..]`) or inner (`#![..]`).
#[derive(Debug, Clone)]
pub struct Attr {
    /// Token index range `[start, end)` covering `#`…`]`.
    pub span: (usize, usize),
    /// 1-based line of the `#`.
    pub line: usize,
    /// First path identifier inside the brackets (`cfg`, `test`, …).
    pub path: String,
    /// Parsed predicate when `path == "cfg"`.
    pub cfg: Option<CfgPredicate>,
    /// True for `#![..]`.
    pub inner: bool,
}

impl Attr {
    /// True for `#[test]` or a `cfg` gate that only passes in test
    /// builds (`#[cfg(test)]`, `#[cfg(all(test, ..))]`, …).
    pub fn is_test_only(&self) -> bool {
        if self.path == "test" {
            return true;
        }
        self.cfg.as_ref().is_some_and(CfgPredicate::is_test_only)
    }

    /// Features that enable this attribute's cfg gate (empty when the
    /// attribute is not a feature gate).
    pub fn enabling_features(&self) -> Vec<String> {
        self.cfg
            .as_ref()
            .map(CfgPredicate::enabling_features)
            .unwrap_or_default()
    }
}

/// What kind of item a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn`.
    Fn,
    /// Inline or declared `mod`.
    Mod,
    /// `struct` / `enum` / `union`.
    DataType,
    /// `trait`.
    Trait,
    /// `impl`.
    Impl,
    /// `use`.
    Use,
    /// `const` or `static`.
    Const,
    /// `type` alias.
    TypeAlias,
    /// `extern "C" { .. }` / `extern crate ..`.
    Extern,
    /// `macro_rules!` definition.
    MacroRules,
    /// Item-position macro invocation (`thread_local! { .. }`).
    MacroCall,
    /// Fallback: a single token the item parser could not classify.
    Unknown,
}

/// The members container of a `mod` / `impl` / `trait` / extern block.
#[derive(Debug)]
pub struct Members {
    /// Token index of the opening `{`.
    pub open: usize,
    /// Inner attributes (`#![..]`) at the container top.
    pub inner_attrs: Vec<Attr>,
    /// Member items (with `Node::Tok` fallbacks for stray tokens).
    pub nodes: Vec<Node>,
    /// Token index of the closing `}` (None at EOF).
    pub close: Option<usize>,
}

/// One item.
#[derive(Debug)]
pub struct Item {
    /// Item kind.
    pub kind: ItemKind,
    /// Declared name, when the form has one.
    pub name: Option<String>,
    /// Token index of the name identifier (excluded from "mention"
    /// scans — a definition is not a reference).
    pub name_tok: Option<usize>,
    /// Outer attributes.
    pub attrs: Vec<Attr>,
    /// Bare `pub` visibility (not `pub(crate)` etc.).
    pub is_pub: bool,
    /// 1-based line of the first head token.
    pub line: usize,
    /// Token index range `[start, end)` covering the whole item.
    pub span: (usize, usize),
    /// Everything between the attributes and the body/members/semi:
    /// modifiers, keyword, name, generics, parameter group, return
    /// type, or — for `const`/`use`/data types — the full remainder.
    pub head: Vec<Node>,
    /// `fn` body.
    pub body: Option<Block>,
    /// `mod`/`impl`/`trait`/extern member container.
    pub members: Option<Members>,
    /// Trailing `;` token index.
    pub semi: Option<usize>,
}

impl Item {
    /// The parameter group of an `fn` item (first parenthesis group in
    /// the head), if any.
    pub fn param_group(&self) -> Option<&[Node]> {
        self.head.iter().find_map(|n| match n {
            Node::Group {
                children,
                kind: GroupKind::Paren,
                ..
            } => Some(children.as_slice()),
            _ => None,
        })
    }

    /// True when any outer attribute is test-only.
    pub fn is_test_gated(&self) -> bool {
        self.attrs.iter().any(Attr::is_test_only)
    }

    /// Features required (beyond the default set) by this item's own
    /// attributes.
    pub fn own_features(&self) -> Vec<String> {
        let mut out = Vec::new();
        for a in &self.attrs {
            out.extend(a.enabling_features());
        }
        out
    }
}

/// Delimiter kind of a [`Node::Group`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupKind {
    /// `( .. )`.
    Paren,
    /// `[ .. ]`.
    Bracket,
    /// `{ .. }` parsed as a raw token tree (struct bodies, macro
    /// definitions) rather than a statement block.
    RawBrace,
}

/// A `{ .. }` block of statements.
#[derive(Debug)]
pub struct Block {
    /// Token index of `{`.
    pub open: usize,
    /// Statements, loosely split on `;`.
    pub stmts: Vec<Stmt>,
    /// Token index of `}` (None at EOF).
    pub close: Option<usize>,
}

/// One loosely-parsed statement.
#[derive(Debug)]
pub struct Stmt {
    /// Outer attributes (carry `cfg` gates for statements).
    pub attrs: Vec<Attr>,
    /// True when the statement starts with `let`.
    pub is_let: bool,
    /// The statement's expression nodes (for an item statement, a
    /// single `Node::Item`).
    pub nodes: Vec<Node>,
    /// Trailing `;` token index.
    pub semi: Option<usize>,
}

/// A closure literal.
#[derive(Debug)]
pub struct Closure {
    /// Token index of a leading `move`, if present.
    pub move_tok: Option<usize>,
    /// Token index of the opening `|` (or the single `||` token).
    pub open: usize,
    /// Parameter nodes between the pipes (empty for `||`).
    pub params: Vec<Node>,
    /// Token index of the closing `|` (None for the `||` token form).
    pub close: Option<usize>,
    /// Body nodes (a single `Node::Block` for brace bodies).
    pub body: Vec<Node>,
    /// 1-based line of the opening pipe.
    pub line: usize,
}

/// One AST node.
#[derive(Debug)]
pub enum Node {
    /// A single token, by index into the lexed token list.
    Tok(usize),
    /// A delimiter group.
    Group {
        /// Opening delimiter token index.
        open: usize,
        /// Delimiter kind.
        kind: GroupKind,
        /// Child nodes.
        children: Vec<Node>,
        /// Closing delimiter token index (None at EOF).
        close: Option<usize>,
    },
    /// A statement block.
    Block(Block),
    /// A closure literal.
    Closure(Box<Closure>),
    /// A nested item.
    Item(Box<Item>),
}

/// A parsed file.
#[derive(Debug, Default)]
pub struct Ast {
    /// File-level inner attributes (`#![..]`).
    pub inner_attrs: Vec<Attr>,
    /// Top-level nodes (items, with token fallbacks).
    pub nodes: Vec<Node>,
    /// Number of tokens in the underlying lexed stream.
    pub n_tokens: usize,
    /// Parse irregularities (unbalanced delimiters, EOF in a block).
    /// Non-empty errors send the engine down the lexer fallback path.
    pub errors: Vec<String>,
}

impl Ast {
    /// In-order token indices covered by the tree. The round-trip
    /// invariant is `coverage() == (0..n_tokens)`.
    pub fn coverage(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.n_tokens);
        for a in &self.inner_attrs {
            out.extend(a.span.0..a.span.1);
        }
        for n in &self.nodes {
            cover_node(n, &mut out);
        }
        out
    }

    /// True when the tree covers every token exactly once, in order.
    pub fn covers_all_tokens(&self) -> bool {
        let cov = self.coverage();
        cov.len() == self.n_tokens && cov.iter().enumerate().all(|(i, &t)| i == t)
    }

    /// Visits every item in the tree (depth-first, source order),
    /// passing the stack of enclosing items.
    pub fn visit_items<'a>(&'a self, f: &mut impl FnMut(&'a Item, &[&'a Item])) {
        let mut stack = Vec::new();
        for n in &self.nodes {
            visit_node_items(n, &mut stack, f);
        }
    }
}

fn visit_node_items<'a>(
    node: &'a Node,
    stack: &mut Vec<&'a Item>,
    f: &mut impl FnMut(&'a Item, &[&'a Item]),
) {
    match node {
        Node::Item(item) => {
            f(item, stack);
            stack.push(item);
            for n in &item.head {
                visit_node_items(n, stack, f);
            }
            if let Some(m) = &item.members {
                for n in &m.nodes {
                    visit_node_items(n, stack, f);
                }
            }
            if let Some(b) = &item.body {
                visit_block_items(b, stack, f);
            }
            stack.pop();
        }
        Node::Group { children, .. } => {
            for n in children {
                visit_node_items(n, stack, f);
            }
        }
        Node::Block(b) => visit_block_items(b, stack, f),
        Node::Closure(c) => {
            for n in &c.body {
                visit_node_items(n, stack, f);
            }
        }
        Node::Tok(_) => {}
    }
}

fn visit_block_items<'a>(
    block: &'a Block,
    stack: &mut Vec<&'a Item>,
    f: &mut impl FnMut(&'a Item, &[&'a Item]),
) {
    for s in &block.stmts {
        for n in &s.nodes {
            visit_node_items(n, stack, f);
        }
    }
}

fn cover_node(node: &Node, out: &mut Vec<usize>) {
    match node {
        Node::Tok(i) => out.push(*i),
        Node::Group {
            open,
            children,
            close,
            ..
        } => {
            out.push(*open);
            for n in children {
                cover_node(n, out);
            }
            if let Some(c) = close {
                out.push(*c);
            }
        }
        Node::Block(b) => cover_block(b, out),
        Node::Closure(c) => {
            if let Some(m) = c.move_tok {
                out.push(m);
            }
            out.push(c.open);
            for n in &c.params {
                cover_node(n, out);
            }
            if let Some(cl) = c.close {
                out.push(cl);
            }
            for n in &c.body {
                cover_node(n, out);
            }
        }
        Node::Item(item) => cover_item(item, out),
    }
}

fn cover_block(b: &Block, out: &mut Vec<usize>) {
    out.push(b.open);
    for s in &b.stmts {
        for a in &s.attrs {
            out.extend(a.span.0..a.span.1);
        }
        for n in &s.nodes {
            cover_node(n, out);
        }
        if let Some(semi) = s.semi {
            out.push(semi);
        }
    }
    if let Some(c) = b.close {
        out.push(c);
    }
}

fn cover_item(item: &Item, out: &mut Vec<usize>) {
    for a in &item.attrs {
        out.extend(a.span.0..a.span.1);
    }
    for n in &item.head {
        cover_node(n, out);
    }
    if let Some(m) = &item.members {
        out.push(m.open);
        for a in &m.inner_attrs {
            out.extend(a.span.0..a.span.1);
        }
        for n in &m.nodes {
            cover_node(n, out);
        }
        if let Some(c) = m.close {
            out.push(c);
        }
    }
    if let Some(b) = &item.body {
        cover_block(b, out);
    }
    if let Some(semi) = item.semi {
        out.push(semi);
    }
}

/// Tokens helper: text of token `i`, or `""` out of range.
pub fn tok_text(toks: &[Tok], i: usize) -> &str {
    toks.get(i).map_or("", |t| t.text.as_str())
}
