//! AST-backed rules: the scope-aware UDM005 port, and the
//! concurrency/determinism rules UDM007 and UDM009 built on the
//! [`crate::scope`] capture analysis. These only run when the parser
//! produced a full-coverage AST; on the lexer fallback path UDM005
//! falls back to its token implementation and UDM007/UDM009 are
//! skipped for that file (the engine logs the degradation).

use crate::ast::{Ast, Item, ItemKind, Node};
use crate::context::FileContext;
use crate::lexer::{Lexed, Tok, TokKind};
use crate::rules::Diagnostic;
use crate::scope::{analyze_fn, ClosureReport};

/// Runs the AST rules over one parsed file.
pub fn run_ast_rules(lexed: &Lexed, ast: &Ast, ctx: &FileContext) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    udm005_entry_validation(lexed, ast, ctx, &mut out);
    udm007_parallel_captures(lexed, ast, ctx, &mut out);
    udm009_once_init_determinism(lexed, ast, ctx, &mut out);
    out.sort_by(|a, b| a.line.cmp(&b.line).then(a.rule.cmp(b.rule)));
    out
}

/// True when the item (or any enclosing item) is test-gated.
fn in_test_item(item: &Item, ancestors: &[&Item]) -> bool {
    item.is_test_gated() || ancestors.iter().any(|a| a.is_test_gated())
}

/// Flattened token indices of a node list.
fn flat_indices(nodes: &[Node], out: &mut Vec<usize>) {
    for n in nodes {
        match n {
            Node::Tok(i) => out.push(*i),
            Node::Group {
                open,
                children,
                close,
                ..
            } => {
                out.push(*open);
                flat_indices(children, out);
                if let Some(c) = close {
                    out.push(*c);
                }
            }
            Node::Block(b) => {
                out.push(b.open);
                for s in &b.stmts {
                    flat_indices(&s.nodes, out);
                    if let Some(semi) = s.semi {
                        out.push(semi);
                    }
                }
                if let Some(c) = b.close {
                    out.push(c);
                }
            }
            Node::Closure(c) => {
                if let Some(m) = c.move_tok {
                    out.push(m);
                }
                out.push(c.open);
                flat_indices(&c.params, out);
                if let Some(cl) = c.close {
                    out.push(cl);
                }
                flat_indices(&c.body, out);
            }
            Node::Item(item) => {
                flat_indices(&item.head, out);
                if let Some(m) = &item.members {
                    out.push(m.open);
                    flat_indices(&m.nodes, out);
                    if let Some(c) = m.close {
                        out.push(c);
                    }
                }
                if let Some(b) = &item.body {
                    flat_indices(&[Node::Tok(b.open)], out);
                    for s in &b.stmts {
                        flat_indices(&s.nodes, out);
                        if let Some(semi) = s.semi {
                            out.push(semi);
                        }
                    }
                    if let Some(c) = b.close {
                        out.push(c);
                    }
                }
                if let Some(semi) = item.semi {
                    out.push(semi);
                }
            }
        }
    }
}

fn body_indices(item: &Item) -> Vec<usize> {
    let mut idx = Vec::new();
    if let Some(b) = &item.body {
        idx.push(b.open);
        for s in &b.stmts {
            flat_indices(&s.nodes, &mut idx);
            if let Some(semi) = s.semi {
                idx.push(semi);
            }
        }
        if let Some(c) = b.close {
            idx.push(c);
        }
    }
    idx
}

// ---- UDM005 (AST port) --------------------------------------------------

/// Guard identifiers that count as input validation.
const GUARD_IDENTS: [&str; 6] = [
    "ensure_finite_slice",
    "ensure_finite_slice_opt",
    "ensure_finite",
    "ensure_non_negative",
    "debug_assert_finite",
    "is_finite",
];

/// True when any enclosing item is an `impl` whose head mentions the
/// `DensityBackend` trait — its methods are estimator entry points even
/// without `pub` (trait dispatch makes them externally reachable).
fn in_density_backend_impl(ancestors: &[&Item], toks: &[Tok]) -> bool {
    ancestors.iter().any(|a| {
        if a.kind != ItemKind::Impl {
            return false;
        }
        let mut idx = Vec::new();
        flat_indices(&a.head, &mut idx);
        idx.iter().any(|&i| toks[i].is_ident("DensityBackend"))
    })
}

/// UDM005 on the AST: `pub fn density*` / `pub fn classify*` — and the
/// serve-layer request handlers `pub fn handle_*density*` /
/// `pub fn handle_*classify*` — taking float input must validate or
/// delegate. Methods of `impl DensityBackend for …` blocks are held to
/// the same contract even without `pub`: the trait object makes them
/// externally reachable entry points. The AST form gets exact item
/// extents (no brace-counting drift) and exact `pub` + test gating.
fn udm005_entry_validation(lexed: &Lexed, ast: &Ast, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    if !ctx.is_library {
        return;
    }
    let toks = &lexed.toks;
    ast.visit_items(&mut |item, ancestors| {
        if item.kind != ItemKind::Fn || in_test_item(item, ancestors) {
            return;
        }
        if !item.is_pub && !in_density_backend_impl(ancestors, toks) {
            return;
        }
        let Some(name) = item.name.as_deref() else {
            return;
        };
        let is_entry = name.starts_with("density")
            || name.starts_with("classify")
            || (name.starts_with("handle_")
                && (name.contains("density") || name.contains("classify")));
        if !is_entry {
            return;
        }
        let name_tok = item.name_tok.map(|i| &toks[i]);
        if name_tok.is_some_and(|t| ctx.in_test(t.start)) {
            return;
        }
        let Some(params) = item.param_group() else {
            return;
        };
        let mut pidx = Vec::new();
        flat_indices(params, &mut pidx);
        let takes_floats = pidx
            .iter()
            .any(|&i| toks[i].is_ident("f64") || toks[i].is_ident("UncertainPoint"));
        if !takes_floats || item.body.is_none() {
            return;
        }
        let body = body_indices(item);
        let validates = body.iter().any(|&i| {
            toks[i].kind == TokKind::Ident && GUARD_IDENTS.contains(&toks[i].text.as_str())
        });
        let delegates = body.iter().any(|&i| {
            let t = &toks[i];
            t.kind == TokKind::Ident
                && t.text != name
                && (t.text.starts_with("density")
                    || t.text.starts_with("classify")
                    || t.text == "log_scores")
        });
        if !validates && !delegates {
            out.push(Diagnostic {
                rule: "UDM005",
                path: ctx.rel_path.clone(),
                line: name_tok.map_or(item.line, |t| t.line),
                message: format!(
                    "public estimator entry point `{name}` takes float input \
                     but neither validates finiteness (udm_core::num::ensure_finite_slice) \
                     nor delegates to a validating entry point"
                ),
                offset: name_tok.map_or(0, |t| t.start),
            });
        }
    });
}

// ---- UDM007 -------------------------------------------------------------

/// Functions whose closure argument runs on multiple threads.
const PAR_ENTRY_FNS: [&str; 3] = ["guarded_par_map", "join", "scope"];

/// Method names that move iteration onto the rayon thread pool; every
/// closure later in the same call chain executes in parallel.
const PAR_METHODS: [&str; 5] = [
    "par_iter",
    "into_par_iter",
    "par_iter_mut",
    "par_chunks",
    "par_bridge",
];

/// Interior-mutability cell types that are not thread-safe.
const NON_SYNC_CELLS: [&str; 3] = ["RefCell", "Cell", "UnsafeCell"];

/// Synchronized wrappers that make shared mutation safe.
const SYNC_WRAPPERS: [&str; 4] = ["Mutex", "RwLock", "AtomicUsize", "AtomicU64"];

/// True when the declaration text mentions `name` as a standalone type
/// path segment (so `OnceCell` does not match `Cell`).
fn decl_mentions_type(decl: &str, name: &str) -> bool {
    decl.split(|c: char| !(c.is_alphanumeric() || c == '_'))
        .any(|seg| seg == name)
}

/// UDM007: closures reaching a parallel seam must not capture `&mut`
/// state, non-`Sync` cells, or mutate captured bindings — rayon will
/// run them concurrently and the mutation becomes a data race (or a
/// compile error the author then "fixes" with unsafe/cells).
fn udm007_parallel_captures(
    lexed: &Lexed,
    ast: &Ast,
    ctx: &FileContext,
    out: &mut Vec<Diagnostic>,
) {
    let toks = &lexed.toks;
    ast.visit_items(&mut |item, ancestors| {
        if item.kind != ItemKind::Fn || item.body.is_none() || in_test_item(item, ancestors) {
            return;
        }
        let body = body_indices(item);
        if body.is_empty() {
            return;
        }
        let start = body[0];
        let end = *body.last().expect("nonempty") + 1;
        // Parallel-seam closure opens inside this fn body: a closure
        // token that appears (a) inside the argument list of one of
        // PAR_ENTRY_FNS, or (b) after a PAR_METHODS call in the same
        // statement/chain.
        let par_spans = parallel_spans(toks, start, end);
        if par_spans.is_empty() {
            return;
        }
        if item.name_tok.is_some_and(|i| ctx.in_test(toks[i].start)) {
            return;
        }
        let reports = analyze_fn(item, toks);
        for rep in &reports {
            let open_tok = &toks[rep.open];
            if ctx.in_test(open_tok.start) {
                continue;
            }
            if !par_spans
                .iter()
                .any(|&(s, e)| rep.open >= s && rep.open < e)
            {
                continue;
            }
            flag_par_closure(rep, ctx, out);
        }
    });
}

/// Token-index spans `[start, end)` in which a closure is a parallel
/// seam closure.
fn parallel_spans(toks: &[Tok], start: usize, end: usize) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for i in start..end.min(toks.len()) {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let name = t.text.as_str();
        let is_entry_fn = PAR_ENTRY_FNS.contains(&name)
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            // Bare `join`/`scope` only count with a rayon:: path prefix;
            // `guarded_par_map` counts bare or qualified.
            && (name == "guarded_par_map" || path_prefix_is(toks, i, "rayon"));
        if is_entry_fn {
            if let Some(close) = match_close(toks, i + 1, "(", ")") {
                spans.push((i + 1, close + 1));
            }
        }
        if PAR_METHODS.contains(&name)
            && i > 0
            && toks[i - 1].is_punct(".")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
        {
            // Everything from here to the end of the statement/chain
            // (`;`, `,` at depth 0 relative to here, or closing brace).
            let mut depth = 0i32;
            let mut j = i + 1;
            while j < end.min(toks.len()) {
                let tk = &toks[j];
                if tk.is_punct("(") || tk.is_punct("[") || tk.is_punct("{") {
                    depth += 1;
                } else if tk.is_punct(")") || tk.is_punct("]") || tk.is_punct("}") {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                } else if depth == 0 && tk.is_punct(";") {
                    break;
                }
                j += 1;
            }
            spans.push((i, j));
        }
    }
    spans
}

/// True when tokens before `i` form a `rayon::` path prefix.
fn path_prefix_is(toks: &[Tok], i: usize, root: &str) -> bool {
    i >= 2 && toks[i - 1].is_punct("::") && toks[i - 2].is_ident(root)
}

/// Matching close index for the group opening at `open_idx`.
fn match_close(toks: &[Tok], open_idx: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

fn flag_par_closure(rep: &ClosureReport, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    for cap in &rep.captures {
        let synced = SYNC_WRAPPERS
            .iter()
            .any(|w| decl_mentions_type(&cap.binding.decl_text, w))
            || cap.binding.decl_text.contains("Atomic");
        if synced {
            continue;
        }
        if let Some(cell) = NON_SYNC_CELLS
            .iter()
            .find(|c| decl_mentions_type(&cap.binding.decl_text, c))
        {
            out.push(Diagnostic {
                rule: "UDM007",
                path: ctx.rel_path.clone(),
                line: cap.line,
                message: format!(
                    "parallel-seam closure captures `{}` declared with non-Sync \
                     `{cell}`; use atomics or a Mutex/RwLock (or restructure to \
                     a map+reduce without shared state)",
                    cap.name
                ),
                offset: 0,
            });
            continue;
        }
        if cap.mutated() {
            let how = if cap.assigned {
                "assigns to"
            } else if cap.mut_borrowed {
                "takes `&mut` of"
            } else {
                "calls a mutating method on"
            };
            out.push(Diagnostic {
                rule: "UDM007",
                path: ctx.rel_path.clone(),
                line: cap.line,
                message: format!(
                    "parallel-seam closure {how} captured `{}`; shared mutable \
                     state across rayon workers is a data race — make the seam \
                     a pure map and reduce the results sequentially",
                    cap.name
                ),
                offset: 0,
            });
        }
    }
}

// ---- UDM009 -------------------------------------------------------------

/// Identifiers that introduce nondeterminism inside a once-init closure.
const NONDET_CALLS: [&str; 8] = [
    "thread_rng",
    "from_entropy",
    "random",
    "now",
    "elapsed",
    "timestamp",
    "current",
    "available_parallelism",
];

/// Path roots whose mention inside an init closure is nondeterministic.
const NONDET_ROOTS: [&str; 4] = ["SystemTime", "Instant", "ThreadId", "rand"];

/// UDM009: `OnceLock::get_or_init` / `OnceCell` / `Lazy::new` closures
/// run once at a nondeterministic time on a nondeterministic thread —
/// their result must depend only on their inputs. RNG, clocks,
/// thread ids and unordered-map iteration all make the cached value
/// run-dependent, which breaks replayable checkpoints.
fn udm009_once_init_determinism(
    lexed: &Lexed,
    ast: &Ast,
    ctx: &FileContext,
    out: &mut Vec<Diagnostic>,
) {
    let toks = &lexed.toks;
    // Once-init sites: token index ranges of the argument group of
    // `get_or_init(` / `get_or_try_init(` / `Lazy::new(` /
    // `OnceCell::with(`.
    let mut sites: Vec<(usize, usize)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let is_method = (t.is_ident("get_or_init") || t.is_ident("get_or_try_init"))
            && i > 0
            && toks[i - 1].is_punct(".");
        let is_lazy_new = t.is_ident("new") && path_prefix_is(toks, i, "Lazy");
        if (is_method || is_lazy_new) && toks.get(i + 1).is_some_and(|n| n.is_punct("(")) {
            if let Some(close) = match_close(toks, i + 1, "(", ")") {
                sites.push((i + 1, close + 1));
            }
        }
    }
    if sites.is_empty() {
        return;
    }
    ast.visit_items(&mut |item, ancestors| {
        if item.body.is_none() && item.kind != ItemKind::Const {
            return;
        }
        if in_test_item(item, ancestors) {
            return;
        }
        let reports = analyze_fn(item, toks);
        let const_reports;
        let reports = if item.kind == ItemKind::Const {
            // `static X: Lazy<..> = Lazy::new(|| ..);` — closures live
            // in the head (initializer), not a body.
            let mut tmp = Vec::new();
            collect_head_closures(item, &mut tmp);
            const_reports = tmp;
            &const_reports
        } else {
            &reports
        };
        for rep in reports {
            if !sites.iter().any(|&(s, e)| rep.open >= s && rep.open < e) {
                continue;
            }
            if ctx.in_test(toks[rep.open].start) {
                continue;
            }
            check_init_closure_body(rep, toks, ctx, out);
        }
    });
}

/// Closures appearing in an item's head (const/static initializers).
fn collect_head_closures(item: &Item, out: &mut Vec<ClosureReport>) {
    fn walk(nodes: &[Node], out: &mut Vec<ClosureReport>) {
        for n in nodes {
            match n {
                Node::Closure(c) => {
                    out.push(ClosureReport {
                        open: c.open,
                        line: c.line,
                        captures: Vec::new(),
                        unordered_iters: Vec::new(),
                    });
                    walk(&c.body, out);
                }
                Node::Group { children, .. } => walk(children, out),
                Node::Block(b) => {
                    for s in &b.stmts {
                        walk(&s.nodes, out);
                    }
                }
                _ => {}
            }
        }
    }
    walk(&item.head, out);
}

/// Scans one init closure's body tokens for nondeterminism markers.
fn check_init_closure_body(
    rep: &ClosureReport,
    toks: &[Tok],
    ctx: &FileContext,
    out: &mut Vec<Diagnostic>,
) {
    // Body extent: from the closure open to the end of its argument
    // group — approximate with the span to the matching `)` of the
    // enclosing site; simplest reliable bound is the statement end.
    let mut depth = 0i32;
    let mut end = rep.open + 1;
    while end < toks.len() {
        let t = &toks[end];
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth -= 1;
            if depth < 0 {
                break;
            }
        } else if depth == 0 && t.is_punct(";") {
            break;
        }
        end += 1;
    }
    for i in rep.open..end {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let name = t.text.as_str();
        let is_call = toks.get(i + 1).is_some_and(|n| n.is_punct("("));
        let flagged = (NONDET_CALLS.contains(&name) && is_call)
            || NONDET_ROOTS.contains(&name)
            || (name == "thread"
                && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
                && toks.get(i + 2).is_some_and(|n| n.is_ident("current")));
        if flagged {
            out.push(Diagnostic {
                rule: "UDM009",
                path: ctx.rel_path.clone(),
                line: t.line,
                message: format!(
                    "once-init closure calls `{name}` — RNG/clock/thread state \
                     makes the cached value run-dependent; compute it from \
                     explicit inputs (seed, config) instead"
                ),
                offset: t.start,
            });
            break;
        }
    }
    for it in &rep.unordered_iters {
        out.push(Diagnostic {
            rule: "UDM009",
            path: ctx.rel_path.clone(),
            line: it.line,
            message: format!(
                "once-init closure iterates `{}` ({}) whose order is \
                 nondeterministic; collect into a sorted Vec or use BTreeMap \
                 before folding",
                it.name, it.ty
            ),
            offset: 0,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let lexed = lex(src);
        let ast = parse(&lexed);
        assert!(ast.errors.is_empty(), "{:?}", ast.errors);
        assert!(ast.covers_all_tokens());
        let ctx = FileContext::new("fixture.rs", &lexed, true);
        run_ast_rules(&lexed, &ast, &ctx)
    }

    fn rules_of(ds: &[Diagnostic]) -> Vec<&'static str> {
        ds.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn udm005_ast_flags_unvalidated_entry_point() {
        let ds = lint("pub fn density(&self, x: &[f64]) -> f64 { self.sum(x) }");
        assert!(rules_of(&ds).contains(&"UDM005"));
    }

    #[test]
    fn udm005_ast_accepts_guard_and_delegation() {
        for src in [
            "pub fn density(&self, x: &[f64]) -> f64 { ensure_finite_slice(\"q\", x).unwrap_or(0.0); self.sum(x) }",
            "pub fn density(&self, x: &[f64]) -> f64 { self.density_subspace(x, 0) }",
            "fn density_private(x: &[f64]) -> f64 { x[0] }",
        ] {
            assert!(!rules_of(&lint(src)).contains(&"UDM005"), "{src}");
        }
    }

    #[test]
    fn udm005_ast_covers_density_backend_impls() {
        // Non-pub trait methods inside an `impl DensityBackend for …`
        // block are entry points: unvalidated float input fires.
        let firing = "impl DensityBackend for HbeKde {\n\
             fn density(&self, x: &[f64]) -> Result<f64> { Ok(self.raw(x)) }\n\
             }";
        assert!(rules_of(&lint(firing)).contains(&"UDM005"), "{firing}");

        for src in [
            // Guarded method complies.
            "impl DensityBackend for HbeKde {\n\
             fn density(&self, x: &[f64]) -> Result<f64> { ensure_finite_slice(\"q\", x)?; Ok(self.raw(x)) }\n\
             }",
            // Delegating to a sibling validated entry complies.
            "impl DensityBackend for HbeKde {\n\
             fn density(&self, x: &[f64]) -> Result<f64> { self.density_subspace(x, None, 0) }\n\
             }",
            // Plain inherent impls keep the pub-only contract.
            "impl HbeKde {\n\
             fn density_raw(&self, x: &[f64]) -> f64 { x[0] }\n\
             }",
        ] {
            assert!(!rules_of(&lint(src)).contains(&"UDM005"), "{src}");
        }
    }

    #[test]
    fn udm005_ast_skips_test_gated_items() {
        let src = "#[cfg(test)]\nmod t { pub fn density(x: &[f64]) -> f64 { x[0] } }";
        assert!(!rules_of(&lint(src)).contains(&"UDM005"));
    }

    #[test]
    fn udm007_flags_mutable_capture_at_guarded_par_map() {
        let src = "fn f(items: &[f64]) { let mut total = 0.0; guarded_par_map(items, 4, |x| { total += x; Ok(*x) }); }";
        let ds = lint(src);
        assert!(rules_of(&ds).contains(&"UDM007"), "{ds:?}");
    }

    #[test]
    fn udm007_flags_refcell_capture_in_par_iter_chain() {
        let src = "fn f(items: Vec<f64>) { let cache: RefCell<Vec<f64>> = RefCell::new(vec![]); items.par_iter().map(|x| cache.borrow()[0] * x).sum::<f64>(); }";
        let ds = lint(src);
        assert!(rules_of(&ds).contains(&"UDM007"), "{ds:?}");
    }

    #[test]
    fn udm007_accepts_pure_and_synchronized_closures() {
        for src in [
            "fn f(items: &[f64], scale: f64) { guarded_par_map(items, 4, |x| Ok(x * scale)); }",
            "fn f(items: &[f64]) { let hits: AtomicUsize = AtomicUsize::new(0); guarded_par_map(items, 4, |x| { hits.fetch_add(1, Relaxed); Ok(*x) }); }",
            "fn f(items: Vec<f64>) { let mut total = 0.0; items.iter().for_each(|x| total += x); }",
            "fn f(items: &[f64]) { let acc: Mutex<f64> = Mutex::new(0.0); guarded_par_map(items, 4, |x| { *acc.lock()? += x; Ok(*x) }); }",
        ] {
            assert!(!rules_of(&lint(src)).contains(&"UDM007"), "{src}");
        }
    }

    #[test]
    fn udm007_oncecell_is_not_cell() {
        let src = "fn f(items: &[f64]) { let layout: OnceCell<usize> = OnceCell::new(); guarded_par_map(items, 4, |x| Ok(x * *layout.get_or_init(|| 1) as f64)); }";
        let ds = lint(src);
        assert!(
            !ds.iter()
                .any(|d| d.rule == "UDM007" && d.message.contains("Cell")),
            "{ds:?}"
        );
    }

    #[test]
    fn udm009_flags_rng_time_and_unordered_iteration() {
        for src in [
            "fn f(c: &OnceLock<u64>) { c.get_or_init(|| thread_rng().next_u64()); }",
            "fn f(c: &OnceLock<f64>) { c.get_or_init(|| Instant::now().elapsed().as_secs_f64()); }",
            "static W: Lazy<f64> = Lazy::new(|| SystemTime::now().elapsed().unwrap().as_secs_f64());",
            "fn f(c: &OnceLock<f64>) { let m: HashMap<u32, f64> = HashMap::new(); c.get_or_init(|| m.iter().map(|(_, v)| v).sum()); }",
        ] {
            assert!(rules_of(&lint(src)).contains(&"UDM009"), "{src}");
        }
    }

    #[test]
    fn udm009_accepts_deterministic_init() {
        for src in [
            "fn f(c: &OnceLock<Vec<f64>>, n: usize) { c.get_or_init(|| vec![0.0; n]); }",
            "static T: Lazy<Vec<f64>> = Lazy::new(|| (0..256).map(|i| (i as f64).exp()).collect());",
            "fn f(c: &OnceLock<f64>) { let m: BTreeMap<u32, f64> = BTreeMap::new(); c.get_or_init(|| m.iter().map(|(_, v)| v).sum()); }",
            "fn f() { let x = now(); }",
        ] {
            assert!(!rules_of(&lint(src)).contains(&"UDM009"), "{src}");
        }
    }
}
