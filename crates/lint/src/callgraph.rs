//! UDM008: `fast-math` isolation, enforced as a cross-file call-graph
//! pass over the parsed workspace.
//!
//! The taint set is every item whose (inherited) `cfg` gates require
//! the `fast-math` feature, plus the named approximate roots
//! ([`APPROX_ROOT_FNS`]) that are deliberately compiled unconditionally
//! (so benches can A/B them in one binary) but must never be *called*
//! from default-build code. A mention of a tainted name from code whose
//! own gate context does not include the feature is the first edge by
//! which an approximate value can reach an exact path — that edge is
//! the finding. Reachability beyond the first unguarded edge is not
//! re-reported: fixing or waiving the boundary covers its callers.
//!
//! Gate context, innermost first:
//! * item attributes (inherited through enclosing `mod`/`impl` items),
//! * statement attributes (`#[cfg(feature = "fast-math")] { .. }`),
//! * a `cfg!(feature = "fast-math")` test anywhere in the same
//!   statement (conservatively gates the whole statement, so both arms
//!   of an `if cfg!(..)` are accepted),
//! * test code (tests/benches are exactly where the A/B comparisons
//!   live).

use crate::ast::{Ast, Item, ItemKind, Node};
use crate::context::FileContext;
use crate::lexer::{Lexed, Tok, TokKind};
use crate::rules::Diagnostic;

/// The feature whose items must stay unreachable from default builds.
pub const GATED_FEATURE: &str = "fast-math";

/// Ungated approximate roots: compiled always, callable only from
/// gated / test code.
pub const APPROX_ROOT_FNS: [&str; 1] = ["fast_exp"];

/// One parsed file, as the engine hands it to the cross-file pass.
pub struct FileAst<'a> {
    /// The lexed token stream.
    pub lexed: &'a Lexed,
    /// The parsed overlay (full coverage, zero errors).
    pub ast: &'a Ast,
    /// The file's rule context.
    pub ctx: &'a FileContext,
}

/// Runs the UDM008 pass over every successfully parsed file.
pub fn udm008_fast_math_isolation(files: &[FileAst<'_>]) -> Vec<Diagnostic> {
    // Pass 1: collect tainted definition names across the workspace.
    let mut tainted: Vec<String> = APPROX_ROOT_FNS.iter().map(|s| s.to_string()).collect();
    for f in files {
        f.ast.visit_items(&mut |item, ancestors| {
            if item.name.is_none() {
                return;
            }
            let gated =
                item_requires_feature(item) || ancestors.iter().any(|a| item_requires_feature(a));
            let test_gated = item.is_test_gated() || ancestors.iter().any(|a| a.is_test_gated());
            if gated && !test_gated {
                if let Some(name) = &item.name {
                    if !tainted.contains(name) {
                        tainted.push(name.clone());
                    }
                }
            }
        });
    }
    // Pass 2: find unguarded mentions.
    let mut out = Vec::new();
    for f in files {
        if f.ctx.is_test_file {
            continue;
        }
        f.ast.visit_items(&mut |item, ancestors| {
            scan_item(item, ancestors, f, &tainted, &mut out);
        });
    }
    out.sort_by(|a, b| a.path.cmp(&b.path).then(a.line.cmp(&b.line)));
    out
}

/// True when the item's own attributes require [`GATED_FEATURE`].
fn item_requires_feature(item: &Item) -> bool {
    item.own_features().iter().any(|f| f == GATED_FEATURE)
}

fn scan_item(
    item: &Item,
    ancestors: &[&Item],
    f: &FileAst<'_>,
    tainted: &[String],
    out: &mut Vec<Diagnostic>,
) {
    if item.kind == ItemKind::Use {
        return; // imports are not calls
    }
    let gated = item_requires_feature(item) || ancestors.iter().any(|a| item_requires_feature(a));
    let test_gated = item.is_test_gated() || ancestors.iter().any(|a| a.is_test_gated());
    if gated || test_gated {
        return;
    }
    // Const/static initializers and other head tokens (skipping the
    // definition's own name).
    let mut head_idx = Vec::new();
    flat_shallow(&item.head, &mut head_idx);
    scan_tokens(&head_idx, item.name_tok, f, tainted, out);
    // Fn bodies: statement granularity so stmt-level gates hold.
    if let Some(body) = &item.body {
        for stmt in &body.stmts {
            let stmt_gated = stmt
                .attrs
                .iter()
                .any(|a| a.enabling_features().iter().any(|f| f == GATED_FEATURE));
            if stmt_gated {
                continue;
            }
            let mut idx = Vec::new();
            flat_shallow(&stmt.nodes, &mut idx);
            if stmt_mentions_cfg_feature(&idx, &f.lexed.toks) {
                continue;
            }
            scan_tokens(&idx, None, f, tainted, out);
        }
    }
    // Members (mod/impl/trait) are separate items; visit_items recurses.
}

/// Flattens token indices of a node list, *not* descending into nested
/// items (they are visited — and gated — as their own items).
fn flat_shallow(nodes: &[Node], out: &mut Vec<usize>) {
    for n in nodes {
        match n {
            Node::Tok(i) => out.push(*i),
            Node::Group { children, .. } => flat_shallow(children, out),
            Node::Block(b) => {
                for s in &b.stmts {
                    flat_shallow(&s.nodes, out);
                }
            }
            Node::Closure(c) => {
                flat_shallow(&c.params, out);
                flat_shallow(&c.body, out);
            }
            Node::Item(_) => {}
        }
    }
}

/// True when the statement contains `cfg!(feature = "fast-math")`.
fn stmt_mentions_cfg_feature(idx: &[usize], toks: &[Tok]) -> bool {
    idx.iter().enumerate().any(|(k, &i)| {
        toks[i].is_ident("cfg")
            && idx.get(k + 1).is_some_and(|&j| toks[j].is_punct("!"))
            && idx[k..]
                .iter()
                .take(8)
                .any(|&j| toks[j].text.trim_matches('"') == GATED_FEATURE)
    })
}

fn scan_tokens(
    idx: &[usize],
    skip_tok: Option<usize>,
    f: &FileAst<'_>,
    tainted: &[String],
    out: &mut Vec<Diagnostic>,
) {
    let toks = &f.lexed.toks;
    for &i in idx {
        if Some(i) == skip_tok {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident || !tainted.iter().any(|n| n == &t.text) {
            continue;
        }
        if f.ctx.in_test(t.start) {
            continue;
        }
        out.push(Diagnostic {
            rule: "UDM008",
            path: f.ctx.rel_path.clone(),
            line: t.line,
            message: format!(
                "`{}` is fast-math-only but is referenced from default-build \
                 code; gate the call site with #[cfg(feature = \"{GATED_FEATURE}\")] \
                 or route through the feature-dispatching wrapper (hot_exp)",
                t.text
            ),
            offset: t.start,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn lint_files(sources: &[(&str, &str)]) -> Vec<Diagnostic> {
        let lexed: Vec<_> = sources.iter().map(|(_, src)| lex(src)).collect();
        let asts: Vec<_> = lexed.iter().map(parse).collect();
        let ctxs: Vec<_> = sources
            .iter()
            .zip(&lexed)
            .map(|((path, _), l)| FileContext::new(path, l, true))
            .collect();
        for (ast, (path, _)) in asts.iter().zip(sources) {
            assert!(ast.errors.is_empty(), "{path}: {:?}", ast.errors);
        }
        let files: Vec<FileAst> = lexed
            .iter()
            .zip(&asts)
            .zip(&ctxs)
            .map(|((lexed, ast), ctx)| FileAst { lexed, ast, ctx })
            .collect();
        udm008_fast_math_isolation(&files)
    }

    #[test]
    fn ungated_mention_of_gated_fn_is_flagged() {
        let ds = lint_files(&[(
            "a.rs",
            "#[cfg(feature = \"fast-math\")]\npub fn approx(x: f64) -> f64 { x }\npub fn caller(x: f64) -> f64 { approx(x) }",
        )]);
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].rule, "UDM008");
        assert_eq!(ds[0].line, 3);
    }

    #[test]
    fn named_root_mention_is_flagged_cross_file() {
        let ds = lint_files(&[
            ("kde.rs", "pub fn fast_exp(x: f64) -> f64 { x }"),
            (
                "density.rs",
                "pub fn build(x: f64) -> f64 { helper(x, fast_exp) }",
            ),
        ]);
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].path, "density.rs");
    }

    #[test]
    fn gated_caller_is_clean() {
        let ds = lint_files(&[(
            "a.rs",
            "#[cfg(feature = \"fast-math\")]\npub fn approx(x: f64) -> f64 { x }\n#[cfg(feature = \"fast-math\")]\npub fn caller(x: f64) -> f64 { approx(x) }",
        )]);
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn stmt_level_gate_is_clean() {
        let ds = lint_files(&[(
            "a.rs",
            "pub fn hot(x: f64) -> f64 {\n  #[cfg(feature = \"fast-math\")]\n  { fast_exp(x) }\n  #[cfg(not(feature = \"fast-math\"))]\n  { x.exp() }\n}",
        )]);
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn cfg_macro_test_in_statement_is_clean() {
        let ds = lint_files(&[(
            "a.rs",
            "pub fn pick(x: f64) -> f64 { if cfg!(feature = \"fast-math\") { fast_exp(x) } else { x.exp() } }",
        )]);
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn use_statements_and_test_code_are_clean() {
        let ds = lint_files(&[(
            "a.rs",
            "use udm_kde::fast_exp;\n#[cfg(test)]\nmod tests { fn t() { assert!(fast_exp(0.0) > 0.9); } }",
        )]);
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn definition_of_root_is_not_a_mention() {
        let ds = lint_files(&[("kde.rs", "pub fn fast_exp(x: f64) -> f64 { x + 1.0 }")]);
        assert!(ds.is_empty(), "{ds:?}");
    }
}
