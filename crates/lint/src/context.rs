//! Per-file lint context: which crate a file belongs to, whether the
//! rules apply to it, and which byte regions are test code.

use crate::ast::Ast;
use crate::lexer::{Lexed, Tok};
use std::path::Path;

/// Library crates whose non-test code must be panic-free (UDM001) and
/// whose public estimator entry points must validate inputs (UDM005).
pub const LIBRARY_CRATES: [&str; 7] = [
    "core",
    "kde",
    "microcluster",
    "cluster",
    "classify",
    "data",
    "serve",
];

/// Hot-path modules (crate/file-stem) where lossy `as` casts are
/// forbidden (UDM004): the per-query kernels and micro-cluster math.
pub const HOT_PATH_MODULES: [&str; 10] = [
    "kde/error_kernel",
    "kde/estimator",
    "kde/columns",
    "kde/chunked",
    "kde/fastexp",
    "kde/classic",
    "kde/kernel",
    "microcluster/density",
    "microcluster/feature",
    "microcluster/distance",
];

/// How the rules treat one file.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Root-relative path (forward slashes), as shown in diagnostics.
    pub rel_path: String,
    /// Library-crate `src/` code (UDM001/UDM003/UDM005 apply).
    pub is_library: bool,
    /// Hot-path module (UDM004 applies).
    pub is_hot_path: bool,
    /// Entire file is test/bench code (`tests/`, `benches/`, examples).
    pub is_test_file: bool,
    /// Byte ranges of `#[cfg(test)]` / `#[test]` items.
    pub test_regions: Vec<(usize, usize)>,
}

impl FileContext {
    /// Builds the context for a file. In `fixture_mode` every file is
    /// treated as library + hot-path non-test code so every rule fires.
    pub fn new(rel_path: &str, lexed: &Lexed, fixture_mode: bool) -> Self {
        let rel_path = rel_path.replace('\\', "/");
        let parts: Vec<&str> = rel_path.split('/').collect();
        let crate_name = if parts.len() >= 2 && parts[0] == "crates" {
            parts[1]
        } else {
            ""
        };
        let in_src = parts.contains(&"src");
        let is_test_file = !fixture_mode
            && (parts.contains(&"tests")
                || parts.contains(&"benches")
                || parts.contains(&"examples"));
        let stem = Path::new(&rel_path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("")
            .to_string();
        let module = format!("{crate_name}/{stem}");
        FileContext {
            is_library: fixture_mode || (in_src && LIBRARY_CRATES.contains(&crate_name)),
            is_hot_path: fixture_mode || (in_src && HOT_PATH_MODULES.contains(&module.as_str())),
            is_test_file,
            test_regions: find_test_regions(&lexed.toks),
            rel_path,
        }
    }

    /// Builds the context with *scope-aware* test regions derived from
    /// the parsed AST (exact item extents and full `cfg` predicate
    /// evaluation) instead of the token heuristic. Used whenever the
    /// parser produced a full-coverage tree; `FileContext::new` remains
    /// the lexer-fallback path.
    pub fn from_ast(rel_path: &str, lexed: &Lexed, ast: &Ast, fixture_mode: bool) -> Self {
        let mut ctx = Self::new(rel_path, lexed, fixture_mode);
        let mut regions = Vec::new();
        ast.visit_items(&mut |item, ancestors| {
            // Only the outermost test-gated item opens a region.
            if item.is_test_gated() && !ancestors.iter().any(|a| a.is_test_gated()) {
                let (s, e) = item.span;
                if let (Some(st), Some(et)) = (
                    lexed.toks.get(s),
                    e.checked_sub(1).and_then(|k| lexed.toks.get(k)),
                ) {
                    regions.push((st.start, et.end));
                }
            }
        });
        ctx.test_regions = regions;
        ctx
    }

    /// True if the byte offset lies inside test code.
    pub fn in_test(&self, offset: usize) -> bool {
        self.is_test_file
            || self
                .test_regions
                .iter()
                .any(|&(s, e)| offset >= s && offset < e)
    }
}

/// Finds byte ranges of items gated by `#[cfg(test)]` (or variants whose
/// `cfg` predicate mentions `test`) and of `#[test]` functions: from the
/// attribute's `#` to the matching `}` of the item body.
fn find_test_regions(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct("#") && i + 1 < toks.len() && toks[i + 1].is_punct("[") {
            let attr_start = toks[i].start;
            // Find matching `]` and check the attribute mentions test.
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut is_test_attr = false;
            let mut saw_cfg = false;
            let mut saw_test = false;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct("[") || t.is_punct("(") {
                    depth += 1;
                } else if t.is_punct("]") || t.is_punct(")") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if t.is_ident("cfg") {
                    saw_cfg = true;
                } else if t.is_ident("test") || t.is_ident("tests") {
                    saw_test = true;
                    // `#[test]` exactly: `#`, `[`, `test`, `]`
                    if j == i + 2 && j + 1 < toks.len() && toks[j + 1].is_punct("]") {
                        is_test_attr = true;
                    }
                }
                j += 1;
            }
            if (saw_cfg && saw_test) || is_test_attr {
                // Skip any further attributes, then brace-match the item.
                let mut k = j + 1;
                while k + 1 < toks.len() && toks[k].is_punct("#") && toks[k + 1].is_punct("[") {
                    let mut d = 0usize;
                    k += 1;
                    while k < toks.len() {
                        if toks[k].is_punct("[") {
                            d += 1;
                        } else if toks[k].is_punct("]") {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        k += 1;
                    }
                    k += 1;
                }
                // Find the item's opening `{` (stop at `;` for
                // declarations like `mod tests;`).
                while k < toks.len() && !toks[k].is_punct("{") && !toks[k].is_punct(";") {
                    k += 1;
                }
                if k < toks.len() && toks[k].is_punct("{") {
                    let mut d = 0usize;
                    while k < toks.len() {
                        if toks[k].is_punct("{") {
                            d += 1;
                        } else if toks[k].is_punct("}") {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        k += 1;
                    }
                    let end = toks.get(k).map_or(usize::MAX, |t| t.end);
                    regions.push((attr_start, end));
                    i = k + 1;
                    continue;
                }
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn cfg_test_module_region_covers_body() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n fn b() { x.unwrap(); }\n}\nfn c() {}";
        let l = lex(src);
        let ctx = FileContext::new("crates/core/src/x.rs", &l, false);
        assert_eq!(ctx.test_regions.len(), 1);
        let unwrap_pos = src.find("unwrap").unwrap();
        assert!(ctx.in_test(unwrap_pos));
        assert!(!ctx.in_test(src.find("fn a").unwrap()));
        assert!(!ctx.in_test(src.find("fn c").unwrap()));
    }

    #[test]
    fn test_fn_attribute_region() {
        let src = "#[test]\nfn t() { y.unwrap(); }\nfn real() {}";
        let l = lex(src);
        let ctx = FileContext::new("crates/kde/src/x.rs", &l, false);
        assert!(ctx.in_test(src.find("y.unwrap").unwrap()));
        assert!(!ctx.in_test(src.find("fn real").unwrap()));
    }

    #[test]
    fn library_and_hot_path_classification() {
        let l = lex("");
        let c = FileContext::new("crates/kde/src/estimator.rs", &l, false);
        assert!(c.is_library && c.is_hot_path);
        let c = FileContext::new("crates/kde/src/bandwidth.rs", &l, false);
        assert!(c.is_library && !c.is_hot_path);
        let c = FileContext::new("crates/cli/src/main.rs", &l, false);
        assert!(!c.is_library && !c.is_hot_path);
        let c = FileContext::new("crates/core/tests/int.rs", &l, false);
        assert!(c.is_test_file);
    }

    #[test]
    fn fixture_mode_enables_everything() {
        let l = lex("");
        let c = FileContext::new("udm001.rs", &l, true);
        assert!(c.is_library && c.is_hot_path && !c.is_test_file);
    }

    #[test]
    fn derive_attributes_do_not_open_regions() {
        let src = "#[derive(Debug)]\nstruct S;\nfn f() { x.unwrap(); }";
        let l = lex(src);
        let ctx = FileContext::new("crates/core/src/x.rs", &l, false);
        assert!(ctx.test_regions.is_empty());
        assert!(!ctx.in_test(src.find("unwrap").unwrap()));
    }
}
