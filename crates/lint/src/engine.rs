//! The check pipeline: walk the tree, lex, parse, run rules, apply
//! waivers.
//!
//! Three passes:
//!
//! 1. **Per file** — lex, then parse with [`crate::parser`]. A file
//!    whose AST has zero errors and total token coverage runs the token
//!    rules *and* the AST rules (UDM005 scope-aware port, UDM007,
//!    UDM009); anything else degrades to the lexer-only rule set and is
//!    recorded in [`CheckReport::parse_fallbacks`] — degradation is
//!    logged, never silent.
//! 2. **Cross-file** — the UDM008 fast-math isolation pass over every
//!    successfully parsed file ([`crate::callgraph`]).
//! 3. **Waivers** — inline + `lint.toml` filtering, with unused-waiver
//!    tracking on both sources so stale allows get burned down.

use crate::ast::Ast;
use crate::astrules::run_ast_rules;
use crate::callgraph::{udm008_fast_math_isolation, FileAst};
use crate::context::FileContext;
use crate::lexer::{lex, Lexed};
use crate::rules::{run_token_rules, Diagnostic, ALL_RULES};
use crate::waivers::{apply_waivers, inline_waivers, parse_lint_toml, TomlWaiver};
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: [&str; 5] = ["target", "vendor", ".git", "node_modules", "fixtures"];

/// Result of a full `check` run.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Unwaived diagnostics, sorted by path then line.
    pub diagnostics: Vec<Diagnostic>,
    /// Total diagnostics silenced by waivers.
    pub waived: usize,
    /// Per-rule `(raw hits, waived)` counts.
    pub per_rule: BTreeMap<&'static str, (usize, usize)>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of files with a full-coverage AST (AST rules ran).
    pub parsed_files: usize,
    /// Files that degraded to the lexer-only path, with the reason.
    pub parse_fallbacks: Vec<String>,
    /// `lint.toml` entries that matched nothing (likely stale).
    pub unused_toml_waivers: Vec<String>,
    /// Inline `// udm-lint: allow(..)` comments that matched nothing.
    pub unused_inline_waivers: Vec<String>,
}

/// Per-file analysis state carried between the passes.
struct FileAnalysis {
    rel: String,
    lexed: Lexed,
    /// Present only when the parse met the full-coverage bar.
    ast: Option<Ast>,
    ctx: FileContext,
    diags: Vec<Diagnostic>,
}

/// Recursively collects `.rs` files under `root`, skipping build output,
/// vendored shims and lint fixtures.
pub fn collect_rust_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// True when `root` looks like the workspace (has a `Cargo.toml` with a
/// `[workspace]` table). Anything else — e.g. the fixture corpus — is
/// linted in fixture mode, where every rule applies to every file.
pub fn is_workspace_root(root: &Path) -> bool {
    std::fs::read_to_string(root.join("Cargo.toml"))
        .map(|t| t.contains("[workspace]"))
        .unwrap_or(false)
}

/// Loads `root/lint.toml` if present.
pub fn load_lint_toml(root: &Path) -> Result<Vec<TomlWaiver>, String> {
    match std::fs::read_to_string(root.join("lint.toml")) {
        Ok(text) => parse_lint_toml(&text),
        Err(_) => Ok(Vec::new()),
    }
}

/// Runs the full check over `root`.
pub fn check(root: &Path) -> Result<CheckReport, String> {
    let toml = load_lint_toml(root)?;
    let fixture_mode = !is_workspace_root(root);
    let files = collect_rust_files(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut report = CheckReport::default();
    for rule in ALL_RULES {
        report.per_rule.insert(rule, (0, 0));
    }

    // Pass 1: per-file lex + parse + single-file rules.
    let mut analyses: Vec<FileAnalysis> = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let lexed = lex(&src);
        let ast = crate::parser::parse(&lexed);
        let full_coverage = ast.errors.is_empty() && ast.covers_all_tokens();
        let (ast, ctx, diags) = if full_coverage {
            let ctx = FileContext::from_ast(&rel, &lexed, &ast, fixture_mode);
            let mut diags = run_token_rules(&lexed, &ctx, true);
            diags.extend(run_ast_rules(&lexed, &ast, &ctx));
            (Some(ast), ctx, diags)
        } else {
            let reason = ast
                .errors
                .first()
                .cloned()
                .unwrap_or_else(|| "incomplete token coverage".to_string());
            report.parse_fallbacks.push(format!("{rel}: {reason}"));
            let ctx = FileContext::new(&rel, &lexed, fixture_mode);
            let diags = run_token_rules(&lexed, &ctx, false);
            (None, ctx, diags)
        };
        analyses.push(FileAnalysis {
            rel,
            lexed,
            ast,
            ctx,
            diags,
        });
        report.files_scanned += 1;
    }
    report.parsed_files = analyses.iter().filter(|a| a.ast.is_some()).count();

    // Pass 2: cross-file UDM008 over every successfully parsed file.
    let parsed: Vec<FileAst<'_>> = analyses
        .iter()
        .filter_map(|a| {
            a.ast.as_ref().map(|ast| FileAst {
                lexed: &a.lexed,
                ast,
                ctx: &a.ctx,
            })
        })
        .collect();
    let udm008 = udm008_fast_math_isolation(&parsed);
    drop(parsed);
    for d in udm008 {
        if let Some(a) = analyses.iter_mut().find(|a| a.rel == d.path) {
            a.diags.push(d);
        }
    }

    // Pass 3: waivers, with unused tracking on both sources.
    let mut used_toml: BTreeSet<usize> = BTreeSet::new();
    for a in analyses {
        for d in &a.diags {
            report.per_rule.entry(d.rule).or_insert((0, 0)).0 += 1;
        }
        let inline = inline_waivers(&a.lexed);
        let outcome = apply_waivers(a.diags, &inline, &toml);
        report.waived += outcome.waived;
        used_toml.extend(outcome.used_toml);
        for (i, w) in inline.iter().enumerate() {
            if !outcome.used_inline.contains(&i) {
                let line = w.lines.iter().next().copied().unwrap_or(0);
                report.unused_inline_waivers.push(format!(
                    "{}:{line}: allow({})",
                    a.rel,
                    w.rules.join(", ")
                ));
            }
        }
        report.diagnostics.extend(outcome.remaining);
    }

    // Per-rule waived counts = hits minus surviving diagnostics.
    let mut surviving: BTreeMap<&'static str, usize> = BTreeMap::new();
    for d in &report.diagnostics {
        *surviving.entry(d.rule).or_insert(0) += 1;
    }
    for (rule, counts) in report.per_rule.iter_mut() {
        counts.1 = counts.0 - surviving.get(rule).copied().unwrap_or(0);
    }
    report
        .diagnostics
        .sort_by(|a, b| a.path.cmp(&b.path).then(a.line.cmp(&b.line)));
    report.unused_inline_waivers.sort();
    report.unused_toml_waivers = toml
        .iter()
        .enumerate()
        .filter(|(i, _)| !used_toml.contains(i))
        .map(|(_, w)| {
            format!(
                "{}:{}{}",
                w.rule,
                w.path,
                w.line.map(|l| format!(":{l}")).unwrap_or_default()
            )
        })
        .collect();
    Ok(report)
}

/// Robustness smoke: parse every `.rs` file under `root` (including
/// roots the rule walk never sees, e.g. `vendor/`) and report per-file
/// outcomes. Returns `(parsed_ok, fallbacks)`; any panic or I/O error
/// is a hard failure of the calling command.
pub fn parse_smoke(root: &Path) -> Result<(usize, Vec<String>), String> {
    let mut stack = vec![root.to_path_buf()];
    let mut files = Vec::new();
    while let Some(dir) = stack.pop() {
        let entries =
            std::fs::read_dir(&dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("walking {}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name != "target" && name != ".git" {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    let mut ok = 0usize;
    let mut fallbacks = Vec::new();
    for path in files {
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let lexed = lex(&src);
        let ast = crate::parser::parse(&lexed);
        if ast.errors.is_empty() && ast.covers_all_tokens() {
            ok += 1;
        } else {
            let reason = ast
                .errors
                .first()
                .cloned()
                .unwrap_or_else(|| "incomplete token coverage".to_string());
            fallbacks.push(format!("{}: {reason}", path.display()));
        }
    }
    Ok((ok, fallbacks))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_detection() {
        // The repo root two levels up from this crate is a workspace.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap()
            .to_path_buf();
        assert!(is_workspace_root(&root));
        assert!(!is_workspace_root(&root.join("crates/lint")));
    }

    #[test]
    fn fixture_corpus_trips_every_rule() {
        let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
        let report = check(&fixtures).unwrap();
        let rules_hit: BTreeSet<&str> = report.diagnostics.iter().map(|d| d.rule).collect();
        for rule in ALL_RULES {
            assert!(rules_hit.contains(rule), "fixture corpus missing {rule}");
        }
        // The clean fixture contributes nothing.
        assert!(!report.diagnostics.iter().any(|d| d.path.contains("clean")));
    }

    #[test]
    fn fixture_corpus_parses_without_fallback() {
        let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
        let report = check(&fixtures).unwrap();
        assert_eq!(report.parse_fallbacks, Vec::<String>::new());
        assert_eq!(report.parsed_files, report.files_scanned);
    }

    #[test]
    fn fixture_diagnostics_have_expected_lines() {
        let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
        let report = check(&fixtures).unwrap();
        // udm001.rs marks its violations with `// line:` comments kept in
        // sync with the fixture content.
        let udm001: Vec<usize> = report
            .diagnostics
            .iter()
            .filter(|d| d.rule == "UDM001" && d.path == "udm001.rs")
            .map(|d| d.line)
            .collect();
        // Lines 20 and 24 are the quarantine-drain / checkpoint-restore
        // shaped violations.
        assert_eq!(udm001, vec![4, 9, 14, 20, 24], "{report:?}");
        let udm005: Vec<usize> = report
            .diagnostics
            .iter()
            .filter(|d| d.rule == "UDM005" && d.path == "udm005.rs")
            .map(|d| d.line)
            .collect();
        // Line 19 is the recovered-estimator entry point.
        assert_eq!(udm005, vec![8, 19], "{report:?}");
    }

    #[test]
    fn inline_waiver_in_fixture_is_honoured() {
        let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
        let report = check(&fixtures).unwrap();
        assert!(report.waived >= 1);
        // The waived line in udm002.rs must not be reported.
        assert!(report
            .diagnostics
            .iter()
            .filter(|d| d.path == "udm002.rs")
            .all(|d| d.line != 10));
    }

    #[test]
    fn parse_smoke_handles_vendor_tree() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap()
            .join("vendor");
        let (ok, fallbacks) = parse_smoke(&root).unwrap();
        // The smoke contract is totality, not zero fallbacks: every
        // file must come back as parsed or as a logged fallback.
        assert!(ok + fallbacks.len() > 0);
        assert!(ok > 0, "no vendor file parsed cleanly: {fallbacks:?}");
    }
}
