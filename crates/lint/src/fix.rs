//! `udm-lint fix`: automated rewrites for the mechanically fixable
//! rules.
//!
//! * **UDM002** — rewrites *trivial* bare float comparisons against
//!   literals into `udm_core::num::approx_eq` calls. Trivial means: the
//!   left side is a plain identifier or field chain (`x`, `self.total`,
//!   `p.delta`), the right side is a float literal (optionally
//!   negated), and the comparison is cleanly bounded by `if`/`(`/`&&`/…
//!   on both sides. Anything more complex is left for a human. Dry-run
//!   by default; `--apply` writes the files.
//! * **UDM010** — plans a `// SAFETY: TODO(justify)` stub comment above
//!   each unjustified `unsafe` block, at matching indentation. Dry-run
//!   only: a SAFETY comment that nobody wrote is worse than a lint
//!   finding, so the stubs are shown for a human to fill in, never
//!   auto-applied.

use crate::context::FileContext;
use crate::lexer::{lex, Tok, TokKind};
use crate::rules::run_token_rules;
use crate::waivers::{apply_waivers, inline_waivers, TomlWaiver};
use std::path::Path;

/// Rules `udm-lint fix` knows how to rewrite.
pub const SUPPORTED_FIX_RULES: [&str; 2] = ["UDM002", "UDM010"];

/// One planned rewrite.
#[derive(Debug, Clone)]
pub struct Rewrite {
    /// Root-relative path.
    pub path: String,
    /// 1-based line of the comparison.
    pub line: usize,
    /// Source text being replaced.
    pub old: String,
    /// Replacement text.
    pub new: String,
    /// Byte range replaced.
    pub span: (usize, usize),
}

/// Tokens allowed to precede / follow a trivial comparison.
fn is_clean_left_boundary(t: Option<&Tok>) -> bool {
    match t {
        None => true,
        Some(t) => {
            t.is_punct("(")
                || t.is_punct("{")
                || t.is_punct("}")
                || t.is_punct(";")
                || t.is_punct(",")
                || t.is_punct("&&")
                || t.is_punct("||")
                || t.is_punct("=")
                || t.is_punct("!")
                || t.is_ident("if")
                || t.is_ident("while")
                || t.is_ident("return")
        }
    }
}

fn is_clean_right_boundary(t: Option<&Tok>) -> bool {
    match t {
        None => true,
        Some(t) => {
            t.is_punct(")")
                || t.is_punct("{")
                || t.is_punct("}")
                || t.is_punct(";")
                || t.is_punct(",")
                || t.is_punct("&&")
                || t.is_punct("||")
                || t.is_punct("]")
        }
    }
}

/// Finds the trivial UDM002 rewrites in one file's source.
pub fn plan_rewrites_in_source(src: &str, rel_path: &str, fixture_mode: bool) -> Vec<Rewrite> {
    plan_with_waivers(src, rel_path, fixture_mode, &[])
}

/// As [`plan_rewrites_in_source`], honouring inline and toml waivers —
/// a deliberately waived exact comparison must not be rewritten.
pub fn plan_with_waivers(
    src: &str,
    rel_path: &str,
    fixture_mode: bool,
    toml: &[TomlWaiver],
) -> Vec<Rewrite> {
    let lexed = lex(src);
    let ctx = FileContext::new(rel_path, &lexed, fixture_mode);
    let inline = inline_waivers(&lexed);
    let toks = &lexed.toks;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_punct("==") || t.is_punct("!=")) || ctx.in_test(t.start) {
            continue;
        }
        // Right side: optional unary minus, then a float literal.
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_punct("-")) {
            j += 1;
        }
        let Some(rhs) = toks.get(j) else { continue };
        if !rhs.is_float_literal() || !is_clean_right_boundary(toks.get(j + 1)) {
            continue;
        }
        // Left side: ident (`.` ident)* field chain, walked backwards.
        let Some(mut k) = i.checked_sub(1) else {
            continue;
        };
        if toks[k].kind != TokKind::Ident {
            continue;
        }
        while k >= 2 && toks[k - 1].is_punct(".") && toks[k - 2].kind == TokKind::Ident {
            k -= 2;
        }
        if !is_clean_left_boundary(k.checked_sub(1).map(|p| &toks[p])) {
            continue;
        }
        let lhs_text = &src[toks[k].start..toks[i - 1].end];
        let rhs_text = &src[toks[i + 1].start..rhs.end];
        // A waived comparison is exact by design; leave it alone.
        let waived = apply_waivers(
            vec![crate::rules::Diagnostic {
                rule: "UDM002",
                path: ctx.rel_path.clone(),
                line: t.line,
                message: String::new(),
                offset: t.start,
            }],
            &inline,
            toml,
        )
        .remaining
        .is_empty();
        if waived {
            continue;
        }
        let call = format!("udm_core::num::approx_eq({lhs_text}, {rhs_text})");
        let new = if t.is_punct("!=") {
            format!("!{call}")
        } else {
            call
        };
        out.push(Rewrite {
            path: ctx.rel_path.clone(),
            line: t.line,
            old: src[toks[k].start..rhs.end].to_string(),
            new,
            span: (toks[k].start, rhs.end),
        });
    }
    out
}

/// Plans (and with `apply` performs) the UDM002 rewrites under `root`.
pub fn fix_udm002(root: &Path, apply: bool, toml: &[TomlWaiver]) -> Result<Vec<Rewrite>, String> {
    let fixture_mode = !crate::engine::is_workspace_root(root);
    let files = crate::engine::collect_rust_files(root)
        .map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut all = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let rewrites = plan_with_waivers(&src, &rel, fixture_mode, toml);
        if apply && !rewrites.is_empty() {
            let mut patched = src.clone();
            // Back-to-front so earlier spans stay valid.
            for r in rewrites.iter().rev() {
                patched.replace_range(r.span.0..r.span.1, &r.new);
            }
            std::fs::write(&path, patched)
                .map_err(|e| format!("writing {}: {e}", path.display()))?;
        }
        all.extend(rewrites);
    }
    Ok(all)
}

/// Plans the UDM010 SAFETY-stub insertions for one file: a
/// `// SAFETY: TODO(justify)` line above each unjustified `unsafe`
/// block, indented to match. Honours waivers — a waived block needs no
/// stub.
pub fn plan_udm010_stubs(
    src: &str,
    rel_path: &str,
    fixture_mode: bool,
    toml: &[TomlWaiver],
) -> Vec<Rewrite> {
    let lexed = lex(src);
    let ctx = FileContext::new(rel_path, &lexed, fixture_mode);
    let inline = inline_waivers(&lexed);
    let diags: Vec<_> = run_token_rules(&lexed, &ctx, false)
        .into_iter()
        .filter(|d| d.rule == "UDM010")
        .collect();
    let mut out = Vec::new();
    for d in apply_waivers(diags, &inline, toml).remaining {
        let line_start = src[..d.offset].rfind('\n').map_or(0, |i| i + 1);
        let indent: String = src[line_start..]
            .chars()
            .take_while(|c| *c == ' ' || *c == '\t')
            .collect();
        out.push(Rewrite {
            path: ctx.rel_path.clone(),
            line: d.line,
            old: String::new(),
            new: format!("{indent}// SAFETY: TODO(justify)\n"),
            span: (line_start, line_start),
        });
    }
    out
}

/// Plans the UDM010 stubs under `root`. Always a dry run — the caller
/// rejects `--apply` for this rule.
pub fn fix_udm010(root: &Path, toml: &[TomlWaiver]) -> Result<Vec<Rewrite>, String> {
    let fixture_mode = !crate::engine::is_workspace_root(root);
    let files = crate::engine::collect_rust_files(root)
        .map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut all = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        all.extend(plan_udm010_stubs(&src, &rel, fixture_mode, toml));
    }
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(src: &str) -> Vec<Rewrite> {
        plan_rewrites_in_source(src, "f.rs", true)
    }

    #[test]
    fn rewrites_simple_equality() {
        let rs = plan("fn f(x: f64) -> bool { x == 0.5 }");
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].old, "x == 0.5");
        assert_eq!(rs[0].new, "udm_core::num::approx_eq(x, 0.5)");
    }

    #[test]
    fn rewrites_field_chain_and_negation() {
        let rs = plan("fn f(&self) -> bool { self.total.mean != -1.0 }");
        assert_eq!(rs.len(), 1);
        assert_eq!(
            rs[0].new,
            "!udm_core::num::approx_eq(self.total.mean, -1.0)"
        );
    }

    #[test]
    fn leaves_complex_expressions_alone() {
        for src in [
            "fn f(a: f64, b: f64) -> bool { a + b == 0.0 }",
            "fn f(v: &[f64]) -> bool { v.len() == 2.0 as usize as f64 }",
            "fn f(a: f64) -> bool { (a * 2.0) == 1.0 }",
            "fn f(a: f64, b: f64) -> bool { a == b }",
        ] {
            assert!(plan(src).is_empty(), "{src}");
        }
    }

    #[test]
    fn rewrites_tail_expression_after_block() {
        let rs = plan("fn f(w: f64) -> bool {\n    if w.is_nan() {\n        return true;\n    }\n    w != 0.5\n}");
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].new, "!udm_core::num::approx_eq(w, 0.5)");
    }

    #[test]
    fn respects_inline_waivers() {
        let src = "fn f(p: f64) -> bool {\n    // udm-lint: allow(UDM002) exact zero guard\n    p == 0.0\n}";
        assert!(plan(src).is_empty());
    }

    #[test]
    fn skips_test_code() {
        let src = "#[cfg(test)]\nmod tests { fn t(x: f64) -> bool { x == 0.5 } }";
        assert!(plan_rewrites_in_source(src, "crates/core/src/f.rs", false).is_empty());
    }

    #[test]
    fn udm010_stub_matches_indentation() {
        let src = "fn f(p: *mut f64) {\n    unsafe { *p = 1.0; }\n}";
        let rs = plan_udm010_stubs(src, "f.rs", true, &[]);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].new, "    // SAFETY: TODO(justify)\n");
        let mut patched = src.to_string();
        patched.insert_str(rs[0].span.0, &rs[0].new);
        assert_eq!(
            patched,
            "fn f(p: *mut f64) {\n    // SAFETY: TODO(justify)\n    unsafe { *p = 1.0; }\n}"
        );
    }

    #[test]
    fn udm010_stub_skips_justified_and_waived_blocks() {
        let justified =
            "fn f(p: *mut f64) {\n    // SAFETY: caller contract\n    unsafe { *p = 1.0; }\n}";
        assert!(plan_udm010_stubs(justified, "f.rs", true, &[]).is_empty());
        let waived = "fn f(p: *mut f64) {\n    // udm-lint: allow(UDM010) audited externally\n    unsafe { *p = 1.0; }\n}";
        assert!(plan_udm010_stubs(waived, "f.rs", true, &[]).is_empty());
    }

    #[test]
    fn applies_patches_textually() {
        let src = "fn f(x: f64, y: f64) -> bool { x == 0.5 && y != 2.0 }";
        let rs = plan(src);
        assert_eq!(rs.len(), 2);
        let mut patched = src.to_string();
        for r in rs.iter().rev() {
            patched.replace_range(r.span.0..r.span.1, &r.new);
        }
        assert_eq!(
            patched,
            "fn f(x: f64, y: f64) -> bool { udm_core::num::approx_eq(x, 0.5) && !udm_core::num::approx_eq(y, 2.0) }"
        );
    }
}
