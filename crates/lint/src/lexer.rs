//! A small self-contained Rust lexer.
//!
//! Produces a token stream (identifiers, numbers, string/char literals,
//! lifetimes, punctuation) plus a separate comment list, each with byte
//! spans and 1-based line numbers. String literals, raw strings and
//! comments are skipped properly so rule matching never fires inside
//! them. This is *not* a full Rust front end — it is exactly the subset
//! the UDM rules need: reliable token boundaries and line attribution.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `as`, `unwrap`, …).
    Ident,
    /// Numeric literal (`1`, `0.5`, `1e-3`, `0xff`, `2.0f64`, …).
    Number,
    /// String or byte-string literal (raw forms included).
    Str,
    /// Character literal.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// Punctuation; multi-character operators are single tokens.
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token's source text.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
    /// Byte offset of the token start.
    pub start: usize,
    /// Byte offset one past the token end.
    pub end: usize,
}

impl Tok {
    /// True for a punctuation token with exactly this text.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokKind::Punct && self.text == p
    }

    /// True for an identifier token with exactly this text.
    pub fn is_ident(&self, id: &str) -> bool {
        self.kind == TokKind::Ident && self.text == id
    }

    /// True for a numeric literal that is a *float* literal: has a
    /// fractional part, an exponent, or an `f32`/`f64` suffix (and is
    /// not a hex/octal/binary literal).
    pub fn is_float_literal(&self) -> bool {
        if self.kind != TokKind::Number {
            return false;
        }
        let t = &self.text;
        if t.starts_with("0x") || t.starts_with("0b") || t.starts_with("0o") {
            return false;
        }
        if t.contains('.') || t.ends_with("f32") || t.ends_with("f64") {
            return true;
        }
        // An exponent is a digit, then `e`/`E`, then a sign or digit —
        // which excludes the `e` inside `usize`/`isize` suffixes.
        let b = t.as_bytes();
        b.iter().enumerate().any(|(i, &c)| {
            (c == b'e' || c == b'E')
                && i > 0
                && b[i - 1].is_ascii_digit()
                && matches!(b.get(i + 1), Some(n) if n.is_ascii_digit() || *n == b'+' || *n == b'-')
        })
    }
}

/// One comment (line or block), with its starting line.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text including the `//` / `/*` markers.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: usize,
}

/// Result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens, in source order.
    pub toks: Vec<Tok>,
    /// All comments, in source order.
    pub comments: Vec<Comment>,
}

/// Multi-character operators, longest first so matching is greedy.
const PUNCTS: [&str; 24] = [
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Lexes `src` into tokens and comments.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let n = b.len();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1usize;

    // Counts newlines in `src[from..to]` and advances the line counter.
    let count_lines = |from: usize, to: usize| -> usize {
        src.as_bytes()[from..to]
            .iter()
            .filter(|&&c| c == b'\n')
            .count()
    };

    while i < n {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < n && b[i + 1] == b'/' => {
                let start = i;
                while i < n && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    text: src[start..i].to_string(),
                    line,
                });
            }
            b'/' if i + 1 < n && b[i + 1] == b'*' => {
                let start = i;
                let start_line = line;
                i += 2;
                let mut depth = 1usize;
                while i < n && depth > 0 {
                    if i + 1 < n && b[i] == b'/' && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if i + 1 < n && b[i] == b'*' && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    text: src[start..i].to_string(),
                    line: start_line,
                });
            }
            b'"' => {
                let (end, newlines) = scan_string(src, i);
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text: src[i..end].to_string(),
                    line,
                    start: i,
                    end,
                });
                line += newlines;
                i = end;
            }
            b'r' | b'b' if is_raw_or_byte_string(b, i) => {
                let start = i;
                // Skip the `r` / `b` / `br` prefix to the quote or `#`s.
                while i < n && (b[i] == b'r' || b[i] == b'b') {
                    i += 1;
                }
                let mut hashes = 0usize;
                while i < n && b[i] == b'#' {
                    hashes += 1;
                    i += 1;
                }
                if i < n && b[i] == b'"' {
                    if hashes == 0 && src[start..i].contains('b') && !src[start..i].contains('r') {
                        // plain byte string b"…": escapes behave like "…"
                        let (end, newlines) = scan_string(src, i);
                        out.toks.push(Tok {
                            kind: TokKind::Str,
                            text: src[start..end].to_string(),
                            line,
                            start,
                            end,
                        });
                        line += newlines;
                        i = end;
                    } else {
                        // raw string: ends at `"` followed by `hashes` #s
                        i += 1;
                        let closer = format!("\"{}", "#".repeat(hashes));
                        let end = match src[i..].find(&closer) {
                            Some(off) => i + off + closer.len(),
                            None => n,
                        };
                        out.toks.push(Tok {
                            kind: TokKind::Str,
                            text: src[start..end].to_string(),
                            line,
                            start,
                            end,
                        });
                        line += count_lines(start, end);
                        i = end;
                    }
                } else {
                    // Not a string after all: lex the ident normally.
                    i = start;
                    let end = scan_ident(b, i);
                    out.toks.push(Tok {
                        kind: TokKind::Ident,
                        text: src[i..end].to_string(),
                        line,
                        start: i,
                        end,
                    });
                    i = end;
                }
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'x'`, `'\n'`).
                let is_lifetime = i + 1 < n
                    && (b[i + 1].is_ascii_alphabetic() || b[i + 1] == b'_')
                    && !(i + 2 < n && b[i + 2] == b'\'');
                if is_lifetime {
                    let start = i;
                    i += 1;
                    let end = scan_ident(b, i);
                    out.toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: src[start..end].to_string(),
                        line,
                        start,
                        end,
                    });
                    i = end;
                } else {
                    let start = i;
                    i += 1;
                    if i < n && b[i] == b'\\' {
                        i += 2;
                        // multi-char escapes: \u{..}, \x..
                        while i < n && b[i] != b'\'' {
                            i += 1;
                        }
                    } else if i < n {
                        // The literal may hold a multi-byte char, e.g. '▁'.
                        i += utf8_len(b[i]);
                    }
                    if i < n && b[i] == b'\'' {
                        i += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Char,
                        text: src[start..i].to_string(),
                        line,
                        start,
                        end: i,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let end = scan_number(b, i);
                out.toks.push(Tok {
                    kind: TokKind::Number,
                    text: src[start..end].to_string(),
                    line,
                    start,
                    end,
                });
                i = end;
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                let end = scan_ident(b, i);
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: src[start..end].to_string(),
                    line,
                    start,
                    end,
                });
                i = end;
            }
            _ => {
                let rest = &src[i..];
                let text = PUNCTS
                    .iter()
                    .find(|p| rest.starts_with(**p))
                    .map_or_else(|| src[i..i + utf8_len(c)].to_string(), |p| (*p).to_string());
                let end = i + text.len();
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text,
                    line,
                    start: i,
                    end,
                });
                i = end;
            }
        }
    }
    out
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn is_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    // r"…", r#"…"#, b"…", br"…", br#"…"#
    let n = b.len();
    let mut j = i;
    while j < n && (b[j] == b'r' || b[j] == b'b') && j - i < 2 {
        j += 1;
    }
    while j < n && b[j] == b'#' {
        j += 1;
    }
    j < n && b[j] == b'"' && j > i
}

/// Scans a `"…"` string starting at the opening quote; returns (end,
/// newline count).
fn scan_string(src: &str, start: usize) -> (usize, usize) {
    let b = src.as_bytes();
    let n = b.len();
    let mut i = start + 1;
    let mut newlines = 0usize;
    while i < n {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return (i + 1, newlines),
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (n, newlines)
}

fn scan_ident(b: &[u8], start: usize) -> usize {
    let mut i = start;
    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
        i += 1;
    }
    i
}

fn scan_number(b: &[u8], start: usize) -> usize {
    let n = b.len();
    let mut i = start;
    if i + 1 < n && b[i] == b'0' && matches!(b[i + 1], b'x' | b'b' | b'o') {
        i += 2;
        while i < n && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
            i += 1;
        }
        return i;
    }
    while i < n && (b[i].is_ascii_digit() || b[i] == b'_') {
        i += 1;
    }
    // Fraction: `.` followed by a digit (so `1..10` stays a range).
    if i + 1 < n && b[i] == b'.' && b[i + 1].is_ascii_digit() {
        i += 1;
        while i < n && (b[i].is_ascii_digit() || b[i] == b'_') {
            i += 1;
        }
    } else if i < n && b[i] == b'.' && (i + 1 == n || !is_ident_start(b.get(i + 1))) {
        // Trailing-dot float like `1.` (not `1.method()` or `1..`).
        if !(i + 1 < n && b[i + 1] == b'.') {
            i += 1;
        }
    }
    // Exponent.
    if i < n && (b[i] == b'e' || b[i] == b'E') {
        let mut j = i + 1;
        if j < n && (b[j] == b'+' || b[j] == b'-') {
            j += 1;
        }
        if j < n && b[j].is_ascii_digit() {
            i = j;
            while i < n && (b[i].is_ascii_digit() || b[i] == b'_') {
                i += 1;
            }
        }
    }
    // Suffix (f64, u32, usize, …).
    while i < n && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
        i += 1;
    }
    i
}

fn is_ident_start(c: Option<&u8>) -> bool {
    matches!(c, Some(&c) if c.is_ascii_alphabetic() || c == b'_')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .toks
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn basic_tokens() {
        let ts = kinds("fn f(x: f64) -> f64 { x == 0.5 }");
        assert!(ts.contains(&(TokKind::Ident, "fn".into())));
        assert!(ts.contains(&(TokKind::Punct, "==".into())));
        assert!(ts.contains(&(TokKind::Punct, "->".into())));
        assert!(ts.contains(&(TokKind::Number, "0.5".into())));
    }

    #[test]
    fn strings_and_comments_are_not_tokens() {
        let l = lex("let s = \"a == 0.5 // not code\"; // real == comment");
        assert!(!l.toks.iter().any(|t| t.is_punct("==")));
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("real == comment"));
    }

    #[test]
    fn raw_strings_skipped() {
        let l = lex("let s = r#\"x.unwrap() == 1.0\"#; y.unwrap();");
        let unwraps: Vec<_> = l.toks.iter().filter(|t| t.is_ident("unwrap")).collect();
        assert_eq!(unwraps.len(), 1);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* a /* b */ c */ x");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.toks.len(), 1);
        assert!(l.toks[0].is_ident("x"));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let ts = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        assert!(ts.contains(&(TokKind::Lifetime, "'a".into())));
        assert!(ts.contains(&(TokKind::Char, "'x'".into())));
        assert!(ts.contains(&(TokKind::Char, "'\\n'".into())));
    }

    #[test]
    fn float_literal_detection() {
        let l = lex("1 1.5 1e-3 2.0f64 0xff 10usize 3f32");
        let floats: Vec<bool> = l.toks.iter().map(Tok::is_float_literal).collect();
        assert_eq!(floats, vec![false, true, true, true, false, false, true]);
    }

    #[test]
    fn ranges_are_not_floats() {
        let l = lex("for i in 1..10 {}");
        assert!(l.toks.iter().any(|t| t.is_punct("..")));
        assert!(l.toks.iter().all(|t| !t.is_float_literal()));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let l = lex("a\nb\n\nc /* x\ny */ d\ne");
        let lines: Vec<(String, usize)> = l.toks.iter().map(|t| (t.text.clone(), t.line)).collect();
        assert_eq!(
            lines,
            vec![
                ("a".into(), 1),
                ("b".into(), 2),
                ("c".into(), 4),
                ("d".into(), 5),
                ("e".into(), 6)
            ]
        );
    }

    #[test]
    fn multichar_ops_are_single_tokens() {
        let ts = kinds("a != b; c <= d; e && f; g..=h");
        assert!(ts.contains(&(TokKind::Punct, "!=".into())));
        assert!(ts.contains(&(TokKind::Punct, "<=".into())));
        assert!(ts.contains(&(TokKind::Punct, "&&".into())));
        assert!(ts.contains(&(TokKind::Punct, "..=".into())));
    }
}
