//! # udm-lint
//!
//! A custom static-analysis pass over the workspace's Rust sources,
//! enforcing the numeric-safety invariants the uncertain-data-mining
//! crates rely on (see `DESIGN.md`, "Numeric invariants & static
//! analysis"). Built on a small self-contained lexer — no external
//! parser dependencies — so it runs in the offline build image.
//!
//! Rules:
//!
//! * **UDM001** — no `unwrap()`/`expect()`/`panic!`/`todo!`/
//!   `unimplemented!` in non-test code of the library crates.
//! * **UDM002** — no bare `==`/`!=` against float expressions outside
//!   test modules; use `udm_core::num::approx_eq` or waive exact-zero
//!   guards.
//! * **UDM003** — `sqrt` of variance-like expressions must route
//!   through `udm_core::num::clamped_sqrt` (catastrophic cancellation
//!   can drive the radicand negative).
//! * **UDM004** — no lossy `as` casts in the hot-path kernel modules.
//! * **UDM005** — public estimator entry points (`density*`,
//!   `classify*`) must validate finite inputs or delegate to an entry
//!   point that does.
//! * **UDM006** — `udm_observe::span!` guards must be bound to a named
//!   variable; `let _ = span!(..)` and bare `span!(..);` statements drop
//!   the RAII guard immediately, so the span covers nothing.
//!
//! Waivers: inline `// udm-lint: allow(RULE) reason` comments (cover
//! their own line and the next code line), or `lint.toml` entries
//! `"RULE:path[:line]" = "reason"` under `[waivers]`.
//!
//! Run with `cargo run -p udm-lint -- check [--root PATH] [--stats]`
//! or `cargo run -p udm-lint -- fix --rule UDM002 [--apply]`.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod context;
pub mod engine;
pub mod fix;
pub mod lexer;
pub mod rules;
pub mod waivers;

pub use engine::{check, CheckReport};
pub use rules::{Diagnostic, ALL_RULES};
