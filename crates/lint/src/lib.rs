//! # udm-lint
//!
//! A custom static-analysis pass over the workspace's Rust sources,
//! enforcing the numeric-safety, concurrency and determinism invariants
//! the uncertain-data-mining crates rely on (see `DESIGN.md`, "Numeric
//! invariants & static analysis"). Built on a self-contained lexer plus
//! a hand-rolled recursive-descent parser ([`parser`]) — no external
//! parser dependencies — so it runs in the offline build image. Files
//! whose parse achieves zero errors and total token coverage get the
//! scope-aware AST rules; anything else degrades to the lexer-only rule
//! set and is *logged* in the report (`parse_fallbacks`), never
//! silently skipped.
//!
//! Rules:
//!
//! * **UDM001** — no `unwrap()`/`expect()`/`panic!`/`todo!`/
//!   `unimplemented!` in non-test code of the library crates.
//! * **UDM002** — no bare `==`/`!=` against float expressions outside
//!   test modules; use `udm_core::num::approx_eq` (comparisons against
//!   `fract()` results are exempt — they are exact by construction).
//! * **UDM003** — `sqrt` of variance-like expressions must route
//!   through `udm_core::num::clamped_sqrt` (catastrophic cancellation
//!   can drive the radicand negative).
//! * **UDM004** — no lossy `as` casts in the hot-path kernel modules.
//! * **UDM005** — public estimator entry points (`density*`,
//!   `classify*`) must validate finite inputs or delegate to an entry
//!   point that does (AST-scoped when a full parse is available).
//! * **UDM006** — `udm_observe::span!` guards must be bound to a named
//!   variable; `let _ = span!(..)` and bare `span!(..);` statements drop
//!   the RAII guard immediately, so the span covers nothing.
//! * **UDM007** — closures handed to the parallel seams
//!   (`guarded_par_map`, `rayon::join`/`scope`, `par_iter` chains) must
//!   not capture `RefCell`/`Cell` state or mutate captured bindings;
//!   dataflow over the AST ([`scope`], [`astrules`]).
//! * **UDM008** — items gated on the `fast-math` feature (and the
//!   deliberately-ungated approximate roots like `fast_exp`) must stay
//!   unreachable from default-build code; cross-file pass
//!   ([`callgraph`]).
//! * **UDM009** — `OnceLock`/`OnceCell`/`Lazy` initialisers must be
//!   deterministic: no RNG, clocks, thread ids, or unordered-map
//!   iteration inside the init closure.
//! * **UDM010** — every `unsafe` block needs an adjacent `// SAFETY:`
//!   comment justifying its invariants.
//!
//! Waivers: inline `// udm-lint: allow(RULE) reason` comments (cover
//! their own line and the next code line), or `lint.toml` entries
//! `"RULE:path[:line]" = "reason"` under `[waivers]`. Unused waivers of
//! both kinds are reported so the allowlist only ever shrinks.
//!
//! Run with `cargo run -p udm-lint -- check [--root PATH] [--stats]
//! [--format text|json|sarif] [--deny-fallback]
//! [--deny-unused-waivers]`, `... parse --root PATH` (parser robustness
//! smoke), or `... fix --rule UDM002|UDM010 [--apply]`.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod ast;
pub mod astrules;
pub mod callgraph;
pub mod context;
pub mod engine;
pub mod fix;
pub mod lexer;
pub mod output;
pub mod parser;
pub mod rules;
pub mod scope;
pub mod waivers;

pub use engine::{check, CheckReport};
pub use rules::{Diagnostic, ALL_RULES};
