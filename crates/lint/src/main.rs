//! Command-line entry point for the workspace linter.

use std::path::PathBuf;
use std::process::ExitCode;
use udm_lint::fix::SUPPORTED_FIX_RULES;

const USAGE: &str = "\
udm-lint: workspace invariant linter (rules UDM001-UDM010)

USAGE:
  udm-lint check [--root PATH] [--stats] [--format text|json|sarif]
                 [--deny-fallback] [--deny-unused-waivers]
  udm-lint parse [--root PATH]
  udm-lint fix --rule UDM002|UDM010 [--root PATH] [--apply]
  udm-lint help

check exits 0 when no unwaived diagnostics remain, 1 otherwise.
  --format json|sarif writes the machine-readable report to stdout
    (diagnostics still gate the exit code).
  --deny-fallback also fails when any file degraded to the lexer-only
    rule path because its parse was incomplete.
  --deny-unused-waivers also fails when an inline or lint.toml waiver
    matched nothing (stale allows must be deleted).
parse is a parser robustness smoke: parses every .rs file under the
  root (including vendored code) and reports per-file fallbacks; exits
  0 unless a file cannot be read.
fix is a dry run unless --apply is given. UDM010 plans
  `// SAFETY: TODO(justify)` stubs and is dry-run only.
";

struct Args {
    command: String,
    root: PathBuf,
    stats: bool,
    apply: bool,
    rule: Option<String>,
    format: String,
    deny_fallback: bool,
    deny_unused_waivers: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        command: argv.first().cloned().unwrap_or_else(|| "help".into()),
        root: PathBuf::from("."),
        stats: false,
        apply: false,
        rule: None,
        format: "text".into(),
        deny_fallback: false,
        deny_unused_waivers: false,
    };
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--root" => {
                i += 1;
                args.root = PathBuf::from(
                    argv.get(i)
                        .ok_or_else(|| "--root needs a path".to_string())?,
                );
            }
            "--stats" => args.stats = true,
            "--apply" => args.apply = true,
            "--deny-fallback" => args.deny_fallback = true,
            "--deny-unused-waivers" => args.deny_unused_waivers = true,
            "--format" => {
                i += 1;
                let f = argv
                    .get(i)
                    .ok_or_else(|| "--format needs text|json|sarif".to_string())?;
                if !["text", "json", "sarif"].contains(&f.as_str()) {
                    return Err(format!("--format must be text|json|sarif, got {f:?}"));
                }
                args.format = f.clone();
            }
            "--rule" => {
                i += 1;
                args.rule = Some(
                    argv.get(i)
                        .ok_or_else(|| "--rule needs a rule id".to_string())?
                        .clone(),
                );
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    Ok(args)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match args.command.as_str() {
        "check" => run_check(&args),
        "parse" => run_parse(&args),
        "fix" => run_fix(&args),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("error: unknown command {other:?}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run_check(args: &Args) -> ExitCode {
    let report = match udm_lint::check(&args.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    match args.format.as_str() {
        "json" => print!("{}", udm_lint::output::render_json(&report)),
        "sarif" => print!("{}", udm_lint::output::render_sarif(&report)),
        _ => {
            for d in &report.diagnostics {
                println!("{}:{}: {} {}", d.path, d.line, d.rule, d.message);
            }
            if args.stats {
                println!("--- stats ---");
                println!(
                    "files scanned: {} ({} fully parsed, {} lexer fallback)",
                    report.files_scanned,
                    report.parsed_files,
                    report.parse_fallbacks.len()
                );
                for (rule, (hits, waived)) in &report.per_rule {
                    println!(
                        "{rule}: {hits} hit(s), {waived} waived, {} reported",
                        hits - waived
                    );
                }
                println!("total waived: {}", report.waived);
            }
        }
    }
    // Health signals always go to stderr so they survive --format json.
    for f in &report.parse_fallbacks {
        eprintln!("udm-lint: parse fallback (lexer-only rules): {f}");
    }
    for w in &report.unused_inline_waivers {
        eprintln!("udm-lint: unused inline waiver: {w}");
    }
    for w in &report.unused_toml_waivers {
        eprintln!("udm-lint: unused lint.toml waiver: {w}");
    }
    let mut failed = false;
    if !report.diagnostics.is_empty() {
        eprintln!(
            "udm-lint: {} unwaived diagnostic(s)",
            report.diagnostics.len()
        );
        failed = true;
    }
    if args.deny_fallback && !report.parse_fallbacks.is_empty() {
        eprintln!(
            "udm-lint: {} file(s) degraded to lexer-only rules (--deny-fallback)",
            report.parse_fallbacks.len()
        );
        failed = true;
    }
    if args.deny_unused_waivers
        && (!report.unused_inline_waivers.is_empty() || !report.unused_toml_waivers.is_empty())
    {
        eprintln!(
            "udm-lint: {} unused waiver(s) (--deny-unused-waivers)",
            report.unused_inline_waivers.len() + report.unused_toml_waivers.len()
        );
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        if args.format == "text" && !args.stats {
            println!(
                "udm-lint: clean ({} files, {} waived)",
                report.files_scanned, report.waived
            );
        }
        ExitCode::SUCCESS
    }
}

fn run_parse(args: &Args) -> ExitCode {
    match udm_lint::engine::parse_smoke(&args.root) {
        Ok((ok, fallbacks)) => {
            for f in &fallbacks {
                println!("fallback: {f}");
            }
            println!(
                "udm-lint parse: {} file(s) fully parsed, {} fallback(s)",
                ok,
                fallbacks.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run_fix(args: &Args) -> ExitCode {
    let rule = match args.rule.as_deref() {
        Some(r) if SUPPORTED_FIX_RULES.contains(&r) => r.to_string(),
        Some(other) => {
            eprintln!(
                "error: fix does not support {other}; supported rules: {}",
                SUPPORTED_FIX_RULES.join(", ")
            );
            return ExitCode::from(2);
        }
        None => {
            eprintln!(
                "error: fix requires --rule (supported: {})",
                SUPPORTED_FIX_RULES.join(", ")
            );
            return ExitCode::from(2);
        }
    };
    let toml = match udm_lint::engine::load_lint_toml(&args.root) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let rewrites = match rule.as_str() {
        "UDM002" => udm_lint::fix::fix_udm002(&args.root, args.apply, &toml),
        _ => {
            if args.apply {
                eprintln!(
                    "error: --apply is not supported for UDM010; the SAFETY \
                     justification must be written by a human (stubs are shown dry-run)"
                );
                return ExitCode::from(2);
            }
            udm_lint::fix::fix_udm010(&args.root, &toml)
        }
    };
    match rewrites {
        Ok(rewrites) => {
            for r in &rewrites {
                if r.old.is_empty() {
                    println!("{}:{}: insert `{}`", r.path, r.line, r.new.trim_end());
                } else {
                    println!("{}:{}: `{}` -> `{}`", r.path, r.line, r.old, r.new);
                }
            }
            if args.apply {
                println!("udm-lint: applied {} rewrite(s)", rewrites.len());
            } else {
                println!(
                    "udm-lint: {} rewrite(s) planned (dry run{})",
                    rewrites.len(),
                    if rule == "UDM002" {
                        "; pass --apply to write"
                    } else {
                        "; UDM010 stubs are never auto-applied"
                    }
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
