//! Command-line entry point for the workspace linter.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
udm-lint: workspace invariant linter (rules UDM001-UDM006)

USAGE:
  udm-lint check [--root PATH] [--stats]
  udm-lint fix --rule UDM002 [--root PATH] [--apply]
  udm-lint help

check exits 0 when no unwaived diagnostics remain, 1 otherwise.
fix is a dry run unless --apply is given.
";

struct Args {
    command: String,
    root: PathBuf,
    stats: bool,
    apply: bool,
    rule: Option<String>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        command: argv.first().cloned().unwrap_or_else(|| "help".into()),
        root: PathBuf::from("."),
        stats: false,
        apply: false,
        rule: None,
    };
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--root" => {
                i += 1;
                args.root = PathBuf::from(
                    argv.get(i)
                        .ok_or_else(|| "--root needs a path".to_string())?,
                );
            }
            "--stats" => args.stats = true,
            "--apply" => args.apply = true,
            "--rule" => {
                i += 1;
                args.rule = Some(
                    argv.get(i)
                        .ok_or_else(|| "--rule needs a rule id".to_string())?
                        .clone(),
                );
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    Ok(args)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match args.command.as_str() {
        "check" => run_check(&args),
        "fix" => run_fix(&args),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("error: unknown command {other:?}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run_check(args: &Args) -> ExitCode {
    let report = match udm_lint::check(&args.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    for d in &report.diagnostics {
        println!("{}:{}: {} {}", d.path, d.line, d.rule, d.message);
    }
    if args.stats {
        println!("--- stats ---");
        println!("files scanned: {}", report.files_scanned);
        for (rule, (hits, waived)) in &report.per_rule {
            println!(
                "{rule}: {hits} hit(s), {waived} waived, {} reported",
                hits - waived
            );
        }
        println!("total waived: {}", report.waived);
        for w in &report.unused_toml_waivers {
            println!("unused lint.toml waiver: {w}");
        }
    }
    if report.diagnostics.is_empty() {
        if !args.stats {
            println!(
                "udm-lint: clean ({} files, {} waived)",
                report.files_scanned, report.waived
            );
        }
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "udm-lint: {} unwaived diagnostic(s)",
            report.diagnostics.len()
        );
        ExitCode::FAILURE
    }
}

fn run_fix(args: &Args) -> ExitCode {
    match args.rule.as_deref() {
        Some("UDM002") => {}
        Some(other) => {
            eprintln!("error: fix supports only UDM002, got {other}");
            return ExitCode::from(2);
        }
        None => {
            eprintln!("error: fix requires --rule UDM002");
            return ExitCode::from(2);
        }
    }
    let toml = match udm_lint::engine::load_lint_toml(&args.root) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    match udm_lint::fix::fix_udm002(&args.root, args.apply, &toml) {
        Ok(rewrites) => {
            for r in &rewrites {
                println!("{}:{}: `{}` -> `{}`", r.path, r.line, r.old, r.new);
            }
            if args.apply {
                println!("udm-lint: applied {} rewrite(s)", rewrites.len());
            } else {
                println!(
                    "udm-lint: {} rewrite(s) planned (dry run; pass --apply to write)",
                    rewrites.len()
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
