//! Machine-readable renderings of a [`CheckReport`]: a compact JSON
//! document for CI dashboards and a SARIF 2.1.0 log for code-scanning
//! upload. Hand-rolled serialisation — the lint crate stays
//! dependency-free so it builds in the offline image.

use crate::engine::CheckReport;
use crate::rules::RULE_INFO;
use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_str_list(items: &[String]) -> String {
    let quoted: Vec<String> = items
        .iter()
        .map(|s| format!("\"{}\"", json_escape(s)))
        .collect();
    format!("[{}]", quoted.join(","))
}

/// Renders the report as the `udm-lint` JSON document (schema v1):
/// counts, per-rule stats, every unwaived diagnostic, and the waiver /
/// parser health signals CI gates on.
pub fn render_json(report: &CheckReport) -> String {
    let mut diags = Vec::new();
    for d in &report.diagnostics {
        diags.push(format!(
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            json_escape(d.rule),
            json_escape(&d.path),
            d.line,
            json_escape(&d.message)
        ));
    }
    let mut per_rule = Vec::new();
    for (rule, (hits, waived)) in &report.per_rule {
        per_rule.push(format!(
            "\"{rule}\":{{\"hits\":{hits},\"waived\":{waived},\"reported\":{}}}",
            hits - waived
        ));
    }
    format!(
        concat!(
            "{{\"tool\":\"udm-lint\",\"schema_version\":1,",
            "\"files_scanned\":{},\"parsed\":{},",
            "\"parse_fallbacks\":{},",
            "\"diagnostics\":[{}],",
            "\"waived\":{},",
            "\"per_rule\":{{{}}},",
            "\"unused_waivers\":{{\"inline\":{},\"toml\":{}}}}}\n"
        ),
        report.files_scanned,
        report.parsed_files,
        json_str_list(&report.parse_fallbacks),
        diags.join(","),
        report.waived,
        per_rule.join(","),
        json_str_list(&report.unused_inline_waivers),
        json_str_list(&report.unused_toml_waivers),
    )
}

/// Renders the report as a SARIF 2.1.0 log (one run, one result per
/// unwaived diagnostic) suitable for GitHub code-scanning upload.
pub fn render_sarif(report: &CheckReport) -> String {
    let mut rules = Vec::new();
    for (id, desc) in RULE_INFO {
        rules.push(format!(
            concat!(
                "{{\"id\":\"{}\",",
                "\"shortDescription\":{{\"text\":\"{}\"}}}}"
            ),
            json_escape(id),
            json_escape(desc)
        ));
    }
    let mut results = Vec::new();
    for d in &report.diagnostics {
        results.push(format!(
            concat!(
                "{{\"ruleId\":\"{}\",\"level\":\"error\",",
                "\"message\":{{\"text\":\"{}\"}},",
                "\"locations\":[{{\"physicalLocation\":{{",
                "\"artifactLocation\":{{\"uri\":\"{}\"}},",
                "\"region\":{{\"startLine\":{}}}}}}}]}}"
            ),
            json_escape(d.rule),
            json_escape(&d.message),
            json_escape(&d.path),
            d.line
        ));
    }
    format!(
        concat!(
            "{{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",",
            "\"version\":\"2.1.0\",",
            "\"runs\":[{{\"tool\":{{\"driver\":{{\"name\":\"udm-lint\",",
            "\"informationUri\":\"https://example.invalid/udm-lint\",",
            "\"rules\":[{}]}}}},",
            "\"results\":[{}]}}]}}\n"
        ),
        rules.join(","),
        results.join(","),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Diagnostic;

    fn sample_report() -> CheckReport {
        let mut r = CheckReport {
            files_scanned: 3,
            parsed_files: 2,
            waived: 1,
            ..CheckReport::default()
        };
        r.diagnostics.push(Diagnostic {
            rule: "UDM001",
            path: "crates/kde/src/x.rs".into(),
            line: 7,
            message: "said \"no\"\nnewline".into(),
            offset: 0,
        });
        r.per_rule.insert("UDM001", (2, 1));
        r.parse_fallbacks.push("a.rs: unbalanced group".into());
        r.unused_inline_waivers.push("b.rs:3: allow(UDM002)".into());
        r
    }

    #[test]
    fn escape_handles_quotes_newlines_and_controls() {
        assert_eq!(json_escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_document_is_wellformed_and_complete() {
        let doc = render_json(&sample_report());
        assert!(doc.contains("\"tool\":\"udm-lint\""));
        assert!(doc.contains("\"files_scanned\":3"));
        assert!(doc.contains("\"parsed\":2"));
        assert!(doc.contains("\"rule\":\"UDM001\""));
        assert!(doc.contains("\"line\":7"));
        assert!(doc.contains("said \\\"no\\\"\\nnewline"));
        assert!(doc.contains("\"UDM001\":{\"hits\":2,\"waived\":1,\"reported\":1}"));
        assert!(doc.contains("a.rs: unbalanced group"));
        assert!(doc.contains("b.rs:3: allow(UDM002)"));
        // Braces and brackets balance (no raw quotes break nesting).
        let opens = doc.matches('{').count();
        let closes = doc.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn sarif_document_lists_all_rules_and_results() {
        let doc = render_sarif(&sample_report());
        assert!(doc.contains("\"version\":\"2.1.0\""));
        for (id, _) in RULE_INFO {
            assert!(doc.contains(&format!("\"id\":\"{id}\"")), "{id}");
        }
        assert!(doc.contains("\"ruleId\":\"UDM001\""));
        assert!(doc.contains("\"startLine\":7"));
        assert!(doc.contains("\"uri\":\"crates/kde/src/x.rs\""));
    }
}
