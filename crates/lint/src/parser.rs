//! Hand-rolled recursive-descent parser over the [`crate::lexer`]
//! token stream.
//!
//! Produces the lightweight [`crate::ast`] overlay: items with
//! attributes (including parsed `cfg` predicates), statement blocks,
//! delimiter groups and closures. The parser is *total* — it never
//! panics and consumes every token exactly once (unclassifiable tokens
//! become `Node::Tok` leaves) — and records irregularities in
//! [`Ast::errors`] instead of failing, so the engine can decide to use
//! the lexer-only fallback per file.

use crate::ast::{
    Ast, Attr, Block, CfgPredicate, Closure, GroupKind, Item, ItemKind, Members, Node, Stmt,
};
use crate::lexer::{Lexed, Tok, TokKind};

/// Parses one lexed file into the AST overlay.
pub fn parse(lexed: &Lexed) -> Ast {
    let mut p = Parser {
        toks: &lexed.toks,
        pos: 0,
        errors: Vec::new(),
    };
    let inner_attrs = p.parse_inner_attrs();
    let mut nodes = Vec::new();
    while p.pos < p.toks.len() {
        if p.at_punct("}") {
            // Stray close at top level: keep it as a token, note it.
            p.errors
                .push(format!("line {}: unmatched `}}` at file level", p.line()));
            nodes.push(Node::Tok(p.bump()));
            continue;
        }
        nodes.push(p.parse_container_entry());
    }
    Ast {
        inner_attrs,
        nodes,
        n_tokens: lexed.toks.len(),
        errors: p.errors,
    }
}

/// Identifiers that cannot be expression operands (so a following `|`
/// starts a closure rather than a binary or-pattern).
const NON_OPERAND_KEYWORDS: [&str; 27] = [
    "let", "if", "else", "match", "while", "loop", "for", "return", "break", "continue", "in",
    "move", "mut", "ref", "as", "where", "unsafe", "async", "dyn", "pub", "use", "fn", "impl",
    "struct", "enum", "trait", "mod",
];

struct Parser<'a> {
    toks: &'a [Tok],
    pos: usize,
    errors: Vec<String>,
}

impl<'a> Parser<'a> {
    fn cur(&self) -> Option<&'a Tok> {
        self.toks.get(self.pos)
    }

    fn peek(&self, off: usize) -> Option<&'a Tok> {
        self.toks.get(self.pos + off)
    }

    fn line(&self) -> usize {
        self.cur().map_or(0, |t| t.line)
    }

    fn bump(&mut self) -> usize {
        let i = self.pos;
        self.pos += 1;
        i
    }

    fn at_punct(&self, p: &str) -> bool {
        self.cur().is_some_and(|t| t.is_punct(p))
    }

    fn at_ident(&self, id: &str) -> bool {
        self.cur().is_some_and(|t| t.is_ident(id))
    }

    // ---- attributes -----------------------------------------------------

    fn parse_inner_attrs(&mut self) -> Vec<Attr> {
        let mut out = Vec::new();
        while self.at_punct("#")
            && self.peek(1).is_some_and(|t| t.is_punct("!"))
            && self.peek(2).is_some_and(|t| t.is_punct("["))
        {
            out.push(self.parse_one_attr(true));
        }
        out
    }

    fn parse_outer_attrs(&mut self) -> Vec<Attr> {
        let mut out = Vec::new();
        while self.at_punct("#") && self.peek(1).is_some_and(|t| t.is_punct("[")) {
            out.push(self.parse_one_attr(false));
        }
        out
    }

    /// Parses `#[..]` / `#![..]` starting at the `#`.
    fn parse_one_attr(&mut self, inner: bool) -> Attr {
        let start = self.pos;
        let line = self.line();
        self.bump(); // `#`
        if inner {
            self.bump(); // `!`
        }
        self.bump(); // `[`
        let body_start = self.pos;
        let mut depth = 1usize;
        while let Some(t) = self.cur() {
            if t.is_punct("[") || t.is_punct("(") {
                depth += 1;
            } else if t.is_punct("]") || t.is_punct(")") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            self.bump();
        }
        let body_end = self.pos;
        if self.at_punct("]") {
            self.bump();
        } else {
            self.errors
                .push(format!("line {line}: unterminated attribute"));
        }
        let body = &self.toks[body_start..body_end];
        let path = body
            .iter()
            .find(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .unwrap_or_default();
        let cfg = if path == "cfg" {
            parse_cfg_predicate(body)
        } else {
            None
        };
        Attr {
            span: (start, self.pos),
            line,
            path,
            cfg,
            inner,
        }
    }

    // ---- items ----------------------------------------------------------

    /// One entry of an item container (file, `mod`, `impl`, `trait`).
    /// Always consumes at least one token.
    fn parse_container_entry(&mut self) -> Node {
        let attrs = self.parse_outer_attrs();
        Node::Item(Box::new(self.parse_item(attrs)))
    }

    /// Looks ahead from `pos` to decide whether an item starts here
    /// (used by the statement parser; the container parser treats
    /// everything as an item and relies on the Unknown fallback).
    fn item_starts_here(&self) -> bool {
        let mut j = self.pos;
        let mut saw_const = false;
        let mut saw_unsafe = false;
        loop {
            let Some(t) = self.toks.get(j) else {
                return false;
            };
            match t.text.as_str() {
                "pub" if t.kind == TokKind::Ident => {
                    j += 1;
                    if self.toks.get(j).is_some_and(|t| t.is_punct("(")) {
                        let mut d = 0usize;
                        while let Some(t) = self.toks.get(j) {
                            if t.is_punct("(") {
                                d += 1;
                            } else if t.is_punct(")") {
                                d -= 1;
                                if d == 0 {
                                    j += 1;
                                    break;
                                }
                            }
                            j += 1;
                        }
                    }
                }
                "default" | "async" if t.kind == TokKind::Ident => j += 1,
                "unsafe" if t.kind == TokKind::Ident => {
                    saw_unsafe = true;
                    j += 1;
                }
                "const" if t.kind == TokKind::Ident => {
                    saw_const = true;
                    j += 1;
                }
                "extern" if t.kind == TokKind::Ident => {
                    j += 1;
                    if self.toks.get(j).is_some_and(|t| t.kind == TokKind::Str) {
                        j += 1;
                    }
                }
                _ => break,
            }
        }
        let Some(t) = self.toks.get(j) else {
            return false;
        };
        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "fn" | "mod" | "struct" | "enum" | "trait" | "impl" | "use" | "static" | "type"
                | "macro_rules" | "crate" => return true,
                "union" => {
                    return self
                        .toks
                        .get(j + 1)
                        .is_some_and(|t| t.kind == TokKind::Ident);
                }
                _ => {}
            }
            // `const NAME: ..` / `const _: ..` item form.
            if saw_const && !NON_OPERAND_KEYWORDS.contains(&t.text.as_str()) {
                return true;
            }
        }
        // `unsafe {` is an unsafe *block* expression, not an item.
        let _ = saw_unsafe;
        false
    }

    /// Parses one item (with the given already-parsed attributes).
    /// Falls back to a one-token Unknown item so progress is guaranteed.
    fn parse_item(&mut self, attrs: Vec<Attr>) -> Item {
        let start = attrs.first().map_or(self.pos, |a| a.span.0);
        let line = self
            .cur()
            .map(|t| t.line)
            .or_else(|| attrs.first().map(|a| a.line))
            .unwrap_or(0);
        let mut head: Vec<Node> = Vec::new();
        let mut is_pub = false;

        // Modifier run: pub[(..)] default const(before fn) unsafe async
        // extern "abi"(before fn).
        while let Some(t) = self.cur() {
            if t.kind != TokKind::Ident {
                break;
            }
            match t.text.as_str() {
                "pub" => {
                    let only_pub = !self.peek(1).is_some_and(|n| n.is_punct("("));
                    is_pub = is_pub || only_pub;
                    head.push(Node::Tok(self.bump()));
                    if self.at_punct("(") {
                        head.push(self.parse_raw_group());
                    }
                }
                "default" | "async" | "unsafe" => {
                    // `unsafe` only continues an item when an item
                    // keyword (or further modifier) follows.
                    if t.text == "unsafe" && self.peek(1).is_some_and(|n| n.is_punct("{")) {
                        break;
                    }
                    head.push(Node::Tok(self.bump()));
                }
                "const" => {
                    if self.peek(1).is_some_and(|n| n.is_ident("fn")) {
                        head.push(Node::Tok(self.bump()));
                    } else {
                        break; // `const NAME: ..` handled by dispatch
                    }
                }
                "extern" => {
                    let after = if self.peek(1).is_some_and(|n| n.kind == TokKind::Str) {
                        2
                    } else {
                        1
                    };
                    if self.peek(after).is_some_and(|n| n.is_ident("fn")) {
                        head.push(Node::Tok(self.bump()));
                        if self.cur().is_some_and(|t| t.kind == TokKind::Str) {
                            head.push(Node::Tok(self.bump()));
                        }
                    } else {
                        break; // extern block / extern crate
                    }
                }
                _ => break,
            }
        }

        let kw = self.cur().map(|t| t.text.clone()).unwrap_or_default();
        let mut item = match kw.as_str() {
            "fn" => self.parse_fn(head),
            "mod" => self.parse_mod(head),
            "struct" | "enum" | "union" => self.parse_datatype(head),
            "trait" | "impl" => self.parse_trait_impl(head),
            "use" => self.parse_use(head),
            "const" | "static" => self.parse_const(head),
            "type" => self.parse_type_alias(head),
            "extern" => self.parse_extern(head),
            "macro_rules" => self.parse_macro_rules(head),
            _ => {
                if self.cur().is_some_and(|t| t.kind == TokKind::Ident)
                    && self.peek(1).is_some_and(|t| t.is_punct("!"))
                {
                    self.parse_macro_call_item(head)
                } else {
                    // Unknown fallback: exactly one token.
                    if self.cur().is_some() {
                        head.push(Node::Tok(self.bump()));
                    }
                    self.finish_item(ItemKind::Unknown, None, None, head, None, None, None)
                }
            }
        };
        item.attrs = attrs;
        item.is_pub = is_pub;
        item.line = line;
        item.span = (start, self.pos);
        item
    }

    #[allow(clippy::too_many_arguments)]
    fn finish_item(
        &self,
        kind: ItemKind,
        name: Option<String>,
        name_tok: Option<usize>,
        head: Vec<Node>,
        body: Option<Block>,
        members: Option<Members>,
        semi: Option<usize>,
    ) -> Item {
        Item {
            kind,
            name,
            name_tok,
            attrs: Vec::new(),
            is_pub: false,
            line: 0,
            span: (0, 0),
            head,
            body,
            members,
            semi,
        }
    }

    fn parse_fn(&mut self, mut head: Vec<Node>) -> Item {
        head.push(Node::Tok(self.bump())); // `fn`
        let mut name = None;
        let mut name_tok = None;
        if let Some(t) = self.cur() {
            if t.kind == TokKind::Ident {
                name = Some(t.text.clone());
                name_tok = Some(self.pos);
                head.push(Node::Tok(self.bump()));
            }
        }
        if self.at_punct("<") {
            self.consume_angles(&mut head);
        }
        if self.at_punct("(") {
            let g = self.parse_expr_group();
            head.push(g);
        }
        // Return type / where clause: consume to `{` or `;` at depth 0.
        while let Some(t) = self.cur() {
            if t.is_punct("{") || t.is_punct(";") || t.is_punct("}") {
                break;
            }
            if t.is_punct("(") || t.is_punct("[") {
                head.push(self.parse_raw_group());
            } else {
                head.push(Node::Tok(self.bump()));
            }
        }
        let (body, semi) = if self.at_punct("{") {
            (Some(self.parse_block()), None)
        } else if self.at_punct(";") {
            (None, Some(self.bump()))
        } else {
            (None, None)
        };
        self.finish_item(ItemKind::Fn, name, name_tok, head, body, None, semi)
    }

    fn parse_mod(&mut self, mut head: Vec<Node>) -> Item {
        head.push(Node::Tok(self.bump())); // `mod`
        let mut name = None;
        let mut name_tok = None;
        if let Some(t) = self.cur() {
            if t.kind == TokKind::Ident {
                name = Some(t.text.clone());
                name_tok = Some(self.pos);
                head.push(Node::Tok(self.bump()));
            }
        }
        if self.at_punct("{") {
            let members = self.parse_members();
            self.finish_item(
                ItemKind::Mod,
                name,
                name_tok,
                head,
                None,
                Some(members),
                None,
            )
        } else {
            let semi = self.at_punct(";").then(|| self.bump());
            self.finish_item(ItemKind::Mod, name, name_tok, head, None, None, semi)
        }
    }

    fn parse_datatype(&mut self, mut head: Vec<Node>) -> Item {
        head.push(Node::Tok(self.bump())); // struct / enum / union
        let mut name = None;
        let mut name_tok = None;
        if let Some(t) = self.cur() {
            if t.kind == TokKind::Ident {
                name = Some(t.text.clone());
                name_tok = Some(self.pos);
                head.push(Node::Tok(self.bump()));
            }
        }
        if self.at_punct("<") {
            self.consume_angles(&mut head);
        }
        while let Some(t) = self.cur() {
            if t.is_punct("{") {
                head.push(self.parse_raw_group());
                break;
            }
            if t.is_punct(";") || t.is_punct("}") {
                break;
            }
            if t.is_punct("(") || t.is_punct("[") {
                head.push(self.parse_raw_group());
            } else {
                head.push(Node::Tok(self.bump()));
            }
        }
        let semi = self.at_punct(";").then(|| self.bump());
        self.finish_item(ItemKind::DataType, name, name_tok, head, None, None, semi)
    }

    fn parse_trait_impl(&mut self, mut head: Vec<Node>) -> Item {
        let kind = if self.at_ident("trait") {
            ItemKind::Trait
        } else {
            ItemKind::Impl
        };
        head.push(Node::Tok(self.bump())); // trait / impl
        let mut name = None;
        let mut name_tok = None;
        while let Some(t) = self.cur() {
            if t.is_punct("{") || t.is_punct(";") || t.is_punct("}") {
                break;
            }
            if name.is_none() && t.kind == TokKind::Ident && !t.is_ident("for") {
                name = Some(t.text.clone());
                name_tok = Some(self.pos);
            }
            if t.is_punct("(") || t.is_punct("[") {
                head.push(self.parse_raw_group());
            } else {
                head.push(Node::Tok(self.bump()));
            }
        }
        if self.at_punct("{") {
            let members = self.parse_members();
            self.finish_item(kind, name, name_tok, head, None, Some(members), None)
        } else {
            let semi = self.at_punct(";").then(|| self.bump());
            self.finish_item(kind, name, name_tok, head, None, None, semi)
        }
    }

    fn parse_use(&mut self, mut head: Vec<Node>) -> Item {
        head.push(Node::Tok(self.bump())); // `use`
        while let Some(t) = self.cur() {
            if t.is_punct(";") || t.is_punct("}") && !t.is_punct("{") {
                break;
            }
            if t.is_punct("{") || t.is_punct("(") || t.is_punct("[") {
                head.push(self.parse_raw_group());
            } else {
                head.push(Node::Tok(self.bump()));
            }
        }
        let semi = self.at_punct(";").then(|| self.bump());
        self.finish_item(ItemKind::Use, None, None, head, None, None, semi)
    }

    fn parse_const(&mut self, mut head: Vec<Node>) -> Item {
        head.push(Node::Tok(self.bump())); // const / static
        if self.at_ident("mut") {
            head.push(Node::Tok(self.bump()));
        }
        let mut name = None;
        let mut name_tok = None;
        if let Some(t) = self.cur() {
            if t.kind == TokKind::Ident {
                name = Some(t.text.clone());
                name_tok = Some(self.pos);
                head.push(Node::Tok(self.bump()));
            }
        }
        // Type part up to `=` / `;`, then a structured initializer
        // expression (closures in `Lazy::new(|| ..)` matter to rules).
        while let Some(t) = self.cur() {
            if t.is_punct("=") || t.is_punct(";") || t.is_punct("}") {
                break;
            }
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                head.push(self.parse_raw_group());
            } else {
                head.push(Node::Tok(self.bump()));
            }
        }
        if self.at_punct("=") {
            head.push(Node::Tok(self.bump()));
            let mut init = self.parse_expr_nodes(&[";"]);
            head.append(&mut init);
        }
        let semi = self.at_punct(";").then(|| self.bump());
        self.finish_item(ItemKind::Const, name, name_tok, head, None, None, semi)
    }

    fn parse_type_alias(&mut self, mut head: Vec<Node>) -> Item {
        head.push(Node::Tok(self.bump())); // `type`
        let mut name = None;
        let mut name_tok = None;
        if let Some(t) = self.cur() {
            if t.kind == TokKind::Ident {
                name = Some(t.text.clone());
                name_tok = Some(self.pos);
                head.push(Node::Tok(self.bump()));
            }
        }
        while let Some(t) = self.cur() {
            if t.is_punct(";") || t.is_punct("}") {
                break;
            }
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                head.push(self.parse_raw_group());
            } else {
                head.push(Node::Tok(self.bump()));
            }
        }
        let semi = self.at_punct(";").then(|| self.bump());
        self.finish_item(ItemKind::TypeAlias, name, name_tok, head, None, None, semi)
    }

    fn parse_extern(&mut self, mut head: Vec<Node>) -> Item {
        head.push(Node::Tok(self.bump())); // `extern`
        if self.at_ident("crate") {
            while let Some(t) = self.cur() {
                if t.is_punct(";") || t.is_punct("}") {
                    break;
                }
                head.push(Node::Tok(self.bump()));
            }
            let semi = self.at_punct(";").then(|| self.bump());
            return self.finish_item(ItemKind::Extern, None, None, head, None, None, semi);
        }
        if self.cur().is_some_and(|t| t.kind == TokKind::Str) {
            head.push(Node::Tok(self.bump()));
        }
        if self.at_punct("{") {
            let members = self.parse_members();
            self.finish_item(
                ItemKind::Extern,
                None,
                None,
                head,
                None,
                Some(members),
                None,
            )
        } else {
            let semi = self.at_punct(";").then(|| self.bump());
            self.finish_item(ItemKind::Extern, None, None, head, None, None, semi)
        }
    }

    fn parse_macro_rules(&mut self, mut head: Vec<Node>) -> Item {
        head.push(Node::Tok(self.bump())); // `macro_rules`
        if self.at_punct("!") {
            head.push(Node::Tok(self.bump()));
        }
        let mut name = None;
        let mut name_tok = None;
        if let Some(t) = self.cur() {
            if t.kind == TokKind::Ident {
                name = Some(t.text.clone());
                name_tok = Some(self.pos);
                head.push(Node::Tok(self.bump()));
            }
        }
        if self.at_punct("{") || self.at_punct("(") || self.at_punct("[") {
            head.push(self.parse_raw_group());
        }
        let semi = self.at_punct(";").then(|| self.bump());
        self.finish_item(ItemKind::MacroRules, name, name_tok, head, None, None, semi)
    }

    /// Item-position macro invocation: `path::name! ( .. );` or
    /// `path::name! { .. }`.
    fn parse_macro_call_item(&mut self, mut head: Vec<Node>) -> Item {
        let mut name = None;
        let mut name_tok = None;
        while let Some(t) = self.cur() {
            if t.kind == TokKind::Ident {
                name = Some(t.text.clone());
                name_tok = Some(self.pos);
                head.push(Node::Tok(self.bump()));
                if self.at_punct("::") {
                    head.push(Node::Tok(self.bump()));
                    continue;
                }
            }
            break;
        }
        if self.at_punct("!") {
            head.push(Node::Tok(self.bump()));
        }
        if self.at_punct("{") || self.at_punct("(") || self.at_punct("[") {
            head.push(self.parse_raw_group());
        }
        let semi = self.at_punct(";").then(|| self.bump());
        self.finish_item(ItemKind::MacroCall, name, name_tok, head, None, None, semi)
    }

    fn parse_members(&mut self) -> Members {
        let open = self.bump(); // `{`
        let inner_attrs = self.parse_inner_attrs();
        let mut nodes = Vec::new();
        while let Some(t) = self.cur() {
            if t.is_punct("}") {
                break;
            }
            nodes.push(self.parse_container_entry());
        }
        let close = if self.at_punct("}") {
            Some(self.bump())
        } else {
            self.errors.push("unterminated member block".into());
            None
        };
        Members {
            open,
            inner_attrs,
            nodes,
            close,
        }
    }

    // ---- blocks, statements, expressions --------------------------------

    fn parse_block(&mut self) -> Block {
        let open = self.bump(); // `{`
        let mut stmts = Vec::new();
        while let Some(t) = self.cur() {
            if t.is_punct("}") {
                break;
            }
            stmts.push(self.parse_stmt());
        }
        let close = if self.at_punct("}") {
            Some(self.bump())
        } else {
            self.errors.push("unterminated block".into());
            None
        };
        Block { open, stmts, close }
    }

    fn parse_stmt(&mut self) -> Stmt {
        let attrs = self.parse_outer_attrs();
        if self.at_punct("}") || self.cur().is_none() {
            return Stmt {
                attrs,
                is_let: false,
                nodes: Vec::new(),
                semi: None,
            };
        }
        if self.item_starts_here() {
            let item = self.parse_item(Vec::new());
            return Stmt {
                attrs,
                is_let: false,
                nodes: vec![Node::Item(Box::new(item))],
                semi: None,
            };
        }
        let is_let = self.at_ident("let");
        let mut nodes = Vec::new();
        if is_let {
            nodes.push(Node::Tok(self.bump()));
        }
        let mut rest = self.parse_expr_nodes(&[";"]);
        nodes.append(&mut rest);
        let semi = self.at_punct(";").then(|| self.bump());
        if nodes.is_empty() && semi.is_none() {
            // Stray `)` / `]`: consume one token so the loop advances.
            if self.cur().is_some() {
                self.errors
                    .push(format!("line {}: stray delimiter in block", self.line()));
                nodes.push(Node::Tok(self.bump()));
            }
        }
        Stmt {
            attrs,
            is_let,
            nodes,
            semi,
        }
    }

    /// Parses expression nodes until a stop punct at depth 0, a closing
    /// delimiter of an enclosing group, or EOF. Stop tokens are not
    /// consumed.
    fn parse_expr_nodes(&mut self, stops: &[&str]) -> Vec<Node> {
        let mut nodes: Vec<Node> = Vec::new();
        // Whether the previous node can end an operand (decides whether
        // `|` opens a closure or is a binary operator).
        let mut prev_operand = false;
        while let Some(t) = self.cur() {
            if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                break;
            }
            if stops.iter().any(|s| t.is_punct(s)) {
                break;
            }
            if t.is_punct("(") || t.is_punct("[") {
                nodes.push(self.parse_expr_group());
                prev_operand = true;
                continue;
            }
            if t.is_punct("{") {
                nodes.push(Node::Block(self.parse_block()));
                prev_operand = true;
                continue;
            }
            if (t.is_punct("|") || t.is_punct("||")) && !prev_operand {
                if let Some(closure) = self.try_parse_closure(None) {
                    nodes.push(Node::Closure(Box::new(closure)));
                    prev_operand = true;
                    continue;
                }
                nodes.push(Node::Tok(self.bump()));
                prev_operand = false;
                continue;
            }
            if t.is_ident("move")
                && self
                    .peek(1)
                    .is_some_and(|n| n.is_punct("|") || n.is_punct("||"))
            {
                let move_tok = self.bump();
                if let Some(closure) = self.try_parse_closure(Some(move_tok)) {
                    nodes.push(Node::Closure(Box::new(closure)));
                    prev_operand = true;
                    continue;
                }
                nodes.push(Node::Tok(move_tok));
                prev_operand = false;
                continue;
            }
            // NOTE: no item detection here — mid-expression `fn`/`impl`
            // are *types* (`msg: impl Into<String>`, `cb: fn(f64) -> f64`).
            // Statement-position items are handled by `parse_stmt`.
            // Plain token.
            prev_operand = match t.kind {
                TokKind::Ident => !NON_OPERAND_KEYWORDS.contains(&t.text.as_str()),
                TokKind::Number | TokKind::Str | TokKind::Char => true,
                TokKind::Lifetime => false,
                TokKind::Punct => t.is_punct("?"),
            };
            nodes.push(Node::Tok(self.bump()));
        }
        nodes
    }

    /// Parses `( .. )` / `[ .. ]` with expression-structured children.
    fn parse_expr_group(&mut self) -> Node {
        let open = self.bump();
        let kind = if self.toks[open].is_punct("(") {
            GroupKind::Paren
        } else {
            GroupKind::Bracket
        };
        let closer = if kind == GroupKind::Paren { ")" } else { "]" };
        let mut children = Vec::new();
        loop {
            let mut part = self.parse_expr_nodes(&[","]);
            children.append(&mut part);
            if self.at_punct(",") {
                children.push(Node::Tok(self.bump()));
                continue;
            }
            break;
        }
        let close = if self.at_punct(closer) {
            Some(self.bump())
        } else {
            self.errors.push(format!(
                "line {}: unbalanced `{}`",
                self.toks[open].line, self.toks[open].text
            ));
            None
        };
        Node::Group {
            open,
            kind,
            children,
            close,
        }
    }

    /// Parses a raw (uninterpreted) token tree group at `(`/`[`/`{`.
    fn parse_raw_group(&mut self) -> Node {
        let open = self.bump();
        let (kind, closer) = match self.toks[open].text.as_str() {
            "(" => (GroupKind::Paren, ")"),
            "[" => (GroupKind::Bracket, "]"),
            _ => (GroupKind::RawBrace, "}"),
        };
        let mut children = Vec::new();
        loop {
            let Some(t) = self.cur() else {
                self.errors.push(format!(
                    "line {}: unbalanced `{}`",
                    self.toks[open].line, self.toks[open].text
                ));
                return Node::Group {
                    open,
                    kind,
                    children,
                    close: None,
                };
            };
            if t.is_punct(closer) {
                let close = Some(self.bump());
                return Node::Group {
                    open,
                    kind,
                    children,
                    close,
                };
            }
            if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                // Mismatched close: stop without consuming.
                self.errors.push(format!(
                    "line {}: mismatched `{}` inside `{}` group",
                    t.line, t.text, self.toks[open].text
                ));
                return Node::Group {
                    open,
                    kind,
                    children,
                    close: None,
                };
            }
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                children.push(self.parse_raw_group());
            } else {
                children.push(Node::Tok(self.bump()));
            }
        }
    }

    /// Attempts to parse a closure at the current `|` / `||`. Returns
    /// None (without consuming) when no closing `|` is in sight.
    fn try_parse_closure(&mut self, move_tok: Option<usize>) -> Option<Closure> {
        let line = self.line();
        if self.at_punct("||") {
            let open = self.bump();
            let body = self.parse_closure_body();
            return Some(Closure {
                move_tok,
                open,
                params: Vec::new(),
                close: None,
                body,
                line,
            });
        }
        // Lookahead for the closing `|` at depth 0 within a short window.
        let mut depth = 0i32;
        let mut found = false;
        for off in 1..96 {
            let Some(t) = self.toks.get(self.pos + off) else {
                break;
            };
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
                if depth < 0 {
                    break;
                }
            } else if depth == 0 {
                if t.is_punct("|") {
                    found = true;
                    break;
                }
                if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") || t.is_punct("||") {
                    break;
                }
            }
        }
        if !found {
            return None;
        }
        let open = self.bump(); // `|`
        let mut params = Vec::new();
        while let Some(t) = self.cur() {
            if t.is_punct("|") {
                break;
            }
            if t.is_punct("(") || t.is_punct("[") {
                params.push(self.parse_raw_group());
            } else {
                params.push(Node::Tok(self.bump()));
            }
        }
        let close = self.at_punct("|").then(|| self.bump());
        let body = self.parse_closure_body();
        Some(Closure {
            move_tok,
            open,
            params,
            close,
            body,
            line,
        })
    }

    fn parse_closure_body(&mut self) -> Vec<Node> {
        // `-> Type {` return-type form: consume up to the block.
        if self.at_punct("->") {
            let mut nodes = Vec::new();
            while let Some(t) = self.cur() {
                if t.is_punct("{") || t.is_punct(";") || t.is_punct("}") {
                    break;
                }
                if t.is_punct("(") || t.is_punct("[") {
                    nodes.push(self.parse_raw_group());
                } else {
                    nodes.push(Node::Tok(self.bump()));
                }
            }
            if self.at_punct("{") {
                nodes.push(Node::Block(self.parse_block()));
            }
            return nodes;
        }
        if self.at_punct("{") {
            return vec![Node::Block(self.parse_block())];
        }
        self.parse_expr_nodes(&[",", ";"])
    }

    /// Consumes an angle-bracketed generics run `<..>` into `out`.
    fn consume_angles(&mut self, out: &mut Vec<Node>) {
        let mut depth = 0i64;
        while let Some(t) = self.cur() {
            let d = match t.text.as_str() {
                "<" if t.kind == TokKind::Punct => 1,
                "<<" if t.kind == TokKind::Punct => 2,
                ">" if t.kind == TokKind::Punct => -1,
                ">>" if t.kind == TokKind::Punct => -2,
                _ => 0,
            };
            if t.is_punct("(") || t.is_punct("[") {
                out.push(self.parse_raw_group());
                continue;
            }
            if t.is_punct("{") || t.is_punct(";") || t.is_punct("}") {
                break; // malformed generics; bail out
            }
            depth += d;
            out.push(Node::Tok(self.bump()));
            if depth <= 0 {
                break;
            }
        }
    }
}

/// Parses the predicate of a `cfg(..)` attribute body (the tokens
/// between `[` and `]`, starting at the `cfg` identifier).
fn parse_cfg_predicate(body: &[Tok]) -> Option<CfgPredicate> {
    // body = `cfg ( .. )`
    let mut i = 0;
    if !body.get(i)?.is_ident("cfg") {
        return None;
    }
    i += 1;
    if !body.get(i)?.is_punct("(") {
        return None;
    }
    i += 1;
    let (pred, _) = parse_pred(body, i)?;
    Some(pred)
}

fn parse_pred(toks: &[Tok], mut i: usize) -> Option<(CfgPredicate, usize)> {
    let t = toks.get(i)?;
    if t.kind != TokKind::Ident {
        return None;
    }
    let name = t.text.clone();
    i += 1;
    match name.as_str() {
        "not" => {
            if !toks.get(i)?.is_punct("(") {
                return None;
            }
            let (inner, j) = parse_pred(toks, i + 1)?;
            let mut k = j;
            if toks.get(k).is_some_and(|t| t.is_punct(")")) {
                k += 1;
            }
            Some((CfgPredicate::Not(Box::new(inner)), k))
        }
        "all" | "any" => {
            if !toks.get(i)?.is_punct("(") {
                return None;
            }
            let mut j = i + 1;
            let mut parts = Vec::new();
            loop {
                match toks.get(j) {
                    Some(t) if t.is_punct(")") => {
                        j += 1;
                        break;
                    }
                    Some(t) if t.is_punct(",") => {
                        j += 1;
                    }
                    Some(_) => {
                        let (p, k) = parse_pred(toks, j)?;
                        parts.push(p);
                        j = k;
                    }
                    None => break,
                }
            }
            let pred = if name == "all" {
                CfgPredicate::All(parts)
            } else {
                CfgPredicate::Any(parts)
            };
            Some((pred, j))
        }
        "test" => Some((CfgPredicate::Test, i)),
        _ => {
            if toks.get(i).is_some_and(|t| t.is_punct("=")) {
                let val = toks
                    .get(i + 1)
                    .map(|t| t.text.trim_matches('"').to_string())
                    .unwrap_or_default();
                let pred = if name == "feature" {
                    CfgPredicate::Feature(val)
                } else {
                    CfgPredicate::KeyValue(name, val)
                };
                Some((pred, i + 2))
            } else {
                Some((CfgPredicate::Ident(name), i))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Ast {
        parse(&lex(src))
    }

    fn assert_covers(src: &str) {
        let l = lex(src);
        let ast = parse(&l);
        let cov = ast.coverage();
        let expect: Vec<usize> = (0..l.toks.len()).collect();
        assert_eq!(cov, expect, "coverage mismatch for {src:?}\n{ast:#?}");
    }

    #[test]
    fn simple_items_cover_all_tokens() {
        for src in [
            "fn f(x: f64) -> f64 { x + 1.0 }",
            "pub fn g<T: Into<String>>(t: T) -> Result<Vec<U>, E> where T: Clone { t.into() }",
            "struct S { pub x: f64, y: Vec<usize> }",
            "enum E { A, B(f64), C { x: u8 } }",
            "use std::collections::{HashMap, HashSet};",
            "const X: usize = 3;",
            "static mut Y: f64 = 0.0;",
            "type Alias<T> = Vec<T>;",
            "mod m { fn inner() {} }",
            "impl<T> Foo for Bar<T> { fn m(&self) -> usize { 0 } }",
            "trait T { fn req(&self); fn def(&self) -> usize { 1 } }",
            "macro_rules! m { ($x:expr) => { $x + 1 }; }",
            "thread_local! { static TL: usize = 0; }",
            "extern crate alloc;",
            "#![warn(missing_docs)]\n#[derive(Debug)]\nstruct D;",
        ] {
            assert_covers(src);
        }
    }

    #[test]
    fn expressions_and_closures_cover_all_tokens() {
        for src in [
            "fn f() { let g = |x: f64| x * 2.0; g(1.0); }",
            "fn f() { items.iter().map(|&(a, b)| a + b).sum::<f64>(); }",
            "fn f() { let h = move || 3; }",
            "fn f() { m.get_or_init(|| build(x)); }",
            "fn f() { match x { Some(a) | None => 0, _ => 1 }; }",
            "fn f() { let v = a | b; let w = a || b; }",
            "fn f() { unsafe { *p = 1; } }",
            "fn f() { if cfg!(feature = \"fast-math\") { fast() } else { slow() } }",
            "fn f() { 'outer: loop { break 'outer; } }",
            "fn f() { let x: Vec<f64> = Vec::new(); x.push(1.0); }",
            "fn f() { s.iter().fold(0.0, |acc, v| acc + v); }",
            "fn f() -> impl Fn(f64) -> f64 { |x| x }",
        ] {
            assert_covers(src);
        }
    }

    #[test]
    fn closure_detected_with_params() {
        let ast = parse_src("fn f() { run(|a, b| a + b); }");
        let mut found = false;
        ast.visit_items(&mut |item, _| {
            if item.kind == ItemKind::Fn {
                found = true;
            }
        });
        assert!(found);
        let dbg = format!("{ast:?}");
        assert!(dbg.contains("Closure"), "{dbg}");
    }

    #[test]
    fn or_pattern_is_not_a_closure() {
        let ast = parse_src("fn f() { match x { A(y) | B(y) => y, _ => 0 }; }");
        let dbg = format!("{ast:?}");
        assert!(!dbg.contains("Closure"), "{dbg}");
    }

    #[test]
    fn cfg_predicates_parse_and_evaluate() {
        let ast = parse_src("#[cfg(feature = \"fast-math\")]\nfn fast() {}");
        let mut feats = Vec::new();
        ast.visit_items(&mut |item, _| feats.extend(item.own_features()));
        assert_eq!(feats, vec!["fast-math".to_string()]);

        let ast = parse_src("#[cfg(all(test, feature = \"x\"))]\nmod t {}");
        let mut test_only = false;
        ast.visit_items(&mut |item, _| test_only |= item.is_test_gated());
        assert!(test_only);

        let ast = parse_src("#[cfg(not(feature = \"fast-math\"))]\nfn slow() {}");
        let mut feats = Vec::new();
        let mut test_only = false;
        ast.visit_items(&mut |item, _| {
            feats.extend(item.own_features());
            test_only |= item.is_test_gated();
        });
        assert!(feats.is_empty(), "{feats:?}");
        assert!(!test_only);
    }

    #[test]
    fn statement_attributes_carry_gates() {
        let ast = parse_src(
            "fn hot(x: f64) -> f64 {\n  #[cfg(feature = \"fast-math\")]\n  { fast(x) }\n  #[cfg(not(feature = \"fast-math\"))]\n  { x.exp() }\n}",
        );
        assert!(ast.errors.is_empty(), "{:?}", ast.errors);
        assert!(ast.covers_all_tokens());
        let mut stmt_feats = Vec::new();
        ast.visit_items(&mut |item, _| {
            if let Some(b) = &item.body {
                for s in &b.stmts {
                    for a in &s.attrs {
                        stmt_feats.extend(a.enabling_features());
                    }
                }
            }
        });
        assert_eq!(stmt_feats, vec!["fast-math".to_string()]);
    }

    #[test]
    fn unbalanced_input_records_errors_but_never_panics() {
        for src in ["fn f() {", "fn f() { (a + b; }", "}", "fn f(] {}", "#[cfg("] {
            let ast = parse_src(src);
            let cov = ast.coverage();
            let n = lex(src).toks.len();
            assert_eq!(cov.len(), n, "{src:?} lost tokens: {ast:#?}");
        }
    }

    #[test]
    fn item_names_and_visibility() {
        let ast = parse_src("pub fn density(&self) {}\npub(crate) fn helper() {}");
        let mut names = Vec::new();
        ast.visit_items(&mut |item, _| {
            if item.kind == ItemKind::Fn {
                names.push((item.name.clone().unwrap_or_default(), item.is_pub));
            }
        });
        assert_eq!(
            names,
            vec![("density".to_string(), true), ("helper".to_string(), false)]
        );
    }
}
